//! Property-based tests (proptest) over the workspace's core invariants:
//! autodiff correctness, metric axioms, IPM/HSIC behaviour, dataset
//! generator guarantees and the name-addressable method grid.

use proptest::prelude::*;
use sbrl_hap::core::MethodSpec;
use sbrl_hap::metrics::{ate_bias, env_aggregate, f1_score, pehe};
use sbrl_hap::stats::{hsic_rff_pair, ipm_plain, ipm_weighted_plain, IpmKind, Rff};
use sbrl_hap::tensor::gradcheck::check_gradient;
use sbrl_hap::tensor::rng::rng_from_seed;
use sbrl_hap::tensor::Matrix;

fn matrix_strategy(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-3.0f64..3.0, rows * cols)
        .prop_map(move |data| Matrix::from_vec(rows, cols, data))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn autodiff_matches_finite_differences_on_random_composites(x in matrix_strategy(4, 3)) {
        // softplus -> matmul with transpose -> tanh -> mean: a composite
        // touching several backward rules at once.
        check_gradient(
            &|g, a| {
                let s = g.softplus(a);
                let t = g.transpose(s);
                let m = g.matmul(s, t); // 4x4
                let h = g.tanh(m);
                g.mean(h)
            },
            &x,
            1e-5,
            1e-4,
        ).map_err(TestCaseError::fail)?;
    }

    #[test]
    fn matmul_is_associative(a in matrix_strategy(3, 4), b in matrix_strategy(4, 2), c in matrix_strategy(2, 5)) {
        let left = a.matmul(&b).matmul(&c);
        let right = a.matmul(&b.matmul(&c));
        prop_assert!(left.approx_eq(&right, 1e-9));
    }

    #[test]
    fn matmul_distributes_over_addition(a in matrix_strategy(3, 4), b in matrix_strategy(4, 2), c in matrix_strategy(4, 2)) {
        let lhs = a.matmul(&b.add(&c));
        let rhs = a.matmul(&b).add(&a.matmul(&c));
        prop_assert!(lhs.approx_eq(&rhs, 1e-9));
    }

    #[test]
    fn transpose_reverses_matmul(a in matrix_strategy(3, 4), b in matrix_strategy(4, 2)) {
        let lhs = a.matmul(&b).transpose();
        let rhs = b.transpose().matmul(&a.transpose());
        prop_assert!(lhs.approx_eq(&rhs, 1e-9));
    }

    #[test]
    fn pehe_is_a_metric_like_quantity(ite in proptest::collection::vec(-2.0f64..2.0, 1..50)) {
        // Identity of indiscernibles and symmetry.
        prop_assert_eq!(pehe(&ite, &ite), 0.0);
        let zeros = vec![0.0; ite.len()];
        let forward = pehe(&ite, &zeros);
        let backward = pehe(&zeros, &ite);
        prop_assert!((forward - backward).abs() < 1e-12);
        prop_assert!(forward >= 0.0);
        // PEHE dominates ATE bias (RMS >= |mean|).
        prop_assert!(forward + 1e-12 >= ate_bias(&ite, &zeros));
    }

    #[test]
    fn f1_is_bounded_and_perfect_on_identity(target in proptest::collection::vec(0..2u8, 1..60)) {
        let t: Vec<f64> = target.iter().map(|&v| v as f64).collect();
        let f = f1_score(&t, &t, 0.5);
        if t.iter().any(|&v| v > 0.5) {
            prop_assert_eq!(f, 1.0);
        } else {
            prop_assert_eq!(f, 0.0);
        }
        prop_assert!((0.0..=1.0).contains(&f));
    }

    #[test]
    fn env_aggregate_std_is_consistent(vals in proptest::collection::vec(-10.0f64..10.0, 1..20)) {
        let agg = env_aggregate(&vals);
        prop_assert!(agg.stability >= 0.0);
        prop_assert!((agg.std * agg.std - agg.stability).abs() < 1e-9);
        let min = vals.iter().copied().fold(f64::INFINITY, f64::min);
        let max = vals.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(agg.mean >= min - 1e-12 && agg.mean <= max + 1e-12);
    }

    #[test]
    fn mmd_lin_is_nonnegative_symmetric_and_zero_on_self(x in matrix_strategy(8, 3), y in matrix_strategy(6, 3)) {
        let xy = ipm_plain(IpmKind::MmdLin, &x, &y);
        let yx = ipm_plain(IpmKind::MmdLin, &y, &x);
        prop_assert!(xy >= 0.0);
        prop_assert!((xy - yx).abs() < 1e-9);
        prop_assert!(ipm_plain(IpmKind::MmdLin, &x, &x) < 1e-12);
    }

    #[test]
    fn weighted_ipm_with_unit_weights_matches_unweighted(x in matrix_strategy(7, 2), y in matrix_strategy(5, 2)) {
        let unit_w_x = vec![1.0; 7];
        let unit_w_y = vec![1.0; 5];
        for kind in [IpmKind::MmdLin, IpmKind::MmdRbf { sigma: 1.0 }] {
            let a = ipm_plain(kind, &x, &y);
            let b = ipm_weighted_plain(kind, &x, &y, Some(&unit_w_x), Some(&unit_w_y));
            prop_assert!((a - b).abs() < 1e-9, "{kind:?}: {a} vs {b}");
        }
    }

    #[test]
    fn weight_scaling_invariance_of_ipm(x in matrix_strategy(6, 2), y in matrix_strategy(6, 2), scale in 0.1f64..10.0) {
        // Multiplying all weights by a constant must not change the IPM
        // (weights are renormalised per group).
        let w: Vec<f64> = (1..=6).map(|i| i as f64).collect();
        let w_scaled: Vec<f64> = w.iter().map(|v| v * scale).collect();
        let a = ipm_weighted_plain(IpmKind::MmdLin, &x, &y, Some(&w), None);
        let b = ipm_weighted_plain(IpmKind::MmdLin, &x, &y, Some(&w_scaled), None);
        prop_assert!((a - b).abs() < 1e-9);
    }

    #[test]
    fn hsic_rff_is_nonnegative_and_symmetric(series in proptest::collection::vec((-2.0f64..2.0, -2.0f64..2.0), 10..60)) {
        let a: Vec<f64> = series.iter().map(|p| p.0).collect();
        let b: Vec<f64> = series.iter().map(|p| p.1).collect();
        let mut rng = rng_from_seed(42);
        let rff = Rff::sample(&mut rng, 4);
        let ab = hsic_rff_pair(&a, &b, &rff, None);
        let ba = hsic_rff_pair(&b, &a, &rff, None);
        prop_assert!(ab >= 0.0);
        prop_assert!((ab - ba).abs() < 1e-9);
    }

    #[test]
    fn synthetic_generator_respects_shapes_and_overlap(n in 100usize..300, seed in 0u64..20) {
        use sbrl_hap::data::{SyntheticConfig, SyntheticProcess};
        let process = SyntheticProcess::new(
            SyntheticConfig {
                m_instrument: 2,
                m_confounder: 2,
                m_adjustment: 2,
                m_unstable: 1,
                pool_factor: 4,
                threshold_pool: 400,
            },
            seed,
        );
        let d = process.generate(2.5, n, seed);
        prop_assert_eq!(d.n(), n);
        prop_assert_eq!(d.dim(), 7);
        prop_assert!(d.validate().is_ok());
        // Overlap at generation scale: both arms populated.
        let frac = d.treated_fraction();
        prop_assert!(frac > 0.02 && frac < 0.98, "treated fraction {frac}");
    }

    #[test]
    fn grid_method_names_round_trip(idx in 0usize..9) {
        // Covers all nine grid cells across cases: every table label parses
        // back to the spec that produced it, and Display agrees with name().
        let spec = MethodSpec::grid()[idx];
        let parsed: MethodSpec =
            spec.name().parse().map_err(|e| TestCaseError::fail(format!("{e}")))?;
        prop_assert_eq!(parsed, spec);
        prop_assert_eq!(parsed.to_string(), spec.name());
        // Case-insensitivity holds, too.
        let lower: MethodSpec = spec.name().to_lowercase().parse()
            .map_err(|e| TestCaseError::fail(format!("{e}")))?;
        prop_assert_eq!(lower, spec);
    }

    #[test]
    fn junk_suffixes_break_every_grid_name(idx in 0usize..9, junk in 33u8..127) {
        // Appending any printable byte other than the separators the parser
        // deliberately ignores ('+', '-', '_', and whitespace is trimmed)
        // must turn each of the nine grid names into a typed parse error.
        let junk = junk as char;
        if matches!(junk, '+' | '-' | '_') {
            return Ok(());
        }
        let spec = MethodSpec::grid()[idx];
        let broken = format!("{}{junk}", spec.name());
        prop_assert!(
            broken.parse::<MethodSpec>().is_err(),
            "'{broken}' should not parse"
        );
    }

    #[test]
    fn random_strings_parse_to_grid_cells_or_typed_errors(
        chars in proptest::collection::vec(33u8..127, 1..24)
    ) {
        let s: String = chars.iter().map(|&b| b as char).collect();
        match s.parse::<MethodSpec>() {
            // Random bytes may legitimately spell a grid cell (parsing is
            // case- and separator-insensitive); anything else is a bug.
            Ok(spec) => {
                let grid_names: Vec<String> =
                    MethodSpec::grid().iter().map(|m| m.name()).collect();
                prop_assert!(grid_names.contains(&spec.name()), "junk '{s}' parsed to {spec}");
            }
            // The error is typed and names the offending segment.
            Err(e) => prop_assert!(format!("{e}").contains("unknown")),
        }
    }

    #[test]
    fn scaler_transform_is_affine_invariant_roundtrip(x in matrix_strategy(20, 3)) {
        use sbrl_hap::data::Scaler;
        let scaler = Scaler::fit(&x);
        let z = scaler.transform(&x);
        // Re-standardising an already standardised matrix is a no-op.
        let z2 = Scaler::fit(&z).transform(&z);
        prop_assert!(z.approx_eq(&z2, 1e-6));
    }
}
