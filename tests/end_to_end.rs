//! Cross-crate integration tests: the full pipeline from dataset generation
//! through training to evaluation, exercised through the public meta-crate
//! API exactly as a downstream user would.

use sbrl_hap::core::{Estimator, SbrlConfig, TrainConfig};
use sbrl_hap::data::{CausalDataset, SyntheticConfig, SyntheticProcess};
use sbrl_hap::metrics::pehe;
use sbrl_hap::models::{BackboneKind, CfrConfig};

fn tiny_process() -> SyntheticProcess {
    SyntheticProcess::new(
        SyntheticConfig {
            m_instrument: 3,
            m_confounder: 3,
            m_adjustment: 3,
            m_unstable: 2,
            pool_factor: 4,
            threshold_pool: 1500,
        },
        77,
    )
}

fn tiny_splits() -> (CausalDataset, CausalDataset, CausalDataset) {
    let p = tiny_process();
    (p.generate(2.5, 400, 0), p.generate(2.5, 150, 1), p.generate(-2.5, 300, 2))
}

fn smoke_budget() -> TrainConfig {
    TrainConfig {
        iterations: 80,
        batch_size: 64,
        eval_every: 20,
        patience: 50,
        ..TrainConfig::default()
    }
}

#[test]
fn every_backbone_trains_and_tracks_the_zero_effect_predictor_in_distribution() {
    let (train_data, val_data, _) = tiny_splits();
    let id_test = tiny_process().generate(2.5, 300, 9);
    let ite_true = id_test.true_ite().unwrap();
    // The "no effect anywhere" strawman: predict ITE = 0 for everyone.
    // In-distribution a trained model should be at least competitive with
    // it. (Out of distribution even beating this strawman is not guaranteed
    // — that instability is precisely the paper's problem statement.)
    let zero_pehe = pehe(&vec![0.0; id_test.n()], &ite_true);

    for kind in BackboneKind::ALL {
        let fitted = Estimator::builder()
            .backbone_kind(kind)
            .train(TrainConfig { iterations: 150, ..smoke_budget() })
            .fit(&train_data, &val_data)
            .unwrap_or_else(|e| panic!("{}: {e}", kind.name()));
        let eval = fitted.evaluate(&id_test).expect("oracle");
        assert!(eval.pehe.is_finite(), "{}: PEHE finite", kind.name());
        assert!(
            eval.pehe < zero_pehe * 1.2,
            "{}: ID PEHE {} should be competitive with the zero baseline {zero_pehe}",
            kind.name(),
            eval.pehe
        );
    }
}

#[test]
fn sbrl_weights_reduce_the_objectives_they_minimise() {
    // The contract of the weight phase, checked against a *frozen* network
    // (learning rate 0, full-batch updates): starting from w = 1, the
    // learned weights must not end with a worse weighted balance or weighted
    // decorrelation than the unit weights they started from.
    use sbrl_hap::stats::{decorrelation_loss_plain, ipm_weighted_plain, IpmKind, Rff};
    use sbrl_hap::tensor::rng::rng_from_seed;

    let (train_data, val_data, _) = tiny_splits();
    let n = train_data.n();
    let frozen_budget = TrainConfig {
        iterations: 200,
        batch_size: n, // full batch: the weight objective is deterministic
        lr: 0.0,       // freeze the network entirely
        eval_every: 100,
        patience: 1000,
        ..TrainConfig::default()
    };
    // --- BR only: the learned weights must improve the weighted IPM. ---
    let br_only = SbrlConfig { use_ir: false, ..SbrlConfig::sbrl(10.0, 0.0) };
    let fitted = Estimator::builder()
        .backbone(CfrConfig::small(train_data.dim()))
        .sbrl(br_only)
        .train(frozen_budget)
        .seed(1)
        .fit(&train_data, &val_data)
        .expect("training");

    let rep = fitted.representation(&train_data.x);
    let weights = fitted.weights().to_vec();
    assert!(weights.iter().any(|w| (w - 1.0).abs() > 1e-4), "weights should have moved");
    let treated = train_data.treated_indices();
    let control = train_data.control_indices();
    let rep_t = rep.select_rows(&treated);
    let rep_c = rep.select_rows(&control);
    let w_t: Vec<f64> = treated.iter().map(|&i| weights[i]).collect();
    let w_c: Vec<f64> = control.iter().map(|&i| weights[i]).collect();

    let ipm_unit = ipm_weighted_plain(IpmKind::MmdLin, &rep_t, &rep_c, None, None);
    let ipm_learned = ipm_weighted_plain(IpmKind::MmdLin, &rep_t, &rep_c, Some(&w_t), Some(&w_c));
    assert!(
        ipm_learned <= ipm_unit + 1e-9,
        "learned weights must improve balance on a frozen network: {ipm_learned} vs {ipm_unit}"
    );

    // --- IR only: the learned weights must improve weighted decorrelation
    //     of the last layer Z_p. ---
    let ir_only = SbrlConfig::sbrl(0.0, 10.0);
    let fitted_ir = Estimator::builder()
        .backbone(CfrConfig::small(train_data.dim()))
        .sbrl(ir_only)
        .train(frozen_budget)
        .seed(2)
        .fit(&train_data, &val_data)
        .expect("training");
    let z_p = fitted_ir.last_layer(&train_data.x);
    let z_p = sbrl_hap::data::Scaler::fit(&z_p).transform(&z_p); // align with training-time standardisation
    let weights_ir = fitted_ir.weights().to_vec();
    // A fresh RFF bank estimates the same dependence the trainer minimised,
    // so a modest tolerance absorbs the estimator change.
    let mut rng = rng_from_seed(2);
    let rff = Rff::sample(&mut rng, 5);
    let d_unit = decorrelation_loss_plain(&z_p, None, &rff, false, true);
    let d_learned = decorrelation_loss_plain(&z_p, Some(&weights_ir), &rff, false, true);
    assert!(
        d_learned <= d_unit * 1.15,
        "learned weights should improve decorrelation: {d_learned} vs {d_unit}"
    );
}

#[test]
fn reproducibility_same_seed_same_predictions() {
    let (train_data, val_data, ood) = tiny_splits();
    let run = |seed: u64| {
        Estimator::builder()
            .backbone(CfrConfig::small(train_data.dim()))
            .sbrl(SbrlConfig::sbrl_hap(1.0, 1.0, 0.1, 0.01))
            .train(smoke_budget())
            .seed(seed)
            .fit(&train_data, &val_data)
            .expect("training")
            .predict(&ood.x)
            .ite_hat()
    };
    let a = run(3);
    let b = run(3);
    assert_eq!(a, b, "identical seeds must give identical predictions");
    let c = run(4);
    assert_ne!(a, c, "different seeds should differ");
}

#[test]
fn all_nine_grid_methods_run_on_one_replication() {
    use sbrl_hap::experiments::presets::{bench_variant, paper_syn_8_8_8_2};
    use sbrl_hap::experiments::{fit_method, MethodSpec};

    let (train_data, val_data, ood) = tiny_splits();
    let preset = bench_variant(paper_syn_8_8_8_2());
    for spec in MethodSpec::grid() {
        let cfg = sbrl_hap::experiments::Scale::Bench.train_config(preset.lr, preset.l2, 5);
        let fitted = fit_method(spec, &preset, &train_data, &val_data, &cfg)
            .unwrap_or_else(|e| panic!("{}: {e}", spec.name()));
        let eval = fitted.evaluate(&ood).expect("oracle");
        assert!(eval.pehe.is_finite() && eval.ate_bias.is_finite(), "{}", spec.name());
    }
}

#[test]
fn twins_and_ihdp_pipelines_run_end_to_end() {
    use sbrl_hap::data::{IhdpConfig, IhdpSimulator, TwinsConfig, TwinsSimulator};

    let twins = TwinsSimulator::new(TwinsConfig { n: 500, ..Default::default() }, 3);
    let split = twins.partition(0);
    let fitted = Estimator::builder()
        .backbone_kind(BackboneKind::Tarnet)
        .train(smoke_budget())
        .seed(9)
        .fit(&split.train, &split.val)
        .expect("twins training");
    assert!(fitted.evaluate(&split.test).expect("oracle").pehe.is_finite());

    let ihdp = IhdpSimulator::new(IhdpConfig::default(), 4);
    let split = ihdp.replicate(0);
    let fitted = Estimator::builder()
        .backbone_kind(BackboneKind::Tarnet)
        .train(smoke_budget())
        .seed(10)
        .fit(&split.train, &split.val)
        .expect("ihdp training");
    let eval = fitted.evaluate(&split.test).expect("oracle");
    assert!(eval.pehe.is_finite());
    // IHDP is continuous-outcome: predictions need not be probabilities.
    let est = fitted.predict(&split.test.x);
    assert!(est.y1_hat.iter().any(|&v| v > 1.0), "continuous outcomes exceed [0,1]");
}
