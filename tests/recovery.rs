//! Fault-tolerance contracts of the training loop: watchdog timeouts,
//! checkpoint-rollback recovery, and — behind the `fault-inject` feature —
//! deterministic fault injection driving the whole recovery path end to
//! end. The no-fault default-policy leg must stay bit-identical to the
//! golden PR 2 predictions (guarded by `tests/parallel_identity.rs`); here
//! we additionally pin that *enabling* a recovery policy without any fault
//! leaves predictions bit-for-bit unchanged.

use std::time::Duration;

use sbrl_hap::core::{Estimator, RecoveryPolicy, SbrlConfig, SbrlError, TrainConfig};
use sbrl_hap::data::{CausalDataset, SyntheticConfig, SyntheticProcess};
use sbrl_hap::models::CfrConfig;

fn fixtures() -> (CausalDataset, CausalDataset, CausalDataset) {
    let process = SyntheticProcess::new(SyntheticConfig::syn_8_8_8_2(), 21);
    (process.generate(2.5, 300, 0), process.generate(2.5, 120, 1), process.generate(-2.5, 250, 2))
}

fn train_cfg() -> TrainConfig {
    TrainConfig {
        iterations: 30,
        batch_size: 64,
        eval_every: 10,
        patience: 40,
        ..TrainConfig::default()
    }
}

fn fit(
    train: &CausalDataset,
    val: &CausalDataset,
    cfg: TrainConfig,
) -> Result<sbrl_hap::core::FittedModel<Box<dyn sbrl_hap::models::Backbone>>, SbrlError> {
    Estimator::builder()
        .backbone(CfrConfig::small(train.dim()))
        .sbrl(SbrlConfig::sbrl_hap(1.0, 1.0, 0.1, 0.01))
        .train(cfg)
        .seed(11)
        .fit(train, val)
}

fn prediction_bits(est: &sbrl_hap::metrics::EffectEstimate) -> (Vec<u64>, Vec<u64>) {
    (
        est.y0_hat.iter().map(|v| v.to_bits()).collect(),
        est.y1_hat.iter().map(|v| v.to_bits()).collect(),
    )
}

#[test]
fn zero_time_budget_times_out_with_a_typed_error() {
    let (train, val, _) = fixtures();
    let cfg = TrainConfig { time_budget: Some(Duration::ZERO), ..train_cfg() };
    match fit(&train, &val, cfg) {
        Err(SbrlError::TimedOut { iteration, .. }) => assert_eq!(iteration, 0),
        other => panic!("expected TimedOut, got {other:?}"),
    }
}

#[test]
fn generous_time_budget_does_not_interfere() {
    let (train, val, _) = fixtures();
    let cfg = TrainConfig { time_budget: Some(Duration::from_secs(3600)), ..train_cfg() };
    let fitted = fit(&train, &val, cfg).expect("an hour is plenty for 30 iterations");
    assert_eq!(fitted.fit_report().time_budget, Some(Duration::from_secs(3600)));
}

#[test]
fn malformed_recovery_policies_are_rejected_up_front() {
    let (train, val, _) = fixtures();
    for (policy, what) in [
        (
            RecoveryPolicy { lr_backoff: 0.0, ..RecoveryPolicy::retries(1) },
            "train.recovery.lr_backoff",
        ),
        (
            RecoveryPolicy { lr_backoff: f64::NAN, ..RecoveryPolicy::retries(1) },
            "train.recovery.lr_backoff",
        ),
        (
            RecoveryPolicy { grad_clip_escalation: 1.5, ..RecoveryPolicy::retries(1) },
            "train.recovery.grad_clip_escalation",
        ),
    ] {
        let cfg = TrainConfig { recovery: policy, ..train_cfg() };
        match fit(&train, &val, cfg) {
            Err(SbrlError::InvalidConfig { what: got, .. }) => assert_eq!(got, what),
            other => panic!("expected InvalidConfig({what}), got {other:?}"),
        }
    }
}

#[test]
fn default_fit_reports_are_empty_and_policy_free() {
    let (train, val, _) = fixtures();
    let fitted = fit(&train, &val, train_cfg()).expect("training succeeds");
    let report = fitted.fit_report();
    assert!(!report.recovered());
    assert!(report.recoveries.is_empty());
    assert_eq!(report.policy, RecoveryPolicy::default());
    assert_eq!(report.policy.max_retries, 0);
    assert_eq!(report.time_budget, None);
}

/// Arming a recovery policy must be free when no fault occurs: the rollback
/// machinery (checkpoint bookkeeping, gradient finiteness scans) only reads
/// training state, so predictions stay bit-identical to the default path.
#[test]
fn recovery_policy_without_faults_is_bit_identical_to_default() {
    let (train, val, test) = fixtures();
    let baseline = fit(&train, &val, train_cfg()).expect("training succeeds");
    let armed_cfg = TrainConfig { recovery: RecoveryPolicy::retries(2), ..train_cfg() };
    let armed = fit(&train, &val, armed_cfg).expect("training succeeds");
    assert!(!armed.fit_report().recovered(), "no fault, no recovery events");
    assert_eq!(
        prediction_bits(&baseline.predict(&test.x)),
        prediction_bits(&armed.predict(&test.x)),
        "dormant recovery machinery must not perturb a healthy fit"
    );
}

#[test]
fn builder_threads_recovery_knobs_into_the_config() {
    let (train, val, _) = fixtures();
    let fitted = Estimator::builder()
        .backbone(CfrConfig::small(train.dim()))
        .sbrl(SbrlConfig::sbrl_hap(1.0, 1.0, 0.1, 0.01))
        .train(train_cfg())
        .recovery(RecoveryPolicy::retries(1))
        .time_budget(Duration::from_secs(600))
        .seed(11)
        .fit(&train, &val)
        .expect("training succeeds");
    let report = fitted.fit_report();
    assert_eq!(report.policy.max_retries, 1);
    assert_eq!(report.time_budget, Some(Duration::from_secs(600)));
}

#[cfg(feature = "fault-inject")]
mod injected {
    use super::*;
    use sbrl_hap::core::{inject, FaultPlan, NonFiniteTerm};

    fn plan(spec: &str) -> FaultPlan {
        FaultPlan::parse(spec).expect("valid plan")
    }

    #[test]
    fn injected_nan_loss_recovers_into_a_successful_fit() {
        let (train, val, _) = fixtures();
        let cfg = TrainConfig { recovery: RecoveryPolicy::retries(2), ..train_cfg() };
        let _guard = inject(&plan("nan-loss@5"));
        let fitted = fit(&train, &val, cfg).expect("recovery absorbs the injected NaN");
        let report = fitted.fit_report();
        assert!(report.recovered());
        assert_eq!(report.recoveries.len(), 1);
        let event = &report.recoveries[0];
        assert_eq!(event.iteration, 5);
        assert_eq!(event.term, NonFiniteTerm::FactualLoss);
        assert_eq!(event.retry, 1);
        assert!(event.lr < TrainConfig::default().lr, "LR must back off on rollback");
    }

    #[test]
    fn recovery_is_bit_stable_under_the_same_seed_and_plan() {
        let (train, val, test) = fixtures();
        let cfg = TrainConfig { recovery: RecoveryPolicy::retries(2), ..train_cfg() };
        let run = || {
            let _guard = inject(&plan("nan-loss@5"));
            let fitted = fit(&train, &val, cfg).expect("recovery succeeds");
            assert!(fitted.fit_report().recovered());
            prediction_bits(&fitted.predict(&test.x))
        };
        assert_eq!(run(), run(), "same seed + same fault plan must be bit-identical");
    }

    #[test]
    fn every_objective_term_is_classified_at_its_site() {
        let (train, val, _) = fixtures();
        let cfg = TrainConfig { recovery: RecoveryPolicy::retries(2), ..train_cfg() };
        for (spec, term) in [
            ("nan-reg@4", NonFiniteTerm::Regularizer),
            ("nan-weight-loss@4", NonFiniteTerm::WeightObjective),
            ("nan-grad@4", NonFiniteTerm::Gradient),
        ] {
            let _guard = inject(&plan(spec));
            let fitted = fit(&train, &val, cfg)
                .unwrap_or_else(|e| panic!("{spec}: recovery should absorb the fault: {e}"));
            let report = fitted.fit_report();
            assert_eq!(report.recoveries.len(), 1, "{spec}");
            assert_eq!(report.recoveries[0].term, term, "{spec}");
            assert_eq!(report.recoveries[0].iteration, 4, "{spec}");
        }
    }

    #[test]
    fn default_policy_surfaces_the_fault_as_a_typed_error() {
        let (train, val, _) = fixtures();
        let _guard = inject(&plan("nan-loss@3"));
        match fit(&train, &val, train_cfg()) {
            Err(SbrlError::NonFiniteLoss { iteration, term }) => {
                assert_eq!(iteration, 3);
                assert_eq!(term, NonFiniteTerm::FactualLoss);
            }
            other => panic!("expected NonFiniteLoss, got {other:?}"),
        }
    }

    #[test]
    fn exhausted_retry_budgets_surface_the_last_fault() {
        let (train, val, _) = fixtures();
        // Two faults, one retry: the second fault exhausts the budget.
        let cfg = TrainConfig { recovery: RecoveryPolicy::retries(1), ..train_cfg() };
        let _guard = inject(&plan("nan-loss@3;nan-loss@4"));
        match fit(&train, &val, cfg) {
            Err(SbrlError::NonFiniteLoss { term: NonFiniteTerm::FactualLoss, .. }) => {}
            other => panic!("expected NonFiniteLoss after budget exhaustion, got {other:?}"),
        }
    }

    #[test]
    fn worker_panics_surface_as_typed_errors_and_the_pool_survives() {
        let (train, val, test) = fixtures();
        let fitted = fit(&train, &val, train_cfg()).expect("training succeeds");
        {
            let _guard = inject(&plan("panic-task@0"));
            match fitted.try_predict_batched(&test.x, 4) {
                Err(SbrlError::WorkerPanic { task }) => assert_eq!(task, 0),
                other => panic!("expected WorkerPanic, got {other:?}"),
            }
        }
        // The pool threads replace themselves after a panic: the same model
        // predicts normally once the fault is disarmed, bit-identical to the
        // serial path.
        let recovered = fitted.try_predict_batched(&test.x, 4).expect("pool recovered");
        assert_eq!(
            prediction_bits(&recovered),
            prediction_bits(&fitted.predict(&test.x)),
            "post-panic predictions must match the serial path bit-for-bit"
        );
    }

    #[test]
    fn stalled_iterations_trip_the_watchdog() {
        let (train, val, _) = fixtures();
        let cfg = TrainConfig { time_budget: Some(Duration::from_millis(150)), ..train_cfg() };
        let _guard = inject(&plan("stall-iter@3:500"));
        match fit(&train, &val, cfg) {
            Err(SbrlError::TimedOut { iteration, elapsed }) => {
                assert!(iteration <= 3, "watchdog fires at or before the stalled iteration");
                assert!(elapsed >= Duration::from_millis(150));
            }
            other => panic!("expected TimedOut, got {other:?}"),
        }
    }
}
