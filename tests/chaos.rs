//! Chaos suite (behind `fault-inject`): with deterministic network and
//! batcher faults armed, every client call must resolve — a bit-identical
//! answer after transparent retries, or a typed error — within its deadline.
//! Zero hangs, zero panics escaping to the client, zero partial responses
//! mistaken for answers.
//!
//! Net faults index the server's response frames by write order (the
//! counter resets on every `inject`), so each scenario arms its fault for
//! frame 0 and fires it on the first reply. The `inject` guard serialises
//! the suite on the global fault plan, one scenario at a time.

#![cfg(feature = "fault-inject")]

use std::path::Path;
use std::time::{Duration, Instant};

use sbrl_hap::core::{
    inject, ClientConfig, FaultPlan, ModelRegistry, SbrlError, ServeClient, ServeConfig,
    SocketServer,
};
use sbrl_hap::tensor::Matrix;

fn plan(spec: &str) -> FaultPlan {
    FaultPlan::parse(spec).expect("valid fault plan")
}

fn registry() -> ModelRegistry {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/registry");
    ModelRegistry::load_dir(&dir).expect("committed fixture registry loads")
}

fn bind_server() -> SocketServer {
    SocketServer::bind(registry(), ServeConfig::default(), "127.0.0.1:0").expect("loopback bind")
}

/// Deterministic covariates, same recipe as the serving suite.
fn probe(rows: usize, dim: usize, salt: u64) -> Matrix {
    let mut state = salt.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
    let mut data = Vec::with_capacity(rows * dim);
    for _ in 0..rows * dim {
        state =
            state.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1_442_695_040_888_963_407);
        data.push(((state >> 33) % 4001) as f64 / 1000.0 - 2.0);
    }
    Matrix::from_vec(rows, dim, data)
}

fn first_model(server: &SocketServer) -> (String, usize) {
    let names = server.service().registry().names();
    let name = names.first().expect("non-empty registry").clone();
    let dim = server
        .service()
        .registry()
        .require(&name)
        .expect("model present")
        .model()
        .export_config()
        .in_dim();
    (name, dim)
}

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// A retrying client with a hard deadline: the chaos contract is judged
/// against this budget.
fn chaos_client() -> ClientConfig {
    ClientConfig {
        deadline: Some(Duration::from_secs(20)),
        retries: 3,
        backoff_base: Duration::from_millis(2),
        ..ClientConfig::default()
    }
}

/// Runs one net-fault scenario: arm `spec`, fire one predict through a
/// retrying client, and require a bit-identical answer (the retry path must
/// fully mask the fault). Returns the call's elapsed time.
fn masked_by_retry(spec: &str) -> Duration {
    let _guard = inject(&plan(spec));
    let server = bind_server();
    let (name, dim) = first_model(&server);
    let x = probe(4, dim, 7);
    let expected = server.service().predict(&name, x.clone()).expect("in-process baseline");
    // The baseline was served in-process: no response frame was written, so
    // the armed fault is still waiting for the first *socket* reply.
    let mut client = ServeClient::connect(server.local_addr(), chaos_client());
    let started = Instant::now();
    let est = client
        .predict(&name, &x)
        .unwrap_or_else(|e| panic!("retries must mask the injected fault `{spec}`, got: {e}"));
    let elapsed = started.elapsed();
    assert_eq!(bits(&est.y0_hat), bits(&expected.y0_hat), "{spec} y0");
    assert_eq!(bits(&est.y1_hat), bits(&expected.y1_hat), "{spec} y1");
    server.shutdown();
    elapsed
}

#[test]
fn dropped_response_is_retried_to_a_bit_identical_answer() {
    masked_by_retry("net-drop@0");
}

#[test]
fn truncated_response_is_retried_to_a_bit_identical_answer() {
    masked_by_retry("net-trunc@0");
}

#[test]
fn corrupted_response_fails_the_crc_and_is_retried_to_a_bit_identical_answer() {
    masked_by_retry("net-garbage@0");
}

#[test]
fn delayed_response_arrives_late_but_intact() {
    let elapsed = masked_by_retry("net-delay@0:150");
    assert!(
        elapsed >= Duration::from_millis(150),
        "the injected delay must actually be paid: {elapsed:?}"
    );
}

/// With retries disabled, every injected net fault degrades to a typed
/// error within the deadline — never a hang and never a partial answer.
#[test]
fn without_retries_every_net_fault_is_a_typed_error_within_deadline() {
    for spec in ["net-drop@0", "net-trunc@0", "net-garbage@0"] {
        let _guard = inject(&plan(spec));
        let server = bind_server();
        let (name, dim) = first_model(&server);
        let cfg = ClientConfig {
            retries: 0,
            deadline: Some(Duration::from_secs(10)),
            ..ClientConfig::default()
        };
        let mut client = ServeClient::connect(server.local_addr(), cfg);
        let started = Instant::now();
        let err = client.predict(&name, &probe(3, dim, 1)).expect_err("fault must surface");
        assert!(
            matches!(err, SbrlError::Wire(_) | SbrlError::TimedOut { .. }),
            "{spec}: expected a typed wire/timeout error, got: {err}"
        );
        assert!(
            started.elapsed() < Duration::from_secs(10),
            "{spec}: the call must resolve inside the deadline"
        );
        server.shutdown();
    }
}

/// A batcher panic mid-service degrades every waiter to a typed
/// `ServiceStopped` — the unwind guards fulfil in-flight and queued slots,
/// so no client ever hangs on a dead batcher.
#[test]
fn batcher_panic_degrades_to_typed_service_stopped() {
    let _guard = inject(&plan("batcher-panic@0"));
    let server = bind_server();
    let (name, dim) = first_model(&server);
    let cfg = ClientConfig {
        retries: 0,
        deadline: Some(Duration::from_secs(10)),
        ..ClientConfig::default()
    };
    let mut client = ServeClient::connect(server.local_addr(), cfg);
    let err = client.predict(&name, &probe(2, dim, 5)).expect_err("batcher is dead");
    match err {
        SbrlError::ServiceStopped { reason } => {
            assert!(!reason.is_empty(), "reason must explain the stop");
        }
        other => panic!("expected ServiceStopped, got: {other}"),
    }
    // Later requests get the same typed degradation, not a hang.
    let err = client.predict(&name, &probe(2, dim, 6)).expect_err("still dead");
    assert!(
        matches!(err, SbrlError::ServiceStopped { .. } | SbrlError::Wire(_)),
        "expected typed degradation, got: {err}"
    );
    // Shutdown of a server whose batcher already died stays clean.
    server.shutdown();
}

/// The whole gauntlet back to back: after every scenario the next server
/// boots clean, proving no fault leaks process-global state (beyond the
/// armed plan itself, which `inject` scopes).
#[test]
fn chaos_gauntlet_leaves_no_residue() {
    for spec in ["net-drop@0", "net-garbage@0", "net-trunc@0", "net-delay@0:20"] {
        masked_by_retry(spec);
    }
    // No plan armed: a plain round trip still works.
    let server = bind_server();
    let (name, dim) = first_model(&server);
    let mut client = ServeClient::connect(server.local_addr(), chaos_client());
    client.predict(&name, &probe(2, dim, 11)).expect("clean server after the gauntlet");
    server.shutdown();
}
