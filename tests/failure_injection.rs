//! Failure-injection tests: degenerate and malformed inputs must surface as
//! typed errors (or documented panics), never as silent NaN propagation.

use sbrl_hap::core::{Estimator, SbrlConfig, SbrlError, TrainConfig};
use sbrl_hap::data::{CausalDataset, DataError, OutcomeKind};
use sbrl_hap::models::TarnetConfig;
use sbrl_hap::tensor::rng::{randn, rng_from_seed};
use sbrl_hap::tensor::Matrix;

fn valid_data(n: usize, seed: u64) -> CausalDataset {
    let mut rng = rng_from_seed(seed);
    let x = randn(&mut rng, n, 4);
    let t: Vec<f64> = (0..n).map(|i| (i % 2) as f64).collect();
    let yf: Vec<f64> = (0..n).map(|i| x[(i, 0)] + t[i]).collect();
    CausalDataset { x, t, yf, ycf: None, mu0: None, mu1: None, outcome: OutcomeKind::Continuous }
}

fn budget() -> TrainConfig {
    TrainConfig { iterations: 20, batch_size: 16, ..TrainConfig::default() }
}

fn fit(train: &CausalDataset, val: &CausalDataset) -> Result<(), SbrlError> {
    Estimator::builder()
        .backbone(TarnetConfig::small(4))
        .train(budget())
        .fit(train, val)
        .map(|_| ())
}

#[test]
fn empty_treatment_arm_is_a_typed_error() {
    let mut data = valid_data(40, 0);
    data.t = vec![0.0; 40];
    let err = fit(&data, &valid_data(20, 1));
    match err {
        Err(SbrlError::Data(DataError::EmptyTreatmentArm { treated, control })) => {
            assert_eq!(treated, 0);
            assert_eq!(control, 40);
        }
        other => panic!(
            "expected EmptyTreatmentArm, got {other:?}",
            other = other.err().map(|e| e.to_string())
        ),
    }
}

#[test]
fn nan_covariates_are_rejected_before_training() {
    let mut data = valid_data(40, 2);
    data.x[(3, 1)] = f64::NAN;
    let err = fit(&data, &valid_data(20, 3));
    assert!(matches!(err, Err(SbrlError::Data(DataError::NonFinite { field: "x" }))));
}

#[test]
fn invalid_treatment_value_is_rejected() {
    let mut data = valid_data(40, 4);
    data.t[7] = 0.5;
    let err = fit(&data, &valid_data(20, 5));
    assert!(matches!(err, Err(SbrlError::Data(DataError::InvalidTreatment { index: 7, .. }))));
}

#[test]
fn empty_dataset_is_rejected() {
    let data = CausalDataset {
        x: Matrix::zeros(0, 4),
        t: vec![],
        yf: vec![],
        ycf: None,
        mu0: None,
        mu1: None,
        outcome: OutcomeKind::Continuous,
    };
    assert!(matches!(data.validate(), Err(DataError::Empty)));
}

#[test]
fn validation_fold_is_checked_too() {
    let mut bad_val = valid_data(20, 6);
    bad_val.yf[0] = f64::INFINITY;
    let err = fit(&valid_data(40, 7), &bad_val);
    assert!(matches!(err, Err(SbrlError::Data(DataError::NonFinite { field: "yf" }))));
}

#[test]
fn mismatched_lengths_are_typed() {
    let mut data = valid_data(40, 8);
    data.yf.pop();
    assert!(matches!(
        data.validate(),
        Err(DataError::LengthMismatch { field: "yf", got: 39, expected: 40 })
    ));
}

#[test]
fn misconfigured_builders_are_typed_errors() {
    let train = valid_data(40, 12);
    let val = valid_data(20, 13);
    // No backbone selected at all.
    let err = Estimator::builder().train(budget()).fit(&train, &val);
    assert!(matches!(err, Err(SbrlError::InvalidConfig { what: "backbone", .. })));
    // Architecture/data dimension mismatch.
    let err =
        Estimator::builder().backbone(TarnetConfig::small(9)).train(budget()).fit(&train, &val);
    assert!(matches!(err, Err(SbrlError::InvalidConfig { what: "backbone.in_dim", .. })));
    // Degenerate optimisation budget.
    let err = Estimator::builder()
        .backbone(TarnetConfig::small(4))
        .train(TrainConfig { batch_size: 0, ..budget() })
        .fit(&train, &val);
    assert!(matches!(err, Err(SbrlError::InvalidConfig { what: "train.batch_size", .. })));
}

#[test]
fn unknown_dataset_names_are_typed_errors() {
    use sbrl_hap::data::{DatasetOptions, DatasetRegistry};
    let err =
        DatasetRegistry::builtin().generate("imagenet", &DatasetOptions::default()).unwrap_err();
    assert!(matches!(err, DataError::UnknownDataset { .. }));
    assert!(err.to_string().contains("syn_8_8_8_2"));
}

#[test]
#[should_panic(expected = "Scaler: column count mismatch")]
fn scaler_rejects_wrong_width() {
    use sbrl_hap::data::Scaler;
    let mut rng = rng_from_seed(9);
    let scaler = Scaler::fit(&randn(&mut rng, 10, 4));
    let _ = scaler.transform(&randn(&mut rng, 5, 3));
}

#[test]
fn zero_variance_feature_does_not_produce_nan() {
    // A constant column must survive standardisation (std floored) and
    // training must stay finite.
    let mut data = valid_data(60, 10);
    for i in 0..60 {
        data.x[(i, 2)] = 5.0;
    }
    let val = {
        let mut v = valid_data(30, 11);
        for i in 0..30 {
            v.x[(i, 2)] = 5.0;
        }
        v
    };
    let fitted = Estimator::builder()
        .backbone(TarnetConfig::small(4))
        .sbrl(SbrlConfig::sbrl(1.0, 1.0))
        .train(budget())
        .fit(&data, &val)
        .expect("constant features must not break training");
    let est = fitted.predict(&val.x);
    assert!(est.y0_hat.iter().all(|v| v.is_finite()));
}

#[test]
fn extreme_bias_rates_still_generate_valid_data() {
    use sbrl_hap::data::{SyntheticConfig, SyntheticProcess};
    let process = SyntheticProcess::new(
        SyntheticConfig {
            m_instrument: 2,
            m_confounder: 2,
            m_adjustment: 2,
            m_unstable: 2,
            pool_factor: 5,
            threshold_pool: 500,
        },
        0,
    );
    for rho in [-50.0, -1.0001, 1.0001, 50.0] {
        let d = process.generate(rho, 100, 0);
        d.validate().unwrap_or_else(|e| panic!("rho = {rho}: {e}"));
    }
}
