//! Failure-injection tests: degenerate and malformed inputs must surface as
//! typed errors (or documented panics), never as silent NaN propagation.

use sbrl_hap::core::{train, SbrlConfig, TrainConfig, TrainError};
use sbrl_hap::data::{CausalDataset, DataError, OutcomeKind};
use sbrl_hap::models::{Tarnet, TarnetConfig};
use sbrl_hap::tensor::rng::{randn, rng_from_seed};
use sbrl_hap::tensor::Matrix;

fn valid_data(n: usize, seed: u64) -> CausalDataset {
    let mut rng = rng_from_seed(seed);
    let x = randn(&mut rng, n, 4);
    let t: Vec<f64> = (0..n).map(|i| (i % 2) as f64).collect();
    let yf: Vec<f64> = (0..n).map(|i| x[(i, 0)] + t[i]).collect();
    CausalDataset { x, t, yf, ycf: None, mu0: None, mu1: None, outcome: OutcomeKind::Continuous }
}

fn budget() -> TrainConfig {
    TrainConfig { iterations: 20, batch_size: 16, ..TrainConfig::default() }
}

#[test]
fn empty_treatment_arm_is_a_typed_error() {
    let mut data = valid_data(40, 0);
    data.t = vec![0.0; 40];
    let mut rng = rng_from_seed(0);
    let model = Tarnet::new(TarnetConfig::small(4), &mut rng);
    let err = train(model, &data, &valid_data(20, 1), &SbrlConfig::vanilla(), &budget());
    match err {
        Err(TrainError::Data(DataError::EmptyTreatmentArm { treated, control })) => {
            assert_eq!(treated, 0);
            assert_eq!(control, 40);
        }
        other => panic!(
            "expected EmptyTreatmentArm, got {other:?}",
            other = other.err().map(|e| e.to_string())
        ),
    }
}

#[test]
fn nan_covariates_are_rejected_before_training() {
    let mut data = valid_data(40, 2);
    data.x[(3, 1)] = f64::NAN;
    let mut rng = rng_from_seed(0);
    let model = Tarnet::new(TarnetConfig::small(4), &mut rng);
    let err = train(model, &data, &valid_data(20, 3), &SbrlConfig::vanilla(), &budget());
    assert!(matches!(err, Err(TrainError::Data(DataError::NonFinite { field: "x" }))));
}

#[test]
fn invalid_treatment_value_is_rejected() {
    let mut data = valid_data(40, 4);
    data.t[7] = 0.5;
    let mut rng = rng_from_seed(0);
    let model = Tarnet::new(TarnetConfig::small(4), &mut rng);
    let err = train(model, &data, &valid_data(20, 5), &SbrlConfig::vanilla(), &budget());
    assert!(matches!(err, Err(TrainError::Data(DataError::InvalidTreatment { index: 7, .. }))));
}

#[test]
fn empty_dataset_is_rejected() {
    let data = CausalDataset {
        x: Matrix::zeros(0, 4),
        t: vec![],
        yf: vec![],
        ycf: None,
        mu0: None,
        mu1: None,
        outcome: OutcomeKind::Continuous,
    };
    assert!(matches!(data.validate(), Err(DataError::Empty)));
}

#[test]
fn validation_fold_is_checked_too() {
    let mut rng = rng_from_seed(0);
    let model = Tarnet::new(TarnetConfig::small(4), &mut rng);
    let mut bad_val = valid_data(20, 6);
    bad_val.yf[0] = f64::INFINITY;
    let err = train(model, &valid_data(40, 7), &bad_val, &SbrlConfig::vanilla(), &budget());
    assert!(matches!(err, Err(TrainError::Data(DataError::NonFinite { field: "yf" }))));
}

#[test]
fn mismatched_lengths_are_typed() {
    let mut data = valid_data(40, 8);
    data.yf.pop();
    assert!(matches!(
        data.validate(),
        Err(DataError::LengthMismatch { field: "yf", got: 39, expected: 40 })
    ));
}

#[test]
#[should_panic(expected = "Scaler: column count mismatch")]
fn scaler_rejects_wrong_width() {
    use sbrl_hap::data::Scaler;
    let mut rng = rng_from_seed(9);
    let scaler = Scaler::fit(&randn(&mut rng, 10, 4));
    let _ = scaler.transform(&randn(&mut rng, 5, 3));
}

#[test]
fn zero_variance_feature_does_not_produce_nan() {
    // A constant column must survive standardisation (std floored) and
    // training must stay finite.
    let mut data = valid_data(60, 10);
    for i in 0..60 {
        data.x[(i, 2)] = 5.0;
    }
    let val = {
        let mut v = valid_data(30, 11);
        for i in 0..30 {
            v.x[(i, 2)] = 5.0;
        }
        v
    };
    let mut rng = rng_from_seed(0);
    let model = Tarnet::new(TarnetConfig::small(4), &mut rng);
    let mut fitted = train(model, &data, &val, &SbrlConfig::sbrl(1.0, 1.0), &budget())
        .expect("constant features must not break training");
    let est = fitted.predict(&val.x);
    assert!(est.y0_hat.iter().all(|v| v.is_finite()));
}

#[test]
fn extreme_bias_rates_still_generate_valid_data() {
    use sbrl_hap::data::{SyntheticConfig, SyntheticProcess};
    let process = SyntheticProcess::new(
        SyntheticConfig {
            m_instrument: 2,
            m_confounder: 2,
            m_adjustment: 2,
            m_unstable: 2,
            pool_factor: 5,
            threshold_pool: 500,
        },
        0,
    );
    for rho in [-50.0, -1.0001, 1.0001, 50.0] {
        let d = process.generate(rho, 100, 0);
        d.validate().unwrap_or_else(|e| panic!("rho = {rho}: {e}"));
    }
}
