//! Bit-identity guarantees of the reusable tape: a pooled `Graph` that is
//! `reset()` between optimisation steps must reproduce, bit for bit, the
//! numbers a fresh `Graph::new()` per step produces — across random layer
//! shapes, batch sizes and step counts, through a full Adam training loop
//! and through the scratch-reusing decorrelation regularizer.

use proptest::prelude::*;
use sbrl_hap::nn::{Activation, Adam, Binding, Init, Mlp, Optimizer, ParamStore};
use sbrl_hap::stats::{
    decorrelation_loss_graph, decorrelation_loss_graph_scratch, DecorrelationConfig, HsicScratch,
    Rff,
};
use sbrl_hap::tensor::rng::{randn, rng_from_seed};
use sbrl_hap::tensor::{Graph, Matrix};

fn bits(m: &Matrix) -> Vec<u64> {
    m.as_slice().iter().map(|v| v.to_bits()).collect()
}

/// One MSE training step on `g`: forward the MLP, square-error against a
/// target, backward, Adam update. Returns nothing; the store mutates.
fn train_step(
    g: &mut Graph,
    store: &mut ParamStore,
    mlp: &Mlp,
    opt: &mut Adam,
    x: &Matrix,
    y: &Matrix,
) {
    let mut binding = Binding::new(store);
    let xc = g.constant_copied(x);
    let out = mlp.forward(store, &mut binding, g, xc);
    let target = g.constant_copied(y);
    let diff = g.sub(out.output, target);
    let sq = g.square(diff);
    let loss = g.mean(sq);
    g.backward(loss);
    opt.step(store, g, &binding);
    let taps = out.taps;
    g.give_id_buf(taps);
}

fn build_mlp(dims: &[usize], seed: u64) -> (ParamStore, Mlp) {
    let mut store = ParamStore::new();
    let mut rng = rng_from_seed(seed);
    let mlp = Mlp::new(
        &mut store,
        &mut rng,
        "mlp",
        dims,
        Activation::Elu(1.0),
        Activation::Identity,
        Init::HeNormal,
    );
    (store, mlp)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// A pooled, reset tape trains an MLP to bit-identical parameters
    /// compared with a fresh graph per step, for random widths, batch sizes
    /// and step counts.
    #[test]
    fn pooled_training_loop_is_bit_identical_to_fresh_graphs(
        cfg in (1usize..24, 1usize..12, 1usize..20, 2usize..10),
        seed in 1u64..1000,
    ) {
        let (in_dim, hidden, batch, steps) = cfg;
        let dims = [in_dim, hidden, 1];

        let (mut store_fresh, mlp_fresh) = build_mlp(&dims, seed);
        let (mut store_pooled, mlp_pooled) = build_mlp(&dims, seed);
        let mut opt_fresh = Adam::new(&store_fresh, 1e-2);
        let mut opt_pooled = Adam::new(&store_pooled, 1e-2);

        let mut data_rng = rng_from_seed(seed ^ 0xdead);
        let batches: Vec<(Matrix, Matrix)> =
            (0..steps).map(|_| (randn(&mut data_rng, batch, in_dim), randn(&mut data_rng, batch, 1))).collect();

        let mut pooled = Graph::new();
        for (step, (x, y)) in batches.iter().enumerate() {
            let mut fresh = Graph::new();
            train_step(&mut fresh, &mut store_fresh, &mlp_fresh, &mut opt_fresh, x, y);

            pooled.reset();
            train_step(&mut pooled, &mut store_pooled, &mlp_pooled, &mut opt_pooled, x, y);

            let _ = step;
            for ((_, _, fresh_v), (_, _, pooled_v)) in store_fresh.iter().zip(store_pooled.iter()) {
                prop_assert_eq!(bits(fresh_v), bits(pooled_v));
            }
        }
    }

    /// The scratch-reusing decorrelation loss matches the scratch-free one
    /// bit for bit — loss value and weight gradient — across steps, shapes
    /// and subsampling configurations.
    #[test]
    fn decorrelation_scratch_is_bit_identical_across_steps(
        cfg in (4usize..40, 2usize..12, 1usize..8, 1usize..5),
        seed in 1u64..1000,
    ) {
        let (n, d, k, steps) = cfg;
        let mut rng = rng_from_seed(seed);
        let rff = Rff::sample(&mut rng, k);
        let cfg_decor = DecorrelationConfig {
            max_features: Some(d.min(6)),
            ..DecorrelationConfig::default()
        };

        let run = |use_scratch: bool| -> Vec<(u64, Vec<u64>)> {
            let mut out = Vec::new();
            let mut g = Graph::new();
            let mut scratch = HsicScratch::new();
            let mut data_rng = rng_from_seed(seed ^ 0xbeef);
            // One RNG for the subsample draws, consumed identically by both
            // variants across steps.
            let mut sub_rng = rng_from_seed(seed ^ 0x50b5);
            for _ in 0..steps {
                g.reset();
                let z = randn(&mut data_rng, n, d);
                let w_init = randn(&mut data_rng, n, 1).map(|v| 1.0 + 0.2 * v.tanh());
                let zc = g.constant_copied(&z);
                let w = g.param_copied(&w_init);
                let loss = if use_scratch {
                    decorrelation_loss_graph_scratch(
                        &mut g, zc, w, &rff, &cfg_decor, &mut sub_rng, &mut scratch,
                    )
                } else {
                    decorrelation_loss_graph(&mut g, zc, w, &rff, &cfg_decor, &mut sub_rng)
                };
                g.backward(loss);
                let grad = g.grad(w).map(bits).unwrap_or_default();
                out.push((g.scalar(loss).to_bits(), grad));
            }
            out
        };

        prop_assert_eq!(run(true), run(false));
    }
}

/// The fused ops (`cos_affine`, `rff_features`, `sumsq`, `matmul_tn`,
/// `block_masked_sumsq`) must reproduce the historical op chains bit for
/// bit, values and gradients, on random inputs.
#[test]
fn fused_ops_match_their_op_chains() {
    let mut rng = rng_from_seed(42);
    for case in 0..20 {
        let n = 2 + case % 7;
        let d = 1 + case % 5;
        let z = randn(&mut rng, n, d);
        let (omega, phi, s) = (0.3 + case as f64 * 0.17, 1.1 - case as f64 * 0.05, 1.25);

        // cos_affine == scale/add_scalar/cos/scale
        let mut ga = Graph::new();
        let za = ga.param_copied(&z);
        let fused = ga.cos_affine(za, omega, phi, s);
        let la = ga.sumsq(fused);
        ga.backward(la);
        let mut gb = Graph::new();
        let zb = gb.param_copied(&z);
        let sc = gb.scale(zb, omega);
        let sh = gb.add_scalar(sc, phi);
        let co = gb.cos(sh);
        let bl = gb.scale(co, s);
        let sq = gb.square(bl);
        let lb = gb.sum(sq);
        gb.backward(lb);
        assert_eq!(ga.scalar(la).to_bits(), gb.scalar(lb).to_bits(), "cos_affine value");
        assert_eq!(bits(ga.grad(za).unwrap()), bits(gb.grad(zb).unwrap()), "cos_affine gradient");

        // rff_features == chained cos_affine + concat_cols
        let coefs: Vec<(f64, f64)> =
            (0..3).map(|i| (omega + i as f64 * 0.4, phi - i as f64 * 0.2)).collect();
        let mut gc = Graph::new();
        let zc = gc.param_copied(&z);
        let f_fused = gc.rff_features(zc, &coefs, s);
        let lc = gc.sumsq(f_fused);
        gc.backward(lc);
        let mut gd = Graph::new();
        let zd = gd.param_copied(&z);
        let mut f_chain = None;
        for &(om, ph) in &coefs {
            let block = gd.cos_affine(zd, om, ph, s);
            f_chain = Some(match f_chain {
                None => block,
                Some(acc) => gd.concat_cols(acc, block),
            });
        }
        let ld = gd.sumsq(f_chain.unwrap());
        gd.backward(ld);
        assert_eq!(gc.scalar(lc).to_bits(), gd.scalar(ld).to_bits(), "rff_features value");
        assert_eq!(bits(gc.grad(zc).unwrap()), bits(gd.grad(zd).unwrap()), "rff_features gradient");

        // ... including when the input has a second, later-recorded consumer
        // (the input's gradient slot is already populated when the fused
        // backward runs, exercising the per-block replay path).
        let mut gm = Graph::new();
        let zm = gm.param_copied(&z);
        let fm = gm.rff_features(zm, &coefs, s);
        let lm1 = gm.sumsq(fm);
        let lm2 = gm.sumsq(zm);
        let lm = gm.add(lm1, lm2);
        gm.backward(lm);
        let mut gn = Graph::new();
        let zn = gn.param_copied(&z);
        let mut f_chain2 = None;
        for &(om, ph) in &coefs {
            let block = gn.cos_affine(zn, om, ph, s);
            f_chain2 = Some(match f_chain2 {
                None => block,
                Some(acc) => gn.concat_cols(acc, block),
            });
        }
        let ln1 = gn.sumsq(f_chain2.unwrap());
        let ln2 = gn.sumsq(zn);
        let ln = gn.add(ln1, ln2);
        gn.backward(ln);
        assert_eq!(
            bits(gm.grad(zm).unwrap()),
            bits(gn.grad(zn).unwrap()),
            "rff_features gradient with a second consumer"
        );

        // matmul_tn == transpose + matmul; block_masked_sumsq == mask chain
        let a = randn(&mut rng, n, d);
        let b = randn(&mut rng, n, d + 1);
        let mut ge = Graph::new();
        let ae = ge.param_copied(&a);
        let be = ge.param_copied(&b);
        let prod = ge.matmul_tn(ae, be);
        let le = ge.sumsq(prod);
        ge.backward(le);
        let mut gf = Graph::new();
        let af = gf.param_copied(&a);
        let bf = gf.param_copied(&b);
        let at = gf.transpose(af);
        let prod2 = gf.matmul(at, bf);
        let sq2 = gf.square(prod2);
        let lf = gf.sum(sq2);
        gf.backward(lf);
        assert_eq!(ge.scalar(le).to_bits(), gf.scalar(lf).to_bits(), "matmul_tn value");
        assert_eq!(bits(ge.grad(ae).unwrap()), bits(gf.grad(af).unwrap()), "matmul_tn da");
        assert_eq!(bits(ge.grad(be).unwrap()), bits(gf.grad(bf).unwrap()), "matmul_tn db");

        let kd = 2 * d;
        let sqm = randn(&mut rng, kd, kd);
        for keep in [false, true] {
            let mut gg = Graph::new();
            let mg = gg.param_copied(&sqm);
            let lg = gg.block_masked_sumsq(mg, d, keep);
            gg.backward(lg);
            let mut gh = Graph::new();
            let mh = gh.param_copied(&sqm);
            let mask =
                Matrix::from_fn(kd, kd, |p, q| if (p % d == q % d) == keep { 1.0 } else { 0.0 });
            let mask_c = gh.constant_copied(&mask);
            let masked = gh.mul(mh, mask_c);
            let sq3 = gh.square(masked);
            let lh = gh.sum(sq3);
            gh.backward(lh);
            assert_eq!(
                gg.scalar(lg).to_bits(),
                gh.scalar(lh).to_bits(),
                "block_masked_sumsq value (keep={keep})"
            );
            assert_eq!(
                bits(gg.grad(mg).unwrap()),
                bits(gh.grad(mh).unwrap()),
                "block_masked_sumsq gradient (keep={keep})"
            );
        }
    }
}
