//! The `.sbrl` persistence battery: golden round trips, byte-surgery and
//! proptest corruption suites, version skew against committed fixtures, and
//! a many-threads hammer on one loaded model.
//!
//! The committed fixtures under `tests/fixtures/` were written by
//! `cargo run --release -p sbrl-core --bin serve -- make-fixtures tests/fixtures`
//! from the recipe in `sbrl_core::persist::fixture`; regenerating them is a
//! deliberate, reviewed act (it re-pins the golden prediction bits).
//!
//! Tests that pin the process-global `NumericsMode`, or that compare two
//! predictions and therefore need the mode stable in between, serialise on
//! [`GLOBAL_KNOBS`] — tests in one binary share the process.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use proptest::prelude::*;
use sbrl_hap::core::persist::{crc32, fixture, FORMAT_VERSION, MIN_SUPPORTED_VERSION};
use sbrl_hap::core::{
    FitReport, FittedModel, InferenceService, ModelRegistry, PersistError, SbrlError, ServeConfig,
};
use sbrl_hap::models::Backbone;
use sbrl_hap::tensor::kernels::NumericsMode;

/// Serialises every test that sets or depends on the process-global
/// numerics mode.
static GLOBAL_KNOBS: Mutex<()> = Mutex::new(());

fn fixture_path(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name)
}

fn golden_bytes() -> Vec<u8> {
    fs::read(fixture_path("golden_v2.sbrl")).expect("committed golden fixture readable")
}

/// Recomputes and rewrites the trailing checksum after byte surgery, so a
/// test reaches the validation *behind* the checksum gate.
fn repatch_crc(bytes: &mut [u8]) {
    let n = bytes.len();
    let fresh = crc32(&bytes[..n - 4]);
    bytes[n - 4..].copy_from_slice(&fresh.to_le_bytes());
}

#[track_caller]
fn expect_persist_err(result: Result<FittedModel<Box<dyn Backbone>>, SbrlError>) -> PersistError {
    match result {
        Err(SbrlError::Persist(e)) => e,
        Err(other) => panic!("expected a Persist error, got: {other}"),
        Ok(_) => panic!("expected a Persist error, got a loaded model"),
    }
}

/// A process-unique scratch directory (created fresh, best-effort cleaned).
fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sbrl_persist_{tag}_{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("scratch dir creatable");
    dir
}

fn assert_bit_identical(
    a: &sbrl_hap::metrics::EffectEstimate,
    b: &sbrl_hap::metrics::EffectEstimate,
    what: &str,
) {
    let pairs = a.y0_hat.iter().zip(&b.y0_hat).chain(a.y1_hat.iter().zip(&b.y1_hat));
    for (i, (x, y)) in pairs.enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}: value {i} differs: {x} vs {y}");
    }
}

// ---------------------------------------------------------------------------
// Round trips
// ---------------------------------------------------------------------------

/// save -> load -> predict is bit-identical in the *ambient* numerics mode,
/// so both `SBRL_NUMERICS` CI legs exercise their own tier here.
#[test]
fn round_trip_is_bit_identical_in_the_ambient_numerics_mode() {
    let _guard = GLOBAL_KNOBS.lock().unwrap_or_else(|p| p.into_inner());
    let fitted = fixture::train_golden().expect("fixture fit succeeds");
    let dir = scratch_dir("round_trip");
    let path = dir.join("model.sbrl");
    fitted.save(&path).expect("save succeeds");
    let loaded = FittedModel::load(&path).expect("load succeeds");

    assert_eq!(loaded.seed(), fitted.seed());
    assert_eq!(loaded.framework(), fitted.framework());
    assert_eq!(loaded.numerics(), fitted.numerics());
    assert_eq!(loaded.method_spec().name(), fitted.method_spec().name());

    let probe = fixture::probe_matrix(fitted.model().export_config().in_dim());
    assert_bit_identical(&fitted.predict(&probe), &loaded.predict(&probe), "round trip");
    let _ = fs::remove_dir_all(&dir);
}

/// The fit provenance — `TrainReport` and the fault-tolerance `FitReport`
/// with its `RecoveryEvent`s — survives the on-disk round trip intact.
#[test]
fn fit_and_recovery_reports_survive_the_on_disk_round_trip() {
    let _guard = GLOBAL_KNOBS.lock().unwrap_or_else(|p| p.into_inner());
    let fitted = fixture::train_second().expect("fixture fit succeeds");
    let dir = scratch_dir("reports");
    let path = dir.join("model.sbrl");
    fitted.save(&path).expect("save succeeds");
    let loaded = FittedModel::load(&path).expect("load succeeds");

    assert_eq!(loaded.report(), fitted.report(), "TrainReport must round-trip");
    assert_eq!(loaded.fit_report(), fitted.fit_report(), "FitReport must round-trip");
    let _ = fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// Golden fixtures and version skew
// ---------------------------------------------------------------------------

fn committed_probe_bits() -> (Vec<u64>, Vec<u64>) {
    let text = fs::read_to_string(fixture_path("golden_expected_bits.txt"))
        .expect("committed bits fixture readable");
    let (mut y0, mut y1) = (Vec::new(), Vec::new());
    for line in text.lines() {
        if let Some(hex) = line.strip_prefix("y0 ") {
            y0.push(u64::from_str_radix(hex.trim(), 16).expect("valid y0 hex"));
        } else if let Some(hex) = line.strip_prefix("y1 ") {
            y1.push(u64::from_str_radix(hex.trim(), 16).expect("valid y1 hex"));
        }
    }
    (y0, y1)
}

/// The committed `golden_v2.sbrl` still predicts the committed bits under
/// the pinned `BitExact` tier — any accidental format or numerics drift
/// breaks this, and fixing it requires deliberately regenerating fixtures.
#[test]
fn golden_v2_fixture_predicts_the_committed_bits() {
    let _guard = GLOBAL_KNOBS.lock().unwrap_or_else(|p| p.into_inner());
    let loaded = FittedModel::load(&fixture_path("golden_v2.sbrl")).expect("golden v2 loads");
    let (y0_expected, y1_expected) = committed_probe_bits();
    assert_eq!(y0_expected.len(), fixture::PROBE_ROWS);
    assert_eq!(y1_expected.len(), fixture::PROBE_ROWS);

    NumericsMode::BitExact.set_global();
    let est = loaded.predict(&fixture::probe_matrix(loaded.model().export_config().in_dim()));
    NumericsMode::from_env().set_global();

    let y0: Vec<u64> = est.y0_hat.iter().map(|v| v.to_bits()).collect();
    let y1: Vec<u64> = est.y1_hat.iter().map(|v| v.to_bits()).collect();
    assert_eq!(y0, y0_expected, "y0 bits drifted from the committed golden fixture");
    assert_eq!(y1, y1_expected, "y1 bits drifted from the committed golden fixture");
}

/// Version skew, old reader side: a committed format-v1 artifact (no `FITR`
/// section) still loads, with the fault-tolerance provenance defaulted, and
/// predicts the same bits as its v2 sibling (same weights).
#[test]
fn golden_v1_fixture_loads_with_defaulted_fit_report_and_identical_bits() {
    let _guard = GLOBAL_KNOBS.lock().unwrap_or_else(|p| p.into_inner());
    let v1 = FittedModel::load(&fixture_path("golden_v1.sbrl")).expect("golden v1 loads");
    let v2 = FittedModel::load(&fixture_path("golden_v2.sbrl")).expect("golden v2 loads");
    assert_eq!(v1.fit_report(), &FitReport::default());

    NumericsMode::BitExact.set_global();
    let probe = fixture::probe_matrix(v1.model().export_config().in_dim());
    let est1 = v1.predict(&probe);
    let est2 = v2.predict(&probe);
    NumericsMode::from_env().set_global();
    assert_bit_identical(&est1, &est2, "v1 vs v2 golden");
}

/// Version skew, future side: an artifact stamped with a not-yet-invented
/// format version is rejected with a typed error, never guessed at.
#[test]
fn future_format_versions_are_rejected_not_guessed() {
    let mut bytes = golden_bytes();
    bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
    repatch_crc(&mut bytes);
    let err = expect_persist_err(FittedModel::from_sbrl_bytes(&bytes));
    assert_eq!(
        err,
        PersistError::UnsupportedVersion {
            found: 99,
            min: MIN_SUPPORTED_VERSION,
            max: FORMAT_VERSION,
        }
    );
}

// ---------------------------------------------------------------------------
// Byte surgery: every corruption mode yields its typed error
// ---------------------------------------------------------------------------

#[test]
fn a_wrong_magic_is_reported_as_bad_magic() {
    let mut bytes = golden_bytes();
    bytes[0] ^= 0xff;
    let err = expect_persist_err(FittedModel::from_sbrl_bytes(&bytes));
    assert!(matches!(err, PersistError::BadMagic { .. }), "got: {err}");
}

#[test]
fn a_flipped_payload_byte_fails_the_checksum() {
    let mut bytes = golden_bytes();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    let err = expect_persist_err(FittedModel::from_sbrl_bytes(&bytes));
    assert!(matches!(err, PersistError::ChecksumMismatch { .. }), "got: {err}");
}

/// Corrupting a byte *and* re-stamping the checksum reaches the structural
/// validation behind the CRC gate: a provenance byte flipped to another
/// valid value must be caught by the cross-check, not silently accepted.
#[test]
fn a_relabelled_backbone_kind_is_a_provenance_conflict() {
    let mut bytes = golden_bytes();
    // Absolute offset 24 = first META payload byte = the backbone kind.
    bytes[24] = (bytes[24] + 1) % 3;
    repatch_crc(&mut bytes);
    let err = expect_persist_err(FittedModel::from_sbrl_bytes(&bytes));
    assert!(
        matches!(err, PersistError::ProvenanceConflict { .. } | PersistError::Malformed { .. }),
        "got: {err}"
    );
}

#[test]
fn truncation_at_structural_boundaries_is_a_typed_error() {
    let bytes = golden_bytes();
    // Before the magic, inside it, inside the version word, inside the first
    // section header, mid-payload, and just before the checksum.
    for cut in [0, 5, 10, 20, bytes.len() / 2, bytes.len() - 3] {
        let err = expect_persist_err(FittedModel::from_sbrl_bytes(&bytes[..cut]));
        assert!(
            matches!(
                err,
                PersistError::Truncated { .. }
                    | PersistError::ChecksumMismatch { .. }
                    | PersistError::BadMagic { .. }
            ),
            "cut at {cut}: got {err}"
        );
    }
}

// ---------------------------------------------------------------------------
// Proptest corruption suite: >= 128 mutated artifacts, typed errors only
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any single corrupted byte yields `Err(SbrlError::Persist(_))` —
    /// never a panic, never a silently-wrong model.
    #[test]
    fn corrupting_any_byte_is_a_typed_error(pos in 0usize..1_000_000, val in 0usize..1_000_000) {
        let mut bytes = golden_bytes();
        let pos = pos % bytes.len();
        let flip = (val % 255) as u8 + 1; // never a no-op xor
        bytes[pos] ^= flip;
        match FittedModel::from_sbrl_bytes(&bytes) {
            Err(SbrlError::Persist(_)) => {}
            Err(other) => prop_assert!(false, "pos {}: non-persist error {}", pos, other),
            Ok(_) => prop_assert!(false, "pos {} xor {:#04x}: corrupt artifact loaded", pos, flip),
        }
    }

    /// Any strict prefix of a valid artifact yields a typed error — length
    /// framing means truncation can never read past the buffer or panic.
    #[test]
    fn truncating_anywhere_is_a_typed_error(cut in 0usize..1_000_000) {
        let bytes = golden_bytes();
        let cut = cut % bytes.len();
        match FittedModel::from_sbrl_bytes(&bytes[..cut]) {
            Err(SbrlError::Persist(_)) => {}
            Err(other) => prop_assert!(false, "cut {}: non-persist error {}", cut, other),
            Ok(_) => prop_assert!(false, "cut {}: truncated artifact loaded", cut),
        }
    }
}

// ---------------------------------------------------------------------------
// Registry startup: fail fast, no partial registry
// ---------------------------------------------------------------------------

#[test]
fn the_committed_registry_fixture_loads_and_resolves_names() {
    let registry = ModelRegistry::load_dir(&fixture_path("registry")).expect("fixture registry");
    assert_eq!(registry.len(), 2);
    let names = registry.names();
    assert!(names.iter().any(|n| n == "CFR+SBRL-HAP"), "names: {names:?}");
    assert!(names.iter().any(|n| n == "TARNet"), "names: {names:?}");
    // Lookup is case-insensitive; misses are typed and name the known set.
    assert!(registry.get("cfr+sbrl-hap").is_some());
    match registry.require("BART") {
        Err(SbrlError::Persist(PersistError::UnknownModel { name, known })) => {
            assert_eq!(name, "BART");
            assert_eq!(known.len(), 2);
        }
        other => panic!("expected UnknownModel, got: {other:?}"),
    }
}

#[test]
fn a_corrupt_artifact_fails_registry_startup() {
    let dir = scratch_dir("corrupt_registry");
    fs::copy(fixture_path("registry/cfr-sbrl-hap.sbrl"), dir.join("good.sbrl")).unwrap();
    fs::write(dir.join("rotten.sbrl"), b"not an sbrl artifact").unwrap();
    match ModelRegistry::load_dir(&dir) {
        Err(SbrlError::Persist(e)) => {
            assert!(matches!(e, PersistError::BadMagic { .. }), "got: {e}")
        }
        other => panic!("expected a Persist error, got: {other:?}"),
    }
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn duplicate_method_names_fail_registry_startup() {
    let dir = scratch_dir("dup_registry");
    fs::copy(fixture_path("registry/cfr-sbrl-hap.sbrl"), dir.join("a.sbrl")).unwrap();
    fs::copy(fixture_path("registry/cfr-sbrl-hap.sbrl"), dir.join("b.sbrl")).unwrap();
    match ModelRegistry::load_dir(&dir) {
        Err(SbrlError::Persist(PersistError::DuplicateModel { name, .. })) => {
            assert_eq!(name, "CFR+SBRL-HAP");
        }
        other => panic!("expected DuplicateModel, got: {other:?}"),
    }
    let _ = fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// Concurrency: many threads hammer one loaded model
// ---------------------------------------------------------------------------

/// 8 client threads x 25 requests against one loaded model through the
/// batching service: every response is bit-identical to a direct,
/// single-threaded `predict` on the same loaded artifact.
#[test]
fn many_threads_hammer_one_loaded_model_bit_identically() {
    let _guard = GLOBAL_KNOBS.lock().unwrap_or_else(|p| p.into_inner());
    let registry = ModelRegistry::load_dir(&fixture_path("registry")).expect("fixture registry");
    let name = "CFR+SBRL-HAP";
    let direct = registry.require(name).expect("golden model present");
    let probe = fixture::probe_matrix(direct.model().export_config().in_dim());
    let baseline = direct.predict(&probe);

    let service = InferenceService::start(registry, ServeConfig::default()).expect("service boots");
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for _client in 0..8 {
            let service = &service;
            let probe = &probe;
            let baseline = &baseline;
            handles.push(scope.spawn(move || {
                for _req in 0..25 {
                    let est = service.predict(name, probe.clone()).expect("served predict");
                    assert_bit_identical(&est, baseline, "served vs direct");
                }
            }));
        }
        for handle in handles {
            handle.join().expect("client thread");
        }
    });
}
