//! The socket serving battery: the wire protocol round-trips bit-for-bit
//! over real loopback TCP, a hammering multi-client load gets only correct
//! answers or typed errors, malformed/corrupted/truncated frames surface as
//! typed `WireError`s (proptest fuzz — never a panic), health frames report
//! readiness, and graceful drain answers everything it accepted.
//!
//! The served models come from the committed fixture registry under
//! `tests/fixtures/registry/` (see `serve make-fixtures`).

use std::io::Write as _;
use std::net::TcpStream;
use std::path::Path;
use std::time::Duration;

use proptest::prelude::*;
use sbrl_hap::core::wire::{
    decode_message, encode_message, read_message, Message, MAX_FRAME_PAYLOAD, WIRE_MAGIC,
};
use sbrl_hap::core::{
    ClientConfig, ModelRegistry, SbrlError, ServeClient, ServeConfig, SocketServer, WireError,
};
use sbrl_hap::tensor::Matrix;

fn registry() -> ModelRegistry {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/registry");
    ModelRegistry::load_dir(&dir).expect("committed fixture registry loads")
}

fn bind_server(cfg: ServeConfig) -> SocketServer {
    SocketServer::bind(registry(), cfg, "127.0.0.1:0").expect("loopback bind")
}

/// Deterministic covariates for one request, keyed by `salt`.
fn probe(rows: usize, dim: usize, salt: u64) -> Matrix {
    let mut state = salt.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
    let mut data = Vec::with_capacity(rows * dim);
    for _ in 0..rows * dim {
        state =
            state.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1_442_695_040_888_963_407);
        data.push(((state >> 33) % 4001) as f64 / 1000.0 - 2.0);
    }
    Matrix::from_vec(rows, dim, data)
}

fn model_dim(server: &SocketServer, name: &str) -> usize {
    server
        .service()
        .registry()
        .require(name)
        .expect("model present")
        .model()
        .export_config()
        .in_dim()
}

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// A client-side config with a bounded deadline so no test can hang: every
/// call must resolve (Ok or typed Err) well inside the harness timeout.
fn bounded_client() -> ClientConfig {
    ClientConfig { deadline: Some(Duration::from_secs(20)), ..ClientConfig::default() }
}

// ---------------------------------------------------------------------------
// Loopback round trips
// ---------------------------------------------------------------------------

/// Every model's answer over the socket is bit-identical to the in-process
/// answer for the same covariates: the wire hop must not cost a single bit.
#[test]
fn loopback_predictions_are_bit_identical_to_in_process() {
    let server = bind_server(ServeConfig::default());
    let mut client = ServeClient::connect(server.local_addr(), bounded_client());
    for (i, name) in server.service().registry().names().iter().enumerate() {
        let x = probe(5, model_dim(&server, name), i as u64);
        let over_socket = client.predict(name, &x).expect("socket predict");
        let in_process = server.service().predict(name, x).expect("in-process predict");
        assert_eq!(bits(&over_socket.y0_hat), bits(&in_process.y0_hat), "{name} y0");
        assert_eq!(bits(&over_socket.y1_hat), bits(&in_process.y1_hat), "{name} y1");
    }
    server.shutdown();
}

/// A health probe over the wire reports readiness, queue shape, and the
/// loaded model names.
#[test]
fn health_frame_reports_readiness_and_models() {
    let server = bind_server(ServeConfig { queue_max: 7, ..ServeConfig::default() });
    let mut client = ServeClient::connect(server.local_addr(), bounded_client());
    let report = client.health().expect("health frame");
    assert!(report.ready);
    assert_eq!(report.queue_max, 7);
    let mut names = server.service().registry().names();
    let mut reported = report.models.clone();
    names.sort();
    reported.sort();
    assert_eq!(reported, names);
    server.shutdown();
}

/// Remote failures stay typed: an unknown model name comes back as the same
/// `SbrlError::Persist(UnknownModel)` shape the in-process path returns,
/// carrying the list of known names.
#[test]
fn unknown_model_over_the_socket_is_a_typed_error() {
    let server = bind_server(ServeConfig::default());
    let mut client = ServeClient::connect(server.local_addr(), bounded_client());
    let err = client.predict("no-such-model", &probe(2, 4, 0)).expect_err("must fail");
    match err {
        SbrlError::Persist(e) => {
            let msg = e.to_string();
            assert!(msg.contains("no-such-model"), "message: {msg}");
        }
        other => panic!("expected a typed Persist error, got: {other}"),
    }
    // The connection survives a typed failure: the next request succeeds.
    let names = server.service().registry().names();
    let name = names.first().expect("non-empty registry");
    let x = probe(2, model_dim(&server, name), 9);
    client.predict(name, &x).expect("connection still serviceable");
    server.shutdown();
}

/// Concurrent clients hammering one server each get every answer
/// bit-identical to the in-process baseline — no cross-talk between
/// interleaved frames, batches, or connections.
#[test]
fn multi_client_hammer_stays_bit_identical() {
    let clients = 4;
    let per_client = 8;
    let server = bind_server(ServeConfig { batch_max: 3, ..ServeConfig::default() });
    let names = server.service().registry().names();
    let dims: Vec<usize> = names.iter().map(|n| model_dim(&server, n)).collect();

    // In-process baselines, one per (client, request) pair.
    let mut expected = Vec::new();
    for c in 0..clients {
        for r in 0..per_client {
            let which = (c + r) % names.len();
            let x = probe(3, dims[which], (c * 1000 + r) as u64);
            let est = server.service().predict(&names[which], x).expect("baseline");
            expected.push((c, r, bits(&est.y0_hat), bits(&est.y1_hat)));
        }
    }

    let addr = server.local_addr();
    let results: Vec<(usize, usize, Vec<u64>, Vec<u64>)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let names = &names;
                let dims = &dims;
                s.spawn(move || {
                    let mut conn = ServeClient::connect(addr, bounded_client());
                    let mut out = Vec::with_capacity(per_client);
                    for r in 0..per_client {
                        let which = (c + r) % names.len();
                        let x = probe(3, dims[which], (c * 1000 + r) as u64);
                        let est = conn.predict(&names[which], &x).expect("hammer predict");
                        out.push((c, r, bits(&est.y0_hat), bits(&est.y1_hat)));
                    }
                    out
                })
            })
            .collect();
        handles.into_iter().flat_map(|h| h.join().expect("client thread")).collect()
    });

    for got in &results {
        let want =
            expected.iter().find(|(c, r, ..)| (*c, *r) == (got.0, got.1)).expect("baseline exists");
        assert_eq!(got.2, want.2, "client {} request {} y0", got.0, got.1);
        assert_eq!(got.3, want.3, "client {} request {} y1", got.0, got.1);
    }
    assert_eq!(results.len(), clients * per_client);
    server.shutdown();
}

// ---------------------------------------------------------------------------
// Degradation: malformed frames, drain, closed servers
// ---------------------------------------------------------------------------

/// A raw peer writing garbage gets a typed `Failure` frame back (or a clean
/// close) — the server neither hangs nor panics on attacker-shaped bytes.
#[test]
fn garbage_bytes_get_a_typed_failure_frame_and_a_close() {
    let server = bind_server(ServeConfig::default());
    let mut raw = TcpStream::connect(server.local_addr()).expect("raw connect");
    raw.set_read_timeout(Some(Duration::from_secs(10))).expect("timeout");
    raw.write_all(&[0xFF; 32]).expect("write garbage");
    match read_message(&mut raw) {
        Ok(Message::Failure(e)) => {
            let msg = e.to_string();
            assert!(msg.contains("bad frame magic"), "failure message: {msg}");
        }
        Ok(other) => panic!("expected a bad-magic failure frame, got: {other:?}"),
        // A clean close before the reply is also an acceptable degradation.
        Err(WireError::Truncated { .. } | WireError::Io { .. }) => {}
        Err(other) => panic!("unexpected wire error: {other}"),
    }
    // The server is still healthy for well-formed peers afterwards.
    let mut client = ServeClient::connect(server.local_addr(), bounded_client());
    assert!(client.health().expect("health after garbage peer").ready);
    server.shutdown();
}

/// Drain answers the world: after `shutdown()`, the listener is gone and a
/// fresh client gets a typed connect error, not a hang.
#[test]
fn shutdown_drains_and_then_refuses_new_connections() {
    let server = bind_server(ServeConfig::default());
    let addr = server.local_addr();
    let mut client = ServeClient::connect(addr, bounded_client());
    let names = server.service().registry().names();
    let name = names.first().expect("non-empty registry");
    let x = probe(2, model_dim(&server, name), 3);
    client.predict(name, &x).expect("predict before drain");

    server.shutdown();

    let mut fresh = ServeClient::connect(
        addr,
        ClientConfig { retries: 0, deadline: Some(Duration::from_secs(5)), ..bounded_client() },
    );
    match fresh.predict(name, &x) {
        Err(SbrlError::Wire(_)) | Err(SbrlError::TimedOut { .. }) => {}
        Err(other) => panic!("expected a typed wire/timeout error, got: {other}"),
        Ok(_) => panic!("a drained server must not answer new requests"),
    }
}

/// A tiny client-side deadline fails fast with `SbrlError::TimedOut` when
/// nothing is listening — the retry/backoff loop respects the budget.
#[test]
fn client_deadline_bounds_retries_against_a_dead_address() {
    // Bind-then-drop to get a loopback port that is currently closed.
    let port = {
        let l = std::net::TcpListener::bind("127.0.0.1:0").expect("probe bind");
        l.local_addr().expect("addr").port()
    };
    let addr = std::net::SocketAddr::from(([127, 0, 0, 1], port));
    let cfg = ClientConfig {
        deadline: Some(Duration::from_millis(200)),
        retries: 50,
        ..ClientConfig::default()
    };
    let started = std::time::Instant::now();
    let mut client = ServeClient::connect(addr, cfg);
    let err = client.predict("anything", &probe(1, 2, 0)).expect_err("must fail");
    assert!(
        matches!(err, SbrlError::TimedOut { .. } | SbrlError::Wire(_)),
        "expected timeout/wire error, got: {err}"
    );
    assert!(started.elapsed() < Duration::from_secs(10), "the deadline must bound the retry loop");
}

// ---------------------------------------------------------------------------
// Proptest fuzz of the frame decoder
// ---------------------------------------------------------------------------

fn sample_frame() -> Vec<u8> {
    let msg = Message::Predict { model: "CFR+SBRL-HAP".to_string(), x: probe(3, 4, 42) };
    encode_message(&msg).expect("encodes")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Flipping any byte of a valid frame yields `Ok` (the flip missed
    /// nothing the decoder checks — impossible here thanks to the CRC) or a
    /// typed `WireError`; never a panic.
    #[test]
    fn corrupting_any_frame_byte_is_a_typed_wire_error(pos in 0usize..1_000_000, val in 0usize..1_000_000) {
        let mut bytes = sample_frame();
        let pos = pos % bytes.len();
        let flip = (val % 255) as u8 + 1; // never a no-op xor
        bytes[pos] ^= flip;
        match decode_message(&bytes) {
            Err(_) => {}
            Ok(msg) => panic!("a corrupted frame decoded cleanly: {msg:?}"),
        }
    }

    /// Truncating a valid frame at any point is a typed error, never a
    /// panic or an out-of-bounds read.
    #[test]
    fn truncating_a_frame_is_a_typed_wire_error(keep in 0usize..1_000_000) {
        let bytes = sample_frame();
        let keep = keep % bytes.len(); // strictly shorter than the frame
        prop_assert!(decode_message(&bytes[..keep]).is_err());
    }

    /// Arbitrary bytes — attacker-shaped input with no structure at all —
    /// decode to a typed error without panicking or allocating absurdly.
    #[test]
    fn arbitrary_bytes_never_panic_the_decoder(bytes in proptest::collection::vec(0u8..=255u8, 0..64)) {
        let _ = decode_message(&bytes);
    }

    /// A frame whose header advertises an oversized payload is rejected by
    /// the length gate before any allocation happens.
    #[test]
    fn oversized_length_headers_are_rejected(extra in 1u64..1_000_000) {
        let len = (MAX_FRAME_PAYLOAD as u64 + extra).min(u32::MAX as u64) as u32;
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&WIRE_MAGIC);
        bytes.push(1); // version
        bytes.push(1); // kind: predict
        bytes.extend_from_slice(&len.to_le_bytes());
        match decode_message(&bytes) {
            Err(WireError::FrameTooLarge { .. } | WireError::Truncated { .. }) => {}
            other => panic!("expected FrameTooLarge/Truncated, got: {other:?}"),
        }
    }
}
