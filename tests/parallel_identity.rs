//! Bit-identity guarantees of the parallel kernel layer: for random shapes,
//! data, and worker counts, every sharded kernel (blocked GEMM, pairwise
//! distances, HSIC matrices, plain IPMs) must reproduce its serial output
//! bit for bit — in **both** numerics tiers, since the reduction trees of
//! `NumericsMode::Fast` depend only on operand shapes — and
//! `Parallelism::Serial` under the default `NumericsMode::BitExact` must
//! reproduce the exact predictions recorded before the kernel layer existed
//! (PR 2 behaviour).

use proptest::prelude::*;
use sbrl_hap::core::{Estimator, SbrlConfig, TrainConfig};
use sbrl_hap::data::{SyntheticConfig, SyntheticProcess};
use sbrl_hap::models::CfrConfig;
use sbrl_hap::stats::{
    ipm_weighted_plain_with, pairwise_hsic_matrix_with, pairwise_sq_dists_with, rbf_kernel_with,
    IpmKind, Rff,
};
use sbrl_hap::tensor::kernels::{gemm, gemm_nt, gemm_tn, NumericsMode, Parallelism};
use sbrl_hap::tensor::rng::{randn, rng_from_seed};
use sbrl_hap::tensor::Matrix;

fn bits(m: &Matrix) -> Vec<u64> {
    m.as_slice().iter().map(|v| v.to_bits()).collect()
}

fn random_matrix(seed: u64, rows: usize, cols: usize) -> Matrix {
    let mut rng = rng_from_seed(seed);
    randn(&mut rng, rows, cols)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn parallel_gemm_is_bit_identical_to_serial(
        dims in (1usize..48, 1usize..48, 1usize..48, 2usize..12),
        seed in 0u64..1_000,
    ) {
        let (m, k, n, threads) = dims;
        let a = random_matrix(seed, m, k);
        let b = random_matrix(seed ^ 0xabcd, k, n);
        let serial = gemm(&a, &b, Parallelism::Serial);
        let parallel = gemm(&a, &b, Parallelism::Threads(threads));
        prop_assert_eq!(bits(&serial), bits(&parallel));
    }

    #[test]
    fn parallel_fused_transpose_gemms_are_bit_identical_to_serial(
        dims in (1usize..40, 1usize..40, 1usize..40, 2usize..12),
        seed in 0u64..1_000,
    ) {
        let (m, k, n, threads) = dims;
        let a = random_matrix(seed, m, k);
        let b_nt = random_matrix(seed ^ 1, n, k); // a * b_nt^T
        let b_tn = random_matrix(seed ^ 2, m, n); // a^T * b_tn
        let par = Parallelism::Threads(threads);
        prop_assert_eq!(
            bits(&gemm_nt(&a, &b_nt, Parallelism::Serial)),
            bits(&gemm_nt(&a, &b_nt, par))
        );
        prop_assert_eq!(
            bits(&gemm_tn(&a, &b_tn, Parallelism::Serial)),
            bits(&gemm_tn(&a, &b_tn, par))
        );
    }

    #[test]
    fn parallel_pairwise_kernels_are_bit_identical_to_serial(
        dims in (1usize..64, 1usize..64, 1usize..6, 2usize..12),
        seed in 0u64..1_000,
    ) {
        let (n, m, d, threads) = dims;
        let a = random_matrix(seed, n, d);
        let b = random_matrix(seed ^ 7, m, d);
        let par = Parallelism::Threads(threads);
        for mode in [NumericsMode::BitExact, NumericsMode::Fast] {
            prop_assert_eq!(
                bits(&pairwise_sq_dists_with(&a, &b, Parallelism::Serial, mode)),
                bits(&pairwise_sq_dists_with(&a, &b, par, mode))
            );
            prop_assert_eq!(
                bits(&rbf_kernel_with(&a, &b, 1.0, Parallelism::Serial, mode)),
                bits(&rbf_kernel_with(&a, &b, 1.0, par, mode))
            );
        }
    }

    #[test]
    fn parallel_hsic_matrix_is_bit_identical_to_serial(
        dims in (2usize..80, 1usize..8, 2usize..12),
        seed in 0u64..1_000,
    ) {
        let (n, d, threads) = dims;
        let z = random_matrix(seed, n, d);
        let mut rng = rng_from_seed(seed ^ 99);
        let rff = Rff::sample(&mut rng, 5);
        let weights: Vec<f64> = (0..n).map(|i| 0.5 + (i % 7) as f64 * 0.25).collect();
        for mode in [NumericsMode::BitExact, NumericsMode::Fast] {
            for w in [None, Some(weights.as_slice())] {
                let serial = pairwise_hsic_matrix_with(&z, &rff, w, Parallelism::Serial, mode);
                let parallel =
                    pairwise_hsic_matrix_with(&z, &rff, w, Parallelism::Threads(threads), mode);
                prop_assert_eq!(bits(&serial), bits(&parallel));
            }
        }
    }

    #[test]
    fn parallel_plain_ipms_are_bit_identical_to_serial(
        dims in (1usize..48, 1usize..48, 1usize..5, 2usize..12),
        seed in 0u64..1_000,
    ) {
        let (nt, nc, d, threads) = dims;
        let phi_t = random_matrix(seed, nt, d);
        let phi_c = random_matrix(seed ^ 3, nc, d);
        let par = Parallelism::Threads(threads);
        for mode in [NumericsMode::BitExact, NumericsMode::Fast] {
            for kind in [
                IpmKind::MmdLin,
                IpmKind::MmdRbf { sigma: 1.0 },
                IpmKind::MmdRbf { sigma: -1.0 }, // median heuristic path
                IpmKind::Wasserstein { lambda: 10.0, iterations: 5 },
            ] {
                let serial = ipm_weighted_plain_with(
                    kind, &phi_t, &phi_c, None, None, Parallelism::Serial, mode,
                );
                let parallel =
                    ipm_weighted_plain_with(kind, &phi_t, &phi_c, None, None, par, mode);
                prop_assert!(
                    serial.to_bits() == parallel.to_bits(),
                    "{kind:?} ({mode}): {serial} vs {parallel}"
                );
            }
        }
    }
}

/// `Parallelism::Serial` must reproduce, bit for bit, the predictions this
/// exact fit produced *before* the blocked kernel layer existed (recorded
/// from the PR 2 tree); and the parallel path must match serial on the same
/// fit. Guards the "serial mode reproduces historical output" contract.
#[test]
fn serial_mode_reproduces_recorded_pr2_predictions() {
    // (row index, y0_hat bits, y1_hat bits) recorded from the PR 2 tree with
    // the single-threaded i-k-j matmul, for the fit below.
    const GOLDEN: [(usize, u64, u64); 8] = [
        (0, 0x3fb335b8902f3717, 0x3fd9c77cb67d6597),
        (1, 0x3fc46f752ffbdabf, 0x3fd020917e0eb110),
        (2, 0x3fe4ad37aac58021, 0x3fe5e7384c435e3f),
        (50, 0x3fcebbff4964072f, 0x3fe85707d6af4085),
        (100, 0x3fc4e36d7bbfdbd2, 0x3fe668a2fbad9295),
        (150, 0x3fc5937ffd91a327, 0x3fe5ea4a8e2c64f7),
        (200, 0x3fe23a2d1fbae5e3, 0x3fd677d5e577e2de),
        (249, 0x3fc0fc4d58cea6d8, 0x3fe83252b9c0317a),
    ];

    let process = SyntheticProcess::new(SyntheticConfig::syn_8_8_8_2(), 21);
    let train_data = process.generate(2.5, 300, 0);
    let val_data = process.generate(2.5, 120, 1);
    let test_data = process.generate(-2.5, 250, 2);
    let cfg = TrainConfig {
        iterations: 60,
        batch_size: 64,
        eval_every: 20,
        patience: 40,
        ..TrainConfig::default()
    };
    let fit = |par: Parallelism| {
        // Pin the default tier explicitly: the golden bits are a BitExact
        // contract and must hold even when the suite runs with
        // SBRL_NUMERICS=fast in the environment.
        NumericsMode::BitExact.set_global();
        par.set_global();
        let fitted = Estimator::builder()
            .backbone(CfrConfig::small(train_data.dim()))
            .sbrl(SbrlConfig::sbrl_hap(1.0, 1.0, 0.1, 0.01))
            .train(cfg)
            .seed(11)
            .fit(&train_data, &val_data)
            .expect("training succeeds");
        fitted.predict(&test_data.x)
    };

    let serial = fit(Parallelism::Serial);
    for (i, y0_bits, y1_bits) in GOLDEN {
        assert_eq!(serial.y0_hat[i].to_bits(), y0_bits, "y0[{i}] drifted from PR 2");
        assert_eq!(serial.y1_hat[i].to_bits(), y1_bits, "y1[{i}] drifted from PR 2");
    }

    // The parallel path trains to bit-identical predictions.
    let parallel = fit(Parallelism::Threads(4));
    Parallelism::from_env().set_global();
    NumericsMode::from_env().set_global();
    assert_eq!(
        serial.y0_hat.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        parallel.y0_hat.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
    );
    assert_eq!(
        serial.y1_hat.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        parallel.y1_hat.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
    );
}
