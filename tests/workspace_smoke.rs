//! Workspace-wiring smoke tests: the meta-crate's re-exports must resolve to
//! the member crates, and the public API must support a minimal train/eval
//! round-trip under a tiny budget. This is the first suite to fail if a crate
//! manifest, re-export, or crate boundary is mis-wired.

use sbrl_hap::core::{Estimator, TrainConfig};
use sbrl_hap::data::{SyntheticConfig, SyntheticProcess};
use sbrl_hap::models::{BackboneKind, TarnetConfig};

/// Every re-exported module path must resolve to a usable item. Touching one
/// item per module keeps this a compile-time wiring check, not a logic test.
#[test]
fn meta_crate_re_exports_resolve() {
    // tensor
    let m = sbrl_hap::tensor::Matrix::zeros(2, 3);
    assert_eq!(m.shape(), (2, 3));
    // nn
    let _ = std::any::type_name::<sbrl_hap::nn::Mlp>();
    // stats
    let _ = sbrl_hap::stats::IpmKind::MmdLin;
    // data
    let _ = SyntheticConfig::syn_8_8_8_2();
    let _ = sbrl_hap::data::DatasetRegistry::builtin();
    // models
    let _ = TarnetConfig::small(4);
    // core
    let _ = sbrl_hap::core::SbrlConfig::vanilla();
    let _: sbrl_hap::core::MethodSpec = "CFR+SBRL-HAP".parse().expect("grid method name");
    // metrics
    assert_eq!(sbrl_hap::metrics::pehe(&[1.0, 2.0], &[1.0, 2.0]), 0.0);
    // experiments
    let _ = std::any::type_name::<sbrl_hap::experiments::Scale>();
}

/// A full generate → fit → evaluate round-trip through the public builder
/// API, sized to finish in a couple of seconds in debug builds.
#[test]
fn minimal_train_eval_round_trip() {
    let process = SyntheticProcess::new(SyntheticConfig::syn_8_8_8_2(), 5);
    let train_data = process.generate(2.5, 200, 0);
    let val_data = process.generate(2.5, 80, 1);
    let test_data = process.generate(-1.5, 120, 2);

    let budget = TrainConfig {
        iterations: 30,
        batch_size: 32,
        eval_every: 10,
        patience: 30,
        ..TrainConfig::default()
    };
    let fitted = Estimator::builder()
        .backbone_kind(BackboneKind::Tarnet)
        .train(budget)
        .seed(5)
        .fit(&train_data, &val_data)
        .expect("tiny training budget succeeds");

    let eval = fitted.evaluate(&test_data).expect("synthetic data has oracle effects");
    assert!(eval.pehe.is_finite(), "PEHE must be finite, got {}", eval.pehe);
    assert!(eval.pehe >= 0.0, "PEHE is an RMS and cannot be negative");
}
