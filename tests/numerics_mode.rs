//! Differential-testing suite for the opt-in `NumericsMode::Fast` tier.
//!
//! `Fast` swaps the kernel layer's bit-exact accumulation chains for FMA
//! microkernels and multi-accumulator / pairwise-tree reductions. It is
//! **not** bit-identical to `BitExact`, so its contract is different and is
//! pinned here:
//!
//! 1. every Fast statistic stays within a documented relative-error bound of
//!    its BitExact value (`FAST_*_TOL` constants below, quoted in
//!    `docs/PERFORMANCE.md`), across random shapes and worker counts;
//! 2. Fast is *deterministic*: its reduction trees depend only on operand
//!    shapes, so results are bit-identical run-to-run and across worker
//!    counts (stronger than the fixed-`SBRL_THREADS` requirement);
//! 3. an end-to-end fit under the global Fast knob trains to predictions
//!    that agree with the BitExact fit within tolerance, and is itself
//!    bit-reproducible run-to-run.
//!
//! Tests that mutate the process-global knobs serialise on [`GLOBAL_KNOBS`]
//! (tests in one binary share the process); the differential proptests use
//! the explicit `*_mode` / `*_with` APIs and never touch the globals.

use std::sync::Mutex;

use proptest::prelude::*;
use sbrl_hap::core::{Estimator, SbrlConfig, TrainConfig};
use sbrl_hap::data::{SyntheticConfig, SyntheticProcess};
use sbrl_hap::models::CfrConfig;
use sbrl_hap::stats::{
    hsic_biased_with, ipm_weighted_plain_with, pairwise_hsic_matrix_with, IpmKind, Rff,
};
use sbrl_hap::tensor::kernels::{
    gemm_mode, gemm_nt_mode, gemm_tn_mode, reduce_dot, reduce_sum, NumericsMode, Parallelism,
};
use sbrl_hap::tensor::rng::{randn, rng_from_seed};
use sbrl_hap::tensor::Matrix;

/// Serialises every test that sets the process-global `Parallelism` /
/// `NumericsMode` knobs.
static GLOBAL_KNOBS: Mutex<()> = Mutex::new(());

/// Per-element GEMM bound: `|fast - exact| <= tol_per_k * k * (1 + |exact|)`
/// for an inner dimension `k` (each output element is one length-`k` chain).
const FAST_GEMM_TOL_PER_K: f64 = 1e-14;

/// Relative-error bound for the HSIC statistics (biased trace and RFF
/// pairwise matrix), `|fast - exact| <= tol * (1 + |exact|)`.
const FAST_HSIC_TOL: f64 = 1e-10;

/// Relative-error bound for the plain IPMs. Sinkhorn iterates a fixed point
/// (divisions compound the reduction error), so the bound is looser than
/// the single-reduction statistics.
const FAST_IPM_TOL: f64 = 1e-8;

/// Maximum absolute prediction divergence of a short Fast fit from the
/// BitExact fit of the same seed and data (outcome scale is O(1)).
const FAST_FIT_TOL: f64 = 5e-2;

fn random_matrix(seed: u64, rows: usize, cols: usize) -> Matrix {
    let mut rng = rng_from_seed(seed);
    randn(&mut rng, rows, cols)
}

fn bits(m: &Matrix) -> Vec<u64> {
    m.as_slice().iter().map(|v| v.to_bits()).collect()
}

#[track_caller]
fn assert_matrix_close(exact: &Matrix, fast: &Matrix, tol: f64, what: &str) {
    assert_eq!(exact.shape(), fast.shape(), "{what}: shape mismatch");
    for (i, (&e, &f)) in exact.as_slice().iter().zip(fast.as_slice()).enumerate() {
        let err = (f - e).abs();
        assert!(
            err <= tol * (1.0 + e.abs()),
            "{what}: element {i} exact {e}, fast {f}, err {err} > tol {tol}"
        );
    }
}

#[track_caller]
fn assert_scalar_close(exact: f64, fast: f64, tol: f64, what: &str) {
    let err = (fast - exact).abs();
    assert!(
        err <= tol * (1.0 + exact.abs()),
        "{what}: exact {exact}, fast {fast}, err {err} > tol {tol}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Fast GEMM (all three transpose layouts) stays within the documented
    /// per-element bound of BitExact, at every worker count, and its bits do
    /// not depend on the worker count.
    #[test]
    fn fast_gemm_matches_bitexact_within_bounds(
        dims in (1usize..48, 1usize..48, 1usize..48, 1usize..9),
        seed in 0u64..1_000,
    ) {
        let (m, k, n, threads) = dims;
        let par = Parallelism::Threads(threads);
        let tol = FAST_GEMM_TOL_PER_K * k as f64;

        let a = random_matrix(seed, m, k);
        let b = random_matrix(seed ^ 0x5eed, k, n);
        let exact = gemm_mode(&a, &b, Parallelism::Serial, NumericsMode::BitExact);
        let fast = gemm_mode(&a, &b, par, NumericsMode::Fast);
        assert_matrix_close(&exact, &fast, tol, "gemm_nn");
        let fast_serial = gemm_mode(&a, &b, Parallelism::Serial, NumericsMode::Fast);
        prop_assert_eq!(bits(&fast), bits(&fast_serial));

        let b_nt = random_matrix(seed ^ 1, n, k); // a * b_nt^T
        let exact = gemm_nt_mode(&a, &b_nt, Parallelism::Serial, NumericsMode::BitExact);
        let fast = gemm_nt_mode(&a, &b_nt, par, NumericsMode::Fast);
        assert_matrix_close(&exact, &fast, tol, "gemm_nt");

        let b_tn = random_matrix(seed ^ 2, m, n); // a^T * b_tn
        let exact = gemm_tn_mode(&a, &b_tn, Parallelism::Serial, NumericsMode::BitExact);
        let fast = gemm_tn_mode(&a, &b_tn, par, NumericsMode::Fast);
        // gemm_tn chains over m (the shared row count), not k.
        assert_matrix_close(&fast, &exact, FAST_GEMM_TOL_PER_K * m as f64, "gemm_tn");
    }

    /// Fast tree reductions stay within bound of the serial folds and are
    /// bit-reproducible.
    #[test]
    fn fast_reductions_match_serial_folds(len in 0usize..600, seed in 0u64..1_000) {
        let xs = random_matrix(seed, len.max(1), 1);
        let ys = random_matrix(seed ^ 3, len.max(1), 1);
        let (xs, ys) = (&xs.as_slice()[..len], &ys.as_slice()[..len]);
        let tol = 1e-15 * (len.max(1) as f64);
        assert_scalar_close(
            reduce_sum(xs, NumericsMode::BitExact),
            reduce_sum(xs, NumericsMode::Fast),
            tol,
            "reduce_sum",
        );
        assert_scalar_close(
            reduce_dot(xs, ys, NumericsMode::BitExact),
            reduce_dot(xs, ys, NumericsMode::Fast),
            tol,
            "reduce_dot",
        );
        let again = reduce_dot(xs, ys, NumericsMode::Fast);
        prop_assert_eq!(reduce_dot(xs, ys, NumericsMode::Fast).to_bits(), again.to_bits());
    }

    /// Fast `hsic_biased` and the pairwise HSIC-RFF matrix stay within the
    /// documented bound of BitExact across shapes and worker counts.
    #[test]
    fn fast_hsic_statistics_stay_within_tolerance(
        dims in (2usize..64, 1usize..4, 1usize..9),
        seed in 0u64..1_000,
    ) {
        let (n, d, threads) = dims;
        let par = Parallelism::Threads(threads);
        let a = random_matrix(seed, n, d);
        let b = random_matrix(seed ^ 7, n, d);
        // Positive bandwidths: the median heuristic resolves through the
        // *global* knobs and this test must not depend on them.
        let exact = hsic_biased_with(&a, &b, 1.0, 0.8, Parallelism::Serial, NumericsMode::BitExact);
        let fast = hsic_biased_with(&a, &b, 1.0, 0.8, par, NumericsMode::Fast);
        assert_scalar_close(exact, fast, FAST_HSIC_TOL, "hsic_biased");
        let fast_serial =
            hsic_biased_with(&a, &b, 1.0, 0.8, Parallelism::Serial, NumericsMode::Fast);
        prop_assert_eq!(fast.to_bits(), fast_serial.to_bits());

        let mut rng = rng_from_seed(seed ^ 99);
        let rff = Rff::sample(&mut rng, 5);
        let weights: Vec<f64> = (0..n).map(|i| 0.5 + (i % 5) as f64 * 0.3).collect();
        for w in [None, Some(weights.as_slice())] {
            let exact =
                pairwise_hsic_matrix_with(&a, &rff, w, Parallelism::Serial, NumericsMode::BitExact);
            let fast = pairwise_hsic_matrix_with(&a, &rff, w, par, NumericsMode::Fast);
            assert_matrix_close(&exact, &fast, FAST_HSIC_TOL, "pairwise_hsic_matrix");
        }
    }

    /// Fast plain IPMs (linear MMD, RBF MMD², Sinkhorn-Wasserstein) stay
    /// within the documented bound of BitExact across shapes, weightings and
    /// worker counts.
    #[test]
    fn fast_plain_ipms_stay_within_tolerance(
        dims in (2usize..48, 2usize..48, 1usize..5, 1usize..9),
        seed in 0u64..1_000,
    ) {
        let (nt, nc, d, threads) = dims;
        let par = Parallelism::Threads(threads);
        let phi_t = random_matrix(seed, nt, d);
        let phi_c = random_matrix(seed ^ 11, nc, d);
        let w_t: Vec<f64> = (0..nt).map(|i| 0.25 + (i % 4) as f64 * 0.5).collect();
        for kind in [
            IpmKind::MmdLin,
            IpmKind::MmdRbf { sigma: 1.0 },
            IpmKind::Wasserstein { lambda: 10.0, iterations: 5 },
        ] {
            let exact = ipm_weighted_plain_with(
                kind, &phi_t, &phi_c, Some(&w_t), None, Parallelism::Serial,
                NumericsMode::BitExact,
            );
            let fast = ipm_weighted_plain_with(
                kind, &phi_t, &phi_c, Some(&w_t), None, par, NumericsMode::Fast,
            );
            assert_scalar_close(exact, fast, FAST_IPM_TOL, &format!("{kind:?}"));
            let fast_serial = ipm_weighted_plain_with(
                kind, &phi_t, &phi_c, Some(&w_t), None, Parallelism::Serial, NumericsMode::Fast,
            );
            prop_assert_eq!(fast.to_bits(), fast_serial.to_bits());
        }
    }
}

/// `SBRL_NUMERICS` / `set_global` round trip — the global-knob semantics the
/// tensor crate's unit tests cannot exercise without racing its bit-identity
/// tests in the same process.
#[test]
fn numerics_mode_global_round_trip() {
    let _guard = GLOBAL_KNOBS.lock().unwrap_or_else(|p| p.into_inner());
    NumericsMode::Fast.set_global();
    assert_eq!(NumericsMode::global(), NumericsMode::Fast);
    assert!(NumericsMode::global().is_fast());
    NumericsMode::BitExact.set_global();
    assert_eq!(NumericsMode::global(), NumericsMode::BitExact);
    NumericsMode::from_env().set_global();
}

fn short_fit(mode: NumericsMode, par: Parallelism) -> (Vec<f64>, Vec<f64>) {
    let process = SyntheticProcess::new(SyntheticConfig::syn_8_8_8_2(), 21);
    let train_data = process.generate(2.5, 200, 0);
    let val_data = process.generate(2.5, 80, 1);
    let test_data = process.generate(-2.5, 120, 2);
    let cfg = TrainConfig {
        iterations: 30,
        batch_size: 64,
        eval_every: 10,
        patience: 30,
        ..TrainConfig::default()
    };
    mode.set_global();
    par.set_global();
    let fitted = Estimator::builder()
        .backbone(CfrConfig::small(train_data.dim()))
        .sbrl(SbrlConfig::sbrl_hap(1.0, 1.0, 0.1, 0.01))
        .train(cfg)
        .seed(11)
        .fit(&train_data, &val_data)
        .expect("training succeeds");
    assert_eq!(fitted.numerics(), mode, "FittedModel must record its numerics tier");
    let est = fitted.predict(&test_data.x);
    Parallelism::from_env().set_global();
    NumericsMode::from_env().set_global();
    (est.y0_hat, est.y1_hat)
}

/// An end-to-end fit under the global Fast knob predicts within tolerance of
/// the BitExact fit of the same seed and data, and the Fast fit itself is
/// bit-identical run-to-run at a fixed worker count (determinism).
#[test]
fn fast_fit_agrees_with_bitexact_and_is_reproducible() {
    let _guard = GLOBAL_KNOBS.lock().unwrap_or_else(|p| p.into_inner());
    let par = Parallelism::Threads(4);
    let (e_y0, e_y1) = short_fit(NumericsMode::BitExact, par);
    let (f_y0, f_y1) = short_fit(NumericsMode::Fast, par);
    let max_diff = e_y0
        .iter()
        .chain(&e_y1)
        .zip(f_y0.iter().chain(&f_y1))
        .map(|(e, f)| (e - f).abs())
        .fold(0.0f64, f64::max);
    assert!(
        max_diff <= FAST_FIT_TOL,
        "fast fit diverged from bitexact: max |Δprediction| = {max_diff}"
    );

    let (g_y0, g_y1) = short_fit(NumericsMode::Fast, par);
    let same_bits = f_y0.iter().zip(&g_y0).all(|(a, b)| a.to_bits() == b.to_bits())
        && f_y1.iter().zip(&g_y1).all(|(a, b)| a.to_bits() == b.to_bits());
    assert!(same_bits, "fast fit must be bit-identical run-to-run at a fixed worker count");
}
