//! Serving-shaped guarantees of the redesigned estimator API: a fitted
//! model is an immutable `Send + Sync` artifact whose inference fans out
//! across threads with bit-identical results, and the deprecated positional
//! `train()` shim still reproduces the builder pipeline during its grace
//! release.

use sbrl_hap::core::{Estimator, FittedModel, SbrlConfig, TrainConfig};
use sbrl_hap::data::{CausalDataset, SyntheticConfig, SyntheticProcess};
use sbrl_hap::models::{Backbone, CfrConfig};

fn splits() -> (CausalDataset, CausalDataset, CausalDataset) {
    let process = SyntheticProcess::new(SyntheticConfig::syn_8_8_8_2(), 21);
    (process.generate(2.5, 300, 0), process.generate(2.5, 120, 1), process.generate(-2.5, 250, 2))
}

fn budget() -> TrainConfig {
    TrainConfig {
        iterations: 60,
        batch_size: 64,
        eval_every: 20,
        patience: 40,
        ..TrainConfig::default()
    }
}

fn fit_small() -> (FittedModel<Box<dyn Backbone>>, CausalDataset) {
    let (train_data, val_data, test_data) = splits();
    let fitted = Estimator::builder()
        .backbone(CfrConfig::small(train_data.dim()))
        .sbrl(SbrlConfig::sbrl_hap(1.0, 1.0, 0.1, 0.01))
        .train(budget())
        .seed(11)
        .fit(&train_data, &val_data)
        .expect("training succeeds");
    (fitted, test_data)
}

/// Compile-time assertion: the boxed fitted model is `Send + Sync`.
#[test]
fn fitted_model_is_send_and_sync() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<FittedModel<Box<dyn Backbone>>>();
    assert_send_sync::<Box<dyn Backbone>>();
}

/// One fitted model shared by four scoped threads, each predicting a
/// disjoint row slice, must reproduce the single-threaded predictions
/// bit for bit.
#[test]
fn shared_model_predicts_identically_across_threads() {
    let (fitted, test_data) = fit_small();
    let sequential = fitted.predict(&test_data.x);

    let n = test_data.n();
    let workers = 4;
    let chunk = n.div_ceil(workers);
    let fitted_ref = &fitted;
    let pieces: Vec<(usize, Vec<f64>, Vec<f64>)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let lo = (w * chunk).min(n);
                let hi = ((w + 1) * chunk).min(n);
                let rows: Vec<usize> = (lo..hi).collect();
                let slice = test_data.x.select_rows(&rows);
                s.spawn(move || {
                    let est = fitted_ref.predict(&slice);
                    (lo, est.y0_hat, est.y1_hat)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("worker")).collect()
    });

    let mut y0 = vec![0.0; n];
    let mut y1 = vec![0.0; n];
    for (lo, p0, p1) in pieces {
        y0[lo..lo + p0.len()].copy_from_slice(&p0);
        y1[lo..lo + p1.len()].copy_from_slice(&p1);
    }
    assert_eq!(y0, sequential.y0_hat, "threaded y0 must be bit-identical");
    assert_eq!(y1, sequential.y1_hat, "threaded y1 must be bit-identical");
}

/// `predict_batched` is deterministic and bit-identical to `predict` for
/// any worker count, including degenerate ones.
#[test]
fn predict_batched_matches_sequential_for_any_worker_count() {
    let (fitted, test_data) = fit_small();
    let sequential = fitted.predict(&test_data.x);
    for workers in [1, 2, 3, 4, 7, 64, 10_000] {
        let batched = fitted.predict_batched(&test_data.x, workers);
        assert_eq!(batched.y0_hat, sequential.y0_hat, "workers = {workers}");
        assert_eq!(batched.y1_hat, sequential.y1_hat, "workers = {workers}");
    }
    // Repeated calls are deterministic.
    let again = fitted.predict_batched(&test_data.x, 4);
    assert_eq!(again.y0_hat, sequential.y0_hat);
}

/// The deprecated positional `train()` must keep reproducing the builder
/// pipeline (same seed derivation) for its one-release grace period.
#[test]
#[allow(deprecated)]
fn deprecated_train_shim_matches_the_builder() {
    use sbrl_hap::core::train;
    use sbrl_hap::models::Cfr;
    use sbrl_hap::tensor::rng::rng_from_seed;

    let (train_data, val_data, test_data) = splits();
    let cfg = budget();
    let sbrl = SbrlConfig::sbrl_hap(1.0, 1.0, 0.1, 0.01);

    let via_builder = Estimator::builder()
        .backbone(CfrConfig::small(train_data.dim()))
        .sbrl(sbrl)
        .train(cfg)
        .fit(&train_data, &val_data)
        .expect("builder training");

    // The builder derives the model-init RNG as seed ^ 0x00f1_77ed; hand the
    // shim an identically initialised model.
    let mut rng = rng_from_seed(cfg.seed ^ 0x00f1_77ed);
    let model = Cfr::new(CfrConfig::small(train_data.dim()), &mut rng);
    let via_shim = train(model, &train_data, &val_data, &sbrl, &cfg).expect("shim training");

    assert_eq!(
        via_builder.predict(&test_data.x).ite_hat(),
        via_shim.predict(&test_data.x).ite_hat(),
        "the deprecated shim must reproduce the builder pipeline"
    );
}
