//! # sbrl-hap
//!
//! A from-scratch Rust reproduction of **"Stable Heterogeneous Treatment
//! Effect Estimation across Out-of-Distribution Populations"** (Zhang et
//! al., ICDE 2024): balanced representation learning plus
//! independence-driven sample reweighting, coordinated by a
//! Hierarchical-Attention Paradigm, so that treatment-effect estimators
//! trained on one population stay accurate on covariate-shifted ones.
//!
//! This meta-crate re-exports the workspace's public API:
//!
//! * [`tensor`] — dense matrices + reverse-mode autodiff;
//! * [`nn`] — layers, optimisers, schedules;
//! * [`stats`] — IPM (MMD / Sinkhorn-Wasserstein) and HSIC-RFF machinery;
//! * [`data`] — synthetic / Twins-like / IHDP-like benchmark generators;
//! * [`models`] — TARNet, CFR and DeR-CFR backbones;
//! * [`core`] — the SBRL / SBRL-HAP framework and alternating trainer;
//! * [`metrics`] — PEHE, ATE bias, F1 and stability metrics;
//! * [`experiments`] — runners regenerating every table/figure of the paper.
//!
//! ## Quickstart
//!
//! ```no_run
//! use sbrl_hap::core::{Estimator, SbrlConfig, TrainConfig};
//! use sbrl_hap::data::{DatasetOptions, DatasetRegistry};
//! use sbrl_hap::models::CfrConfig;
//!
//! // Datasets are name-addressable through the registry.
//! let registry = DatasetRegistry::builtin();
//! let opts = DatasetOptions { n_train: 2000, n_val: 600, n_test: 1000, ..Default::default() };
//! let split = registry.generate("syn_8_8_8_2", &opts)?; // OOD test at rho = -3
//!
//! // Fit through the fluent builder; the result is an immutable,
//! // thread-safe artifact.
//! let fitted = Estimator::builder()
//!     .backbone(CfrConfig::small(split.train.dim()))
//!     .sbrl(SbrlConfig::sbrl_hap(1.0, 1.0, 1.0, 0.1))
//!     .train(TrainConfig::default())
//!     .seed(0)
//!     .fit(&split.train, &split.val)?;
//! println!("OOD PEHE: {:.3}", fitted.evaluate(&split.test).unwrap().pehe);
//!
//! // Grid cells parse from strings, and inference shards across threads.
//! let hap = Estimator::builder().method("CFR+SBRL-HAP".parse()?).fit(&split.train, &split.val)?;
//! let est = hap.predict_batched(&split.test.x, 8); // bit-identical to predict()
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! The 0.1 positional `train()` entry point survives as a deprecated shim
//! for one release; see [`core::Estimator`] for the migration path.

pub use sbrl_core as core;
pub use sbrl_data as data;
pub use sbrl_experiments as experiments;
pub use sbrl_metrics as metrics;
pub use sbrl_models as models;
pub use sbrl_nn as nn;
pub use sbrl_stats as stats;
pub use sbrl_tensor as tensor;
