//! # sbrl-hap
//!
//! A from-scratch Rust reproduction of **"Stable Heterogeneous Treatment
//! Effect Estimation across Out-of-Distribution Populations"** (Zhang et
//! al., ICDE 2024): balanced representation learning plus
//! independence-driven sample reweighting, coordinated by a
//! Hierarchical-Attention Paradigm, so that treatment-effect estimators
//! trained on one population stay accurate on covariate-shifted ones.
//!
//! This meta-crate re-exports the workspace's public API:
//!
//! * [`tensor`] — dense matrices + reverse-mode autodiff;
//! * [`nn`] — layers, optimisers, schedules;
//! * [`stats`] — IPM (MMD / Sinkhorn-Wasserstein) and HSIC-RFF machinery;
//! * [`data`] — synthetic / Twins-like / IHDP-like benchmark generators;
//! * [`models`] — TARNet, CFR and DeR-CFR backbones;
//! * [`core`] — the SBRL / SBRL-HAP framework and alternating trainer;
//! * [`metrics`] — PEHE, ATE bias, F1 and stability metrics;
//! * [`experiments`] — runners regenerating every table/figure of the paper.
//!
//! ## Quickstart
//!
//! ```no_run
//! use sbrl_hap::core::{train, SbrlConfig, TrainConfig};
//! use sbrl_hap::data::{SyntheticConfig, SyntheticProcess};
//! use sbrl_hap::models::{Cfr, CfrConfig};
//! use sbrl_hap::tensor::rng::rng_from_seed;
//!
//! let process = SyntheticProcess::new(SyntheticConfig::syn_8_8_8_2(), 0);
//! let train_data = process.generate(2.5, 2000, 0); // in-distribution
//! let val_data = process.generate(2.5, 600, 1);
//! let ood_data = process.generate(-3.0, 1000, 2); // strong covariate shift
//!
//! let mut rng = rng_from_seed(0);
//! let model = Cfr::new(CfrConfig::small(train_data.dim()), &mut rng);
//! let mut fitted = train(
//!     model,
//!     &train_data,
//!     &val_data,
//!     &SbrlConfig::sbrl_hap(1.0, 1.0, 1.0, 0.1),
//!     &TrainConfig::default(),
//! )
//! .expect("training succeeds");
//! println!("OOD PEHE: {:.3}", fitted.evaluate(&ood_data).unwrap().pehe);
//! ```

pub use sbrl_core as core;
pub use sbrl_data as data;
pub use sbrl_experiments as experiments;
pub use sbrl_metrics as metrics;
pub use sbrl_models as models;
pub use sbrl_nn as nn;
pub use sbrl_stats as stats;
pub use sbrl_tensor as tensor;
