//! End-to-end Twins-like study (the paper's Sec. V-E1 protocol): mortality
//! of the heavier versus lighter twin, with a distribution-shifted test fold
//! drawn at bias rate `ρ = -2.5` over the unstable covariates.
//!
//! Runs several partition rounds, trains DeR-CFR with and without SBRL-HAP,
//! and reports train/test PEHE and ATE bias (mean ± std across rounds),
//! mirroring one block of the paper's Table III.
//!
//! Run with: `cargo run --release --example twins_study`

use sbrl_hap::core::{Estimator, SbrlConfig, TrainConfig};
use sbrl_hap::data::{TwinsConfig, TwinsSimulator};
use sbrl_hap::metrics::mean_std;
use sbrl_hap::models::{DerCfrConfig, TarnetConfig};
use sbrl_hap::stats::IpmKind;

const ROUNDS: u64 = 3;

fn main() {
    let sim = TwinsSimulator::new(TwinsConfig { n: 2500, ..Default::default() }, 17);
    let full = sim.full();
    println!(
        "Twins-like cohort: {} same-sex twin pairs, {} covariates, {:.1}% mortality (lighter twin)",
        full.n(),
        full.dim(),
        100.0 * full.mu0.as_ref().unwrap().iter().sum::<f64>() / full.n() as f64
    );

    let arch = TarnetConfig {
        rep_layers: 2,
        rep_width: 48,
        head_layers: 2,
        head_width: 24,
        batch_norm: true,
        rep_normalization: true,
        in_dim: full.dim(),
    };
    let dercfr_cfg =
        DerCfrConfig { arch, alpha: 0.01, beta: 5.0, gamma: 1e-4, mu: 5.0, ipm: IpmKind::MmdLin };
    let budget = TrainConfig { iterations: 350, ..TrainConfig::default() };

    let mut results: Vec<(String, Vec<f64>, Vec<f64>)> = vec![
        ("DeRCFR".into(), Vec::new(), Vec::new()),
        ("DeRCFR+SBRL-HAP".into(), Vec::new(), Vec::new()),
    ];

    for round in 0..ROUNDS {
        let split = sim.partition(round);
        for (idx, sbrl) in [SbrlConfig::vanilla(), SbrlConfig::sbrl_hap(0.01, 1.0, 1.0, 0.01)]
            .into_iter()
            .enumerate()
        {
            let fitted = Estimator::builder()
                .backbone(dercfr_cfg)
                .sbrl(sbrl)
                .train(budget)
                .seed(round * 13 + idx as u64)
                .fit(&split.train, &split.val)
                .expect("training");
            let test_eval = fitted.evaluate(&split.test).expect("oracle");
            let train_eval = fitted.evaluate(&split.train).expect("oracle");
            results[idx].1.push(test_eval.pehe);
            results[idx].2.push(test_eval.ate_bias);
            eprintln!(
                "round {}: {} train PEHE {:.3} | test PEHE {:.3}",
                round + 1,
                results[idx].0,
                train_eval.pehe,
                test_eval.pehe
            );
        }
    }

    println!("\n{:<18} {:>18} {:>18}", "method", "test PEHE", "test eATE");
    for (name, pehes, ates) in &results {
        let (pm, ps) = mean_std(pehes);
        let (am, as_) = mean_std(ates);
        println!("{name:<18} {pm:>11.3}±{ps:.3} {am:>11.3}±{as_:.3}");
    }
    println!(
        "\nThe test fold was sampled at ρ = -2.5 over the unstable covariates,\n\
         so it is a (mildly) out-of-distribution population — the paper notes\n\
         Twins' shift level is low because many covariates are near-duplicates."
    );
}
