//! Uplift modelling across seasonal populations: a marketer estimates the
//! heterogeneous effect of a coupon (treatment) on conversion (binary
//! outcome) from logs collected during one season, then targets customers in
//! another season whose feature distribution has drifted.
//!
//! The decision-relevant quantity is the *sign and ranking* of predicted
//! uplift: we report PEHE, ATE bias and a simple top-k targeting quality
//! (expected uplift captured by treating the top 20% ranked customers) for
//! the three frameworks on the shifted population.
//!
//! Run with: `cargo run --release --example marketing_uplift`

use sbrl_hap::core::{Estimator, Framework, SbrlConfig, TrainConfig};
use sbrl_hap::data::{CausalDataset, SyntheticConfig, SyntheticProcess};
use sbrl_hap::metrics::EffectEstimate;
use sbrl_hap::models::{CfrConfig, TarnetConfig};
use sbrl_hap::stats::IpmKind;

/// Average true uplift captured when treating the `k` customers with the
/// highest *predicted* uplift (a policy-quality proxy).
fn topk_uplift(est: &EffectEstimate, data: &CausalDataset, frac: f64) -> f64 {
    let ite_hat = est.ite_hat();
    let ite_true = data.true_ite().expect("oracle");
    let mut order: Vec<usize> = (0..ite_hat.len()).collect();
    order.sort_by(|&a, &b| ite_hat[b].partial_cmp(&ite_hat[a]).expect("finite"));
    let k = ((ite_hat.len() as f64) * frac).round().max(1.0) as usize;
    order[..k].iter().map(|&i| ite_true[i]).sum::<f64>() / k as f64
}

fn main() {
    // Customer features: purchase history & demographics (stable drivers of
    // conversion) plus seasonal context features that merely correlate with
    // conversion in any one season (unstable block).
    let process = SyntheticProcess::new(SyntheticConfig::syn_8_8_8_2(), 99);
    let summer_logs = process.generate(2.5, 2500, 0); // training season
    let summer_val = process.generate(2.5, 700, 1);
    let winter = process.generate(-2.5, 1500, 2); // deployment season

    let arch = TarnetConfig {
        rep_layers: 2,
        rep_width: 48,
        head_layers: 2,
        head_width: 24,
        batch_norm: true,
        rep_normalization: false,
        in_dim: summer_logs.dim(),
    };
    let cfg = CfrConfig { arch, alpha: 0.05, ipm: IpmKind::MmdLin };
    let budget = TrainConfig { iterations: 400, ..TrainConfig::default() };

    println!("training on summer campaign logs, deploying on winter customers\n");
    println!("{:<14} {:>12} {:>12} {:>18}", "framework", "PEHE", "eATE", "top-20% uplift");

    let random_policy = {
        let ite = winter.true_ite().expect("oracle");
        ite.iter().sum::<f64>() / ite.len() as f64
    };

    for framework in Framework::ALL {
        let sbrl = match framework {
            Framework::Vanilla => SbrlConfig::vanilla(),
            Framework::Sbrl => SbrlConfig::sbrl(0.05, 1.0),
            Framework::SbrlHap => SbrlConfig::sbrl_hap(0.05, 1.0, 1.0, 0.1),
        };
        let fitted = Estimator::builder()
            .backbone(cfg)
            .sbrl(sbrl)
            .train(budget)
            .seed(5)
            .fit(&summer_logs, &summer_val)
            .expect("training");
        let est = fitted.predict(&winter.x);
        let eval = fitted.evaluate(&winter).expect("oracle");
        println!(
            "{:<14} {:>12.3} {:>12.3} {:>18.3}",
            format!("CFR{}", framework.suffix()),
            eval.pehe,
            eval.ate_bias,
            topk_uplift(&est, &winter, 0.2),
        );
    }
    println!("{:<14} {:>12} {:>12} {:>18.3}", "random policy", "-", "-", random_policy);
    println!(
        "\nTop-20% uplift is the average true effect among the customers each\n\
         model would target first; the random-policy row targets blindly.\n\
         A value *below* random is the paper's instability hazard made\n\
         concrete: the winter season flips the unstable feature's\n\
         correlation with conversion (rho = 2.5 -> -2.5), so a model that\n\
         leaned on it ranks customers almost exactly backwards. The stable\n\
         frameworks reduce that reliance (watch PEHE/eATE), and at full\n\
         training scale the gap in targeting quality widens — run the\n\
         table1 binary for the replicated comparison."
    );
}
