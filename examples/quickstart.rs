//! Five-minute tour of the library: pull a selection-biased synthetic
//! population from the name-addressable dataset registry, fit a vanilla CFR
//! and a CFR+SBRL-HAP through the fluent `Estimator` builder, and compare
//! their heterogeneous-treatment-effect error in-distribution versus on a
//! strongly shifted out-of-distribution population.
//!
//! Run with: `cargo run --release --example quickstart`

use sbrl_hap::core::{Estimator, Framework, SbrlConfig, TrainConfig};
use sbrl_hap::data::{DatasetOptions, DatasetRegistry};
use sbrl_hap::models::{CfrConfig, TarnetConfig};
use sbrl_hap::stats::IpmKind;

fn main() {
    // 1. Benchmarks are selected by name. "syn_8_8_8_2" is the paper's
    //    synthetic process: 8 instruments, 8 confounders, 8 adjustment
    //    variables and 2 unstable features whose correlation with the
    //    outcome flips across environments.
    let registry = DatasetRegistry::builtin();
    let opts = DatasetOptions {
        n_train: 2000,
        n_val: 600,
        n_test: 1000,
        train_shift: 2.5, // training environment
        test_shift: 2.5,  // same distribution
        seed: 7,
    };
    let id = registry.generate("syn_8_8_8_2", &opts).expect("registered dataset");
    // Second generation fetches only the shifted OOD *test* fold (same
    // seed, zero-sized train/val): the training folds above are reused, not
    // regenerated.
    let ood = registry
        .generate("syn_8_8_8_2", &DatasetOptions { n_train: 0, n_val: 0, test_shift: -3.0, ..opts })
        .expect("registered dataset");
    let (train_data, val_data, id_test, ood_test) = (id.train, id.val, id.test, ood.test);

    println!(
        "train: {} units, {:.0}% treated",
        train_data.n(),
        100.0 * train_data.treated_fraction()
    );
    println!("true ATE (train env): {:.3}\n", train_data.true_ate().unwrap());

    // 2. Shared backbone architecture and optimisation budget.
    let arch = TarnetConfig {
        rep_layers: 2,
        rep_width: 48,
        head_layers: 2,
        head_width: 24,
        batch_norm: true,
        rep_normalization: false,
        in_dim: train_data.dim(),
    };
    let cfr_config = CfrConfig { arch, alpha: 0.05, ipm: IpmKind::MmdLin };
    let train_cfg = TrainConfig { iterations: 400, ..TrainConfig::default() };

    // 3. Fit the vanilla CFR baseline and the full SBRL-HAP wrapper through
    //    the fluent builder. A fitted model is immutable and thread-safe.
    let fitted_vanilla = Estimator::builder()
        .backbone(cfr_config)
        .framework(Framework::Vanilla)
        .train(train_cfg)
        .seed(0)
        .fit(&train_data, &val_data)
        .expect("vanilla training");
    let fitted_hap = Estimator::builder()
        .backbone(cfr_config)
        .sbrl(SbrlConfig::sbrl_hap(0.05, 1.0, 1.0, 0.1))
        .train(train_cfg)
        .seed(0)
        .fit(&train_data, &val_data)
        .expect("SBRL-HAP training");

    // 4. Compare PEHE (individual-level error) and ATE bias in- and
    //    out-of-distribution.
    println!(
        "{:<16} {:>12} {:>12} {:>12} {:>12}",
        "method", "ID PEHE", "OOD PEHE", "ID eATE", "OOD eATE"
    );
    for (name, fitted) in [("CFR", &fitted_vanilla), ("CFR+SBRL-HAP", &fitted_hap)] {
        let id_eval = fitted.evaluate(&id_test).expect("oracle");
        let ood_eval = fitted.evaluate(&ood_test).expect("oracle");
        println!(
            "{name:<16} {:>12.3} {:>12.3} {:>12.3} {:>12.3}",
            id_eval.pehe, ood_eval.pehe, id_eval.ate_bias, ood_eval.ate_bias
        );
    }

    // 5. Serving-shaped inference: predict_batched shards the rows across
    //    scoped threads and returns bit-identical outputs.
    let sequential = fitted_hap.predict(&ood_test.x);
    let sharded = fitted_hap.predict_batched(&ood_test.x, 4);
    assert_eq!(sequential.y0_hat, sharded.y0_hat);
    assert_eq!(sequential.y1_hat, sharded.y1_hat);
    println!("\npredict_batched(4 workers) is bit-identical to sequential predict");

    let (min, mean, max) = {
        let w = fitted_hap.weights();
        let min = w.iter().copied().fold(f64::INFINITY, f64::min);
        let max = w.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        (min, w.iter().sum::<f64>() / w.len() as f64, max)
    };
    println!("learned sample weights: min {min:.3}, mean {mean:.3}, max {max:.3}");
    println!(
        "(expected shape: SBRL-HAP degrades less from the ID to the OOD column;\n\
         single runs are noisy — the table1 binary averages replications)"
    );
}
