//! Five-minute tour of the library: generate a selection-biased synthetic
//! population, train a vanilla CFR and a CFR+SBRL-HAP on it, and compare
//! their heterogeneous-treatment-effect error in-distribution versus on a
//! strongly shifted out-of-distribution population.
//!
//! Run with: `cargo run --release --example quickstart`

use sbrl_hap::core::{train, SbrlConfig, TrainConfig};
use sbrl_hap::data::{SyntheticConfig, SyntheticProcess};
use sbrl_hap::models::{Cfr, CfrConfig, TarnetConfig};
use sbrl_hap::stats::IpmKind;
use sbrl_hap::tensor::rng::rng_from_seed;

fn main() {
    // 1. A synthetic benchmark: 8 instruments, 8 confounders, 8 adjustment
    //    variables and 2 unstable features whose correlation with the
    //    outcome flips across environments.
    let process = SyntheticProcess::new(SyntheticConfig::syn_8_8_8_2(), 7);
    let train_data = process.generate(2.5, 2000, 0); // training environment
    let val_data = process.generate(2.5, 600, 1);
    let id_test = process.generate(2.5, 1000, 2); // same distribution
    let ood_test = process.generate(-3.0, 1000, 3); // flipped correlation

    println!(
        "train: {} units, {:.0}% treated",
        train_data.n(),
        100.0 * train_data.treated_fraction()
    );
    println!("true ATE (train env): {:.3}\n", train_data.true_ate().unwrap());

    // 2. Shared backbone architecture and optimisation budget.
    let arch = TarnetConfig {
        rep_layers: 2,
        rep_width: 48,
        head_layers: 2,
        head_width: 24,
        batch_norm: true,
        rep_normalization: false,
        in_dim: train_data.dim(),
    };
    let cfr_config = CfrConfig { arch, alpha: 0.05, ipm: IpmKind::MmdLin };
    let train_cfg = TrainConfig { iterations: 400, ..TrainConfig::default() };

    // 3. Train the vanilla CFR baseline and the full SBRL-HAP wrapper.
    let mut rng = rng_from_seed(0);
    let vanilla = Cfr::new(cfr_config, &mut rng);
    let mut fitted_vanilla =
        train(vanilla, &train_data, &val_data, &SbrlConfig::vanilla(), &train_cfg)
            .expect("vanilla training");

    let mut rng = rng_from_seed(0);
    let wrapped = Cfr::new(cfr_config, &mut rng);
    let mut fitted_hap = train(
        wrapped,
        &train_data,
        &val_data,
        &SbrlConfig::sbrl_hap(0.05, 1.0, 1.0, 0.1),
        &train_cfg,
    )
    .expect("SBRL-HAP training");

    // 4. Compare PEHE (individual-level error) and ATE bias in- and
    //    out-of-distribution.
    println!(
        "{:<16} {:>12} {:>12} {:>12} {:>12}",
        "method", "ID PEHE", "OOD PEHE", "ID eATE", "OOD eATE"
    );
    for (name, fitted) in [("CFR", &mut fitted_vanilla), ("CFR+SBRL-HAP", &mut fitted_hap)] {
        let id = fitted.evaluate(&id_test).expect("oracle");
        let ood = fitted.evaluate(&ood_test).expect("oracle");
        println!(
            "{name:<16} {:>12.3} {:>12.3} {:>12.3} {:>12.3}",
            id.pehe, ood.pehe, id.ate_bias, ood.ate_bias
        );
    }
    let (min, mean, max) = {
        let w = fitted_hap.weights();
        let min = w.iter().copied().fold(f64::INFINITY, f64::min);
        let max = w.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        (min, w.iter().sum::<f64>() / w.len() as f64, max)
    };
    println!("\nlearned sample weights: min {min:.3}, mean {mean:.3}, max {max:.3}");
    println!(
        "(expected shape: SBRL-HAP degrades less from the ID to the OOD column;\n\
         single runs are noisy — the table1 binary averages replications)"
    );
}
