//! The paper's motivating scenario (Fig. 1): a treatment-effect model is
//! fitted on observational records from urban hospitals and then deployed on
//! populations it has never seen — rural clinics, different seasons, holiday
//! cohorts — each with its own covariate distribution.
//!
//! We simulate the urban training environment at bias rate `ρ = 2.5` and a
//! spectrum of deployment populations, then show how the vanilla estimator's
//! error drifts as deployment moves away from the training distribution
//! while the SBRL-HAP estimator stays flat.
//!
//! Run with: `cargo run --release --example healthcare_ood`

use sbrl_hap::core::{Estimator, Framework, SbrlConfig, TrainConfig};
use sbrl_hap::data::{SyntheticConfig, SyntheticProcess};
use sbrl_hap::models::{CfrConfig, TarnetConfig};
use sbrl_hap::stats::IpmKind;

/// Deployment populations, ordered from "most like training" to "least".
const DEPLOYMENTS: [(&str, f64); 5] = [
    ("urban (training-like)", 2.5),
    ("suburban", 1.5),
    ("seasonal shift", 1.3),
    ("rural", -1.5),
    ("remote village", -3.0),
];

fn main() {
    // Patient covariates: demographics & vitals (confounders/adjusters) plus
    // context features (weather, locality) that are *not* causal for the
    // outcome — the unstable block V.
    let process = SyntheticProcess::new(SyntheticConfig::syn_8_8_8_2(), 23);
    let train_data = process.generate(2.5, 2500, 0);
    let val_data = process.generate(2.5, 700, 1);

    let arch = TarnetConfig {
        rep_layers: 2,
        rep_width: 48,
        head_layers: 2,
        head_width: 24,
        batch_norm: true,
        rep_normalization: false,
        in_dim: train_data.dim(),
    };
    let cfg = CfrConfig { arch, alpha: 0.05, ipm: IpmKind::MmdLin };
    let budget = TrainConfig { iterations: 400, ..TrainConfig::default() };

    println!("fitting on the urban observational cohort ({} patients)...\n", train_data.n());
    let vanilla = Estimator::builder()
        .backbone(cfg)
        .framework(Framework::Vanilla)
        .train(budget)
        .seed(1)
        .fit(&train_data, &val_data)
        .expect("vanilla training");
    let stable = Estimator::builder()
        .backbone(cfg)
        .sbrl(SbrlConfig::sbrl_hap(0.05, 1.0, 1.0, 0.1))
        .train(budget)
        .seed(1)
        .fit(&train_data, &val_data)
        .expect("stable training");

    println!(
        "{:<24} {:>12} {:>16} {:>10}",
        "deployment population", "CFR PEHE", "+SBRL-HAP PEHE", "delta"
    );
    let mut base_id_pehe = None;
    for (name, rho) in DEPLOYMENTS {
        let cohort = process.generate(rho, 1200, 7 + rho.to_bits() % 97);
        let ev = vanilla.evaluate(&cohort).expect("oracle");
        let es = stable.evaluate(&cohort).expect("oracle");
        base_id_pehe.get_or_insert(ev.pehe);
        let delta = 100.0 * (ev.pehe - es.pehe) / ev.pehe;
        println!("{name:<24} {:>12.3} {:>16.3} {delta:>+9.1}%", ev.pehe, es.pehe);
    }

    println!(
        "\nReading guide: each row is a population the model never saw.\n\
         Both columns worsen toward the bottom rows (the deployment context\n\
         diverges from training); the stable column's edge over the vanilla\n\
         one should grow with the shift — that flattening is what 'stable\n\
         HTE estimation across OOD populations' means in the paper. A single\n\
         seed at this budget shows the direction; the table1/fig3 binaries\n\
         average replications for the full comparison."
    );
}
