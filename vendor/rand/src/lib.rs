//! Offline stand-in for the subset of the `rand` crate this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! the exact API surface it consumes: [`rngs::StdRng`], [`SeedableRng`], and
//! the [`RngExt`] extension trait (`random`, `random_range`). The generator
//! behind [`rngs::StdRng`] is xoshiro256++ seeded through SplitMix64 — a
//! small, fast, well-studied PRNG that is more than adequate for seeded,
//! reproducible experiment streams (it is *not* cryptographically secure,
//! which the real `StdRng` is; nothing in this workspace needs that).
//!
//! Swapping back to the real `rand` is a one-line change in the workspace
//! manifest; the call sites are already written against the upstream names.

use std::ops::{Range, RangeInclusive};

/// A random number generator core: an endless stream of `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Types that can seed and construct an RNG deterministically.
pub trait SeedableRng: Sized {
    /// The fixed-width seed type.
    type Seed;

    /// Constructs the RNG from a full-width seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs the RNG from a `u64`, expanding it to a full seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable uniformly from an RNG's raw bit stream.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that can produce a uniform sample of `T`.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

// The span is computed in the type's unsigned counterpart so that wide
// signed ranges (e.g. i32::MIN..i32::MAX) cannot overflow; the wrapping
// add back onto `start` is exact modulo 2^n.
macro_rules! impl_int_sample_range {
    ($(($t:ty, $ut:ty)),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = self.end.wrapping_sub(self.start) as $ut as u64;
                self.start.wrapping_add(uniform_u64_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = end.wrapping_sub(start) as $ut as u64;
                if span == <$ut>::MAX as u64 {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(uniform_u64_below(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_int_sample_range!((usize, usize), (u64, u64), (u32, u32), (u8, u8), (i64, u64), (i32, u32));

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        self.start + (self.end - self.start) * f64::sample(rng)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample from empty range");
        start + (end - start) * f64::sample(rng)
    }
}

/// Unbiased uniform draw from `0..bound` via rejection sampling.
fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % bound;
        }
    }
}

/// Convenience sampling methods, blanket-implemented for every [`RngCore`].
pub trait RngExt: RngCore {
    /// Draws one value of `T` from its standard distribution
    /// (uniform `[0, 1)` for floats, uniform over all values for integers).
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws one value uniformly from `range`.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p.clamp(0.0, 1.0)
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

pub mod rngs {
    //! Concrete generator types.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic RNG: xoshiro256++.
    ///
    /// Unlike upstream `rand`'s `StdRng` this is not cryptographically
    /// secure; it is a statistically strong, reproducible stream generator,
    /// which is all the experiment code requires.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn next_raw(&mut self) -> u64 {
            let result =
                (self.s[0].wrapping_add(self.s[3])).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.next_raw()
        }
    }

    /// SplitMix64 step, used to expand a `u64` seed into generator state.
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // xoshiro must not start from the all-zero state.
            if s == [0; 4] {
                return Self::seed_from_u64(0);
            }
            Self { s }
        }

        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            Self {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let xs: Vec<u64> = (0..8).map(|_| a.random()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.random()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn f64_samples_live_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_samples_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(5);
        for i in 0..1000usize {
            let hi = i % 17;
            let v = rng.random_range(0..=hi);
            assert!(v <= hi);
            let w = rng.random_range(0..hi + 1);
            assert!(w <= hi);
        }
    }

    #[test]
    fn wide_signed_ranges_do_not_overflow() {
        let mut rng = StdRng::seed_from_u64(13);
        for _ in 0..1000 {
            let v = rng.random_range(-2_000_000_000i32..2_000_000_000);
            assert!((-2_000_000_000..2_000_000_000).contains(&v));
            let w = rng.random_range(i64::MIN..=i64::MAX);
            let _ = w; // full-width draw must not panic
            let u = rng.random_range(i32::MIN..i32::MAX);
            assert!(u < i32::MAX);
        }
    }

    #[test]
    fn from_seed_bytes_round_trip_is_deterministic() {
        let seed = [42u8; 32];
        let mut a = StdRng::from_seed(seed);
        let mut b = StdRng::from_seed(seed);
        assert_eq!(a.random::<u64>(), b.random::<u64>());
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..20_000).filter(|_| rng.random_bool(0.25)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.25).abs() < 0.02, "rate {rate}");
    }
}
