//! Offline stand-in for the subset of the `criterion` benchmark harness this
//! workspace uses: [`Criterion`], [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_function`], [`Bencher::iter`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! The build environment has no access to crates.io, so the bench targets
//! compile against this shim instead. It is a real (if spartan) harness: it
//! warms each benchmark up, runs timed samples under the configured budget,
//! and prints mean / min / max wall-clock per iteration. It does not do
//! criterion's statistical analysis, HTML reports, or baseline comparison.
//!
//! **Machine-readable baselines:** when the `SBRL_BENCH_JSON` environment
//! variable names a file, the harness additionally records every benchmark's
//! median wall-clock there as JSON (`{"bench", "git_rev", "threads",
//! "results": [{"name", "median_ns", "samples"}]}`) — the `BENCH_*.json`
//! baseline format tracked under `results/` and documented in
//! `docs/PERFORMANCE.md`. The file is rewritten after every benchmark, so a
//! partial run still leaves a valid snapshot.
//!
//! Swapping back to the real `criterion` is a one-line change in the
//! workspace manifest; the bench sources already use the upstream names.

use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Every `(id, median_ns, samples)` recorded so far in this process, in
/// execution order, feeding the `SBRL_BENCH_JSON` snapshot.
static RECORDED: Mutex<Vec<(String, u128, usize)>> = Mutex::new(Vec::new());

/// The bench name for the JSON snapshot: `SBRL_BENCH_NAME` if set, else the
/// executable stem with cargo's trailing `-<hash>` stripped.
fn bench_name() -> String {
    if let Ok(name) = std::env::var("SBRL_BENCH_NAME") {
        return name;
    }
    let stem = std::env::current_exe()
        .ok()
        .and_then(|p| p.file_stem().map(|s| s.to_string_lossy().into_owned()))
        .unwrap_or_else(|| "bench".to_string());
    strip_cargo_hash(&stem).to_string()
}

/// Strips cargo's trailing `-<hex hash>` disambiguator from a bench
/// executable stem (`gemm-0a1b2c3d4e5f6789` → `gemm`); stems without a
/// plausible hash suffix pass through unchanged.
fn strip_cargo_hash(stem: &str) -> &str {
    match stem.rsplit_once('-') {
        Some((base, hash))
            if !base.is_empty()
                && hash.len() >= 8
                && hash.bytes().all(|b| b.is_ascii_hexdigit()) =>
        {
            base
        }
        _ => stem,
    }
}

/// Best-effort short git revision for provenance; "unknown" when git or the
/// repository is unavailable.
fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// The thread count recorded in the snapshot: `SBRL_THREADS` when parsable
/// and non-zero, else the machine's available parallelism.
fn recorded_threads() -> usize {
    match std::env::var("SBRL_THREADS").ok().and_then(|v| v.trim().parse::<usize>().ok()) {
        Some(n) if n >= 1 => n,
        _ => std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
    }
}

fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

/// Records one result and, if `SBRL_BENCH_JSON` is set, rewrites the
/// snapshot file with everything recorded so far.
fn record_result(id: &str, median_ns: u128, samples: usize) {
    let mut recorded = RECORDED.lock().expect("bench recorder poisoned");
    recorded.push((id.to_string(), median_ns, samples));
    let Ok(path) = std::env::var("SBRL_BENCH_JSON") else {
        return;
    };
    let mut body = String::new();
    body.push_str("{\n");
    body.push_str(&format!("  \"bench\": \"{}\",\n", json_escape(&bench_name())));
    body.push_str(&format!("  \"git_rev\": \"{}\",\n", json_escape(&git_rev())));
    body.push_str(&format!("  \"threads\": {},\n", recorded_threads()));
    body.push_str("  \"results\": [\n");
    for (i, (name, median, count)) in recorded.iter().enumerate() {
        let comma = if i + 1 < recorded.len() { "," } else { "" };
        body.push_str(&format!(
            "    {{\"name\": \"{}\", \"median_ns\": {median}, \"samples\": {count}}}{comma}\n",
            json_escape(name)
        ));
    }
    body.push_str("  ]\n}\n");
    if let Err(e) = std::fs::write(&path, body) {
        eprintln!("warning: could not write {path}: {e}");
    }
}

/// Benchmark harness configuration and entry point.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    /// `--test` smoke mode: run each benchmark exactly once, untimed.
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let args: Vec<String> = std::env::args().collect();
        Self {
            sample_size: 20,
            measurement_time: Duration::from_secs(5),
            warm_up_time: Duration::from_secs(1),
            test_mode: args.iter().any(|a| a == "--test"),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Sets the wall-clock budget for the timed samples of one benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Sets the wall-clock budget for the untimed warm-up of one benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.to_string() }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.to_string();
        self.run_one(&id, f);
        self
    }

    fn run_one<F>(&mut self, id: &str, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            sample_size: if self.test_mode { 1 } else { self.sample_size },
            measurement_time: self.measurement_time,
            warm_up_time: if self.test_mode { Duration::ZERO } else { self.warm_up_time },
            samples: Vec::new(),
        };
        f(&mut bencher);
        if self.test_mode {
            println!("test {id} ... ok");
            return;
        }
        bencher.report(id);
    }
}

/// A named collection of benchmarks sharing one [`Criterion`] configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        self.criterion.run_one(&full, f);
        self
    }

    /// Ends the group. Provided for API compatibility; dropping works too.
    pub fn finish(self) {}
}

/// Timer handle passed to each benchmark closure.
pub struct Bencher {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `routine`, collecting up to `sample_size` samples within the
    /// measurement-time budget. The routine's output is passed through
    /// [`std::hint::black_box`] so the optimiser cannot delete the work.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let warm_deadline = Instant::now() + self.warm_up_time;
        while Instant::now() < warm_deadline {
            std::hint::black_box(routine());
        }
        let deadline = Instant::now() + self.measurement_time;
        for i in 0..self.sample_size {
            let start = Instant::now();
            std::hint::black_box(routine());
            self.samples.push(start.elapsed());
            // Always record at least one sample, then respect the budget.
            if i + 1 < self.sample_size && Instant::now() > deadline {
                break;
            }
        }
    }

    fn report(&self, id: &str) {
        if self.samples.is_empty() {
            println!("{id:<40} no samples recorded");
            return;
        }
        let total: Duration = self.samples.iter().sum();
        let mean = total / self.samples.len() as u32;
        let min = self.samples.iter().min().expect("non-empty");
        let max = self.samples.iter().max().expect("non-empty");
        println!(
            "{id:<40} time: [{:>12?} {:>12?} {:>12?}]  ({} samples)",
            min,
            mean,
            max,
            self.samples.len()
        );
        let mut sorted = self.samples.clone();
        sorted.sort();
        let median = sorted[sorted.len() / 2];
        record_result(id, median.as_nanos(), self.samples.len());
    }
}

/// Declares a benchmark group function, mirroring criterion's macro forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench binary's `main`, running each declared group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_samples_and_respects_sample_size() {
        let mut c = Criterion::default()
            .sample_size(5)
            .measurement_time(Duration::from_secs(1))
            .warm_up_time(Duration::ZERO);
        let mut ran = 0usize;
        let mut group = c.benchmark_group("shim");
        group.bench_function("counter", |b| {
            b.iter(|| {
                ran += 1;
                ran
            });
        });
        group.finish();
        assert!(ran >= 5, "routine ran {ran} times");
    }

    #[test]
    fn recorder_produces_a_valid_json_snapshot() {
        record_result("group/case_a", 12_345, 10);
        record_result("group/case_b", 67_890, 5);
        let recorded = RECORDED.lock().expect("recorder");
        assert!(recorded.iter().any(|(n, m, s)| n == "group/case_a" && *m == 12_345 && *s == 10));
        assert!(recorded.iter().any(|(n, m, s)| n == "group/case_b" && *m == 67_890 && *s == 5));
    }

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape("plain/name_1"), "plain/name_1");
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(json_escape("x\ny"), "x\\u000ay");
    }

    #[test]
    fn strip_cargo_hash_only_removes_plausible_hashes() {
        assert_eq!(strip_cargo_hash("gemm-0a1b2c3d4e5f6789"), "gemm");
        assert_eq!(strip_cargo_hash("train_epoch-DEADBEEFdeadbeef"), "train_epoch");
        // No suffix, non-hex suffix, or too-short suffix pass through.
        assert_eq!(strip_cargo_hash("train_epoch"), "train_epoch");
        assert_eq!(strip_cargo_hash("gemm-notahash!"), "gemm-notahash!");
        assert_eq!(strip_cargo_hash("micro-abc"), "micro-abc");
        assert_eq!(strip_cargo_hash("-0123456789abcdef"), "-0123456789abcdef");
    }

    #[test]
    fn builder_methods_chain() {
        let c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(10))
            .warm_up_time(Duration::from_millis(1));
        assert_eq!(c.sample_size, 3);
        assert_eq!(c.measurement_time, Duration::from_millis(10));
        assert_eq!(c.warm_up_time, Duration::from_millis(1));
    }
}
