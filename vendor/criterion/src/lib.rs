//! Offline stand-in for the subset of the `criterion` benchmark harness this
//! workspace uses: [`Criterion`], [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_function`], [`Bencher::iter`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! The build environment has no access to crates.io, so the bench targets
//! compile against this shim instead. It is a real (if spartan) harness: it
//! warms each benchmark up, runs timed samples under the configured budget,
//! and prints mean / min / max wall-clock per iteration. It does not do
//! criterion's statistical analysis, HTML reports, or baseline comparison.
//!
//! Swapping back to the real `criterion` is a one-line change in the
//! workspace manifest; the bench sources already use the upstream names.

use std::time::{Duration, Instant};

/// Benchmark harness configuration and entry point.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    /// `--test` smoke mode: run each benchmark exactly once, untimed.
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let args: Vec<String> = std::env::args().collect();
        Self {
            sample_size: 20,
            measurement_time: Duration::from_secs(5),
            warm_up_time: Duration::from_secs(1),
            test_mode: args.iter().any(|a| a == "--test"),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Sets the wall-clock budget for the timed samples of one benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Sets the wall-clock budget for the untimed warm-up of one benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.to_string() }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.to_string();
        self.run_one(&id, f);
        self
    }

    fn run_one<F>(&mut self, id: &str, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            sample_size: if self.test_mode { 1 } else { self.sample_size },
            measurement_time: self.measurement_time,
            warm_up_time: if self.test_mode { Duration::ZERO } else { self.warm_up_time },
            samples: Vec::new(),
        };
        f(&mut bencher);
        if self.test_mode {
            println!("test {id} ... ok");
            return;
        }
        bencher.report(id);
    }
}

/// A named collection of benchmarks sharing one [`Criterion`] configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        self.criterion.run_one(&full, f);
        self
    }

    /// Ends the group. Provided for API compatibility; dropping works too.
    pub fn finish(self) {}
}

/// Timer handle passed to each benchmark closure.
pub struct Bencher {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `routine`, collecting up to `sample_size` samples within the
    /// measurement-time budget. The routine's output is passed through
    /// [`std::hint::black_box`] so the optimiser cannot delete the work.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let warm_deadline = Instant::now() + self.warm_up_time;
        while Instant::now() < warm_deadline {
            std::hint::black_box(routine());
        }
        let deadline = Instant::now() + self.measurement_time;
        for i in 0..self.sample_size {
            let start = Instant::now();
            std::hint::black_box(routine());
            self.samples.push(start.elapsed());
            // Always record at least one sample, then respect the budget.
            if i + 1 < self.sample_size && Instant::now() > deadline {
                break;
            }
        }
    }

    fn report(&self, id: &str) {
        if self.samples.is_empty() {
            println!("{id:<40} no samples recorded");
            return;
        }
        let total: Duration = self.samples.iter().sum();
        let mean = total / self.samples.len() as u32;
        let min = self.samples.iter().min().expect("non-empty");
        let max = self.samples.iter().max().expect("non-empty");
        println!(
            "{id:<40} time: [{:>12?} {:>12?} {:>12?}]  ({} samples)",
            min,
            mean,
            max,
            self.samples.len()
        );
    }
}

/// Declares a benchmark group function, mirroring criterion's macro forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench binary's `main`, running each declared group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_samples_and_respects_sample_size() {
        let mut c = Criterion::default()
            .sample_size(5)
            .measurement_time(Duration::from_secs(1))
            .warm_up_time(Duration::ZERO);
        let mut ran = 0usize;
        let mut group = c.benchmark_group("shim");
        group.bench_function("counter", |b| {
            b.iter(|| {
                ran += 1;
                ran
            });
        });
        group.finish();
        assert!(ran >= 5, "routine ran {ran} times");
    }

    #[test]
    fn builder_methods_chain() {
        let c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(10))
            .warm_up_time(Duration::from_millis(1));
        assert_eq!(c.sample_size, 3);
        assert_eq!(c.measurement_time, Duration::from_millis(10));
        assert_eq!(c.warm_up_time, Duration::from_millis(1));
    }
}
