//! Offline stand-in for the subset of the `proptest` framework this
//! workspace uses: the [`proptest!`] macro, the [`strategy::Strategy`] trait
//! with `prop_map`, range and tuple strategies, [`collection::vec()`], the
//! `prop_assert*` macros, and [`test_runner::Config`] /
//! [`test_runner::TestCaseError`].
//!
//! The build environment has no access to crates.io, so the property-based
//! suite compiles against this shim. Semantics: each `proptest!` test runs
//! `Config::cases` deterministic cases (the RNG is seeded from the test name
//! and case index), and a failing case panics with the case's inputs left to
//! the assertion message. There is **no shrinking** — the first failing case
//! is reported as-is — and no persistence of failing seeds.
//!
//! Swapping back to the real `proptest` is a one-line change in the
//! workspace manifest; the test sources already use the upstream names.

pub mod strategy {
    //! The [`Strategy`] trait and primitive strategies over ranges/tuples.

    use rand::rngs::StdRng;
    use rand::SampleRange;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    ///
    /// Unlike upstream proptest there is no value tree / shrinking: a
    /// strategy is simply a seeded generator.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Draws one value from the strategy.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<T, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> T,
        {
            Map { source: self, map: f }
        }
    }

    /// Strategy adaptor produced by [`Strategy::prop_map`].
    #[derive(Clone, Debug)]
    pub struct Map<S, F> {
        source: S,
        map: F,
    }

    impl<S, F, T> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> T,
    {
        type Value = T;

        fn generate(&self, rng: &mut StdRng) -> T {
            (self.map)(self.source.generate(rng))
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    self.clone().sample_single(rng)
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    self.clone().sample_single(rng)
                }
            }
        )*};
    }

    impl_range_strategy!(usize, u64, u32, u8, i64, i32, f64);

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
    }
}

pub mod collection {
    //! Strategies for collections.

    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::RngExt;
    use std::ops::{Range, RangeInclusive};

    /// The permitted lengths of a generated collection.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        min: usize,
        /// Inclusive upper bound.
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> Self {
            Self { min: exact, max: exact }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self { min: r.start, max: r.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            Self { min: *r.start(), max: *r.end() }
        }
    }

    /// A strategy generating `Vec`s of `element`-generated values with a
    /// length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// Strategy returned by [`vec()`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let len = rng.random_range(self.size.min..=self.size.max);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! Case execution: configuration, error type, and the case loop driven
    //! by the [`proptest!`](crate::proptest) macro expansion.

    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Per-block configuration (`#![proptest_config(...)]`).
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of cases to run for each test.
        pub cases: u32,
    }

    impl Default for Config {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }

    impl Config {
        /// A config running `cases` cases per test.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    /// A failed test case.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// The case failed with the contained message.
        Fail(String),
    }

    impl TestCaseError {
        /// Builds a failure from any displayable reason.
        pub fn fail<M: std::fmt::Display>(reason: M) -> Self {
            Self::Fail(reason.to_string())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                Self::Fail(msg) => write!(f, "{msg}"),
            }
        }
    }

    impl std::error::Error for TestCaseError {}

    /// Deterministic per-test, per-case RNG seed.
    fn case_seed(test_name: &str, case: u32) -> u64 {
        // FNV-1a over the test name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h ^ ((case as u64) << 32 | case as u64)
    }

    /// Runs `body` for each case with a deterministically seeded RNG,
    /// panicking on the first failure.
    pub fn run_cases<F>(config: Config, test_name: &str, mut body: F)
    where
        F: FnMut(&mut StdRng) -> Result<(), TestCaseError>,
    {
        for case in 0..config.cases {
            let mut rng = StdRng::seed_from_u64(case_seed(test_name, case));
            if let Err(err) = body(&mut rng) {
                panic!(
                    "proptest case {case}/{total} of `{test_name}` failed: {err}",
                    total = config.cases
                );
            }
        }
    }
}

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude`.

    pub use crate::strategy::{Map, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Declares property-based tests. Each `fn name(arg in strategy, ...)` item
/// becomes a `#[test]` running [`test_runner::Config::cases`] seeded cases.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::test_runner::run_cases(
                    $config,
                    stringify!($name),
                    |__proptest_rng| {
                        $(
                            let $arg =
                                $crate::strategy::Strategy::generate(&($strategy), __proptest_rng);
                        )+
                        let __proptest_result: ::std::result::Result<
                            (),
                            $crate::test_runner::TestCaseError,
                        > = (|| {
                            $body
                            #[allow(unreachable_code)]
                            ::std::result::Result::Ok(())
                        })();
                        __proptest_result
                    },
                );
            }
        )*
    };
    ( $($rest:tt)* ) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::Config::default())]
            $($rest)*
        }
    };
}

/// Asserts a condition inside a [`proptest!`] body, failing the case (not
/// aborting the process) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `(left == right)`\n  left: `{left:?}`\n right: `{right:?}`"
        );
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `(left != right)`\n  both: `{left:?}`"
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn range_strategies_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..500 {
            let x = (-3.0f64..3.0).generate(&mut rng);
            assert!((-3.0..3.0).contains(&x));
            let n = (1usize..50).generate(&mut rng);
            assert!((1..50).contains(&n));
        }
    }

    #[test]
    fn vec_strategy_honours_exact_and_ranged_sizes() {
        let mut rng = StdRng::seed_from_u64(2);
        let exact = crate::collection::vec(0.0f64..1.0, 12).generate(&mut rng);
        assert_eq!(exact.len(), 12);
        for _ in 0..100 {
            let ranged = crate::collection::vec(0u8..2, 1..60).generate(&mut rng);
            assert!((1..60).contains(&ranged.len()));
            assert!(ranged.iter().all(|&v| v < 2));
        }
    }

    #[test]
    fn prop_map_and_tuples_compose() {
        let mut rng = StdRng::seed_from_u64(3);
        let strat = crate::collection::vec((-2.0f64..2.0, -2.0f64..2.0), 10..60)
            .prop_map(|pairs| pairs.len());
        let len = strat.generate(&mut rng);
        assert!((10..60).contains(&len));
    }

    // The macro path itself, exercised end to end.
    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_generates_runnable_cases(x in 0.0f64..1.0, n in 1usize..10) {
            prop_assert!((0.0..1.0).contains(&x));
            prop_assert_eq!(n.min(9), n);
            prop_assert_ne!(n, 0);
        }
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failing_case_panics_with_context() {
        crate::test_runner::run_cases(ProptestConfig::with_cases(4), "always_fails", |_rng| {
            Err(TestCaseError::fail("expected failure"))
        });
    }
}
