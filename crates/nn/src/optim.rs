//! Optimisers and learning-rate schedules.
//!
//! The paper trains all methods with Adam and an exponentially decaying
//! learning rate (Sec. V-C); plain SGD is included as a test fixture.

use sbrl_tensor::{Graph, Matrix};

use crate::params::{Binding, ParamStore};

/// Learning-rate schedule evaluated per optimisation step.
#[derive(Clone, Copy, Debug)]
pub enum LrSchedule {
    /// Constant learning rate.
    Constant,
    /// `lr(t) = lr0 * rate^(t / steps)` — smooth exponential decay.
    ExponentialDecay {
        /// Multiplicative decay applied every `steps` steps.
        rate: f64,
        /// Step interval over which one `rate` factor is applied.
        steps: usize,
    },
}

impl LrSchedule {
    /// Learning-rate multiplier at step `t`.
    pub fn factor(self, t: usize) -> f64 {
        match self {
            LrSchedule::Constant => 1.0,
            LrSchedule::ExponentialDecay { rate, steps } => {
                rate.powf(t as f64 / steps.max(1) as f64)
            }
        }
    }
}

/// Shared optimiser interface: consume gradients from the current graph and
/// update the parameter store in place.
pub trait Optimizer {
    /// Applies one update using the gradients bound in `binding`.
    fn step(&mut self, store: &mut ParamStore, g: &Graph, binding: &Binding);
    /// The step counter (number of updates applied so far).
    fn steps_taken(&self) -> usize;
}

/// Adam (Kingma & Ba, 2015) with optional LR decay and gradient clipping.
pub struct Adam {
    lr: f64,
    beta1: f64,
    beta2: f64,
    eps: f64,
    schedule: LrSchedule,
    /// Global gradient-norm clip; `None` disables clipping.
    clip_norm: Option<f64>,
    t: usize,
    m: Vec<Option<Matrix>>,
    v: Vec<Option<Matrix>>,
}

impl Adam {
    /// Default global gradient-norm clip installed by [`Adam::new`].
    /// Recovery policies escalate clipping *down* from this value
    /// (`sbrl-core`'s rollback path), so it is public: the starting point
    /// of the escalation has a single source of truth.
    pub const DEFAULT_CLIP_NORM: f64 = 10.0;

    /// Creates an Adam optimiser for every parameter in `store`.
    pub fn new(store: &ParamStore, lr: f64) -> Self {
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            schedule: LrSchedule::Constant,
            clip_norm: Some(Self::DEFAULT_CLIP_NORM),
            t: 0,
            m: vec![None; store.len()],
            v: vec![None; store.len()],
        }
    }

    /// Sets the LR schedule (builder style).
    pub fn with_schedule(mut self, schedule: LrSchedule) -> Self {
        self.schedule = schedule;
        self
    }

    /// Sets (or disables) global gradient-norm clipping.
    pub fn with_clip_norm(mut self, clip: Option<f64>) -> Self {
        self.clip_norm = clip;
        self
    }

    /// Current effective learning rate.
    pub fn current_lr(&self) -> f64 {
        self.lr * self.schedule.factor(self.t)
    }
}

impl Optimizer for Adam {
    // lint: no_alloc
    fn step(&mut self, store: &mut ParamStore, g: &Graph, binding: &Binding) {
        self.t += 1;
        let lr_t = self.lr * self.schedule.factor(self.t);
        let bias1 = 1.0 - self.beta1.powi(self.t as i32);
        let bias2 = 1.0 - self.beta2.powi(self.t as i32);

        // Optional global-norm clipping across all bound gradients.
        let mut scale = 1.0;
        if let Some(max_norm) = self.clip_norm {
            let mut total = 0.0;
            for (_, id) in binding.bound() {
                if let Some(grad) = g.grad(id) {
                    total += grad.as_slice().iter().map(|x| x * x).sum::<f64>();
                }
            }
            let norm = total.sqrt();
            if norm > max_norm {
                scale = max_norm / norm;
            }
        }

        for (h, id) in binding.bound() {
            let Some(grad) = g.grad(id) else { continue };
            // lint: allow(alloc) — warm-up only: moment buffers are created on
            // the first step per parameter and reused for the fit's lifetime.
            let m = self.m[h.0].get_or_insert_with(|| Matrix::zeros(grad.rows(), grad.cols()));
            // lint: allow(alloc) — warm-up only, as above.
            let v = self.v[h.0].get_or_insert_with(|| Matrix::zeros(grad.rows(), grad.cols()));
            let param = store.get_mut(h);
            // The gradient is read in place (no clone); clip scaling is
            // applied per element only when it fires, matching the historical
            // `grad.scale(scale)` bit for bit while keeping the steady-state
            // step allocation-free.
            for ((p, &gr), (mi, vi)) in param
                .as_mut_slice()
                .iter_mut()
                .zip(grad.as_slice())
                .zip(m.as_mut_slice().iter_mut().zip(v.as_mut_slice().iter_mut()))
            {
                let gi = if scale != 1.0 { gr * scale } else { gr };
                *mi = self.beta1 * *mi + (1.0 - self.beta1) * gi;
                *vi = self.beta2 * *vi + (1.0 - self.beta2) * gi * gi;
                let m_hat = *mi / bias1;
                let v_hat = *vi / bias2;
                *p -= lr_t * m_hat / (v_hat.sqrt() + self.eps);
            }
        }
    }

    fn steps_taken(&self) -> usize {
        self.t
    }
}

/// Plain stochastic gradient descent (test fixture / ablation).
pub struct Sgd {
    lr: f64,
    schedule: LrSchedule,
    t: usize,
}

impl Sgd {
    /// Creates an SGD optimiser.
    pub fn new(lr: f64) -> Self {
        Self { lr, schedule: LrSchedule::Constant, t: 0 }
    }

    /// Sets the LR schedule (builder style).
    pub fn with_schedule(mut self, schedule: LrSchedule) -> Self {
        self.schedule = schedule;
        self
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, store: &mut ParamStore, g: &Graph, binding: &Binding) {
        self.t += 1;
        let lr_t = self.lr * self.schedule.factor(self.t);
        for (h, id) in binding.bound() {
            if let Some(grad) = g.grad(id) {
                store.get_mut(h).add_scaled_assign(-lr_t, grad);
            }
        }
    }

    fn steps_taken(&self) -> usize {
        self.t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::Binding;
    use sbrl_tensor::Graph;

    /// Minimise ||w - target||^2 and check convergence.
    fn run_quadratic(opt: &mut dyn Optimizer, store: &mut ParamStore, iters: usize) -> f64 {
        let h = crate::params::ParamHandle(0);
        let target = Matrix::from_vec(1, 2, vec![3.0, -2.0]);
        for _ in 0..iters {
            let mut g = Graph::new();
            let mut binding = Binding::new(store);
            let w = binding.bind(store, &mut g, h);
            let t = g.constant(target.clone());
            let loss = g.sq_dist(w, t);
            g.backward(loss);
            opt.step(store, &g, &binding);
        }
        store.get(h).max_abs_diff(&target)
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut store = ParamStore::new();
        store.register("w", Matrix::zeros(1, 2));
        let mut opt = Adam::new(&store, 0.1);
        let err = run_quadratic(&mut opt, &mut store, 500);
        assert!(err < 1e-3, "Adam should converge, err = {err}");
        assert_eq!(opt.steps_taken(), 500);
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut store = ParamStore::new();
        store.register("w", Matrix::zeros(1, 2));
        let mut opt = Sgd::new(0.1);
        let err = run_quadratic(&mut opt, &mut store, 200);
        assert!(err < 1e-3, "SGD should converge, err = {err}");
    }

    #[test]
    fn exponential_decay_shrinks_lr() {
        let s = LrSchedule::ExponentialDecay { rate: 0.5, steps: 100 };
        assert!((s.factor(0) - 1.0).abs() < 1e-12);
        assert!((s.factor(100) - 0.5).abs() < 1e-12);
        assert!((s.factor(200) - 0.25).abs() < 1e-12);
        assert!(s.factor(50) < 1.0 && s.factor(50) > 0.5);
    }

    #[test]
    fn clipping_bounds_update_magnitude() {
        let mut store = ParamStore::new();
        let h = store.register("w", Matrix::zeros(1, 1));
        let mut opt = Adam::new(&store, 0.1).with_clip_norm(Some(1.0));
        // Huge gradient: loss = 1e6 * w -> grad 1e6, clipped to norm 1.
        let mut g = Graph::new();
        let mut binding = Binding::new(&store);
        let w = binding.bind(&store, &mut g, h);
        let scaled = g.scale(w, 1e6);
        let loss = g.sum(scaled);
        g.backward(loss);
        opt.step(&mut store, &g, &binding);
        // Adam's first step magnitude is ~lr regardless, but must be finite & small.
        let v = store.get(h)[(0, 0)];
        assert!(v.abs() <= 0.11, "update too large: {v}");
    }
}
