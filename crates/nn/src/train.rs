//! Training utilities: mini-batch iteration and early stopping.
//!
//! The paper trains for up to 3000 iterations with early stopping on the
//! validation metric and reports the best-evaluated iterate (Sec. V-C).

use rand::rngs::StdRng;
use sbrl_tensor::rng::{permutation, permutation_into};

/// Cycles over shuffled mini-batches of indices `0..n`.
pub struct BatchIter {
    n: usize,
    batch_size: usize,
    order: Vec<usize>,
    cursor: usize,
}

impl BatchIter {
    /// Creates a batch iterator over `n` samples.
    ///
    /// # Panics
    /// Panics if `n == 0` or `batch_size == 0`.
    #[track_caller]
    pub fn new(rng: &mut StdRng, n: usize, batch_size: usize) -> Self {
        assert!(n > 0, "BatchIter requires at least one sample");
        assert!(batch_size > 0, "BatchIter requires a positive batch size");
        Self { n, batch_size: batch_size.min(n), order: permutation(rng, n), cursor: 0 }
    }

    /// Returns the next batch of indices, reshuffling after each epoch.
    ///
    /// The returned slice borrows the iterator's internal order buffer, so
    /// steady-state batching (including the epoch-boundary reshuffle, which
    /// rebuilds the permutation in place with the same RNG draws) performs no
    /// heap allocation.
    pub fn next_batch(&mut self, rng: &mut StdRng) -> &[usize] {
        if self.cursor + self.batch_size > self.n {
            permutation_into(rng, &mut self.order, self.n);
            self.cursor = 0;
        }
        let batch = &self.order[self.cursor..self.cursor + self.batch_size];
        self.cursor += self.batch_size;
        batch
    }

    /// Effective batch size (clamped to `n`).
    pub fn batch_size(&self) -> usize {
        self.batch_size
    }
}

/// Early stopping on a minimised validation metric, tracking the best step.
pub struct EarlyStopping {
    patience: usize,
    min_delta: f64,
    best: f64,
    best_step: usize,
    since_best: usize,
}

impl EarlyStopping {
    /// Creates a monitor that stops after `patience` non-improving checks.
    pub fn new(patience: usize) -> Self {
        Self { patience, min_delta: 1e-9, best: f64::INFINITY, best_step: 0, since_best: 0 }
    }

    /// Requires improvements to exceed `min_delta` to count.
    pub fn with_min_delta(mut self, min_delta: f64) -> Self {
        self.min_delta = min_delta;
        self
    }

    /// Records a validation value at `step`; returns `true` when the budget
    /// of non-improving checks is exhausted and training should stop.
    pub fn update(&mut self, step: usize, value: f64) -> bool {
        if value.is_nan() {
            // NaN never improves; count it against patience.
            self.since_best += 1;
        } else if value < self.best - self.min_delta {
            self.best = value;
            self.best_step = step;
            self.since_best = 0;
        } else {
            self.since_best += 1;
        }
        self.since_best > self.patience
    }

    /// Best value observed so far.
    pub fn best(&self) -> f64 {
        self.best
    }

    /// Step at which the best value was observed.
    pub fn best_step(&self) -> usize {
        self.best_step
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbrl_tensor::rng::rng_from_seed;

    #[test]
    fn batches_cover_all_samples_each_epoch() {
        let mut rng = rng_from_seed(0);
        let mut it = BatchIter::new(&mut rng, 10, 5);
        let mut seen: Vec<usize> = Vec::new();
        seen.extend(it.next_batch(&mut rng));
        seen.extend(it.next_batch(&mut rng));
        seen.sort_unstable();
        assert_eq!(seen, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn batch_size_clamps_to_n() {
        let mut rng = rng_from_seed(1);
        let mut it = BatchIter::new(&mut rng, 3, 100);
        assert_eq!(it.batch_size(), 3);
        assert_eq!(it.next_batch(&mut rng).len(), 3);
    }

    #[test]
    fn partial_tail_batches_trigger_reshuffle() {
        let mut rng = rng_from_seed(2);
        let mut it = BatchIter::new(&mut rng, 10, 4);
        let mut counts = vec![0usize; 10];
        for _ in 0..25 {
            for &i in it.next_batch(&mut rng) {
                counts[i] += 1;
            }
        }
        // Every sample should appear roughly equally often.
        assert!(counts.iter().all(|&c| c >= 6), "counts {counts:?}");
    }

    #[test]
    fn early_stopping_tracks_best_and_stops() {
        let mut es = EarlyStopping::new(2);
        assert!(!es.update(0, 1.0));
        assert!(!es.update(1, 0.5)); // improvement
        assert!(!es.update(2, 0.6));
        assert!(!es.update(3, 0.7));
        assert!(es.update(4, 0.8)); // third miss > patience 2
        assert_eq!(es.best(), 0.5);
        assert_eq!(es.best_step(), 1);
    }

    #[test]
    fn nan_counts_against_patience() {
        let mut es = EarlyStopping::new(1);
        assert!(!es.update(0, 1.0));
        assert!(!es.update(1, f64::NAN));
        assert!(es.update(2, f64::NAN));
        assert_eq!(es.best(), 1.0);
    }
}
