//! Parameter storage decoupled from the autodiff tape.
//!
//! Because every optimisation step builds a fresh [`Graph`], trainable
//! parameters live outside the tape in a [`ParamStore`]. A [`Binding`]
//! memoises the store-handle → graph-node mapping for one step so that a
//! parameter used by several layers is inserted into the tape exactly once
//! (and therefore accumulates a single, correct gradient).

use sbrl_tensor::{Graph, Matrix, TensorId};

/// Stable handle to a parameter in a [`ParamStore`].
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub struct ParamHandle(pub(crate) usize);

/// Named collection of trainable matrices.
#[derive(Default)]
pub struct ParamStore {
    names: Vec<String>,
    values: Vec<Matrix>,
}

impl ParamStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a parameter and returns its handle.
    pub fn register(&mut self, name: impl Into<String>, init: Matrix) -> ParamHandle {
        self.names.push(name.into());
        self.values.push(init);
        ParamHandle(self.values.len() - 1)
    }

    /// Number of registered parameters.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when no parameters are registered.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Total number of scalar parameters (for model-size reporting).
    pub fn num_scalars(&self) -> usize {
        self.values.iter().map(Matrix::len).sum()
    }

    /// Current value of a parameter.
    pub fn get(&self, h: ParamHandle) -> &Matrix {
        &self.values[h.0]
    }

    /// Mutable value of a parameter.
    pub fn get_mut(&mut self, h: ParamHandle) -> &mut Matrix {
        &mut self.values[h.0]
    }

    /// Name of a parameter.
    pub fn name(&self, h: ParamHandle) -> &str {
        &self.names[h.0]
    }

    /// Iterates over `(handle, name, value)` triples.
    pub fn iter(&self) -> impl Iterator<Item = (ParamHandle, &str, &Matrix)> {
        self.values.iter().enumerate().map(|(i, v)| (ParamHandle(i), self.names[i].as_str(), v))
    }

    /// True when every parameter is finite — cheap NaN tripwire for trainers.
    pub fn all_finite(&self) -> bool {
        self.values.iter().all(Matrix::all_finite)
    }

    /// Snapshot of every parameter value (for best-iterate early stopping).
    pub fn snapshot(&self) -> Vec<Matrix> {
        self.values.clone()
    }

    /// Restores a snapshot taken with [`ParamStore::snapshot`].
    ///
    /// # Panics
    /// Panics if the snapshot does not match the store layout.
    #[track_caller]
    pub fn restore(&mut self, snapshot: &[Matrix]) {
        assert_eq!(snapshot.len(), self.values.len(), "snapshot length mismatch");
        for (v, s) in self.values.iter_mut().zip(snapshot) {
            assert_eq!(v.shape(), s.shape(), "snapshot shape mismatch");
            v.clone_from(s);
        }
    }
}

/// Per-step memoisation of parameter graph nodes.
pub struct Binding {
    ids: Vec<Option<TensorId>>,
    frozen: bool,
}

impl Binding {
    /// Creates a binding sized for `store`.
    pub fn new(store: &ParamStore) -> Self {
        Self { ids: vec![None; store.len()], frozen: false }
    }

    /// Creates a *frozen* binding: parameters enter the graph as constants,
    /// so backward sweeps skip them entirely. Used by alternating schemes
    /// that optimise something else (e.g. sample weights) with the network
    /// held fixed (Algorithm 1, line 7).
    pub fn new_frozen(store: &ParamStore) -> Self {
        Self { ids: vec![None; store.len()], frozen: true }
    }

    /// True when this binding inserts parameters as constants.
    pub fn is_frozen(&self) -> bool {
        self.frozen
    }

    /// Clears the memoised node ids so the binding can serve another step on
    /// a reused [`Graph`] without reallocating (the id table's capacity is
    /// retained).
    pub fn reset(&mut self, store: &ParamStore) {
        self.ids.clear();
        self.ids.resize(store.len(), None);
    }

    /// Inserts the parameter into the graph (once) and returns its node id.
    ///
    /// Parameter values are copied into the graph through its buffer pool,
    /// so binding on a warmed-up reused tape performs no heap allocation.
    pub fn bind(&mut self, store: &ParamStore, g: &mut Graph, h: ParamHandle) -> TensorId {
        if let Some(id) = self.ids[h.0] {
            return id;
        }
        let id = if self.frozen {
            g.constant_copied(store.get(h))
        } else {
            g.param_copied(store.get(h))
        };
        self.ids[h.0] = Some(id);
        id
    }

    /// Graph node of a parameter if it was bound this step.
    pub fn id_of(&self, h: ParamHandle) -> Option<TensorId> {
        self.ids[h.0]
    }

    /// Iterates over `(handle, tensor_id)` for all parameters bound this step.
    pub fn bound(&self) -> impl Iterator<Item = (ParamHandle, TensorId)> + '_ {
        self.ids.iter().enumerate().filter_map(|(i, id)| id.map(|id| (ParamHandle(i), id)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_lookup() {
        let mut store = ParamStore::new();
        let a = store.register("w", Matrix::ones(2, 3));
        let b = store.register("b", Matrix::zeros(1, 3));
        assert_eq!(store.len(), 2);
        assert_eq!(store.num_scalars(), 9);
        assert_eq!(store.name(a), "w");
        assert_eq!(store.get(b).shape(), (1, 3));
        store.get_mut(a)[(0, 0)] = 5.0;
        assert_eq!(store.get(a)[(0, 0)], 5.0);
    }

    #[test]
    fn binding_memoises_graph_nodes() {
        let mut store = ParamStore::new();
        let w = store.register("w", Matrix::ones(2, 2));
        let mut g = Graph::new();
        let mut binding = Binding::new(&store);
        let id1 = binding.bind(&store, &mut g, w);
        let id2 = binding.bind(&store, &mut g, w);
        assert_eq!(id1, id2);
        assert_eq!(g.num_nodes(), 1);
        assert_eq!(binding.id_of(w), Some(id1));
        assert_eq!(binding.bound().count(), 1);
    }

    #[test]
    fn shared_param_accumulates_one_gradient() {
        // loss = sum(w) + sum(w*w): single node, both contributions add up.
        let mut store = ParamStore::new();
        let w = store.register("w", Matrix::full(1, 2, 3.0));
        let mut g = Graph::new();
        let mut binding = Binding::new(&store);
        let id = binding.bind(&store, &mut g, w);
        let id_again = binding.bind(&store, &mut g, w);
        let s1 = g.sum(id);
        let sq = g.square(id_again);
        let s2 = g.sum(sq);
        let loss = g.add(s1, s2);
        g.backward(loss);
        // d/dw (w + w^2) = 1 + 2*3 = 7 per element
        assert!(g.grad(id).unwrap().approx_eq(&Matrix::full(1, 2, 7.0), 1e-12));
    }

    #[test]
    fn snapshot_roundtrip() {
        let mut store = ParamStore::new();
        let w = store.register("w", Matrix::ones(2, 2));
        let snap = store.snapshot();
        store.get_mut(w)[(0, 0)] = 99.0;
        store.restore(&snap);
        assert_eq!(store.get(w)[(0, 0)], 1.0);
    }

    #[test]
    fn finiteness_tripwire() {
        let mut store = ParamStore::new();
        let w = store.register("w", Matrix::ones(1, 1));
        assert!(store.all_finite());
        store.get_mut(w)[(0, 0)] = f64::INFINITY;
        assert!(!store.all_finite());
    }
}
