//! # sbrl-nn
//!
//! Minimal neural-network stack for the SBRL-HAP reproduction: dense layers
//! with per-layer activation taps, batch / representation normalisation,
//! Adam with exponential LR decay, weighted outcome losses and early
//! stopping — exactly the training machinery Sec. V-C of the paper assumes.
//!
//! Parameters live in a [`ParamStore`] outside the autodiff tape; each
//! optimisation step binds them into a fresh [`sbrl_tensor::Graph`] through a
//! [`Binding`], runs backward, and lets an [`Optimizer`] update the store.

pub mod init;
pub mod layers;
pub mod loss;
pub mod optim;
pub mod params;
pub mod train;

pub use init::Init;
pub use layers::{l2_normalize_rows, Activation, BatchNorm, Linear, Mlp, MlpOutput};
pub use loss::OutcomeLoss;
pub use optim::{Adam, LrSchedule, Optimizer, Sgd};
pub use params::{Binding, ParamHandle, ParamStore};
pub use train::{BatchIter, EarlyStopping};
