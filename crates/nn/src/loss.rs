//! Prediction losses (optionally sample-weighted) and L2 regularisation.
//!
//! The paper uses mean squared error for continuous outcomes and
//! cross-entropy for binary outcomes (Eq. 12), and plugs learned sample
//! weights into the factual loss (Eq. 13).

use sbrl_tensor::{Graph, TensorId};

use crate::params::{Binding, ParamStore};

/// Mean squared error `mean((pred - target)^2)`.
pub fn mse(g: &mut Graph, pred: TensorId, target: TensorId) -> TensorId {
    let d = g.sub(pred, target);
    let sq = g.square(d);
    g.mean(sq)
}

/// Sample-weighted MSE `mean(w_i * (pred_i - target_i)^2)`.
///
/// `weights` must be an `n x 1` column aligned with the rows of `pred`.
pub fn weighted_mse(
    g: &mut Graph,
    pred: TensorId,
    target: TensorId,
    weights: TensorId,
) -> TensorId {
    let d = g.sub(pred, target);
    let sq = g.square(d);
    let w = g.mul_col(sq, weights);
    g.mean(w)
}

/// Numerically stable binary cross-entropy on logits:
/// `mean(softplus(z) - z*y)` (equivalent to `-[y ln σ(z) + (1-y) ln(1-σ(z))]`).
pub fn bce_with_logits(g: &mut Graph, logits: TensorId, targets: TensorId) -> TensorId {
    let sp = g.softplus(logits);
    let zy = g.mul(logits, targets);
    let per = g.sub(sp, zy);
    g.mean(per)
}

/// Sample-weighted binary cross-entropy on logits.
pub fn weighted_bce_with_logits(
    g: &mut Graph,
    logits: TensorId,
    targets: TensorId,
    weights: TensorId,
) -> TensorId {
    let sp = g.softplus(logits);
    let zy = g.mul(logits, targets);
    let per = g.sub(sp, zy);
    let w = g.mul_col(per, weights);
    g.mean(w)
}

/// Outcome loss kind, chosen per dataset (Eq. 12).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OutcomeLoss {
    /// Mean squared error; the prediction head is linear.
    Mse,
    /// Cross-entropy; the prediction head emits logits.
    BceWithLogits,
}

impl OutcomeLoss {
    /// Unweighted loss.
    pub fn loss(self, g: &mut Graph, pred: TensorId, target: TensorId) -> TensorId {
        match self {
            OutcomeLoss::Mse => mse(g, pred, target),
            OutcomeLoss::BceWithLogits => bce_with_logits(g, pred, target),
        }
    }

    /// Sample-weighted loss (Eq. 13).
    pub fn weighted_loss(
        self,
        g: &mut Graph,
        pred: TensorId,
        target: TensorId,
        weights: TensorId,
    ) -> TensorId {
        match self {
            OutcomeLoss::Mse => weighted_mse(g, pred, target, weights),
            OutcomeLoss::BceWithLogits => weighted_bce_with_logits(g, pred, target, weights),
        }
    }

    /// Converts a raw head output into an outcome prediction in value space
    /// (identity for MSE, sigmoid for logits).
    pub fn predict(self, g: &mut Graph, raw: TensorId) -> TensorId {
        match self {
            OutcomeLoss::Mse => raw,
            OutcomeLoss::BceWithLogits => g.sigmoid(raw),
        }
    }
}

/// Sum of squared weights over a set of parameter handles, scaled by
/// `lambda` — the `R_{l2}` term of Eq. 12.
pub fn l2_penalty(
    g: &mut Graph,
    store: &ParamStore,
    binding: &mut Binding,
    handles: &[crate::params::ParamHandle],
    lambda: f64,
) -> TensorId {
    let mut acc = g.scalar_const(0.0);
    // A constant zero start keeps the loss well-defined for an empty list.
    for &h in handles {
        let id = binding.bind(store, g, h);
        let s = g.sumsq(id);
        acc = g.add(acc, s);
    }
    g.scale(acc, lambda)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{Binding, ParamStore};
    use sbrl_tensor::{Graph, Matrix};

    #[test]
    fn mse_matches_hand_computation() {
        let mut g = Graph::new();
        let p = g.constant(Matrix::from_vec(2, 1, vec![1.0, 3.0]));
        let t = g.constant(Matrix::from_vec(2, 1, vec![0.0, 1.0]));
        let l = mse(&mut g, p, t);
        assert!((g.scalar(l) - (1.0 + 4.0) / 2.0).abs() < 1e-12);
    }

    #[test]
    fn weighted_mse_reduces_to_mse_at_unit_weights() {
        let mut g = Graph::new();
        let p = g.constant(Matrix::from_vec(3, 1, vec![1.0, 2.0, 3.0]));
        let t = g.constant(Matrix::from_vec(3, 1, vec![0.0, 0.0, 0.0]));
        let w = g.constant(Matrix::ones(3, 1));
        let lw = weighted_mse(&mut g, p, t, w);
        let l = mse(&mut g, p, t);
        assert!((g.scalar(lw) - g.scalar(l)).abs() < 1e-12);
    }

    #[test]
    fn weights_reweight_samples() {
        let mut g = Graph::new();
        let p = g.constant(Matrix::from_vec(2, 1, vec![1.0, 1.0]));
        let t = g.constant(Matrix::zeros(2, 1));
        let w = g.constant(Matrix::from_vec(2, 1, vec![2.0, 0.0]));
        let lw = weighted_mse(&mut g, p, t, w);
        // (2*1 + 0*1)/2 = 1
        assert!((g.scalar(lw) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn bce_matches_analytic_value() {
        let mut g = Graph::new();
        let z = g.constant(Matrix::from_vec(2, 1, vec![0.0, 0.0]));
        let y = g.constant(Matrix::from_vec(2, 1, vec![1.0, 0.0]));
        let l = bce_with_logits(&mut g, z, y);
        // At logit 0 both classes cost ln 2.
        assert!((g.scalar(l) - 2.0f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn bce_is_stable_for_extreme_logits() {
        let mut g = Graph::new();
        let z = g.constant(Matrix::from_vec(2, 1, vec![1e4, -1e4]));
        let y = g.constant(Matrix::from_vec(2, 1, vec![1.0, 0.0]));
        let l = bce_with_logits(&mut g, z, y);
        let v = g.scalar(l);
        assert!(v.is_finite() && (0.0..1e-6).contains(&v), "loss {v}");
    }

    #[test]
    fn l2_penalty_sums_squares() {
        let mut store = ParamStore::new();
        let a = store.register("a", Matrix::full(1, 2, 2.0)); // sumsq 8
        let b = store.register("b", Matrix::full(2, 1, 1.0)); // sumsq 2
        let mut g = Graph::new();
        let mut binding = Binding::new(&store);
        let l = l2_penalty(&mut g, &store, &mut binding, &[a, b], 0.5);
        assert!((g.scalar(l) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn outcome_loss_predict_maps_logits() {
        let mut g = Graph::new();
        let raw = g.constant(Matrix::scalar(0.0));
        let p = OutcomeLoss::BceWithLogits.predict(&mut g, raw);
        assert!((g.scalar(p) - 0.5).abs() < 1e-12);
        let p2 = OutcomeLoss::Mse.predict(&mut g, raw);
        assert_eq!(g.scalar(p2), 0.0);
    }
}
