//! Weight initialisation schemes.

use rand::rngs::StdRng;
use sbrl_tensor::rng::{rand_uniform, randn_scaled};
use sbrl_tensor::Matrix;

/// Initialisation scheme for dense-layer weights.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Init {
    /// Glorot/Xavier normal: `N(0, 2 / (fan_in + fan_out))`. Good default for
    /// symmetric activations.
    XavierNormal,
    /// He normal: `N(0, 2 / fan_in)`. Good default for ReLU/ELU stacks (used
    /// by the paper's backbones).
    HeNormal,
    /// Uniform on `[-bound, bound]`.
    Uniform(f64),
    /// Normal with explicit standard deviation.
    Normal(f64),
    /// All zeros (used for biases).
    Zeros,
}

impl Init {
    /// Samples a `fan_in x fan_out` matrix according to the scheme.
    pub fn sample(self, rng: &mut StdRng, fan_in: usize, fan_out: usize) -> Matrix {
        match self {
            Init::XavierNormal => {
                let std = (2.0 / (fan_in + fan_out) as f64).sqrt();
                randn_scaled(rng, fan_in, fan_out, 0.0, std)
            }
            Init::HeNormal => {
                let std = (2.0 / fan_in.max(1) as f64).sqrt();
                randn_scaled(rng, fan_in, fan_out, 0.0, std)
            }
            Init::Uniform(bound) => rand_uniform(rng, fan_in, fan_out, -bound, bound),
            Init::Normal(std) => randn_scaled(rng, fan_in, fan_out, 0.0, std),
            Init::Zeros => Matrix::zeros(fan_in, fan_out),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbrl_tensor::rng::rng_from_seed;

    #[test]
    fn shapes_are_respected() {
        let mut rng = rng_from_seed(0);
        for init in
            [Init::XavierNormal, Init::HeNormal, Init::Uniform(0.1), Init::Normal(0.5), Init::Zeros]
        {
            assert_eq!(init.sample(&mut rng, 7, 3).shape(), (7, 3));
        }
    }

    #[test]
    fn he_scale_shrinks_with_fan_in() {
        let mut rng = rng_from_seed(1);
        let narrow = Init::HeNormal.sample(&mut rng, 4, 2000);
        let wide = Init::HeNormal.sample(&mut rng, 400, 2000);
        let std_narrow = narrow.std_axis0().mean();
        let std_wide = wide.std_axis0().mean();
        assert!(std_narrow > std_wide * 5.0, "He init should scale ~1/sqrt(fan_in)");
    }

    #[test]
    fn zeros_is_zero() {
        let mut rng = rng_from_seed(2);
        assert_eq!(Init::Zeros.sample(&mut rng, 3, 3).sum(), 0.0);
    }
}
