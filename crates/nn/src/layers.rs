//! Neural-network layers: dense layers, activations, batch normalisation and
//! multi-layer perceptrons with "layer taps" (the per-layer activations the
//! Hierarchical-Attention Paradigm decorrelates).

use rand::rngs::StdRng;
use sbrl_tensor::{Graph, TensorId};

use crate::init::Init;
use crate::params::{Binding, ParamHandle, ParamStore};

/// Nonlinearity applied after a dense layer.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Activation {
    /// Identity (linear output layer).
    Identity,
    /// Exponential linear unit — the paper's activation (Sec. V-C).
    Elu(f64),
    /// Rectified linear unit.
    Relu,
    /// Hyperbolic tangent.
    Tanh,
    /// Logistic sigmoid.
    Sigmoid,
}

impl Activation {
    /// Applies the activation in graph space.
    pub fn apply(self, g: &mut Graph, x: TensorId) -> TensorId {
        match self {
            Activation::Identity => x,
            Activation::Elu(alpha) => g.elu(x, alpha),
            Activation::Relu => g.relu(x),
            Activation::Tanh => g.tanh(x),
            Activation::Sigmoid => g.sigmoid(x),
        }
    }
}

/// A dense (fully-connected) layer `y = x W + b`.
pub struct Linear {
    w: ParamHandle,
    b: ParamHandle,
    in_dim: usize,
    out_dim: usize,
}

impl Linear {
    /// Registers a new dense layer's parameters in `store`.
    pub fn new(
        store: &mut ParamStore,
        rng: &mut StdRng,
        name: &str,
        in_dim: usize,
        out_dim: usize,
        init: Init,
    ) -> Self {
        let w = store.register(format!("{name}.w"), init.sample(rng, in_dim, out_dim));
        let b = store.register(format!("{name}.b"), Init::Zeros.sample(rng, 1, out_dim));
        Self { w, b, in_dim, out_dim }
    }

    /// Input width.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output width.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Weight handle (exposed for L2 regularisation).
    pub fn weight(&self) -> ParamHandle {
        self.w
    }

    /// Bias handle.
    pub fn bias(&self) -> ParamHandle {
        self.b
    }

    /// Forward pass `x W + b`.
    pub fn forward(
        &self,
        store: &ParamStore,
        binding: &mut Binding,
        g: &mut Graph,
        x: TensorId,
    ) -> TensorId {
        let w = binding.bind(store, g, self.w);
        let b = binding.bind(store, g, self.b);
        let xw = g.matmul(x, w);
        g.add_row(xw, b)
    }
}

/// Batch normalisation over the batch dimension with learnable scale/shift.
///
/// In training mode the batch statistics flow through the graph (so the
/// normalisation is differentiated); running statistics are tracked for
/// evaluation mode, matching the `batch norm` hyper-parameter of the paper's
/// configurations (Tables IV & V).
pub struct BatchNorm {
    gamma: ParamHandle,
    beta: ParamHandle,
    running_mean: Vec<f64>,
    running_var: Vec<f64>,
    momentum: f64,
    eps: f64,
    dim: usize,
}

impl BatchNorm {
    /// Registers batch-norm parameters for `dim` features.
    pub fn new(store: &mut ParamStore, name: &str, dim: usize) -> Self {
        let gamma = store.register(format!("{name}.gamma"), sbrl_tensor::Matrix::ones(1, dim));
        let beta = store.register(format!("{name}.beta"), sbrl_tensor::Matrix::zeros(1, dim));
        Self {
            gamma,
            beta,
            running_mean: vec![0.0; dim],
            running_var: vec![1.0; dim],
            momentum: 0.9,
            eps: 1e-5,
            dim,
        }
    }

    /// Feature width.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The frozen running statistics `(mean, variance)` used at inference —
    /// the training-only state a serialized model must carry alongside its
    /// parameter store.
    pub fn running_stats(&self) -> (&[f64], &[f64]) {
        (&self.running_mean, &self.running_var)
    }

    /// Overwrites the running statistics (model deserialization). Returns
    /// `false` — leaving the layer untouched — when either slice does not
    /// match the feature width.
    pub fn set_running_stats(&mut self, mean: &[f64], var: &[f64]) -> bool {
        if mean.len() != self.dim || var.len() != self.dim {
            return false;
        }
        self.running_mean.copy_from_slice(mean);
        self.running_var.copy_from_slice(var);
        true
    }

    /// Training-mode forward pass: normalises by the batch statistics (which
    /// flow through the tape and are differentiated) and updates the running
    /// averages used at inference. This is the only mutating path — keep it
    /// out of serving code.
    pub fn forward_train(
        &mut self,
        store: &ParamStore,
        binding: &mut Binding,
        g: &mut Graph,
        x: TensorId,
    ) -> TensorId {
        let gamma = binding.bind(store, g, self.gamma);
        let beta = binding.bind(store, g, self.beta);
        let mean = g.mean_axis0(x);
        let centred = g.sub_row(x, mean);
        let sq = g.square(centred);
        let var = g.mean_axis0(sq);
        let var_eps = g.add_scalar(var, self.eps);
        let std = g.sqrt(var_eps);
        // Track running stats outside the tape (reading the node values in
        // place keeps the training step allocation-free).
        let momentum = self.momentum;
        for (rm, &mv) in self.running_mean.iter_mut().zip(g.value(mean).as_slice()) {
            *rm = momentum * *rm + (1.0 - momentum) * mv;
        }
        for (rv, &vv) in self.running_var.iter_mut().zip(g.value(var).as_slice()) {
            *rv = momentum * *rv + (1.0 - momentum) * vv;
        }
        let normalised = g.div_row(centred, std);
        let scaled = g.mul_row(normalised, gamma);
        g.add_row(scaled, beta)
    }

    /// Inference-mode forward pass: normalises by the frozen running
    /// statistics. Takes `&self`, so fitted models can serve concurrently.
    pub fn forward_infer(
        &self,
        store: &ParamStore,
        binding: &mut Binding,
        g: &mut Graph,
        x: TensorId,
    ) -> TensorId {
        let gamma = binding.bind(store, g, self.gamma);
        let beta = binding.bind(store, g, self.beta);
        let mean = g.constant(sbrl_tensor::Matrix::row_vec(&self.running_mean));
        let std_vals: Vec<f64> = self.running_var.iter().map(|v| (v + self.eps).sqrt()).collect();
        let std = g.constant(sbrl_tensor::Matrix::row_vec(&std_vals));
        let centred = g.sub_row(x, mean);
        let normalised = g.div_row(centred, std);
        let scaled = g.mul_row(normalised, gamma);
        g.add_row(scaled, beta)
    }
}

/// Normalises every row of a representation to unit L2 norm — the paper's
/// `rep normalization` option (CFR's representation normalisation).
pub fn l2_normalize_rows(g: &mut Graph, x: TensorId) -> TensorId {
    let sq = g.square(x);
    let sumsq = g.sum_axis1(sq);
    let safe = g.add_scalar(sumsq, 1e-12);
    let norm = g.sqrt(safe);
    g.div_col(x, norm)
}

/// A stack of dense layers with a shared activation, exposing every hidden
/// activation ("taps") for the Hierarchical-Attention Paradigm.
pub struct Mlp {
    layers: Vec<Linear>,
    activation: Activation,
    output_activation: Activation,
}

/// The result of an [`Mlp`] forward pass.
pub struct MlpOutput {
    /// Activations of each layer, in order; the last entry is the output.
    pub taps: Vec<TensorId>,
    /// The final output node (same as `taps.last()`).
    pub output: TensorId,
}

impl Mlp {
    /// Builds an MLP with `dims = [in, h1, ..., out]`; `dims.len() >= 2`.
    ///
    /// # Panics
    /// Panics if fewer than two dims are given.
    #[track_caller]
    pub fn new(
        store: &mut ParamStore,
        rng: &mut StdRng,
        name: &str,
        dims: &[usize],
        activation: Activation,
        output_activation: Activation,
        init: Init,
    ) -> Self {
        assert!(dims.len() >= 2, "Mlp::new requires at least [in, out] dims");
        let layers = dims
            .windows(2)
            .enumerate()
            .map(|(i, w)| Linear::new(store, rng, &format!("{name}.l{i}"), w[0], w[1], init))
            .collect();
        Self { layers, activation, output_activation }
    }

    /// Number of dense layers.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Output width of the final layer.
    pub fn out_dim(&self) -> usize {
        self.layers.last().map_or(0, Linear::out_dim)
    }

    /// Borrow of the dense layers (for L2 regularisation over weights).
    pub fn layers(&self) -> &[Linear] {
        &self.layers
    }

    /// Forward pass returning all layer taps.
    ///
    /// The tap list is drawn from the graph's recycled id-buffer pool;
    /// callers chasing allocation-free steps should return it via
    /// [`Graph::give_id_buf`] once the taps are no longer needed.
    pub fn forward(
        &self,
        store: &ParamStore,
        binding: &mut Binding,
        g: &mut Graph,
        x: TensorId,
    ) -> MlpOutput {
        let mut taps = g.take_id_buf();
        taps.reserve(self.layers.len());
        let mut h = x;
        let last = self.layers.len() - 1;
        for (i, layer) in self.layers.iter().enumerate() {
            let pre = layer.forward(store, binding, g, h);
            let act = if i == last { self.output_activation } else { self.activation };
            h = act.apply(g, pre);
            taps.push(h);
        }
        MlpOutput { output: h, taps }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbrl_tensor::rng::{randn, rng_from_seed};
    use sbrl_tensor::Matrix;

    #[test]
    fn linear_forward_matches_manual() {
        let mut store = ParamStore::new();
        let mut rng = rng_from_seed(0);
        let layer = Linear::new(&mut store, &mut rng, "l", 3, 2, Init::HeNormal);
        // Overwrite with known values.
        *store.get_mut(layer.weight()) = Matrix::from_vec(3, 2, vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0]);
        *store.get_mut(layer.bias()) = Matrix::from_vec(1, 2, vec![0.5, -0.5]);

        let mut g = Graph::new();
        let mut b = Binding::new(&store);
        let x = g.constant(Matrix::from_vec(1, 3, vec![1.0, 2.0, 3.0]));
        let y = layer.forward(&store, &mut b, &mut g, x);
        // y = [1*1+2*0+3*1 + 0.5, 1*0+2*1+3*1 - 0.5] = [4.5, 4.5]
        assert!(g.value(y).approx_eq(&Matrix::from_vec(1, 2, vec![4.5, 4.5]), 1e-12));
    }

    #[test]
    fn mlp_tap_count_and_shapes() {
        let mut store = ParamStore::new();
        let mut rng = rng_from_seed(1);
        let mlp = Mlp::new(
            &mut store,
            &mut rng,
            "mlp",
            &[4, 8, 8, 2],
            Activation::Elu(1.0),
            Activation::Identity,
            Init::HeNormal,
        );
        assert_eq!(mlp.num_layers(), 3);
        assert_eq!(mlp.out_dim(), 2);

        let mut g = Graph::new();
        let mut b = Binding::new(&store);
        let x = g.constant(randn(&mut rng, 5, 4));
        let out = mlp.forward(&store, &mut b, &mut g, x);
        assert_eq!(out.taps.len(), 3);
        assert_eq!(g.value(out.taps[0]).shape(), (5, 8));
        assert_eq!(g.value(out.taps[1]).shape(), (5, 8));
        assert_eq!(g.value(out.output).shape(), (5, 2));
    }

    #[test]
    fn l2_normalize_rows_yields_unit_norms() {
        let mut g = Graph::new();
        let mut rng = rng_from_seed(2);
        let x = g.constant(randn(&mut rng, 6, 4));
        let n = l2_normalize_rows(&mut g, x);
        let v = g.value(n);
        for i in 0..6 {
            let norm: f64 = v.row(i).iter().map(|a| a * a).sum::<f64>().sqrt();
            assert!((norm - 1.0).abs() < 1e-9, "row {i} norm {norm}");
        }
    }

    #[test]
    fn batchnorm_training_standardises_batch() {
        let mut store = ParamStore::new();
        let mut rng = rng_from_seed(3);
        let mut bn = BatchNorm::new(&mut store, "bn", 3);
        let mut g = Graph::new();
        let mut binding = Binding::new(&store);
        let x = g.constant(randn(&mut rng, 64, 3).scale(4.0).add_scalar(10.0));
        let y = bn.forward_train(&store, &mut binding, &mut g, x);
        let v = g.value(y);
        let mean = v.mean_axis0();
        let std = v.std_axis0();
        for j in 0..3 {
            assert!(mean.as_slice()[j].abs() < 1e-8);
            assert!((std.as_slice()[j] - 1.0).abs() < 1e-3);
        }
    }

    #[test]
    fn batchnorm_eval_uses_running_stats() {
        let mut store = ParamStore::new();
        let mut rng = rng_from_seed(4);
        let mut bn = BatchNorm::new(&mut store, "bn", 2);
        // Train on shifted data a few times to move running stats.
        for _ in 0..50 {
            let mut g = Graph::new();
            let mut binding = Binding::new(&store);
            let x = g.constant(randn(&mut rng, 32, 2).add_scalar(5.0));
            let _ = bn.forward_train(&store, &mut binding, &mut g, x);
        }
        // Eval pass on the same distribution should be roughly standardised.
        let mut g = Graph::new();
        let mut binding = Binding::new(&store);
        let x = g.constant(randn(&mut rng, 256, 2).add_scalar(5.0));
        let y = bn.forward_infer(&store, &mut binding, &mut g, x);
        let mean = g.value(y).mean_axis0();
        assert!(mean.as_slice().iter().all(|m| m.abs() < 0.5), "eval mean {mean:?}");
    }

    #[test]
    fn batchnorm_running_stats_round_trip() {
        let mut store = ParamStore::new();
        let mut bn = BatchNorm::new(&mut store, "bn", 3);
        assert!(bn.set_running_stats(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]));
        let (mean, var) = bn.running_stats();
        assert_eq!(mean, &[1.0, 2.0, 3.0]);
        assert_eq!(var, &[4.0, 5.0, 6.0]);
        // Wrong widths are rejected and leave the layer untouched.
        assert!(!bn.set_running_stats(&[0.0; 2], &[1.0; 3]));
        assert!(!bn.set_running_stats(&[0.0; 3], &[1.0; 4]));
        assert_eq!(bn.running_stats().0, &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn gradients_flow_through_mlp() {
        let mut store = ParamStore::new();
        let mut rng = rng_from_seed(5);
        let mlp = Mlp::new(
            &mut store,
            &mut rng,
            "mlp",
            &[3, 4, 1],
            Activation::Elu(1.0),
            Activation::Identity,
            Init::XavierNormal,
        );
        let mut g = Graph::new();
        let mut binding = Binding::new(&store);
        let x = g.constant(randn(&mut rng, 8, 3));
        let out = mlp.forward(&store, &mut binding, &mut g, x);
        let loss = g.sumsq(out.output);
        g.backward(loss);
        for (_, id) in binding.bound() {
            assert!(g.grad(id).is_some(), "every bound param should get a gradient");
        }
    }
}
