//! DeR-CFR — Decomposed Representations for Counterfactual Regression
//! (Wu et al., TKDE 2022): three dedicated representation networks separate
//! instrumental variables `I(X)`, confounders `C(X)` and adjustment
//! variables `A(X)`, with decomposition regularizers that orthogonalise the
//! three groups. The paper (Sec. V-A) uses it as its strongest baseline and
//! notes that this built-in decorrelation already buys some shift
//! resistance.
//!
//! This implementation follows the decomposition objectives at the level of
//! detail the SBRL-HAP paper relies on, with the hyper-parameter naming of
//! its Table V (`{α, β, γ, μ, λ}`):
//!
//! * `α` — adjustment balance: `IPM(A_t, A_c)` drives `A ⊥ T`;
//! * `β` — treatment prediction: cross-entropy of `t̂([I, C])`, keeping
//!   treatment information inside `I`/`C`;
//! * `γ` — confounder balance: `IPM(C_t, C_c)` in representation space;
//! * `μ` — deep orthogonality between the first-layer weight columns of the
//!   three representation networks (hard decomposition);
//! * `λ` — L2 regularisation (applied by the trainer through
//!   [`Backbone::l2_handles`]).
//!
//! Outcome heads regress `Y` from `[C | A]`; the treatment head classifies
//! `T` from `[I | C]`.

use rand::rngs::StdRng;
use sbrl_nn::{Activation, BatchNorm, Binding, Init, Mlp, ParamHandle, ParamStore};
use sbrl_stats::{ipm_graph, IpmKind};
use sbrl_tensor::{Graph, TensorId};

use crate::backbone::{
    export_bn_state, import_bn_state, select_by_treatment, Backbone, BatchContext, ForwardPass,
    LayerTaps,
};
use crate::kind::BackboneConfig;
use crate::tarnet::TarnetConfig;

/// DeR-CFR hyper-parameters (`{α, β, γ, μ, λ}` per the paper's Table V; `λ`
/// is consumed by the trainer's L2 term).
#[derive(Clone, Copy, Debug)]
pub struct DerCfrConfig {
    /// Base architecture (layer counts / widths; `rep_width` is the width of
    /// *each* of the three representation networks).
    pub arch: TarnetConfig,
    /// Adjustment-balance weight `α`.
    pub alpha: f64,
    /// Treatment-prediction weight `β`.
    pub beta: f64,
    /// Confounder-balance weight `γ`.
    pub gamma: f64,
    /// Orthogonality weight `μ`.
    pub mu: f64,
    /// IPM kind used by the balance terms.
    pub ipm: IpmKind,
}

impl DerCfrConfig {
    /// A small default suitable for tests and quick experiments.
    pub fn small(in_dim: usize) -> Self {
        Self {
            arch: TarnetConfig::small(in_dim),
            alpha: 1.0,
            beta: 1.0,
            gamma: 1.0,
            mu: 1.0,
            ipm: IpmKind::MmdLin,
        }
    }
}

/// The DeR-CFR backbone.
pub struct DerCfr {
    cfg: DerCfrConfig,
    store: ParamStore,
    input_bn: Option<BatchNorm>,
    rep_i: Mlp,
    rep_c: Mlp,
    rep_a: Mlp,
    treat_head: Mlp,
    head0: Mlp,
    head1: Mlp,
}

impl DerCfr {
    /// Builds a DeR-CFR model.
    pub fn new(cfg: DerCfrConfig, rng: &mut StdRng) -> Self {
        let mut store = ParamStore::new();
        let arch = cfg.arch;
        let input_bn = arch.batch_norm.then(|| BatchNorm::new(&mut store, "input_bn", arch.in_dim));
        let mut rep_dims = vec![arch.in_dim];
        rep_dims.extend(std::iter::repeat_n(arch.rep_width, arch.rep_layers.max(1)));
        let mk_rep = |store: &mut ParamStore, rng: &mut StdRng, name: &str| {
            Mlp::new(
                store,
                rng,
                name,
                &rep_dims,
                Activation::Elu(1.0),
                Activation::Elu(1.0),
                Init::HeNormal,
            )
        };
        let rep_i = mk_rep(&mut store, rng, "rep_i");
        let rep_c = mk_rep(&mut store, rng, "rep_c");
        let rep_a = mk_rep(&mut store, rng, "rep_a");

        // Treatment head on [I | C] -> logit.
        let treat_head = Mlp::new(
            &mut store,
            rng,
            "treat_head",
            &[2 * arch.rep_width, arch.head_width, 1],
            Activation::Elu(1.0),
            Activation::Identity,
            Init::HeNormal,
        );
        // Outcome heads on [C | A].
        let mut head_dims = vec![2 * arch.rep_width];
        head_dims.extend(std::iter::repeat_n(arch.head_width, arch.head_layers.max(1)));
        head_dims.push(1);
        let head0 = Mlp::new(
            &mut store,
            rng,
            "head0",
            &head_dims,
            Activation::Elu(1.0),
            Activation::Identity,
            Init::HeNormal,
        );
        let head1 = Mlp::new(
            &mut store,
            rng,
            "head1",
            &head_dims,
            Activation::Elu(1.0),
            Activation::Identity,
            Init::HeNormal,
        );
        Self { cfg, store, input_bn, rep_i, rep_c, rep_a, treat_head, head0, head1 }
    }

    /// The configuration.
    pub fn config(&self) -> &DerCfrConfig {
        &self.cfg
    }

    /// Orthogonality penalty between the first-layer weights of the three
    /// representation networks: mean squared cross-Gram entries
    /// `||W_a^T W_b||_F^2` over the three pairs.
    fn orthogonality_loss(&self, g: &mut Graph, binding: &mut Binding) -> TensorId {
        let w_i = binding.bind(&self.store, g, self.rep_i.layers()[0].weight());
        let w_c = binding.bind(&self.store, g, self.rep_c.layers()[0].weight());
        let w_a = binding.bind(&self.store, g, self.rep_a.layers()[0].weight());
        let mut acc = g.scalar_const(0.0);
        for (a, b) in [(w_i, w_c), (w_i, w_a), (w_c, w_a)] {
            let at = g.transpose(a);
            let gram = g.matmul(at, b);
            let sq = g.square(gram);
            let m = g.mean(sq);
            acc = g.add(acc, m);
        }
        acc
    }
}

impl DerCfr {
    /// Mode-independent network body after the (optional) input batch norm;
    /// `with_reg` attaches the decomposition losses (training only).
    fn body(
        &self,
        g: &mut Graph,
        binding: &mut Binding,
        x: TensorId,
        ctx: &BatchContext,
        with_reg: bool,
    ) -> ForwardPass {
        let out_i = self.rep_i.forward(&self.store, binding, g, x);
        let out_c = self.rep_c.forward(&self.store, binding, g, x);
        let out_a = self.rep_a.forward(&self.store, binding, g, x);
        let (rep_i, rep_c, rep_a) = (out_i.output, out_c.output, out_a.output);

        let ic = g.concat_cols(rep_i, rep_c);
        let ca = g.concat_cols(rep_c, rep_a);
        let t_logit = self.treat_head.forward(&self.store, binding, g, ic);
        let h0 = self.head0.forward(&self.store, binding, g, ca);
        let h1 = self.head1.forward(&self.store, binding, g, ca);

        // Decomposition losses (training only).
        let mut reg = g.scalar_const(0.0);
        if with_reg {
            let c = self.cfg;
            if c.alpha > 0.0 {
                let bal_a = ipm_graph(g, c.ipm, rep_a, &ctx.treated_idx, &ctx.control_idx);
                let s = g.scale(bal_a, c.alpha);
                reg = g.add(reg, s);
            }
            if c.gamma > 0.0 {
                let bal_c = ipm_graph(g, c.ipm, rep_c, &ctx.treated_idx, &ctx.control_idx);
                let s = g.scale(bal_c, c.gamma);
                reg = g.add(reg, s);
            }
            if c.beta > 0.0 {
                let t_target = g.constant_col(&ctx.t);
                let t_loss = sbrl_nn::loss::bce_with_logits(g, t_logit.output, t_target);
                let s = g.scale(t_loss, c.beta);
                reg = g.add(reg, s);
            }
            if c.mu > 0.0 {
                let ortho = self.orthogonality_loss(g, binding);
                let s = g.scale(ortho, c.mu);
                reg = g.add(reg, s);
            }
        }

        // Taps: Z_r is the confounder representation (the layer DeR-CFR
        // balances); the I/A outputs and all earlier hiddens are Z_o. Tap
        // buffers come from / return to the graph's id-buffer pool so the
        // training step stays allocation-free.
        let mut z_o: Vec<TensorId> = g.take_id_buf();
        for out in [&out_i, &out_c, &out_a] {
            z_o.extend_from_slice(&out.taps[..out.taps.len() - 1]);
        }
        z_o.push(rep_i);
        z_o.push(rep_a);
        let n_hidden = self.head0.num_layers() - 1;
        for l in 0..n_hidden.saturating_sub(1) {
            let mixed = select_by_treatment(g, ctx, h1.taps[l], h0.taps[l]);
            z_o.push(mixed);
        }
        let z_p = if n_hidden > 0 {
            select_by_treatment(g, ctx, h1.taps[n_hidden - 1], h0.taps[n_hidden - 1])
        } else {
            rep_c
        };
        let (y0_raw, y1_raw) = (h0.output, h1.output);
        for out in [out_i, out_c, out_a, t_logit, h0, h1] {
            g.give_id_buf(out.taps);
        }

        ForwardPass { y0_raw, y1_raw, taps: LayerTaps { z_o, z_r: rep_c, z_p }, reg_loss: reg }
    }
}

impl Backbone for DerCfr {
    fn name(&self) -> String {
        "DeRCFR".to_string()
    }

    fn forward(
        &self,
        g: &mut Graph,
        binding: &mut Binding,
        x: TensorId,
        ctx: &BatchContext,
    ) -> ForwardPass {
        let x = match &self.input_bn {
            Some(bn) => bn.forward_infer(&self.store, binding, g, x),
            None => x,
        };
        self.body(g, binding, x, ctx, false)
    }

    fn forward_train(
        &mut self,
        g: &mut Graph,
        binding: &mut Binding,
        x: TensorId,
        ctx: &BatchContext,
    ) -> ForwardPass {
        let x = match &mut self.input_bn {
            Some(bn) => bn.forward_train(&self.store, binding, g, x),
            None => x,
        };
        self.body(g, binding, x, ctx, true)
    }

    fn store(&self) -> &ParamStore {
        &self.store
    }

    fn store_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }

    fn l2_handles(&self) -> Vec<ParamHandle> {
        self.rep_i
            .layers()
            .iter()
            .chain(self.rep_c.layers())
            .chain(self.rep_a.layers())
            .chain(self.treat_head.layers())
            .chain(self.head0.layers())
            .chain(self.head1.layers())
            .map(|l| l.weight())
            .collect()
    }

    fn export_config(&self) -> BackboneConfig {
        BackboneConfig::DerCfr(self.cfg)
    }

    fn export_extra_state(&self) -> Vec<(String, Vec<f64>)> {
        export_bn_state(&self.input_bn)
    }

    fn import_extra_state(&mut self, state: &[(String, Vec<f64>)]) -> Result<(), String> {
        import_bn_state(&mut self.input_bn, state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbrl_tensor::rng::{randn, rng_from_seed};

    #[test]
    fn forward_shapes_and_taps() {
        let mut rng = rng_from_seed(0);
        let mut model = DerCfr::new(DerCfrConfig::small(6), &mut rng);
        let mut g = Graph::new();
        let mut binding = Binding::new(model.store());
        let x = g.constant(randn(&mut rng, 8, 6));
        let ctx = BatchContext::new(&[1.0, 0.0, 1.0, 0.0, 1.0, 0.0, 1.0, 0.0]);
        let pass = model.train_step().forward(&mut g, &mut binding, x, &ctx);
        assert_eq!(g.value(pass.y0_raw).shape(), (8, 1));
        assert_eq!(g.value(pass.taps.z_r).shape(), (8, 32));
        assert_eq!(g.value(pass.taps.z_p).shape(), (8, 16));
        // 3 reps x 1 early hidden + I + A outputs + 1 head hidden = 6 taps.
        assert_eq!(pass.taps.z_o.len(), 6);
        assert!(g.scalar(pass.reg_loss) > 0.0, "decomposition losses should be active");
    }

    #[test]
    fn eval_mode_has_no_reg_loss() {
        let mut rng = rng_from_seed(1);
        let model = DerCfr::new(DerCfrConfig::small(4), &mut rng);
        let mut g = Graph::new();
        let mut binding = Binding::new(model.store());
        let x = g.constant(randn(&mut rng, 6, 4));
        let ctx = BatchContext::new(&[1.0, 0.0, 1.0, 0.0, 1.0, 0.0]);
        let pass = model.forward(&mut g, &mut binding, x, &ctx);
        assert_eq!(g.scalar(pass.reg_loss), 0.0);
    }

    #[test]
    fn treatment_head_learns_to_predict_treatment() {
        use sbrl_nn::{Adam, Optimizer};
        let mut rng = rng_from_seed(2);
        let cfg = DerCfrConfig { alpha: 0.0, gamma: 0.0, mu: 0.0, ..DerCfrConfig::small(3) };
        let mut model = DerCfr::new(cfg, &mut rng);
        // Treatment driven by the first covariate.
        let x = randn(&mut rng, 40, 3);
        let t: Vec<f64> = (0..40).map(|i| f64::from(x[(i, 0)] > 0.0)).collect();
        let ctx = BatchContext::new(&t);

        let reg_at = |model: &mut DerCfr| {
            let mut g = Graph::new();
            let mut binding = Binding::new(model.store());
            let xc = g.constant(x.clone());
            let pass = model.train_step().forward(&mut g, &mut binding, xc, &ctx);
            g.scalar(pass.reg_loss)
        };
        let before = reg_at(&mut model); // pure β·BCE at this config
        let mut opt = Adam::new(model.store(), 1e-2);
        for _ in 0..80 {
            let mut g = Graph::new();
            let mut binding = Binding::new(model.store());
            let xc = g.constant(x.clone());
            let pass = model.train_step().forward(&mut g, &mut binding, xc, &ctx);
            g.backward(pass.reg_loss);
            opt.step(model.store_mut(), &g, &binding);
        }
        let after = reg_at(&mut model);
        assert!(after < before * 0.5, "BCE should drop: {before} -> {after}");
    }

    #[test]
    fn orthogonality_loss_decreases_under_training() {
        use sbrl_nn::{Adam, Optimizer};
        let mut rng = rng_from_seed(3);
        let cfg =
            DerCfrConfig { alpha: 0.0, beta: 0.0, gamma: 0.0, mu: 1.0, ..DerCfrConfig::small(4) };
        let mut model = DerCfr::new(cfg, &mut rng);
        let x = randn(&mut rng, 10, 4);
        let ctx = BatchContext::new(&[1.0, 0.0, 1.0, 0.0, 1.0, 0.0, 1.0, 0.0, 1.0, 0.0]);
        let reg_at = |model: &mut DerCfr| {
            let mut g = Graph::new();
            let mut binding = Binding::new(model.store());
            let xc = g.constant(x.clone());
            let pass = model.train_step().forward(&mut g, &mut binding, xc, &ctx);
            g.scalar(pass.reg_loss)
        };
        let before = reg_at(&mut model);
        let mut opt = Adam::new(model.store(), 1e-2);
        for _ in 0..50 {
            let mut g = Graph::new();
            let mut binding = Binding::new(model.store());
            let xc = g.constant(x.clone());
            let pass = model.train_step().forward(&mut g, &mut binding, xc, &ctx);
            g.backward(pass.reg_loss);
            opt.step(model.store_mut(), &g, &binding);
        }
        let after = reg_at(&mut model);
        assert!(after < before * 0.5, "orthogonality should drop: {before} -> {after}");
    }

    #[test]
    fn l2_handles_cover_six_networks() {
        let mut rng = rng_from_seed(4);
        let model = DerCfr::new(DerCfrConfig::small(3), &mut rng);
        // 3 reps x 2 + treat head 2 + heads 3 + 3 = 14 weight matrices.
        assert_eq!(model.l2_handles().len(), 14);
    }
}
