//! Name-addressable backbone selection: [`BackboneKind`] enumerates the
//! grid's architectures with `FromStr`/`Display` round-trips, and
//! [`BackboneConfig`] is the configuration sum type the estimator builder
//! consumes to construct a backbone at fit time.

use std::fmt;
use std::str::FromStr;

use rand::rngs::StdRng;

use crate::backbone::Backbone;
use crate::cfr::{Cfr, CfrConfig};
use crate::dercfr::{DerCfr, DerCfrConfig};
use crate::tarnet::{Tarnet, TarnetConfig};

/// Which backbone architecture a method uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BackboneKind {
    /// TARNet (no balancing penalty).
    Tarnet,
    /// CFR (TARNet + `α·IPM`).
    Cfr,
    /// DeR-CFR (decomposed representations).
    DerCfr,
}

impl BackboneKind {
    /// All backbones, in the paper's table order.
    pub const ALL: [BackboneKind; 3] =
        [BackboneKind::Tarnet, BackboneKind::Cfr, BackboneKind::DerCfr];

    /// Table label.
    pub fn name(self) -> &'static str {
        match self {
            BackboneKind::Tarnet => "TARNet",
            BackboneKind::Cfr => "CFR",
            BackboneKind::DerCfr => "DeRCFR",
        }
    }

    /// The kind's `small()` configuration for `in_dim` covariates — the
    /// default architecture used when only a name selects the backbone.
    pub fn small_config(self, in_dim: usize) -> BackboneConfig {
        match self {
            BackboneKind::Tarnet => BackboneConfig::Tarnet(TarnetConfig::small(in_dim)),
            BackboneKind::Cfr => BackboneConfig::Cfr(CfrConfig::small(in_dim)),
            BackboneKind::DerCfr => BackboneConfig::DerCfr(DerCfrConfig::small(in_dim)),
        }
    }
}

impl fmt::Display for BackboneKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Typed error for a backbone name that failed to parse.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseBackboneError {
    /// The rejected input.
    pub input: String,
}

impl fmt::Display for ParseBackboneError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown backbone '{}' (expected one of: TARNet, CFR, DeRCFR)", self.input)
    }
}

impl std::error::Error for ParseBackboneError {}

impl FromStr for BackboneKind {
    type Err = ParseBackboneError;

    /// Case-insensitive, separator-insensitive parse: `"TARNet"`, `"cfr"`,
    /// `"DeR-CFR"` and `"dercfr"` all resolve.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let norm: String =
            s.chars().filter(|c| *c != '-' && *c != '_').collect::<String>().to_ascii_lowercase();
        match norm.as_str() {
            "tarnet" => Ok(BackboneKind::Tarnet),
            "cfr" => Ok(BackboneKind::Cfr),
            "dercfr" => Ok(BackboneKind::DerCfr),
            _ => Err(ParseBackboneError { input: s.to_string() }),
        }
    }
}

/// A fully specified backbone configuration: everything the estimator
/// builder needs to construct the model at fit time (with a seeded RNG).
#[derive(Clone, Copy, Debug)]
pub enum BackboneConfig {
    /// TARNet architecture.
    Tarnet(TarnetConfig),
    /// CFR architecture plus IPM penalty.
    Cfr(CfrConfig),
    /// DeR-CFR architecture plus decomposition weights.
    DerCfr(DerCfrConfig),
}

impl BackboneConfig {
    /// Which backbone kind this configuration builds.
    pub fn kind(&self) -> BackboneKind {
        match self {
            BackboneConfig::Tarnet(_) => BackboneKind::Tarnet,
            BackboneConfig::Cfr(_) => BackboneKind::Cfr,
            BackboneConfig::DerCfr(_) => BackboneKind::DerCfr,
        }
    }

    /// Covariate dimension the built model will expect.
    pub fn in_dim(&self) -> usize {
        match self {
            BackboneConfig::Tarnet(c) => c.in_dim,
            BackboneConfig::Cfr(c) => c.arch.in_dim,
            BackboneConfig::DerCfr(c) => c.arch.in_dim,
        }
    }

    /// Constructs the backbone with the given RNG.
    pub fn build(&self, rng: &mut StdRng) -> Box<dyn Backbone> {
        match self {
            BackboneConfig::Tarnet(c) => Box::new(Tarnet::new(*c, rng)),
            BackboneConfig::Cfr(c) => Box::new(Cfr::new(*c, rng)),
            BackboneConfig::DerCfr(c) => Box::new(DerCfr::new(*c, rng)),
        }
    }
}

impl From<TarnetConfig> for BackboneConfig {
    fn from(c: TarnetConfig) -> Self {
        BackboneConfig::Tarnet(c)
    }
}

impl From<CfrConfig> for BackboneConfig {
    fn from(c: CfrConfig) -> Self {
        BackboneConfig::Cfr(c)
    }
}

impl From<DerCfrConfig> for BackboneConfig {
    fn from(c: DerCfrConfig) -> Self {
        BackboneConfig::DerCfr(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbrl_tensor::rng::rng_from_seed;

    #[test]
    fn names_round_trip_through_from_str() {
        for kind in BackboneKind::ALL {
            assert_eq!(kind.name().parse::<BackboneKind>(), Ok(kind));
            assert_eq!(kind.to_string().parse::<BackboneKind>(), Ok(kind));
        }
        assert_eq!("DeR-CFR".parse::<BackboneKind>(), Ok(BackboneKind::DerCfr));
        assert_eq!("tarnet".parse::<BackboneKind>(), Ok(BackboneKind::Tarnet));
    }

    #[test]
    fn junk_names_yield_typed_errors() {
        let err = "GRU".parse::<BackboneKind>().unwrap_err();
        assert_eq!(err.input, "GRU");
        assert!(err.to_string().contains("unknown backbone"));
    }

    #[test]
    fn configs_build_matching_backbones() {
        let mut rng = rng_from_seed(0);
        for kind in BackboneKind::ALL {
            let cfg = kind.small_config(7);
            assert_eq!(cfg.kind(), kind);
            assert_eq!(cfg.in_dim(), 7);
            let model = cfg.build(&mut rng);
            assert_eq!(model.name(), kind.name());
            assert!(!model.store().is_empty());
        }
    }

    #[test]
    fn concrete_configs_convert_into_the_sum_type() {
        let cfg: BackboneConfig = CfrConfig::small(4).into();
        assert_eq!(cfg.kind(), BackboneKind::Cfr);
        let cfg: BackboneConfig = TarnetConfig::small(3).into();
        assert_eq!(cfg.in_dim(), 3);
        let cfg: BackboneConfig = DerCfrConfig::small(5).into();
        assert_eq!(cfg.kind(), BackboneKind::DerCfr);
    }
}
