//! TARNet (Shalit et al., 2017): a treatment-agnostic shared representation
//! network with two outcome heads and no balancing penalty.

use rand::rngs::StdRng;
use sbrl_nn::{Activation, BatchNorm, Binding, Init, Mlp, ParamHandle, ParamStore};
use sbrl_tensor::{Graph, TensorId};

use crate::backbone::{
    export_bn_state, import_bn_state, select_by_treatment, Backbone, BatchContext, ForwardPass,
    LayerTaps,
};
use crate::kind::BackboneConfig;

/// Architecture hyper-parameters shared by TARNet and CFR (Tables IV/V use
/// `{d_r, d_y}` layer counts and `{h_r, h_y}` widths).
#[derive(Clone, Copy, Debug)]
pub struct TarnetConfig {
    /// Covariate dimension.
    pub in_dim: usize,
    /// Number of representation layers `d_r`.
    pub rep_layers: usize,
    /// Representation width `h_r`.
    pub rep_width: usize,
    /// Number of hidden head layers `d_y`.
    pub head_layers: usize,
    /// Head width `h_y`.
    pub head_width: usize,
    /// Apply batch normalisation to the input covariates.
    pub batch_norm: bool,
    /// L2-normalise the representation rows (CFR's `rep normalization`).
    pub rep_normalization: bool,
}

impl TarnetConfig {
    /// A small default suitable for tests and quick experiments.
    pub fn small(in_dim: usize) -> Self {
        Self {
            in_dim,
            rep_layers: 2,
            rep_width: 32,
            head_layers: 2,
            head_width: 16,
            batch_norm: false,
            rep_normalization: false,
        }
    }

    /// The paper's synthetic-data configuration (`{d_r, d_y} = {3, 3}`,
    /// `{h_r, h_y} = {128, 64}`, Table IV).
    pub fn paper_synthetic(in_dim: usize) -> Self {
        Self {
            in_dim,
            rep_layers: 3,
            rep_width: 128,
            head_layers: 3,
            head_width: 64,
            batch_norm: true,
            rep_normalization: false,
        }
    }
}

/// The TARNet backbone.
pub struct Tarnet {
    cfg: TarnetConfig,
    store: ParamStore,
    input_bn: Option<BatchNorm>,
    rep: Mlp,
    head0: Mlp,
    head1: Mlp,
}

impl Tarnet {
    /// Builds a TARNet with He-initialised ELU layers (Sec. V-C).
    pub fn new(cfg: TarnetConfig, rng: &mut StdRng) -> Self {
        let mut store = ParamStore::new();
        let input_bn = cfg.batch_norm.then(|| BatchNorm::new(&mut store, "input_bn", cfg.in_dim));
        let mut rep_dims = vec![cfg.in_dim];
        rep_dims.extend(std::iter::repeat_n(cfg.rep_width, cfg.rep_layers.max(1)));
        let rep = Mlp::new(
            &mut store,
            rng,
            "rep",
            &rep_dims,
            Activation::Elu(1.0),
            Activation::Elu(1.0),
            Init::HeNormal,
        );
        let mut head_dims = vec![cfg.rep_width];
        head_dims.extend(std::iter::repeat_n(cfg.head_width, cfg.head_layers.max(1)));
        head_dims.push(1);
        let head0 = Mlp::new(
            &mut store,
            rng,
            "head0",
            &head_dims,
            Activation::Elu(1.0),
            Activation::Identity,
            Init::HeNormal,
        );
        let head1 = Mlp::new(
            &mut store,
            rng,
            "head1",
            &head_dims,
            Activation::Elu(1.0),
            Activation::Identity,
            Init::HeNormal,
        );
        Self { cfg, store, input_bn, rep, head0, head1 }
    }

    /// The architecture configuration.
    pub fn config(&self) -> &TarnetConfig {
        &self.cfg
    }

    /// Inference-mode forward shared with CFR: returns the pass plus the
    /// representation node so CFR can attach its IPM penalty.
    pub(crate) fn forward_with_rep(
        &self,
        g: &mut Graph,
        binding: &mut Binding,
        x: TensorId,
        ctx: &BatchContext,
    ) -> (ForwardPass, TensorId) {
        let x = match &self.input_bn {
            Some(bn) => bn.forward_infer(&self.store, binding, g, x),
            None => x,
        };
        self.body(g, binding, x, ctx)
    }

    /// Training-mode forward shared with CFR (updates batch-norm running
    /// statistics).
    pub(crate) fn forward_with_rep_train(
        &mut self,
        g: &mut Graph,
        binding: &mut Binding,
        x: TensorId,
        ctx: &BatchContext,
    ) -> (ForwardPass, TensorId) {
        let x = match &mut self.input_bn {
            Some(bn) => bn.forward_train(&self.store, binding, g, x),
            None => x,
        };
        self.body(g, binding, x, ctx)
    }

    /// Mode-independent network body after the (optional) input batch norm.
    fn body(
        &self,
        g: &mut Graph,
        binding: &mut Binding,
        x: TensorId,
        ctx: &BatchContext,
    ) -> (ForwardPass, TensorId) {
        let rep_out = self.rep.forward(&self.store, binding, g, x);
        let mut phi = rep_out.output;
        if self.cfg.rep_normalization {
            phi = sbrl_nn::l2_normalize_rows(g, phi);
        }

        let h0 = self.head0.forward(&self.store, binding, g, phi);
        let h1 = self.head1.forward(&self.store, binding, g, phi);

        // Hidden taps: rep hiddens before Φ are "other" layers; the factual
        // mix of the heads' last hidden layers is Z_p; earlier head hiddens
        // are "other" layers too. The rep tap list is reused as the z_o
        // buffer and the head tap lists are recycled, so a warmed-up step
        // allocates nothing here.
        let mut z_o: Vec<TensorId> = rep_out.taps;
        z_o.pop(); // the last rep tap is Φ itself
        let n_hidden = self.head0.num_layers() - 1; // exclude linear output
        for l in 0..n_hidden.saturating_sub(1) {
            let mixed = select_by_treatment(g, ctx, h1.taps[l], h0.taps[l]);
            z_o.push(mixed);
        }
        let z_p = if n_hidden > 0 {
            select_by_treatment(g, ctx, h1.taps[n_hidden - 1], h0.taps[n_hidden - 1])
        } else {
            phi
        };
        g.give_id_buf(h0.taps);
        g.give_id_buf(h1.taps);

        let zero = g.scalar_const(0.0);
        let pass = ForwardPass {
            y0_raw: h0.output,
            y1_raw: h1.output,
            taps: LayerTaps { z_o, z_r: phi, z_p },
            reg_loss: zero,
        };
        (pass, phi)
    }

    fn collect_l2(&self) -> Vec<ParamHandle> {
        self.rep
            .layers()
            .iter()
            .chain(self.head0.layers())
            .chain(self.head1.layers())
            .map(|l| l.weight())
            .collect()
    }
}

impl Backbone for Tarnet {
    fn name(&self) -> String {
        "TARNet".to_string()
    }

    fn forward(
        &self,
        g: &mut Graph,
        binding: &mut Binding,
        x: TensorId,
        ctx: &BatchContext,
    ) -> ForwardPass {
        self.forward_with_rep(g, binding, x, ctx).0
    }

    fn forward_train(
        &mut self,
        g: &mut Graph,
        binding: &mut Binding,
        x: TensorId,
        ctx: &BatchContext,
    ) -> ForwardPass {
        self.forward_with_rep_train(g, binding, x, ctx).0
    }

    fn store(&self) -> &ParamStore {
        &self.store
    }

    fn store_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }

    fn l2_handles(&self) -> Vec<ParamHandle> {
        self.collect_l2()
    }

    fn export_config(&self) -> BackboneConfig {
        BackboneConfig::Tarnet(self.cfg)
    }

    fn export_extra_state(&self) -> Vec<(String, Vec<f64>)> {
        export_bn_state(&self.input_bn)
    }

    fn import_extra_state(&mut self, state: &[(String, Vec<f64>)]) -> Result<(), String> {
        import_bn_state(&mut self.input_bn, state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbrl_tensor::rng::{randn, rng_from_seed};

    #[test]
    fn forward_shapes_and_taps() {
        let mut rng = rng_from_seed(0);
        let cfg = TarnetConfig::small(5);
        let mut model = Tarnet::new(cfg, &mut rng);
        let mut g = Graph::new();
        let mut binding = Binding::new(model.store());
        let x = g.constant(randn(&mut rng, 8, 5));
        let ctx = BatchContext::new(&[1.0, 0.0, 1.0, 0.0, 1.0, 0.0, 1.0, 0.0]);
        let pass = model.train_step().forward(&mut g, &mut binding, x, &ctx);
        assert_eq!(g.value(pass.y0_raw).shape(), (8, 1));
        assert_eq!(g.value(pass.y1_raw).shape(), (8, 1));
        assert_eq!(g.value(pass.taps.z_r).shape(), (8, 32));
        assert_eq!(g.value(pass.taps.z_p).shape(), (8, 16));
        // rep has 2 layers -> 1 "other" tap; head has 2 hidden -> 1 more.
        assert_eq!(pass.taps.z_o.len(), 2);
        assert_eq!(g.scalar(pass.reg_loss), 0.0);
    }

    #[test]
    fn heads_differ_after_initialisation() {
        let mut rng = rng_from_seed(1);
        let model = Tarnet::new(TarnetConfig::small(4), &mut rng);
        let mut g = Graph::new();
        let mut binding = Binding::new(model.store());
        let x = g.constant(randn(&mut rng, 4, 4));
        let ctx = BatchContext::new(&[1.0, 1.0, 0.0, 0.0]);
        let pass = model.forward(&mut g, &mut binding, x, &ctx);
        let y0 = g.value(pass.y0_raw).clone();
        let y1 = g.value(pass.y1_raw).clone();
        assert!(!y0.approx_eq(&y1, 1e-9), "independent heads should differ");
    }

    #[test]
    fn rep_normalization_gives_unit_rows() {
        let mut rng = rng_from_seed(2);
        let cfg = TarnetConfig { rep_normalization: true, ..TarnetConfig::small(4) };
        let mut model = Tarnet::new(cfg, &mut rng);
        let mut g = Graph::new();
        let mut binding = Binding::new(model.store());
        let x = g.constant(randn(&mut rng, 6, 4));
        let ctx = BatchContext::new(&[1.0, 0.0, 1.0, 0.0, 1.0, 0.0]);
        let pass = model.train_step().forward(&mut g, &mut binding, x, &ctx);
        let phi = g.value(pass.taps.z_r);
        for i in 0..6 {
            let norm: f64 = phi.row(i).iter().map(|v| v * v).sum::<f64>().sqrt();
            assert!((norm - 1.0).abs() < 1e-6, "row {i} norm {norm}");
        }
    }

    #[test]
    fn gradients_reach_every_parameter() {
        let mut rng = rng_from_seed(3);
        let mut model = Tarnet::new(TarnetConfig::small(3), &mut rng);
        let mut g = Graph::new();
        let mut binding = Binding::new(model.store());
        let x = g.constant(randn(&mut rng, 6, 3));
        let ctx = BatchContext::new(&[1.0, 0.0, 1.0, 0.0, 1.0, 0.0]);
        let pass = model.train_step().forward(&mut g, &mut binding, x, &ctx);
        // Train on the factual mix so both heads receive gradient.
        let fact = select_by_treatment(&mut g, &ctx, pass.y1_raw, pass.y0_raw);
        let loss = g.sumsq(fact);
        g.backward(loss);
        let grads = binding.bound().filter(|&(_, id)| g.grad(id).is_some()).count();
        assert_eq!(grads, binding.bound().count(), "all bound params should have grads");
    }

    #[test]
    fn l2_handles_cover_all_weight_matrices() {
        let mut rng = rng_from_seed(4);
        let model = Tarnet::new(TarnetConfig::small(3), &mut rng);
        // rep 2 + head0 3 + head1 3 (2 hidden + 1 output each)
        assert_eq!(model.l2_handles().len(), 8);
    }
}
