//! CFR — Counterfactual Regression (Shalit et al., 2017; Johansson et al.,
//! 2016): TARNet plus an integral-probability-metric penalty `α·IPM(Φ_t, Φ_c)`
//! that balances the treated/control representation distributions.

use rand::rngs::StdRng;
use sbrl_nn::{Binding, ParamHandle, ParamStore};
use sbrl_stats::{ipm_graph, IpmKind};
use sbrl_tensor::{Graph, TensorId};

use crate::backbone::{Backbone, BatchContext, ForwardPass};
use crate::kind::BackboneConfig;
use crate::tarnet::{Tarnet, TarnetConfig};

/// CFR hyper-parameters: the TARNet architecture plus the IPM penalty.
#[derive(Clone, Copy, Debug)]
pub struct CfrConfig {
    /// Shared TARNet architecture.
    pub arch: TarnetConfig,
    /// IPM penalty weight `α` (Tables IV/V).
    pub alpha: f64,
    /// Which IPM to use (the paper's CFR default is Wasserstein).
    pub ipm: IpmKind,
}

impl CfrConfig {
    /// A small default suitable for tests and quick experiments.
    pub fn small(in_dim: usize) -> Self {
        Self { arch: TarnetConfig::small(in_dim), alpha: 1.0, ipm: IpmKind::MmdLin }
    }
}

/// The CFR backbone.
pub struct Cfr {
    tarnet: Tarnet,
    alpha: f64,
    ipm: IpmKind,
}

impl Cfr {
    /// Builds a CFR model.
    pub fn new(cfg: CfrConfig, rng: &mut StdRng) -> Self {
        Self { tarnet: Tarnet::new(cfg.arch, rng), alpha: cfg.alpha, ipm: cfg.ipm }
    }

    /// The IPM penalty weight.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// The IPM kind.
    pub fn ipm_kind(&self) -> IpmKind {
        self.ipm
    }
}

impl Backbone for Cfr {
    fn name(&self) -> String {
        "CFR".to_string()
    }

    fn forward(
        &self,
        g: &mut Graph,
        binding: &mut Binding,
        x: TensorId,
        ctx: &BatchContext,
    ) -> ForwardPass {
        self.tarnet.forward_with_rep(g, binding, x, ctx).0
    }

    fn forward_train(
        &mut self,
        g: &mut Graph,
        binding: &mut Binding,
        x: TensorId,
        ctx: &BatchContext,
    ) -> ForwardPass {
        let (mut pass, phi) = self.tarnet.forward_with_rep_train(g, binding, x, ctx);
        if self.alpha > 0.0 {
            let ipm = ipm_graph(g, self.ipm, phi, &ctx.treated_idx, &ctx.control_idx);
            let scaled = g.scale(ipm, self.alpha);
            pass.reg_loss = g.add(pass.reg_loss, scaled);
        }
        pass
    }

    fn store(&self) -> &ParamStore {
        self.tarnet.store()
    }

    fn store_mut(&mut self) -> &mut ParamStore {
        self.tarnet.store_mut()
    }

    fn l2_handles(&self) -> Vec<ParamHandle> {
        self.tarnet.l2_handles()
    }

    fn export_config(&self) -> BackboneConfig {
        BackboneConfig::Cfr(CfrConfig {
            arch: *self.tarnet.config(),
            alpha: self.alpha,
            ipm: self.ipm,
        })
    }

    fn export_extra_state(&self) -> Vec<(String, Vec<f64>)> {
        self.tarnet.export_extra_state()
    }

    fn import_extra_state(&mut self, state: &[(String, Vec<f64>)]) -> Result<(), String> {
        self.tarnet.import_extra_state(state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbrl_tensor::rng::{randn, rng_from_seed};

    #[test]
    fn reg_loss_is_positive_under_imbalance() {
        let mut rng = rng_from_seed(0);
        let mut model = Cfr::new(CfrConfig::small(4), &mut rng);
        let mut g = Graph::new();
        let mut binding = Binding::new(model.store());
        // Treated units shifted far from control units.
        let xt = randn(&mut rng, 5, 4).add_scalar(3.0);
        let xc = randn(&mut rng, 5, 4);
        let x = g.constant(xt.vstack(&xc));
        let ctx = BatchContext::new(&[1.0, 1.0, 1.0, 1.0, 1.0, 0.0, 0.0, 0.0, 0.0, 0.0]);
        let pass = model.train_step().forward(&mut g, &mut binding, x, &ctx);
        assert!(g.scalar(pass.reg_loss) > 0.0, "IPM penalty should fire");
    }

    #[test]
    fn reg_loss_absent_in_eval_mode_and_at_zero_alpha() {
        let mut rng = rng_from_seed(1);
        let model = Cfr::new(CfrConfig::small(4), &mut rng);
        let mut g = Graph::new();
        let mut binding = Binding::new(model.store());
        let x = g.constant(randn(&mut rng, 6, 4));
        let ctx = BatchContext::new(&[1.0, 0.0, 1.0, 0.0, 1.0, 0.0]);
        let pass = model.forward(&mut g, &mut binding, x, &ctx);
        assert_eq!(g.scalar(pass.reg_loss), 0.0);

        let cfg = CfrConfig { alpha: 0.0, ..CfrConfig::small(4) };
        let mut model0 = Cfr::new(cfg, &mut rng);
        let mut g2 = Graph::new();
        let mut b2 = Binding::new(model0.store());
        let x2 = g2.constant(randn(&mut rng, 6, 4));
        let pass2 = model0.train_step().forward(&mut g2, &mut b2, x2, &ctx);
        assert_eq!(g2.scalar(pass2.reg_loss), 0.0);
    }

    #[test]
    fn ipm_gradient_reaches_representation_weights() {
        let mut rng = rng_from_seed(2);
        let mut model = Cfr::new(CfrConfig::small(3), &mut rng);
        let mut g = Graph::new();
        let mut binding = Binding::new(model.store());
        let xt = randn(&mut rng, 4, 3).add_scalar(2.0);
        let xc = randn(&mut rng, 4, 3);
        let x = g.constant(xt.vstack(&xc));
        let ctx = BatchContext::new(&[1.0, 1.0, 1.0, 1.0, 0.0, 0.0, 0.0, 0.0]);
        let pass = model.train_step().forward(&mut g, &mut binding, x, &ctx);
        g.backward(pass.reg_loss);
        // At least the representation weights must receive nonzero gradient.
        let any_nonzero =
            binding.bound().filter_map(|(_, id)| g.grad(id)).any(|grad| grad.norm_fro() > 0.0);
        assert!(any_nonzero, "IPM penalty should push gradients into the encoder");
    }

    #[test]
    fn minimising_ipm_balances_representations() {
        use sbrl_nn::{Adam, Optimizer};
        use sbrl_stats::ipm_plain;
        let mut rng = rng_from_seed(3);
        let mut model = Cfr::new(CfrConfig::small(3), &mut rng);
        let xt = randn(&mut rng, 16, 3).add_scalar(2.0);
        let xc = randn(&mut rng, 16, 3);
        let x_all = xt.vstack(&xc);
        let t: Vec<f64> = (0..32).map(|i| f64::from(i < 16)).collect();
        let ctx = BatchContext::new(&t);

        let measure = |model: &Cfr| {
            let mut g = Graph::new();
            let mut binding = Binding::new(model.store());
            let x = g.constant(x_all.clone());
            let pass = model.forward(&mut g, &mut binding, x, &ctx);
            let phi = g.value(pass.taps.z_r).clone();
            let pt = phi.select_rows(&ctx.treated_idx);
            let pc = phi.select_rows(&ctx.control_idx);
            ipm_plain(IpmKind::MmdLin, &pt, &pc)
        };

        let before = measure(&model);
        let mut opt = Adam::new(model.store(), 1e-2);
        for _ in 0..60 {
            let mut g = Graph::new();
            let mut binding = Binding::new(model.store());
            let x = g.constant(x_all.clone());
            let pass = model.train_step().forward(&mut g, &mut binding, x, &ctx);
            g.backward(pass.reg_loss);
            opt.step(model.store_mut(), &g, &binding);
        }
        let after = measure(&model);
        assert!(after < before * 0.5, "IPM training should balance: {before} -> {after}");
    }
}
