//! The backbone abstraction the SBRL / SBRL-HAP frameworks wrap.
//!
//! A backbone is any balanced-representation architecture with a shared
//! representation network and two-head outcome prediction (Sec. IV-D). To be
//! wrappable it must expose its *layer taps* — the per-priority activations
//! the Hierarchical-Attention Paradigm decorrelates:
//!
//! * `z_p` (first priority) — the model's last hidden layer;
//! * `z_r` (second priority) — the balanced-representation layer `Φ`;
//! * `z_o` (third priority) — every other hidden layer.

use sbrl_nn::{BatchNorm, Binding, OutcomeLoss, ParamHandle, ParamStore};
use sbrl_tensor::{Graph, Matrix, TensorId};

use crate::kind::BackboneConfig;

/// Batch-level context shared by all backbones: the treatment column, its
/// complement `1 - t`, and the within-batch treated/control index sets.
#[derive(Clone, Debug, Default)]
pub struct BatchContext {
    /// Treatments of the batch as an `n x 1` column.
    pub t: Vec<f64>,
    /// Complement column `1 - t` (used by the factual head mix).
    pub one_minus_t: Vec<f64>,
    /// Indices (within the batch) of treated units.
    pub treated_idx: Vec<usize>,
    /// Indices (within the batch) of control units.
    pub control_idx: Vec<usize>,
}

impl BatchContext {
    /// Builds the context from a treatment slice.
    pub fn new(t: &[f64]) -> Self {
        let mut ctx = Self::default();
        ctx.rebuild(t);
        ctx
    }

    /// Refills the context from a treatment slice, reusing the existing
    /// buffers' capacity — the allocation-free per-step path of the trainer.
    pub fn rebuild(&mut self, t: &[f64]) {
        self.t.clear();
        self.t.extend_from_slice(t);
        self.one_minus_t.clear();
        self.one_minus_t.extend(t.iter().map(|&ti| 1.0 - ti));
        self.treated_idx.clear();
        self.control_idx.clear();
        for (i, &ti) in t.iter().enumerate() {
            if ti > 0.5 {
                self.treated_idx.push(i);
            } else {
                self.control_idx.push(i);
            }
        }
    }

    /// Batch size.
    pub fn len(&self) -> usize {
        self.t.len()
    }

    /// True when the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.t.is_empty()
    }

    /// The treatment column as a graph constant (pooled).
    pub fn t_const(&self, g: &mut Graph) -> TensorId {
        g.constant_col(&self.t)
    }
}

/// Per-priority layer activations (Sec. IV-C).
pub struct LayerTaps {
    /// Third priority: all other hidden layers `Z_o^i`.
    pub z_o: Vec<TensorId>,
    /// Second priority: the balanced-representation layer `Z_r` (Φ).
    pub z_r: TensorId,
    /// First priority: the model's last hidden layer `Z_p`.
    pub z_p: TensorId,
}

/// Result of one backbone forward pass over a batch.
pub struct ForwardPass {
    /// Raw control-head outputs (`n x 1`; logits for binary outcomes).
    pub y0_raw: TensorId,
    /// Raw treated-head outputs.
    pub y1_raw: TensorId,
    /// Layer taps for the regularizers.
    pub taps: LayerTaps,
    /// Backbone-specific regularisation (scalar node; e.g. CFR's `α·IPM`,
    /// DeR-CFR's decomposition losses; zero for TARNet).
    pub reg_loss: TensorId,
}

/// A wrappable balanced-representation backbone.
///
/// The trait separates the two forward paths by mutability:
///
/// * [`Backbone::forward`] is the **inference** path. It takes `&self`, never
///   touches training-only state (batch-norm running statistics), and never
///   emits regularisation terms, so a fitted model is an immutable artifact
///   that can fan out across threads (the trait requires `Send + Sync`).
/// * The **training** path lives behind the explicit [`TrainStep`] handle
///   obtained from [`Backbone::train_step`]; it may update training-only
///   state and attaches the backbone's own regularisation losses.
pub trait Backbone: Send + Sync {
    /// Human-readable name used in result tables ("TARNet", "CFR", ...).
    fn name(&self) -> String;

    /// Inference-mode forward pass over a batch of covariates `x` (graph
    /// node, `n x d`). `reg_loss` is always the zero scalar.
    fn forward(
        &self,
        g: &mut Graph,
        binding: &mut Binding,
        x: TensorId,
        ctx: &BatchContext,
    ) -> ForwardPass;

    /// Training-mode forward pass. Implementors put batch-statistic updates
    /// and regularisation terms here; callers should reach it through
    /// [`Backbone::train_step`] so the mutable path stays explicit.
    fn forward_train(
        &mut self,
        g: &mut Graph,
        binding: &mut Binding,
        x: TensorId,
        ctx: &BatchContext,
    ) -> ForwardPass;

    /// The parameter store holding all trainable parameters.
    fn store(&self) -> &ParamStore;

    /// Mutable parameter store (for the optimiser).
    fn store_mut(&mut self) -> &mut ParamStore;

    /// Weight (not bias) handles for L2 regularisation.
    fn l2_handles(&self) -> Vec<ParamHandle>;

    /// The configuration that rebuilds an architecturally identical backbone
    /// (model persistence: the config plus the parameter store plus
    /// [`Backbone::export_extra_state`] fully determine inference output).
    fn export_config(&self) -> BackboneConfig;

    /// Non-parameter state a serialized model must carry: named `f64`
    /// vectors (today: batch-norm running statistics). The default is the
    /// empty set for backbones with no such state.
    fn export_extra_state(&self) -> Vec<(String, Vec<f64>)> {
        Vec::new()
    }

    /// Restores state exported by [`Backbone::export_extra_state`]. Errors
    /// (with a human-readable reason) on unknown names or mismatched
    /// lengths; the default accepts only the empty set.
    fn import_extra_state(&mut self, state: &[(String, Vec<f64>)]) -> Result<(), String> {
        if let Some((name, _)) = state.first() {
            return Err(format!("backbone has no extra state, got '{name}'"));
        }
        Ok(())
    }

    /// The explicit handle to the mutable training-mode forward path.
    fn train_step(&mut self) -> TrainStep<'_, Self>
    where
        Self: Sized,
    {
        TrainStep { model: self }
    }
}

/// Exports an optional input batch-norm's running statistics in the named
/// form [`Backbone::export_extra_state`] requires. Shared by every backbone
/// whose only extra state is the `input_bn` layer.
pub(crate) fn export_bn_state(bn: &Option<BatchNorm>) -> Vec<(String, Vec<f64>)> {
    match bn {
        Some(bn) => {
            let (mean, var) = bn.running_stats();
            vec![
                ("input_bn.running_mean".to_string(), mean.to_vec()),
                ("input_bn.running_var".to_string(), var.to_vec()),
            ]
        }
        None => Vec::new(),
    }
}

/// Restores running statistics exported by [`export_bn_state`]:
/// order-insensitive by name, rejecting unknown names, missing halves and
/// width mismatches so a corrupted artifact cannot half-apply.
pub(crate) fn import_bn_state(
    bn: &mut Option<BatchNorm>,
    state: &[(String, Vec<f64>)],
) -> Result<(), String> {
    let Some(bn) = bn else {
        if let Some((name, _)) = state.first() {
            return Err(format!("backbone has no batch norm, got state '{name}'"));
        }
        return Ok(());
    };
    let mut mean: Option<&[f64]> = None;
    let mut var: Option<&[f64]> = None;
    for (name, values) in state {
        match name.as_str() {
            "input_bn.running_mean" => mean = Some(values),
            "input_bn.running_var" => var = Some(values),
            other => return Err(format!("unknown extra state '{other}'")),
        }
    }
    match (mean, var) {
        (Some(mean), Some(var)) => {
            if !bn.set_running_stats(mean, var) {
                return Err(format!(
                    "batch-norm state widths ({}, {}) do not match the layer width {}",
                    mean.len(),
                    var.len(),
                    bn.dim()
                ));
            }
            Ok(())
        }
        _ => Err("batch-norm state needs both running_mean and running_var".to_string()),
    }
}

/// Explicit train-step handle: the only sanctioned route to the
/// training-mode forward pass, which may mutate training-only state such as
/// batch-norm running statistics (Algorithm 1's per-iteration phases).
pub struct TrainStep<'a, B: Backbone + ?Sized> {
    model: &'a mut B,
}

impl<B: Backbone + ?Sized> TrainStep<'_, B> {
    /// Training-mode forward pass through the wrapped backbone.
    pub fn forward(
        &mut self,
        g: &mut Graph,
        binding: &mut Binding,
        x: TensorId,
        ctx: &BatchContext,
    ) -> ForwardPass {
        self.model.forward_train(g, binding, x, ctx)
    }

    /// Shared view of the wrapped backbone.
    pub fn model(&self) -> &B {
        self.model
    }
}

impl Backbone for Box<dyn Backbone> {
    fn name(&self) -> String {
        self.as_ref().name()
    }

    fn forward(
        &self,
        g: &mut Graph,
        binding: &mut Binding,
        x: TensorId,
        ctx: &BatchContext,
    ) -> ForwardPass {
        self.as_ref().forward(g, binding, x, ctx)
    }

    fn forward_train(
        &mut self,
        g: &mut Graph,
        binding: &mut Binding,
        x: TensorId,
        ctx: &BatchContext,
    ) -> ForwardPass {
        self.as_mut().forward_train(g, binding, x, ctx)
    }

    fn store(&self) -> &ParamStore {
        self.as_ref().store()
    }

    fn store_mut(&mut self) -> &mut ParamStore {
        self.as_mut().store_mut()
    }

    fn l2_handles(&self) -> Vec<ParamHandle> {
        self.as_ref().l2_handles()
    }

    fn export_config(&self) -> BackboneConfig {
        self.as_ref().export_config()
    }

    fn export_extra_state(&self) -> Vec<(String, Vec<f64>)> {
        self.as_ref().export_extra_state()
    }

    fn import_extra_state(&mut self, state: &[(String, Vec<f64>)]) -> Result<(), String> {
        self.as_mut().import_extra_state(state)
    }
}

/// Mixes two same-shape head tensors by the factual treatment:
/// `out = t .* on_treated + (1 - t) .* on_control` (differentiable row mix).
pub fn select_by_treatment(
    g: &mut Graph,
    ctx: &BatchContext,
    on_treated: TensorId,
    on_control: TensorId,
) -> TensorId {
    let t = ctx.t_const(g);
    let omt = g.constant_col(&ctx.one_minus_t);
    let a = g.mul_col(on_treated, t);
    let b = g.mul_col(on_control, omt);
    g.add(a, b)
}

/// Runs a backbone in inference mode over a full covariate matrix and maps
/// raw head outputs to outcome space (sigmoid for binary outcomes). Takes
/// `&dyn Backbone`, so callers can share one fitted backbone across threads.
pub fn predict_potential_outcomes(
    model: &dyn Backbone,
    x: &Matrix,
    t: &[f64],
    loss_kind: OutcomeLoss,
) -> (Vec<f64>, Vec<f64>) {
    let mut g = Graph::new();
    let mut binding = Binding::new_frozen(model.store());
    let xc = g.constant(x.clone());
    let ctx = BatchContext::new(t);
    let pass = model.forward(&mut g, &mut binding, xc, &ctx);
    let y0 = loss_kind.predict(&mut g, pass.y0_raw);
    let y1 = loss_kind.predict(&mut g, pass.y1_raw);
    (g.value(y0).as_slice().to_vec(), g.value(y1).as_slice().to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_context_partitions_indices() {
        let ctx = BatchContext::new(&[1.0, 0.0, 0.0, 1.0]);
        assert_eq!(ctx.treated_idx, vec![0, 3]);
        assert_eq!(ctx.control_idx, vec![1, 2]);
        assert_eq!(ctx.len(), 4);
        assert!(!ctx.is_empty());
    }

    #[test]
    fn select_by_treatment_mixes_rows() {
        let mut g = Graph::new();
        let ctx = BatchContext::new(&[1.0, 0.0]);
        let a = g.constant(Matrix::from_vec(2, 2, vec![1.0, 1.0, 1.0, 1.0]));
        let b = g.constant(Matrix::from_vec(2, 2, vec![9.0, 9.0, 9.0, 9.0]));
        let out = select_by_treatment(&mut g, &ctx, a, b);
        assert_eq!(g.value(out).row(0), &[1.0, 1.0]); // treated row from a
        assert_eq!(g.value(out).row(1), &[9.0, 9.0]); // control row from b
    }

    #[test]
    fn select_by_treatment_is_differentiable() {
        let mut g = Graph::new();
        let ctx = BatchContext::new(&[1.0, 0.0]);
        let a = g.param(Matrix::ones(2, 2));
        let b = g.param(Matrix::ones(2, 2));
        let out = select_by_treatment(&mut g, &ctx, a, b);
        let loss = g.sumsq(out);
        g.backward(loss);
        // Row 0 of `a` and row 1 of `b` receive gradient; the others are zero.
        let ga = g.grad(a).unwrap();
        let gb = g.grad(b).unwrap();
        assert!(ga.row(0).iter().all(|&v| v != 0.0));
        assert!(ga.row(1).iter().all(|&v| v == 0.0));
        assert!(gb.row(0).iter().all(|&v| v == 0.0));
        assert!(gb.row(1).iter().all(|&v| v != 0.0));
    }
}
