//! # sbrl-models
//!
//! Balanced-representation backbones reproduced from the literature and used
//! as the paper's baselines (Sec. V-A):
//!
//! * [`Tarnet`] — treatment-agnostic representation network with two outcome
//!   heads (Shalit et al., 2017);
//! * [`Cfr`] — TARNet plus an `α·IPM(Φ_t, Φ_c)` balancing penalty;
//! * [`DerCfr`] — decomposed representations separating instruments,
//!   confounders and adjustments (Wu et al., TKDE 2022).
//!
//! All three implement [`Backbone`], exposing the per-priority layer taps the
//! SBRL-HAP framework regularises, so `+SBRL` / `+SBRL-HAP` wrap any of them
//! without model-specific code.

pub mod backbone;
pub mod cfr;
pub mod dercfr;
pub mod kind;
pub mod tarnet;

pub use backbone::{
    predict_potential_outcomes, select_by_treatment, Backbone, BatchContext, ForwardPass,
    LayerTaps, TrainStep,
};
pub use cfr::{Cfr, CfrConfig};
pub use dercfr::{DerCfr, DerCfrConfig};
pub use kind::{BackboneConfig, BackboneKind, ParseBackboneError};
pub use tarnet::{Tarnet, TarnetConfig};
