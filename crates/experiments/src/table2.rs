//! **Table II** — ablation of the three sub-modules on `Syn_16_16_16_2`:
//! every row keeps two of {BR, IR, HAP} (plus the full model) and reports
//! PEHE on the ID environment (`ρ = 2.5`) and the far OOD environment
//! (`ρ = −3`), with the CFR backbone.

use sbrl_core::{Estimator, SbrlConfig};
use sbrl_data::{SyntheticConfig, SyntheticProcess};

use crate::methods::{BackboneKind, ExperimentPreset};
use crate::presets::{bench_variant, paper_syn_16_16_16_2, quick_variant};
use crate::report::{fmt_mean_std, render_table, results_dir, write_tsv};
use crate::scale::Scale;

/// One ablation row: which sub-modules stay on.
#[derive(Clone, Copy, Debug)]
pub struct AblationRow {
    /// Balancing Regularizer kept.
    pub br: bool,
    /// Independence Regularizer kept.
    pub ir: bool,
    /// Hierarchical-Attention terms kept.
    pub hap: bool,
}

impl AblationRow {
    /// The paper's four rows.
    pub const ALL: [AblationRow; 4] = [
        AblationRow { br: false, ir: true, hap: true },
        AblationRow { br: true, ir: false, hap: true },
        AblationRow { br: true, ir: true, hap: false },
        AblationRow { br: true, ir: true, hap: true },
    ];

    /// Check-mark label, e.g. `"BR+IR"`.
    pub fn label(self) -> String {
        let mut parts = Vec::new();
        if self.br {
            parts.push("BR");
        }
        if self.ir {
            parts.push("IR");
        }
        if self.hap {
            parts.push("HAP");
        }
        parts.join("+")
    }

    /// Translates the row into an [`SbrlConfig`] using preset coefficients.
    pub fn config(self, preset: &ExperimentPreset) -> SbrlConfig {
        let (g1, g2, g3) = preset.gammas;
        let mut cfg = SbrlConfig::sbrl_hap(preset.alpha, g1, g2, g3).with_ipm(preset.ipm);
        cfg.use_br = self.br;
        cfg.use_ir = self.ir;
        cfg.use_hap = self.hap;
        cfg
    }
}

/// Runs Table II and renders the report.
pub fn run(scale: Scale) -> String {
    let preset = match scale {
        Scale::Paper => paper_syn_16_16_16_2(),
        Scale::Quick => quick_variant(paper_syn_16_16_16_2()),
        Scale::Bench => bench_variant(paper_syn_16_16_16_2()),
    };
    let (n_train, n_val, n_test) = scale.synthetic_samples();
    let reps = scale.replications();

    let mut per_row: Vec<(String, Vec<f64>, Vec<f64>)> =
        AblationRow::ALL.iter().map(|r| (r.label(), Vec::new(), Vec::new())).collect();
    let mut failures: Vec<String> = Vec::new();
    let mut retries: Vec<String> = Vec::new();

    for rep in 0..reps {
        let process = SyntheticProcess::new(SyntheticConfig::syn_16_16_16_2(), 2000 + rep as u64);
        let train_data = process.generate(2.5, n_train, 20 * rep as u64);
        let val_data = process.generate(2.5, n_val, 20 * rep as u64 + 1);
        let test_id = process.generate(2.5, n_test, 20 * rep as u64 + 2);
        let test_ood = process.generate(-3.0, n_test, 20 * rep as u64 + 3);

        for (k, row) in AblationRow::ALL.iter().enumerate() {
            let cfg = row.config(&preset);
            let train_cfg = scale.train_config(preset.lr, preset.l2, (rep * 31 + k) as u64);
            let fitted = crate::runner::retrying(
                train_cfg.seed,
                crate::runner::DEFAULT_FIT_RETRIES,
                |seed| {
                    Estimator::builder()
                        .backbone(preset.backbone_config(BackboneKind::Cfr, train_data.dim()))
                        .sbrl(cfg)
                        .train(sbrl_core::TrainConfig { seed, ..train_cfg })
                        .fit(&train_data, &val_data)
                },
            );
            let fitted = match fitted {
                Ok((fitted, 0)) => fitted,
                Ok((fitted, attempts)) => {
                    let msg = format!(
                        "rep {} row {} recovered after {attempts} reseeded retries",
                        rep + 1,
                        per_row[k].0
                    );
                    crate::runner::record_retry("table2", msg, &mut retries);
                    fitted
                }
                Err(e) => {
                    let msg = format!("rep {} row {} FAILED: {e}", rep + 1, per_row[k].0);
                    crate::runner::record_failure("table2", msg, &mut failures);
                    continue;
                }
            };
            // lint: allow(panic) — simulator splits always carry the oracle.
            per_row[k].1.push(fitted.evaluate(&test_id).expect("oracle").pehe);
            // lint: allow(panic) — as above.
            per_row[k].2.push(fitted.evaluate(&test_ood).expect("oracle").pehe);
            eprintln!("[table2] rep {} row {} done", rep + 1, per_row[k].0);
        }
    }

    let header = vec!["Modules".to_string(), "PEHE rho=2.5".to_string(), "PEHE rho=-3".to_string()];
    let rows: Vec<Vec<String>> = per_row
        .iter()
        .map(|(label, id, ood)| vec![label.clone(), fmt_mean_std(id), fmt_mean_std(ood)])
        .collect();
    let mut out = render_table(
        &format!("Table II — sub-module ablation (CFR backbone), scale {}", scale.name()),
        &header,
        &rows,
    );
    write_tsv(results_dir().join("table2_ablation.tsv"), &header, &rows).ok();
    out.push_str(&crate::runner::render_retries(&retries));
    out.push_str(&crate::runner::render_failures(&failures));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets::paper_syn_16_16_16_2;

    #[test]
    fn four_rows_matching_the_paper() {
        let labels: Vec<String> = AblationRow::ALL.iter().map(|r| r.label()).collect();
        assert_eq!(labels, vec!["IR+HAP", "BR+HAP", "BR+IR", "BR+IR+HAP"]);
    }

    #[test]
    fn row_config_toggles_flags() {
        let preset = paper_syn_16_16_16_2();
        let cfg = AblationRow { br: false, ir: true, hap: true }.config(&preset);
        assert!(!cfg.use_br && cfg.use_ir && cfg.use_hap);
        assert!(cfg.weights_enabled());
        let full = AblationRow { br: true, ir: true, hap: true }.config(&preset);
        assert_eq!(full.gamma1, preset.gammas.0);
    }
}
