//! **Table VI** — training cost: wall-clock seconds of a single execution on
//! IHDP for every method. The paper's shape: `+SBRL` roughly doubles the
//! vanilla TARNet/CFR cost (the extra weight-update phase), `+SBRL-HAP`
//! roughly triples it (hierarchical decorrelation over every layer), while
//! DeR-CFR starts higher and grows by ~1.5x.

use sbrl_data::{IhdpConfig, IhdpSimulator};

use crate::methods::MethodSpec;
use crate::presets::{bench_variant, paper_ihdp, quick_variant};
use crate::report::{render_table, results_dir, write_tsv};
use crate::runner::{fit_method_retrying, DEFAULT_FIT_RETRIES};
use crate::scale::Scale;

/// One timing measurement.
#[derive(Clone, Debug)]
pub struct Timing {
    /// Method label.
    pub method: String,
    /// Wall-clock seconds of one training execution.
    pub seconds: f64,
}

/// Measures a single training execution per method on one IHDP replication;
/// failed fits are skipped and described in the second element, fits
/// recovered by reseeded retries in the third, so the report can record
/// both.
pub fn analyse(scale: Scale) -> (Vec<Timing>, Vec<String>, Vec<String>) {
    let preset = match scale {
        Scale::Paper => paper_ihdp(),
        Scale::Quick => quick_variant(paper_ihdp()),
        Scale::Bench => bench_variant(paper_ihdp()),
    };
    let sim = IhdpSimulator::new(IhdpConfig::default(), 3);
    let split = sim.replicate(0);
    let mut failures = Vec::new();
    let mut retries = Vec::new();
    let timings = MethodSpec::grid()
        .into_iter()
        .filter_map(|spec| {
            let train_cfg = scale.train_config(preset.lr, preset.l2, 1);
            let fitted = match fit_method_retrying(
                spec,
                &preset,
                &split.train,
                &split.val,
                &train_cfg,
                DEFAULT_FIT_RETRIES,
            ) {
                Ok((fitted, 0)) => fitted,
                Ok((fitted, attempts)) => {
                    let msg = format!(
                        "method {} recovered after {attempts} reseeded retries",
                        spec.name()
                    );
                    crate::runner::record_retry("table6", msg, &mut retries);
                    fitted
                }
                Err(e) => {
                    let msg = format!("method {} FAILED: {e}", spec.name());
                    crate::runner::record_failure("table6", msg, &mut failures);
                    return None;
                }
            };
            let seconds = fitted.report().train_seconds;
            eprintln!("[table6] {} trained in {seconds:.2}s", spec.name());
            Some(Timing { method: spec.name(), seconds })
        })
        .collect();
    (timings, failures, retries)
}

/// Runs Table VI and renders the report, including per-backbone ratios.
pub fn run(scale: Scale) -> String {
    let (timings, failures, retries) = analyse(scale);
    let base_of = |name: &str| {
        timings.iter().find(|t| t.method == name).map(|t| t.seconds).unwrap_or(f64::NAN)
    };
    let header =
        vec!["Method".to_string(), "Time (s)".to_string(), "x vanilla backbone".to_string()];
    let rows: Vec<Vec<String>> = timings
        .iter()
        .map(|t| {
            let backbone = t.method.split('+').next().unwrap_or(&t.method).to_string();
            let ratio = t.seconds / base_of(&backbone);
            vec![t.method.clone(), format!("{:.2}", t.seconds), format!("{ratio:.2}x")]
        })
        .collect();
    let mut out = render_table(
        &format!("Table VI — training time per execution on IHDP, scale {}", scale.name()),
        &header,
        &rows,
    );
    write_tsv(results_dir().join("table6_time.tsv"), &header, &rows).ok();
    out.push_str(&crate::runner::render_retries(&retries));
    out.push_str(&crate::runner::render_failures(&failures));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[ignore = "trains nine models; run with --ignored"]
    fn bench_scale_cost_ordering() {
        let (t, failures, _retries) = analyse(Scale::Bench);
        assert_eq!(t.len(), 9);
        assert!(failures.is_empty());
        let sec = |name: &str| t.iter().find(|x| x.method == name).unwrap().seconds;
        // The weight phase must make +SBRL strictly more expensive than
        // vanilla, and HAP more expensive than SBRL.
        assert!(sec("CFR+SBRL") > sec("CFR"));
        assert!(sec("CFR+SBRL-HAP") > sec("CFR+SBRL"));
    }
}
