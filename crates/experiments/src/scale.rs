//! Experiment scales: the paper's full settings versus CPU-friendly
//! variants for quick runs and Criterion benches.

use sbrl_core::TrainConfig;

/// How big an experiment run should be.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Minimal settings so `cargo bench` completes in minutes.
    Bench,
    /// Laptop-scale settings preserving the papers' qualitative shape
    /// (default for the experiment binaries).
    Quick,
    /// The paper's settings (3000 iterations, 10000 samples, full
    /// replication counts) — hours of CPU time.
    Paper,
}

impl Scale {
    /// Parses `--scale bench|quick|paper` from process args (default Quick).
    pub fn from_args() -> Self {
        let args: Vec<String> = std::env::args().collect();
        Self::from_arg_list(&args)
    }

    /// Parses from an explicit argument list (testable).
    pub fn from_arg_list(args: &[String]) -> Self {
        for pair in args.windows(2) {
            if pair[0] == "--scale" {
                return match pair[1].as_str() {
                    "bench" => Scale::Bench,
                    "paper" => Scale::Paper,
                    _ => Scale::Quick,
                };
            }
        }
        Scale::Quick
    }

    /// `(n_train, n_val, n_test)` for synthetic environments.
    pub fn synthetic_samples(self) -> (usize, usize, usize) {
        match self {
            Scale::Bench => (300, 100, 200),
            Scale::Quick => (1200, 400, 600),
            Scale::Paper => (7000, 3000, 10_000),
        }
    }

    /// Number of replications (fresh processes / seeds) per experiment.
    pub fn replications(self) -> usize {
        match self {
            Scale::Bench => 1,
            Scale::Quick => 3,
            Scale::Paper => 10,
        }
    }

    /// Twins partition rounds (paper: 10) and IHDP replications (paper: 100).
    pub fn realworld_replications(self) -> (usize, usize) {
        match self {
            Scale::Bench => (1, 1),
            Scale::Quick => (3, 5),
            Scale::Paper => (10, 100),
        }
    }

    /// Twins record count (paper: 5271).
    pub fn twins_records(self) -> usize {
        match self {
            Scale::Bench => 800,
            Scale::Quick => 2500,
            Scale::Paper => 5271,
        }
    }

    /// Optimisation budget at this scale.
    pub fn train_config(self, lr: f64, l2: f64, seed: u64) -> TrainConfig {
        let base = TrainConfig { lr, l2, seed, ..TrainConfig::default() };
        match self {
            Scale::Bench => {
                TrainConfig { iterations: 60, batch_size: 64, eval_every: 30, patience: 20, ..base }
            }
            Scale::Quick => TrainConfig {
                iterations: 400,
                batch_size: 128,
                eval_every: 25,
                patience: 16,
                ..base
            },
            Scale::Paper => TrainConfig {
                iterations: 3000,
                batch_size: 256,
                eval_every: 50,
                patience: 20,
                ..base
            },
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Scale::Bench => "bench",
            Scale::Quick => "quick",
            Scale::Paper => "paper",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_scale_flag() {
        assert_eq!(Scale::from_arg_list(&args(&["bin", "--scale", "bench"])), Scale::Bench);
        assert_eq!(Scale::from_arg_list(&args(&["bin", "--scale", "paper"])), Scale::Paper);
        assert_eq!(Scale::from_arg_list(&args(&["bin", "--scale", "quick"])), Scale::Quick);
        assert_eq!(Scale::from_arg_list(&args(&["bin"])), Scale::Quick);
        assert_eq!(Scale::from_arg_list(&args(&["bin", "--scale"])), Scale::Quick);
    }

    #[test]
    fn scales_are_ordered() {
        let (bt, _, _) = Scale::Bench.synthetic_samples();
        let (qt, _, _) = Scale::Quick.synthetic_samples();
        let (pt, _, _) = Scale::Paper.synthetic_samples();
        assert!(bt < qt && qt < pt);
        assert!(
            Scale::Bench.train_config(1e-3, 1e-4, 0).iterations
                < Scale::Paper.train_config(1e-3, 1e-4, 0).iterations
        );
        assert_eq!(Scale::Paper.train_config(1e-3, 1e-4, 0).iterations, 3000);
        assert_eq!(Scale::Paper.replications(), 10);
        assert_eq!(Scale::Paper.realworld_replications(), (10, 100));
        assert_eq!(Scale::Paper.twins_records(), 5271);
    }
}
