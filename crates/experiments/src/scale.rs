//! Experiment scales: the paper's full settings versus CPU-friendly
//! variants for quick runs and Criterion benches.

use std::fmt;
use std::str::FromStr;

use sbrl_core::TrainConfig;

/// Typed error for an unrecognised `--scale` value, listing the valid
/// scales so experiment binaries can fail with an actionable message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseScaleError {
    /// The rejected value, or `None` when `--scale` had no value at all.
    pub input: Option<String>,
}

impl fmt::Display for ParseScaleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.input {
            Some(input) => {
                write!(
                    f,
                    "unrecognised --scale value '{input}' (valid scales: bench, quick, paper)"
                )
            }
            None => write!(f, "--scale needs a value (valid scales: bench, quick, paper)"),
        }
    }
}

impl std::error::Error for ParseScaleError {}

/// How big an experiment run should be.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Minimal settings so `cargo bench` completes in minutes.
    Bench,
    /// Laptop-scale settings preserving the papers' qualitative shape
    /// (default for the experiment binaries).
    Quick,
    /// The paper's settings (3000 iterations, 10000 samples, full
    /// replication counts) — hours of CPU time.
    Paper,
}

impl FromStr for Scale {
    type Err = ParseScaleError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "bench" => Ok(Scale::Bench),
            "quick" => Ok(Scale::Quick),
            "paper" => Ok(Scale::Paper),
            other => Err(ParseScaleError { input: Some(other.to_string()) }),
        }
    }
}

impl Scale {
    /// Parses `--scale bench|quick|paper` from process args (default Quick);
    /// an unrecognised value is a typed error, not a silent fallback.
    pub fn from_args() -> Result<Self, ParseScaleError> {
        let args: Vec<String> = std::env::args().collect();
        Self::from_arg_list(&args)
    }

    /// Parses from an explicit argument list (testable).
    pub fn from_arg_list(args: &[String]) -> Result<Self, ParseScaleError> {
        for pair in args.windows(2) {
            if pair[0] == "--scale" {
                return pair[1].parse();
            }
        }
        if args.last().map(String::as_str) == Some("--scale") {
            return Err(ParseScaleError { input: None });
        }
        Ok(Scale::Quick)
    }

    /// CLI entry-point helper: parse `--scale`, or print the error (with the
    /// valid scales) to stderr and exit non-zero.
    pub fn from_args_or_exit() -> Self {
        Self::from_args().unwrap_or_else(|e| {
            eprintln!("error: {e}");
            std::process::exit(2);
        })
    }

    /// `(n_train, n_val, n_test)` for synthetic environments.
    pub fn synthetic_samples(self) -> (usize, usize, usize) {
        match self {
            Scale::Bench => (300, 100, 200),
            Scale::Quick => (1200, 400, 600),
            Scale::Paper => (7000, 3000, 10_000),
        }
    }

    /// Number of replications (fresh processes / seeds) per experiment.
    pub fn replications(self) -> usize {
        match self {
            Scale::Bench => 1,
            Scale::Quick => 3,
            Scale::Paper => 10,
        }
    }

    /// Twins partition rounds (paper: 10) and IHDP replications (paper: 100).
    pub fn realworld_replications(self) -> (usize, usize) {
        match self {
            Scale::Bench => (1, 1),
            Scale::Quick => (3, 5),
            Scale::Paper => (10, 100),
        }
    }

    /// Twins record count (paper: 5271).
    pub fn twins_records(self) -> usize {
        match self {
            Scale::Bench => 800,
            Scale::Quick => 2500,
            Scale::Paper => 5271,
        }
    }

    /// Optimisation budget at this scale.
    pub fn train_config(self, lr: f64, l2: f64, seed: u64) -> TrainConfig {
        let base = TrainConfig { lr, l2, seed, ..TrainConfig::default() };
        match self {
            Scale::Bench => {
                TrainConfig { iterations: 60, batch_size: 64, eval_every: 30, patience: 20, ..base }
            }
            Scale::Quick => TrainConfig {
                iterations: 400,
                batch_size: 128,
                eval_every: 25,
                patience: 16,
                ..base
            },
            Scale::Paper => TrainConfig {
                iterations: 3000,
                batch_size: 256,
                eval_every: 50,
                patience: 20,
                ..base
            },
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Scale::Bench => "bench",
            Scale::Quick => "quick",
            Scale::Paper => "paper",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_scale_flag() {
        assert_eq!(Scale::from_arg_list(&args(&["bin", "--scale", "bench"])), Ok(Scale::Bench));
        assert_eq!(Scale::from_arg_list(&args(&["bin", "--scale", "paper"])), Ok(Scale::Paper));
        assert_eq!(Scale::from_arg_list(&args(&["bin", "--scale", "quick"])), Ok(Scale::Quick));
        assert_eq!(Scale::from_arg_list(&args(&["bin"])), Ok(Scale::Quick));
    }

    #[test]
    fn bad_scale_values_are_typed_errors_listing_valid_scales() {
        let err = Scale::from_arg_list(&args(&["bin", "--scale", "huge"])).unwrap_err();
        assert_eq!(err.input.as_deref(), Some("huge"));
        let msg = err.to_string();
        assert!(msg.contains("bench") && msg.contains("quick") && msg.contains("paper"));
        // A trailing `--scale` with no value is also an error, not a default.
        let err = Scale::from_arg_list(&args(&["bin", "--scale"])).unwrap_err();
        assert_eq!(err.input, None);
    }

    #[test]
    fn scales_are_ordered() {
        let (bt, _, _) = Scale::Bench.synthetic_samples();
        let (qt, _, _) = Scale::Quick.synthetic_samples();
        let (pt, _, _) = Scale::Paper.synthetic_samples();
        assert!(bt < qt && qt < pt);
        assert!(
            Scale::Bench.train_config(1e-3, 1e-4, 0).iterations
                < Scale::Paper.train_config(1e-3, 1e-4, 0).iterations
        );
        assert_eq!(Scale::Paper.train_config(1e-3, 1e-4, 0).iterations, 3000);
        assert_eq!(Scale::Paper.replications(), 10);
        assert_eq!(Scale::Paper.realworld_replications(), (10, 100));
        assert_eq!(Scale::Paper.twins_records(), 5271);
    }
}
