//! Table rendering and TSV persistence for experiment results.

use std::fs;
use std::io::{self, Write};
use std::path::Path;

use sbrl_metrics::mean_std;

/// Formats replicate values as the paper's `mean±std` cell. An empty slice
/// (every replication of the cell failed and was skipped) renders as `n/a`
/// so a fully-failed method can never masquerade as a perfect score.
pub fn fmt_mean_std(values: &[f64]) -> String {
    if values.is_empty() {
        return "n/a".to_string();
    }
    let (m, s) = mean_std(values);
    format!("{m:.3}±{s:.3}")
}

/// Formats a plain number cell.
pub fn fmt_num(v: f64) -> String {
    format!("{v:.3}")
}

/// Renders a markdown table with a title.
pub fn render_table(title: &str, header: &[String], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(String::len).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let fmt_row = |cells: &[String]| -> String {
        let padded: Vec<String> =
            cells.iter().zip(&widths).map(|(c, &w)| format!("{c:<w$}")).collect();
        format!("| {} |", padded.join(" | "))
    };
    let sep: Vec<String> = widths.iter().map(|&w| "-".repeat(w)).collect();
    let mut out = String::new();
    out.push_str(&format!("\n## {title}\n\n"));
    out.push_str(&fmt_row(header));
    out.push('\n');
    out.push_str(&fmt_row(&sep));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row));
        out.push('\n');
    }
    out
}

/// Writes a TSV file (creating parent directories) alongside the rendered
/// table so downstream tooling can parse results.
pub fn write_tsv(
    path: impl AsRef<Path>,
    header: &[String],
    rows: &[Vec<String>],
) -> io::Result<()> {
    let path = path.as_ref();
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent)?;
    }
    let mut file = io::BufWriter::new(fs::File::create(path)?);
    writeln!(file, "{}", header.join("\t"))?;
    for row in rows {
        writeln!(file, "{}", row.join("\t"))?;
    }
    file.flush()
}

/// Default results directory (`results/` under the workspace root when run
/// via cargo, otherwise the current directory).
pub fn results_dir() -> std::path::PathBuf {
    let base = std::env::var("CARGO_MANIFEST_DIR")
        .map(|d| {
            Path::new(&d)
                .join("../..")
                .canonicalize()
                .unwrap_or_else(|_| Path::new(&d).to_path_buf())
        })
        .unwrap_or_else(|_| Path::new(".").to_path_buf());
    base.join("results")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_std_formatting() {
        assert_eq!(fmt_mean_std(&[1.0, 3.0]), "2.000±1.000");
        assert_eq!(fmt_mean_std(&[]), "n/a");
        assert_eq!(fmt_num(0.12345), "0.123");
    }

    #[test]
    fn table_renders_alignment_and_rows() {
        let header = vec!["Method".to_string(), "PEHE".to_string()];
        let rows = vec![
            vec!["CFR".to_string(), "0.5".to_string()],
            vec!["CFR+SBRL-HAP".to_string(), "0.4".to_string()],
        ];
        let t = render_table("Demo", &header, &rows);
        assert!(t.contains("## Demo"));
        assert!(t.contains("| CFR "));
        assert!(t.contains("| CFR+SBRL-HAP |"));
        assert_eq!(t.lines().filter(|l| l.starts_with('|')).count(), 4);
    }

    #[test]
    fn tsv_roundtrip() {
        let dir = std::env::temp_dir().join("sbrl_report_test");
        let path = dir.join("t.tsv");
        let header = vec!["a".to_string(), "b".to_string()];
        let rows = vec![vec!["1".to_string(), "2".to_string()]];
        write_tsv(&path, &header, &rows).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content, "a\tb\n1\t2\n");
        std::fs::remove_dir_all(&dir).ok();
    }
}
