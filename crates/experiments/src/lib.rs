//! # sbrl-experiments
//!
//! The benchmark harness regenerating every table and figure of the paper's
//! evaluation section (see DESIGN.md §4 for the experiment index):
//!
//! | Artefact | Module | Binary |
//! |----------|--------|--------|
//! | Table I  | [`table1`] | `table1` |
//! | Fig. 3 & Fig. 4 | [`fig34`] | `fig3`, `fig4` |
//! | Fig. 5   | [`fig5`] | `fig5` |
//! | Table II | [`table2`] | `table2_ablation` |
//! | Table III| [`table3`] | `table3_realworld` |
//! | Fig. 6   | [`fig6`] | `fig6_hparam` |
//! | Table VI | [`table6`] | `table6_time` |
//!
//! Every binary accepts `--scale bench|quick|paper` (default `quick`);
//! results are printed as markdown tables and persisted as TSV under
//! `results/`.

pub mod fig34;
pub mod fig5;
pub mod fig6;
pub mod methods;
pub mod presets;
pub mod report;
pub mod runner;
pub mod scale;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod table6;

pub use methods::{BackboneConfig, BackboneKind, ExperimentPreset, MethodSpec};
pub use runner::{
    fit_method, fit_method_retrying, render_failures, render_retries, retry_seed, retrying,
    run_synthetic_sweep, MethodEnvResults, SyntheticExperiment, DEFAULT_FIT_RETRIES,
};
pub use scale::{ParseScaleError, Scale};
