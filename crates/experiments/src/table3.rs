//! **Table III** — treatment-effect estimation on the real-world-style
//! benchmarks: Twins (10 partition rounds) and IHDP (100 outcome
//! replications), reporting PEHE and `ε_ATE` on the train / validation /
//! (OOD) test folds for the 9-method grid.

use sbrl_data::{DataSplit, IhdpConfig, IhdpSimulator, TwinsConfig, TwinsSimulator};
use sbrl_metrics::Evaluation;

use crate::methods::MethodSpec;
use crate::presets::{bench_variant, paper_ihdp, paper_twins, quick_variant};
use crate::report::{fmt_mean_std, render_table, results_dir, write_tsv};
use crate::runner::{fit_method_retrying, render_failures, render_retries, DEFAULT_FIT_RETRIES};
use crate::scale::Scale;

/// Per-method, per-fold evaluations across replications.
pub struct RealWorldResults {
    /// Method label.
    pub method: String,
    /// Evaluations on the training fold.
    pub train: Vec<Evaluation>,
    /// Evaluations on the validation fold.
    pub val: Vec<Evaluation>,
    /// Evaluations on the (distribution-shifted) test fold.
    pub test: Vec<Evaluation>,
    /// Failed replications, skipped rather than fatal.
    pub failures: Vec<String>,
    /// Replications that only succeeded after one or more reseeded retries.
    pub retries: Vec<String>,
}

fn run_splits(
    name: &str,
    splits: &[DataSplit],
    preset: &crate::methods::ExperimentPreset,
    scale: Scale,
    methods: &[MethodSpec],
) -> Vec<RealWorldResults> {
    let mut results: Vec<RealWorldResults> = methods
        .iter()
        .map(|m| RealWorldResults {
            method: m.name(),
            train: Vec::new(),
            val: Vec::new(),
            test: Vec::new(),
            failures: Vec::new(),
            retries: Vec::new(),
        })
        .collect();
    for (rep, split) in splits.iter().enumerate() {
        for (mi, spec) in methods.iter().enumerate() {
            let train_cfg = scale.train_config(preset.lr, preset.l2, (rep * 131 + mi) as u64);
            let fitted = match fit_method_retrying(
                *spec,
                preset,
                &split.train,
                &split.val,
                &train_cfg,
                DEFAULT_FIT_RETRIES,
            ) {
                Ok((fitted, 0)) => fitted,
                Ok((fitted, attempts)) => {
                    let msg = format!(
                        "rep {}/{} method {} recovered after {attempts} reseeded retries",
                        rep + 1,
                        splits.len(),
                        spec.name()
                    );
                    crate::runner::record_retry(
                        &format!("table3:{name}"),
                        msg,
                        &mut results[mi].retries,
                    );
                    fitted
                }
                Err(e) => {
                    let msg = format!(
                        "rep {}/{} method {} FAILED: {e}",
                        rep + 1,
                        splits.len(),
                        spec.name()
                    );
                    crate::runner::record_failure(
                        &format!("table3:{name}"),
                        msg,
                        &mut results[mi].failures,
                    );
                    continue;
                }
            };
            // lint: allow(panic) — simulator splits always carry the oracle.
            results[mi].train.push(fitted.evaluate(&split.train).expect("oracle"));
            // lint: allow(panic) — as above.
            results[mi].val.push(fitted.evaluate(&split.val).expect("oracle"));
            // lint: allow(panic) — as above.
            results[mi].test.push(fitted.evaluate(&split.test).expect("oracle"));
            eprintln!(
                "[table3:{name}] rep {}/{} method {} done",
                rep + 1,
                splits.len(),
                spec.name()
            );
        }
    }
    results
}

fn blocks(results: &[RealWorldResults]) -> (Vec<String>, Vec<Vec<String>>) {
    let header = vec![
        "Method".to_string(),
        "PEHE train".into(),
        "PEHE val".into(),
        "PEHE test".into(),
        "eATE train".into(),
        "eATE val".into(),
        "eATE test".into(),
    ];
    let pick = |evals: &[Evaluation], f: fn(&Evaluation) -> f64| -> Vec<f64> {
        evals.iter().map(f).collect()
    };
    let rows = results
        .iter()
        .map(|r| {
            vec![
                r.method.clone(),
                fmt_mean_std(&pick(&r.train, |e| e.pehe)),
                fmt_mean_std(&pick(&r.val, |e| e.pehe)),
                fmt_mean_std(&pick(&r.test, |e| e.pehe)),
                fmt_mean_std(&pick(&r.train, |e| e.ate_bias)),
                fmt_mean_std(&pick(&r.val, |e| e.ate_bias)),
                fmt_mean_std(&pick(&r.test, |e| e.ate_bias)),
            ]
        })
        .collect();
    (header, rows)
}

/// Runs the Twins block of Table III.
pub fn run_twins(scale: Scale, methods: &[MethodSpec]) -> String {
    let preset = match scale {
        Scale::Paper => paper_twins(),
        Scale::Quick => quick_variant(paper_twins()),
        Scale::Bench => bench_variant(paper_twins()),
    };
    let (rounds, _) = scale.realworld_replications();
    let sim =
        TwinsSimulator::new(TwinsConfig { n: scale.twins_records(), ..Default::default() }, 7);
    let splits: Vec<DataSplit> = (0..rounds).map(|r| sim.partition(r as u64)).collect();
    let results = run_splits("twins", &splits, &preset, scale, methods);
    let (header, rows) = blocks(&results);
    let mut out =
        render_table(&format!("Table III (Twins) — scale {}", scale.name()), &header, &rows);
    write_tsv(results_dir().join("table3_twins.tsv"), &header, &rows).ok();
    out.push_str(&render_retries(results.iter().flat_map(|r| &r.retries)));
    out.push_str(&render_failures(results.iter().flat_map(|r| &r.failures)));
    out
}

/// Runs the IHDP block of Table III.
pub fn run_ihdp(scale: Scale, methods: &[MethodSpec]) -> String {
    let preset = match scale {
        Scale::Paper => paper_ihdp(),
        Scale::Quick => quick_variant(paper_ihdp()),
        Scale::Bench => bench_variant(paper_ihdp()),
    };
    let (_, reps) = scale.realworld_replications();
    let sim = IhdpSimulator::new(IhdpConfig::default(), 11);
    let splits: Vec<DataSplit> = (0..reps).map(|r| sim.replicate(r as u64)).collect();
    let results = run_splits("ihdp", &splits, &preset, scale, methods);
    let (header, rows) = blocks(&results);
    let mut out =
        render_table(&format!("Table III (IHDP) — scale {}", scale.name()), &header, &rows);
    write_tsv(results_dir().join("table3_ihdp.tsv"), &header, &rows).ok();
    out.push_str(&render_retries(results.iter().flat_map(|r| &r.retries)));
    out.push_str(&render_failures(results.iter().flat_map(|r| &r.failures)));
    out
}

/// Runs both blocks for the full grid.
pub fn run(scale: Scale) -> String {
    let methods = MethodSpec::grid();
    let mut out = run_twins(scale, &methods);
    out.push_str(&run_ihdp(scale, &methods));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blocks_format_all_folds() {
        let eval = Evaluation { pehe: 0.5, ate_bias: 0.1, ..Default::default() };
        let results = vec![RealWorldResults {
            method: "CFR".into(),
            train: vec![eval],
            val: vec![eval],
            test: vec![eval],
            failures: Vec::new(),
            retries: Vec::new(),
        }];
        let (header, rows) = blocks(&results);
        assert_eq!(header.len(), 7);
        assert_eq!(rows[0][1], "0.500±0.000");
        assert_eq!(rows[0][4], "0.100±0.000");
    }
}
