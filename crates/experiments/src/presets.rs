//! Named hyper-parameter presets distilled from the paper's Tables IV & V,
//! plus CPU-scaled variants for quick runs and benches.
//!
//! The paper reports two preset families: CFR-family optima (Table IV; set
//! `α = 0` for the TARNet variants) and DeR-CFR optima (Table V). We encode
//! one merged preset per dataset carrying both families' coefficients; layer
//! counts `{d_r, d_y}` and widths `{h_r, h_y}` follow Table IV.

use sbrl_stats::IpmKind;

use crate::methods::ExperimentPreset;

/// Table IV/V preset for the `Syn_8_8_8_2` dataset.
pub fn paper_syn_8_8_8_2() -> ExperimentPreset {
    ExperimentPreset {
        rep_layers: 3,
        rep_width: 128,
        head_layers: 3,
        head_width: 64,
        batch_norm: true,
        rep_normalization: false,
        lr: 1e-4, // Table IV lists 1e-5 with 3000 iters; we keep the ratio at our budget
        l2: 1e-4,
        alpha: 5e-2,
        dercfr: (1.0, 1e-3, 5.0, 1.0),
        gammas: (1.0, 1.0, 0.1),
        ipm: IpmKind::Wasserstein { lambda: 10.0, iterations: 10 },
    }
}

/// Table IV/V preset for the `Syn_16_16_16_2` dataset.
pub fn paper_syn_16_16_16_2() -> ExperimentPreset {
    ExperimentPreset {
        rep_layers: 3,
        rep_width: 128,
        head_layers: 3,
        head_width: 64,
        batch_norm: true,
        rep_normalization: false,
        lr: 1e-4,
        l2: 1e-4,
        alpha: 1e-3,
        dercfr: (1.0, 1e-3, 5.0, 1.0),
        gammas: (1.0, 1e-3, 1e-3),
        ipm: IpmKind::Wasserstein { lambda: 10.0, iterations: 10 },
    }
}

/// Table IV/V preset for the Twins dataset.
pub fn paper_twins() -> ExperimentPreset {
    ExperimentPreset {
        rep_layers: 3,
        rep_width: 128,
        head_layers: 3,
        head_width: 64,
        batch_norm: true,
        rep_normalization: true,
        lr: 1e-4, // Table IV lists 1e-5; scaled to our iteration budget
        l2: 1e-4,
        alpha: 1e-4,
        dercfr: (1e-2, 5.0, 1e-4, 5.0),
        gammas: (1.0, 1.0, 0.1),
        ipm: IpmKind::Wasserstein { lambda: 10.0, iterations: 10 },
    }
}

/// Table IV/V preset for the IHDP dataset.
pub fn paper_ihdp() -> ExperimentPreset {
    ExperimentPreset {
        rep_layers: 3,
        rep_width: 256,
        head_layers: 3,
        head_width: 128,
        batch_norm: false,
        rep_normalization: true,
        lr: 1e-3,
        l2: 1e-4,
        alpha: 1.0,
        dercfr: (10.0, 5.0, 1e-3, 50.0),
        gammas: (0.1, 1e-4, 1e-4),
        ipm: IpmKind::Wasserstein { lambda: 10.0, iterations: 10 },
    }
}

/// Shrinks a paper preset to a CPU-friendly quick variant (narrower layers,
/// cheaper IPM) while keeping the regulariser coefficients.
pub fn quick_variant(p: ExperimentPreset) -> ExperimentPreset {
    ExperimentPreset {
        rep_layers: 2,
        rep_width: 48,
        head_layers: 2,
        head_width: 24,
        lr: 1e-3,
        ipm: IpmKind::Wasserstein { lambda: 10.0, iterations: 5 },
        ..p
    }
}

/// Further shrinks a preset for Criterion benches.
pub fn bench_variant(p: ExperimentPreset) -> ExperimentPreset {
    ExperimentPreset { rep_width: 24, head_width: 12, ..quick_variant(p) }
}

/// The random-search space the paper explored for `{γ1, γ2, γ3}`
/// (Sec. V-C): each coefficient ranges over these values.
pub const GAMMA_SEARCH_SPACE: [f64; 7] = [1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0, 100.0];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_presets_match_table_iv_and_v() {
        let syn8 = paper_syn_8_8_8_2();
        assert_eq!((syn8.rep_layers, syn8.head_layers), (3, 3));
        assert_eq!((syn8.rep_width, syn8.head_width), (128, 64));
        assert!(syn8.batch_norm && !syn8.rep_normalization);
        assert_eq!(syn8.alpha, 5e-2);
        assert_eq!(syn8.gammas, (1.0, 1.0, 0.1));

        let syn16 = paper_syn_16_16_16_2();
        assert_eq!(syn16.gammas, (1.0, 1e-3, 1e-3));
        assert_eq!(syn16.alpha, 1e-3);

        let twins = paper_twins();
        assert!(twins.batch_norm && twins.rep_normalization);
        assert_eq!(twins.gammas, (1.0, 1.0, 0.1));
        assert_eq!(twins.dercfr, (1e-2, 5.0, 1e-4, 5.0));

        let ihdp = paper_ihdp();
        assert!(!ihdp.batch_norm && ihdp.rep_normalization);
        assert_eq!((ihdp.rep_width, ihdp.head_width), (256, 128));
        assert_eq!(ihdp.dercfr, (10.0, 5.0, 1e-3, 50.0));
        assert_eq!(ihdp.gammas, (0.1, 1e-4, 1e-4));
    }

    #[test]
    fn quick_variant_keeps_regularizer_coefficients() {
        let p = paper_syn_16_16_16_2();
        let q = quick_variant(p);
        assert_eq!(q.gammas, p.gammas);
        assert_eq!(q.alpha, p.alpha);
        assert!(q.rep_width < p.rep_width);
    }

    #[test]
    fn gamma_search_space_matches_the_paper() {
        assert_eq!(GAMMA_SEARCH_SPACE.len(), 7);
        assert_eq!(GAMMA_SEARCH_SPACE[0], 1e-4);
        assert_eq!(GAMMA_SEARCH_SPACE[6], 100.0);
    }
}
