//! **Fig. 5** — nonlinear correlation among features of the balanced
//! representation.
//!
//! Trains CFR, CFR+SBRL and CFR+SBRL-HAP on `Syn_16_16_16_2`, samples 25
//! dimensions of the learned representation `Φ` and computes the pairwise
//! `HSIC_RFF` matrix. The paper reports the average dependence dropping
//! `0.85 → 0.64 → 0.58`; the shape to reproduce is the strict ordering
//! `CFR > CFR+SBRL > CFR+SBRL-HAP`.

use sbrl_core::Framework;
use sbrl_data::{SyntheticConfig, SyntheticProcess};
use sbrl_stats::{mean_offdiag_hsic, pairwise_hsic_matrix, Rff};
use sbrl_tensor::rng::{rng_from_seed, sample_without_replacement};
use sbrl_tensor::Matrix;

use crate::methods::{BackboneKind, MethodSpec};
use crate::presets::{bench_variant, paper_syn_16_16_16_2, quick_variant};
use crate::report::{fmt_num, render_table, results_dir, write_tsv};
use crate::runner::{fit_method_retrying, DEFAULT_FIT_RETRIES};
use crate::scale::Scale;

/// Result for one method: average off-diagonal HSIC and the matrix itself.
pub struct DecorrelationResult {
    /// Method label.
    pub method: String,
    /// Average pairwise `HSIC_RFF` over the sampled dimensions.
    pub mean_hsic: f64,
    /// The full pairwise matrix (for heat-map rendering).
    pub matrix: Matrix,
}

/// Number of representation dimensions sampled by the paper.
pub const SAMPLED_DIMS: usize = 25;

/// Runs the Fig. 5 analysis; failed fits are skipped and described in the
/// second element, fits recovered by reseeded retries in the third, so the
/// report can record both.
pub fn analyse(scale: Scale) -> (Vec<DecorrelationResult>, Vec<String>, Vec<String>) {
    let preset = match scale {
        Scale::Paper => paper_syn_16_16_16_2(),
        Scale::Quick => quick_variant(paper_syn_16_16_16_2()),
        Scale::Bench => bench_variant(paper_syn_16_16_16_2()),
    };
    let (n_train, n_val, n_test) = scale.synthetic_samples();
    let process = SyntheticProcess::new(SyntheticConfig::syn_16_16_16_2(), 5);
    let train_data = process.generate(2.5, n_train, 0);
    let val_data = process.generate(2.5, n_val, 1);
    let probe = process.generate(2.5, n_test, 2);

    let mut rng = rng_from_seed(55);
    let rff = Rff::sample(&mut rng, Rff::DEFAULT_NUM_FUNCTIONS);

    let mut failures = Vec::new();
    let mut retries = Vec::new();
    let results = Framework::ALL
        .into_iter()
        .filter_map(|framework| {
            let spec = MethodSpec { backbone: BackboneKind::Cfr, framework };
            let train_cfg = scale.train_config(preset.lr, preset.l2, 7);
            let fitted = match fit_method_retrying(
                spec,
                &preset,
                &train_data,
                &val_data,
                &train_cfg,
                DEFAULT_FIT_RETRIES,
            ) {
                Ok((fitted, 0)) => fitted,
                Ok((fitted, attempts)) => {
                    let msg = format!(
                        "method {} recovered after {attempts} reseeded retries",
                        spec.name()
                    );
                    crate::runner::record_retry("fig5", msg, &mut retries);
                    fitted
                }
                Err(e) => {
                    let msg = format!("method {} FAILED: {e}", spec.name());
                    crate::runner::record_failure("fig5", msg, &mut failures);
                    return None;
                }
            };
            let rep = fitted.representation(&probe.x);
            // Sample 25 dimensions (or all, when the rep is narrower) and
            // standardise them so HSIC magnitudes are comparable.
            let d = rep.cols();
            let k = SAMPLED_DIMS.min(d);
            let dims = sample_without_replacement(&mut rng, d, k);
            let sub = rep.select_cols(&dims);
            let sub = sbrl_data::Scaler::fit(&sub).transform(&sub);
            let matrix = pairwise_hsic_matrix(&sub, &rff, None);
            let mean_hsic = mean_offdiag_hsic(&sub, &rff, None);
            eprintln!("[fig5] {} mean HSIC_RFF = {mean_hsic:.4}", spec.name());
            Some(DecorrelationResult { method: spec.name(), mean_hsic, matrix })
        })
        .collect();
    (results, failures, retries)
}

/// Coarse text heat map of a pairwise matrix (darker = more dependent).
pub fn text_heatmap(m: &Matrix) -> String {
    let max = m.max().max(1e-12);
    let shades = [' ', '.', ':', '+', '#', '@'];
    let mut out = String::new();
    for i in 0..m.rows() {
        for j in 0..m.cols() {
            let level = ((m[(i, j)] / max) * (shades.len() - 1) as f64).round() as usize;
            out.push(shades[level.min(shades.len() - 1)]);
        }
        out.push('\n');
    }
    out
}

/// Runs Fig. 5 and renders the report.
pub fn run(scale: Scale) -> String {
    let (results, failures, retries) = analyse(scale);
    let header = vec!["Method".to_string(), "avg HSIC_RFF".to_string()];
    let rows: Vec<Vec<String>> =
        results.iter().map(|r| vec![r.method.clone(), fmt_num(r.mean_hsic)]).collect();
    let mut out = render_table(
        &format!("Fig. 5 — representation decorrelation, scale {}", scale.name()),
        &header,
        &rows,
    );
    write_tsv(results_dir().join("fig5_hsic.tsv"), &header, &rows).ok();
    out.push_str(&crate::runner::render_retries(&retries));
    out.push_str(&crate::runner::render_failures(&failures));
    for r in &results {
        out.push_str(&format!(
            "\n{} heat map ({}x{}):\n",
            r.method,
            r.matrix.rows(),
            r.matrix.cols()
        ));
        out.push_str(&text_heatmap(&r.matrix));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heatmap_shades_scale_with_magnitude() {
        let m = Matrix::from_vec(2, 2, vec![1.0, 0.0, 0.5, 1.0]);
        let h = text_heatmap(&m);
        let lines: Vec<&str> = h.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0].chars().next(), Some('@'));
        assert_eq!(lines[0].chars().nth(1), Some(' '));
    }

    #[test]
    fn sampled_dims_matches_paper() {
        assert_eq!(SAMPLED_DIMS, 25);
    }

    #[test]
    #[ignore = "trains three models; run with --ignored"]
    fn bench_scale_ordering_smoke() {
        let (results, failures, _retries) = analyse(Scale::Bench);
        assert_eq!(results.len(), 3);
        assert!(failures.is_empty());
        assert!(results.iter().all(|r| r.mean_hsic.is_finite()));
    }
}
