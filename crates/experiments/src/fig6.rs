//! **Fig. 6** — hyper-parameter sensitivity of the hierarchical attention
//! coefficients `{γ1, γ2, γ3}` on `Syn_16_16_16_2` (CFR+SBRL-HAP backbone).
//!
//! Each coefficient sweeps `{0, 0.01, 0.1, 1, 10, 100}` with the other two
//! held at the preset optimum; the artefact reports PEHE on the ID
//! environment (`ρ = 2.5`) and the factual F1 score on the far OOD
//! environment (`ρ = −3`).

use sbrl_core::Framework;
use sbrl_data::{SyntheticConfig, SyntheticProcess};

use crate::methods::{BackboneKind, MethodSpec};
use crate::presets::{bench_variant, paper_syn_16_16_16_2, quick_variant};
use crate::report::{fmt_num, render_table, results_dir, write_tsv};
use crate::runner::{fit_method_retrying, DEFAULT_FIT_RETRIES};
use crate::scale::Scale;

/// The sweep values of Fig. 6.
pub const SWEEP: [f64; 6] = [0.0, 0.01, 0.1, 1.0, 10.0, 100.0];

/// One sweep point result.
#[derive(Clone, Debug)]
pub struct SweepPoint {
    /// Which coefficient was swept (1, 2 or 3).
    pub gamma_index: usize,
    /// The coefficient value.
    pub value: f64,
    /// PEHE at `ρ = 2.5`.
    pub pehe_id: f64,
    /// Factual F1 at `ρ = −3`.
    pub f1_ood: f64,
}

/// Enumerates `(gamma_index, gammas)` combinations for the sweep.
pub fn sweep_grid(optimum: (f64, f64, f64)) -> Vec<(usize, f64, (f64, f64, f64))> {
    let mut grid = Vec::with_capacity(3 * SWEEP.len());
    for (idx, _) in [optimum.0, optimum.1, optimum.2].iter().enumerate() {
        for &v in &SWEEP {
            let mut g = optimum;
            match idx {
                0 => g.0 = v,
                1 => g.1 = v,
                _ => g.2 = v,
            }
            grid.push((idx + 1, v, g));
        }
    }
    grid
}

/// Runs the sweep and returns the points; failed sweep points are skipped
/// and described in the second element, points recovered by reseeded
/// retries in the third, so the report can record both.
pub fn analyse(scale: Scale) -> (Vec<SweepPoint>, Vec<String>, Vec<String>) {
    let base_preset = match scale {
        Scale::Paper => paper_syn_16_16_16_2(),
        Scale::Quick => quick_variant(paper_syn_16_16_16_2()),
        Scale::Bench => bench_variant(paper_syn_16_16_16_2()),
    };
    let (n_train, n_val, n_test) = scale.synthetic_samples();
    let process = SyntheticProcess::new(SyntheticConfig::syn_16_16_16_2(), 9);
    let train_data = process.generate(2.5, n_train, 0);
    let val_data = process.generate(2.5, n_val, 1);
    let test_id = process.generate(2.5, n_test, 2);
    let test_ood = process.generate(-3.0, n_test, 3);
    let spec = MethodSpec { backbone: BackboneKind::Cfr, framework: Framework::SbrlHap };

    let mut failures = Vec::new();
    let mut retries = Vec::new();
    let points = sweep_grid(base_preset.gammas)
        .into_iter()
        .filter_map(|(idx, value, gammas)| {
            let preset = crate::methods::ExperimentPreset { gammas, ..base_preset };
            let train_cfg = scale.train_config(preset.lr, preset.l2, (idx * 17) as u64);
            let fitted = match fit_method_retrying(
                spec,
                &preset,
                &train_data,
                &val_data,
                &train_cfg,
                DEFAULT_FIT_RETRIES,
            ) {
                Ok((fitted, 0)) => fitted,
                Ok((fitted, attempts)) => {
                    let msg = format!(
                        "sweep point gamma{idx} = {value} recovered after {attempts} reseeded retries"
                    );
                    crate::runner::record_retry("fig6", msg, &mut retries);
                    fitted
                }
                Err(e) => {
                    let msg = format!("sweep point gamma{idx} = {value} FAILED: {e}");
                    crate::runner::record_failure("fig6", msg, &mut failures);
                    return None;
                }
            };
            // lint: allow(panic) — simulator splits always carry the oracle;
            // a miss is a generator bug that must stop the sweep loudly.
            let id = fitted.evaluate(&test_id).expect("oracle");
            // lint: allow(panic) — as above.
            let ood = fitted.evaluate(&test_ood).expect("oracle");
            eprintln!(
                "[fig6] gamma{idx} = {value}: PEHE_id {:.3}, F1_ood {:.3}",
                id.pehe, ood.factual_score
            );
            Some(SweepPoint {
                gamma_index: idx,
                value,
                pehe_id: id.pehe,
                f1_ood: ood.factual_score,
            })
        })
        .collect();
    (points, failures, retries)
}

/// Runs Fig. 6 and renders the report.
pub fn run(scale: Scale) -> String {
    let (points, failures, retries) = analyse(scale);
    let header = vec![
        "Coefficient".to_string(),
        "Value".into(),
        "PEHE rho=2.5".into(),
        "F1 factual rho=-3".into(),
    ];
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                format!("gamma{}", p.gamma_index),
                format!("{}", p.value),
                fmt_num(p.pehe_id),
                fmt_num(p.f1_ood),
            ]
        })
        .collect();
    let mut out = render_table(
        &format!("Fig. 6 — gamma sensitivity (CFR+SBRL-HAP), scale {}", scale.name()),
        &header,
        &rows,
    );
    write_tsv(results_dir().join("fig6_gamma_sensitivity.tsv"), &header, &rows).ok();
    out.push_str(&crate::runner::render_retries(&retries));
    out.push_str(&crate::runner::render_failures(&failures));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_grid_covers_three_coefficients_times_six_values() {
        let grid = sweep_grid((1.0, 0.001, 0.001));
        assert_eq!(grid.len(), 18);
        // First block sweeps gamma1, others stay at the optimum.
        let (idx, v, g) = grid[0];
        assert_eq!(idx, 1);
        assert_eq!(v, 0.0);
        assert_eq!(g, (0.0, 0.001, 0.001));
        let (idx2, v2, g2) = grid[17];
        assert_eq!(idx2, 3);
        assert_eq!(v2, 100.0);
        assert_eq!(g2, (1.0, 0.001, 100.0));
    }

    #[test]
    fn sweep_values_match_the_paper() {
        assert_eq!(SWEEP, [0.0, 0.01, 0.1, 1.0, 10.0, 100.0]);
    }
}
