//! **Table I** — treatment-effect estimation on `Syn_8_8_8_2` across bias
//! rates `ρ ∈ {−3, −2.5, −1.5, −1.3, 1.3, 1.5, 2.5, 3}` (train: `ρ = 2.5`).
//! Reports PEHE and `ε_ATE` (mean ± std over replications) for the 9-method
//! grid plus the paper's "Improvement" row (best `+SBRL-HAP` versus best
//! vanilla baseline per column).

use sbrl_data::SyntheticConfig;
use sbrl_metrics::Evaluation;

use crate::methods::MethodSpec;
use crate::presets::{bench_variant, paper_syn_8_8_8_2, quick_variant};
use crate::report::{fmt_mean_std, render_table, results_dir, write_tsv};
use crate::runner::{
    render_failures, render_retries, run_synthetic_sweep, MethodEnvResults, SyntheticExperiment,
};
use crate::scale::Scale;

/// Builds the experiment description for a scale.
pub fn experiment(scale: Scale) -> SyntheticExperiment {
    let preset = match scale {
        Scale::Paper => paper_syn_8_8_8_2(),
        Scale::Quick => quick_variant(paper_syn_8_8_8_2()),
        Scale::Bench => bench_variant(paper_syn_8_8_8_2()),
    };
    SyntheticExperiment::paper_sweep(SyntheticConfig::syn_8_8_8_2(), preset, scale)
}

/// The paper's per-column improvement: relative reduction of the best
/// `+SBRL-HAP` mean over the best vanilla mean (positive = we win).
pub fn improvement_row(
    results: &[MethodEnvResults],
    env_count: usize,
    metric: impl Fn(&Evaluation) -> f64 + Copy,
) -> Vec<String> {
    let mean_of = |r: &MethodEnvResults, env: usize| {
        let vals = r.metric(env, metric);
        vals.iter().sum::<f64>() / vals.len().max(1) as f64
    };
    let mut row = vec!["Improvement".to_string()];
    for env in 0..env_count {
        let best_vanilla = results
            .iter()
            .filter(|r| !r.method.contains("+SBRL"))
            .map(|r| mean_of(r, env))
            .fold(f64::INFINITY, f64::min);
        let best_ours = results
            .iter()
            .filter(|r| r.method.ends_with("+SBRL-HAP"))
            .map(|r| mean_of(r, env))
            .fold(f64::INFINITY, f64::min);
        let pct = 100.0 * (best_vanilla - best_ours) / best_vanilla.max(1e-12);
        row.push(format!("{pct:+.1}%"));
    }
    row
}

/// Renders the metric block (PEHE or `ε_ATE`) of the table.
pub fn metric_block(
    title: &str,
    rhos: &[f64],
    results: &[MethodEnvResults],
    metric: impl Fn(&Evaluation) -> f64 + Copy,
) -> (Vec<String>, Vec<Vec<String>>) {
    let mut header = vec!["Method".to_string()];
    header.extend(rhos.iter().map(|r| format!("rho={r}")));
    let mut rows = Vec::new();
    for r in results {
        let mut row = vec![r.method.clone()];
        for env in 0..rhos.len() {
            row.push(fmt_mean_std(&r.metric(env, metric)));
        }
        rows.push(row);
    }
    rows.push(improvement_row(results, rhos.len(), metric));
    let _ = title;
    (header, rows)
}

/// Runs Table I and returns the rendered report.
pub fn run(scale: Scale) -> String {
    let exp = experiment(scale);
    let methods = MethodSpec::grid();
    let results = run_synthetic_sweep(&exp, &methods, |msg| eprintln!("[table1] {msg}"));

    let mut out = String::new();
    let (header, rows) = metric_block("PEHE", &exp.test_rhos, &results, |e| e.pehe);
    out.push_str(&render_table(
        &format!("Table I (PEHE) — Syn_8_8_8_2, scale {}", scale.name()),
        &header,
        &rows,
    ));
    write_tsv(results_dir().join("table1_pehe.tsv"), &header, &rows).ok();

    let (header_a, rows_a) = metric_block("eATE", &exp.test_rhos, &results, |e| e.ate_bias);
    out.push_str(&render_table(
        &format!("Table I (eATE) — Syn_8_8_8_2, scale {}", scale.name()),
        &header_a,
        &rows_a,
    ));
    write_tsv(results_dir().join("table1_ate.tsv"), &header_a, &rows_a).ok();
    out.push_str(&render_retries(results.iter().flat_map(|r| &r.retries)));
    out.push_str(&render_failures(results.iter().flat_map(|r| &r.failures)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake_results() -> Vec<MethodEnvResults> {
        let eval = |pehe: f64| Evaluation { pehe, ate_bias: pehe / 10.0, ..Default::default() };
        vec![
            MethodEnvResults {
                method: "CFR".into(),
                per_env: vec![vec![eval(0.5)], vec![eval(0.6)]],
                failures: Vec::new(),
                retries: Vec::new(),
            },
            MethodEnvResults {
                method: "CFR+SBRL".into(),
                per_env: vec![vec![eval(0.45)], vec![eval(0.5)]],
                failures: Vec::new(),
                retries: Vec::new(),
            },
            MethodEnvResults {
                method: "CFR+SBRL-HAP".into(),
                per_env: vec![vec![eval(0.4)], vec![eval(0.45)]],
                failures: Vec::new(),
                retries: Vec::new(),
            },
        ]
    }

    #[test]
    fn improvement_row_compares_best_ours_vs_best_vanilla() {
        let row = improvement_row(&fake_results(), 2, |e| e.pehe);
        assert_eq!(row[0], "Improvement");
        // (0.5 - 0.4)/0.5 = 20%, (0.6 - 0.45)/0.6 = 25%
        assert_eq!(row[1], "+20.0%");
        assert_eq!(row[2], "+25.0%");
    }

    #[test]
    fn metric_block_shapes() {
        let (header, rows) = metric_block("PEHE", &[2.5, -3.0], &fake_results(), |e| e.pehe);
        assert_eq!(header.len(), 3);
        assert_eq!(rows.len(), 4); // 3 methods + improvement
        assert!(rows[0][1].contains('±'));
    }

    #[test]
    fn experiment_uses_paper_rhos() {
        let exp = experiment(Scale::Bench);
        assert_eq!(exp.test_rhos.len(), 8);
        assert_eq!(exp.train_rho, 2.5);
        assert_eq!(exp.data_cfg.dim(), 26);
    }

    #[test]
    #[ignore = "full 9-method sweep; run with --ignored"]
    fn full_bench_scale_run() {
        let report = run(Scale::Bench);
        assert!(report.contains("Table I (PEHE)"));
    }
}
