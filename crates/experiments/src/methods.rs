//! The 3 x 3 method grid of the paper's evaluation: {TARNet, CFR, DeR-CFR}
//! x {Vanilla, +SBRL, +SBRL-HAP}.
//!
//! [`BackboneKind`] lives in `sbrl-models` and [`MethodSpec`] in `sbrl-core`
//! (both re-exported here for compatibility); this module keeps the
//! experiment-specific [`ExperimentPreset`] that maps a grid cell to the
//! paper's tuned hyper-parameters.

pub use sbrl_core::MethodSpec;
pub use sbrl_models::{BackboneConfig, BackboneKind};

use sbrl_core::{Framework, SbrlConfig};
use sbrl_models::{CfrConfig, DerCfrConfig, TarnetConfig};
use sbrl_stats::{DecorrelationConfig, IpmKind};

/// Architecture + regulariser hyper-parameters for one dataset (the
/// distilled content of the paper's Tables IV & V).
#[derive(Clone, Copy, Debug)]
pub struct ExperimentPreset {
    /// Representation depth `d_r`.
    pub rep_layers: usize,
    /// Representation width `h_r`.
    pub rep_width: usize,
    /// Head depth `d_y`.
    pub head_layers: usize,
    /// Head width `h_y`.
    pub head_width: usize,
    /// Batch-norm flag.
    pub batch_norm: bool,
    /// Representation-normalisation flag.
    pub rep_normalization: bool,
    /// Network learning rate.
    pub lr: f64,
    /// L2 coefficient `λ`.
    pub l2: f64,
    /// CFR / balance weight `α`.
    pub alpha: f64,
    /// DeR-CFR decomposition weights `(α, β, γ, μ)` (Table V naming).
    pub dercfr: (f64, f64, f64, f64),
    /// HSIC attention coefficients `(γ1, γ2, γ3)`.
    pub gammas: (f64, f64, f64),
    /// IPM used by CFR and the Balancing Regularizer.
    pub ipm: IpmKind,
}

impl ExperimentPreset {
    /// Builds the TARNet configuration for `in_dim` covariates.
    pub fn tarnet_config(&self, in_dim: usize) -> TarnetConfig {
        TarnetConfig {
            in_dim,
            rep_layers: self.rep_layers,
            rep_width: self.rep_width,
            head_layers: self.head_layers,
            head_width: self.head_width,
            batch_norm: self.batch_norm,
            rep_normalization: self.rep_normalization,
        }
    }

    /// Builds the backbone configuration for a method — the input of
    /// [`sbrl_core::EstimatorBuilder::backbone`].
    pub fn backbone_config(&self, kind: BackboneKind, in_dim: usize) -> BackboneConfig {
        let arch = self.tarnet_config(in_dim);
        match kind {
            BackboneKind::Tarnet => BackboneConfig::Tarnet(arch),
            BackboneKind::Cfr => {
                BackboneConfig::Cfr(CfrConfig { arch, alpha: self.alpha, ipm: self.ipm })
            }
            BackboneKind::DerCfr => {
                let (alpha, beta, gamma, mu) = self.dercfr;
                BackboneConfig::DerCfr(DerCfrConfig { arch, alpha, beta, gamma, mu, ipm: self.ipm })
            }
        }
    }

    /// Builds the framework configuration for a method.
    ///
    /// TARNet has no balance penalty, so (as the paper prescribes: "we only
    /// incorporate Independence Regularizer into TARNet", and "set α to 0")
    /// its `+SBRL` / `+SBRL-HAP` variants run with `α = 0`.
    pub fn sbrl_config(&self, spec: MethodSpec) -> SbrlConfig {
        let alpha = if spec.backbone == BackboneKind::Tarnet { 0.0 } else { self.alpha };
        let (g1, g2, g3) = self.gammas;
        let base = match spec.framework {
            Framework::Vanilla => SbrlConfig::vanilla(),
            Framework::Sbrl => SbrlConfig::sbrl(alpha, g1),
            Framework::SbrlHap => SbrlConfig::sbrl_hap(alpha, g1, g2, g3),
        };
        base.with_ipm(self.ipm).with_decor(DecorrelationConfig {
            // The paper's gamma optima were found with StableNet-style
            // unnormalised pair sums; match that magnitude here.
            normalize: false,
            ..DecorrelationConfig::default()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbrl_tensor::rng::rng_from_seed;

    #[test]
    fn grid_has_nine_methods_in_paper_order() {
        let grid = MethodSpec::grid();
        assert_eq!(grid.len(), 9);
        assert_eq!(grid[0].name(), "TARNet");
        assert_eq!(grid[1].name(), "TARNet+SBRL");
        assert_eq!(grid[2].name(), "TARNet+SBRL-HAP");
        assert_eq!(grid[8].name(), "DeRCFR+SBRL-HAP");
    }

    fn preset() -> ExperimentPreset {
        ExperimentPreset {
            rep_layers: 2,
            rep_width: 16,
            head_layers: 2,
            head_width: 8,
            batch_norm: false,
            rep_normalization: false,
            lr: 1e-3,
            l2: 1e-4,
            alpha: 0.5,
            dercfr: (1.0, 1.0, 1.0, 1.0),
            gammas: (1.0, 0.1, 0.01),
            ipm: IpmKind::MmdLin,
        }
    }

    #[test]
    fn backbone_config_produces_each_backbone() {
        let mut rng = rng_from_seed(0);
        let p = preset();
        for kind in BackboneKind::ALL {
            let cfg = p.backbone_config(kind, 7);
            assert_eq!(cfg.kind(), kind);
            assert_eq!(cfg.in_dim(), 7);
            let model = cfg.build(&mut rng);
            assert_eq!(model.name(), kind.name());
            assert!(!model.store().is_empty());
        }
    }

    #[test]
    fn tarnet_framework_drops_the_balance_term() {
        let p = preset();
        let cfg = p
            .sbrl_config(MethodSpec { backbone: BackboneKind::Tarnet, framework: Framework::Sbrl });
        assert_eq!(cfg.alpha, 0.0);
        let cfg_cfr =
            p.sbrl_config(MethodSpec { backbone: BackboneKind::Cfr, framework: Framework::Sbrl });
        assert_eq!(cfg_cfr.alpha, 0.5);
    }

    #[test]
    fn vanilla_config_disables_weights() {
        let p = preset();
        let cfg = p
            .sbrl_config(MethodSpec { backbone: BackboneKind::Cfr, framework: Framework::Vanilla });
        assert!(!cfg.weights_enabled());
    }
}
