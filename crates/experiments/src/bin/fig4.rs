//! Regenerates the paper artefact backed by `sbrl_experiments::fig34`.
//! Usage: `cargo run -p sbrl-experiments --release --bin fig4 [--scale bench|quick|paper]`.

fn main() {
    let scale = sbrl_experiments::Scale::from_args_or_exit();
    eprintln!("running fig4 at scale {}", scale.name());
    let report = sbrl_experiments::fig34::run(scale);
    println!("{report}");
}
