//! Regenerates the paper artefact backed by `sbrl_experiments::fig6`.
//! Usage: `cargo run -p sbrl-experiments --release --bin fig6_hparam [--scale bench|quick|paper]`.

fn main() {
    let scale = sbrl_experiments::Scale::from_args_or_exit();
    eprintln!("running fig6_hparam at scale {}", scale.name());
    let report = sbrl_experiments::fig6::run(scale);
    println!("{report}");
}
