//! Regenerates the paper artefact backed by `sbrl_experiments::fig5`.
//! Usage: `cargo run -p sbrl-experiments --release --bin fig5 [--scale bench|quick|paper]`.

fn main() {
    let scale = sbrl_experiments::Scale::from_args_or_exit();
    eprintln!("running fig5 at scale {}", scale.name());
    let report = sbrl_experiments::fig5::run(scale);
    println!("{report}");
}
