//! Regenerates the paper artefact backed by `sbrl_experiments::table3`.
//! Usage: `cargo run -p sbrl-experiments --release --bin table3_realworld [--scale bench|quick|paper]`.

fn main() {
    let scale = sbrl_experiments::Scale::from_args_or_exit();
    eprintln!("running table3_realworld at scale {}", scale.name());
    let report = sbrl_experiments::table3::run(scale);
    println!("{report}");
}
