//! Regenerates the paper artefact backed by `sbrl_experiments::table6`.
//! Usage: `cargo run -p sbrl-experiments --release --bin table6_time [--scale bench|quick|paper]`.

fn main() {
    let scale = sbrl_experiments::Scale::from_args_or_exit();
    eprintln!("running table6_time at scale {}", scale.name());
    let report = sbrl_experiments::table6::run(scale);
    println!("{report}");
}
