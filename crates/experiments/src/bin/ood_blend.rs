//! Extension experiment (the paper's future-work sketch, Sec. VI): measure
//! the OOD level of each test environment and interpolate between the
//! vanilla backbone (sharp in-distribution) and the SBRL-HAP model (stable
//! out-of-distribution).
//!
//! Usage: `cargo run -p sbrl-experiments --release --bin ood_blend [--scale ...]`

use sbrl_core::{BlendedEstimator, OodDetector, OodDetectorConfig};
use sbrl_data::{SyntheticConfig, SyntheticProcess, PAPER_BIAS_RATES};
use sbrl_experiments::presets::{bench_variant, paper_syn_8_8_8_2, quick_variant};
use sbrl_experiments::{fit_method, MethodSpec, Scale};
use sbrl_metrics::evaluate;

fn main() {
    let scale = Scale::from_args_or_exit();
    let preset = match scale {
        Scale::Paper => paper_syn_8_8_8_2(),
        Scale::Quick => quick_variant(paper_syn_8_8_8_2()),
        Scale::Bench => bench_variant(paper_syn_8_8_8_2()),
    };
    let (n_train, n_val, n_test) = scale.synthetic_samples();
    let process = SyntheticProcess::new(SyntheticConfig::syn_8_8_8_2(), 31);
    let train_data = process.generate(2.5, n_train, 0);
    let val_data = process.generate(2.5, n_val, 1);

    eprintln!("fitting the vanilla and stable experts...");
    let budget = scale.train_config(preset.lr, preset.l2, 3);
    // Experts are selected by name — the same strings a server endpoint
    // would accept.
    let fit_by_name = |name: &str| {
        let spec: MethodSpec = name.parse().expect("grid method name");
        fit_method(spec, &preset, &train_data, &val_data, &budget).unwrap_or_else(|e| {
            eprintln!("error: training {name} failed: {e}");
            std::process::exit(1);
        })
    };
    let vanilla = fit_by_name("CFR");
    let stable = fit_by_name("CFR+SBRL-HAP");

    let detector = OodDetector::fit(&train_data.x, &OodDetectorConfig::default());
    let blender = BlendedEstimator::new(detector, 5.0);

    println!(
        "{:>6} {:>10} {:>8} {:>14} {:>14} {:>14}",
        "rho", "OOD level", "blend c", "vanilla PEHE", "stable PEHE", "blended PEHE"
    );
    for &rho in &PAPER_BIAS_RATES {
        let env = process.generate(rho, n_test, 100 + rho.to_bits() % 31);
        let c = blender.coefficient(&env.x);
        let level = blender_level(&blender, &env.x);
        let est_v = vanilla.predict(&env.x);
        let est_s = stable.predict(&env.x);
        let est_b = blender.blend(&env.x, &est_v, &est_s);
        let pv = evaluate(&est_v, &env).expect("oracle").pehe;
        let ps = evaluate(&est_s, &env).expect("oracle").pehe;
        let pb = evaluate(&est_b, &env).expect("oracle").pehe;
        println!("{rho:>6} {level:>10.2} {c:>8.2} {pv:>14.3} {ps:>14.3} {pb:>14.3}");
    }
    println!(
        "\nThe blend should track the better expert per row: vanilla near\n\
         rho = 2.5 (low OOD level), the stable model at strongly shifted rho."
    );
}

fn blender_level(blender: &BlendedEstimator, x: &sbrl_tensor::Matrix) -> f64 {
    // Invert coefficient -> level for display: c = l / (l + hp).
    let c = blender.coefficient(x);
    blender.half_point * c / (1.0 - c).max(1e-9)
}
