//! Runs every paper artefact in sequence (Table I, Fig. 3/4, Fig. 5,
//! Table II, Table III, Fig. 6, Table VI) at the requested scale and prints
//! the combined report. Usage:
//! `cargo run -p sbrl-experiments --release --bin run_all [--scale ...]`.

fn main() {
    let scale = sbrl_experiments::Scale::from_args_or_exit();
    eprintln!("running the full experiment suite at scale {}", scale.name());
    let mut report = String::new();
    report.push_str(&sbrl_experiments::table1::run(scale));
    report.push_str(&sbrl_experiments::fig34::run(scale));
    report.push_str(&sbrl_experiments::fig5::run(scale));
    report.push_str(&sbrl_experiments::table2::run(scale));
    report.push_str(&sbrl_experiments::table3::run(scale));
    report.push_str(&sbrl_experiments::fig6::run(scale));
    report.push_str(&sbrl_experiments::table6::run(scale));
    println!("{report}");
}
