//! Regenerates the paper artefact backed by `sbrl_experiments::table2`.
//! Usage: `cargo run -p sbrl-experiments --release --bin table2_ablation [--scale bench|quick|paper]`.

fn main() {
    let scale = sbrl_experiments::Scale::from_args_or_exit();
    eprintln!("running table2_ablation at scale {}", scale.name());
    let report = sbrl_experiments::table2::run(scale);
    println!("{report}");
}
