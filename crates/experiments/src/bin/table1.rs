//! Regenerates the paper artefact backed by `sbrl_experiments::table1`.
//! Usage: `cargo run -p sbrl-experiments --release --bin table1 [--scale bench|quick|paper]`.

fn main() {
    let scale = sbrl_experiments::Scale::from_args_or_exit();
    eprintln!("running table1 at scale {}", scale.name());
    let report = sbrl_experiments::table1::run(scale);
    println!("{report}");
}
