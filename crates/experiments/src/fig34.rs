//! **Fig. 3 & Fig. 4** — the high-dimensional sweep on `Syn_16_16_16_2`.
//!
//! Fig. 3 plots PEHE versus the test bias rate `ρ` for the 9-method grid
//! (trained at `ρ = 2.5`); Fig. 4 plots factual and counterfactual F1
//! scores, with each method's mean ± std across all test environments. Both
//! come from one sweep, so this module runs it once and renders both
//! artefacts.

use sbrl_data::SyntheticConfig;
use sbrl_metrics::{env_aggregate, Evaluation};

use crate::methods::MethodSpec;
use crate::presets::{bench_variant, paper_syn_16_16_16_2, quick_variant};
use crate::report::{fmt_mean_std, fmt_num, render_table, results_dir, write_tsv};
use crate::runner::{
    render_failures, render_retries, run_synthetic_sweep, MethodEnvResults, SyntheticExperiment,
};
use crate::scale::Scale;

/// Builds the Fig. 3/4 experiment for a scale.
pub fn experiment(scale: Scale) -> SyntheticExperiment {
    let preset = match scale {
        Scale::Paper => paper_syn_16_16_16_2(),
        Scale::Quick => quick_variant(paper_syn_16_16_16_2()),
        Scale::Bench => bench_variant(paper_syn_16_16_16_2()),
    };
    SyntheticExperiment::paper_sweep(SyntheticConfig::syn_16_16_16_2(), preset, scale)
}

/// Per-method series of one metric across environments (a "figure" as rows).
pub fn series_block(
    rhos: &[f64],
    results: &[MethodEnvResults],
    metric: impl Fn(&Evaluation) -> f64 + Copy,
) -> (Vec<String>, Vec<Vec<String>>) {
    let mut header = vec!["Method".to_string()];
    header.extend(rhos.iter().map(|r| format!("rho={r}")));
    header.push("mean".to_string());
    header.push("std".to_string());
    let mut rows = Vec::new();
    for r in results {
        let mut row = vec![r.method.clone()];
        let mut env_means = Vec::with_capacity(rhos.len());
        for env in 0..rhos.len() {
            let vals = r.metric(env, metric);
            let mean = vals.iter().sum::<f64>() / vals.len().max(1) as f64;
            env_means.push(mean);
            row.push(fmt_mean_std(&vals));
        }
        let agg = env_aggregate(&env_means);
        row.push(fmt_num(agg.mean));
        row.push(fmt_num(agg.std));
        rows.push(row);
    }
    (header, rows)
}

/// The paper's headline degradation statistic (footnote 2 of Sec. V-D):
/// `(metric(ρ=-3) - metric(ρ=2.5)) / metric(ρ=2.5)` per method.
pub fn degradation_block(
    rhos: &[f64],
    results: &[MethodEnvResults],
) -> (Vec<String>, Vec<Vec<String>>) {
    let idx_of = |target: f64| rhos.iter().position(|&r| r == target);
    let header = vec![
        "Method".to_string(),
        "PEHE(rho=2.5)".into(),
        "PEHE(rho=-3)".into(),
        "Decrease".into(),
    ];
    let mut rows = Vec::new();
    if let (Some(id_train), Some(id_far)) = (idx_of(2.5), idx_of(-3.0)) {
        for r in results {
            let m = |env: usize| {
                let v = r.metric(env, |e| e.pehe);
                v.iter().sum::<f64>() / v.len().max(1) as f64
            };
            let base = m(id_train);
            let far = m(id_far);
            rows.push(vec![
                r.method.clone(),
                fmt_num(base),
                fmt_num(far),
                format!("{:+.1}%", 100.0 * (far - base) / base.max(1e-12)),
            ]);
        }
    }
    (header, rows)
}

/// Runs the sweep once and renders Fig. 3 + Fig. 4 (+ degradation summary).
pub fn run(scale: Scale) -> String {
    let exp = experiment(scale);
    let methods = MethodSpec::grid();
    let results = run_synthetic_sweep(&exp, &methods, |msg| eprintln!("[fig3/4] {msg}"));
    render(&exp, &results, scale)
}

/// Renders from precomputed results (shared with the bench harness).
pub fn render(exp: &SyntheticExperiment, results: &[MethodEnvResults], scale: Scale) -> String {
    let mut out = String::new();

    let (h3, r3) = series_block(&exp.test_rhos, results, |e| e.pehe);
    out.push_str(&render_table(
        &format!("Fig. 3 — PEHE vs rho on Syn_16_16_16_2, scale {}", scale.name()),
        &h3,
        &r3,
    ));
    write_tsv(results_dir().join("fig3_pehe.tsv"), &h3, &r3).ok();

    let (hd, rd) = degradation_block(&exp.test_rhos, results);
    out.push_str(&render_table("Fig. 3 companion — OOD performance decrease", &hd, &rd));

    let (h4f, r4f) = series_block(&exp.test_rhos, results, |e| e.factual_score);
    out.push_str(&render_table(
        &format!("Fig. 4a — factual F1 vs rho, scale {}", scale.name()),
        &h4f,
        &r4f,
    ));
    write_tsv(results_dir().join("fig4_factual_f1.tsv"), &h4f, &r4f).ok();

    let (h4c, r4c) = series_block(&exp.test_rhos, results, |e| e.counterfactual_score);
    out.push_str(&render_table(
        &format!("Fig. 4b — counterfactual F1 vs rho, scale {}", scale.name()),
        &h4c,
        &r4c,
    ));
    write_tsv(results_dir().join("fig4_counterfactual_f1.tsv"), &h4c, &r4c).ok();
    out.push_str(&render_retries(results.iter().flat_map(|r| &r.retries)));
    out.push_str(&render_failures(results.iter().flat_map(|r| &r.failures)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake() -> Vec<MethodEnvResults> {
        let eval = |pehe: f64, f1: f64| Evaluation {
            pehe,
            ate_bias: 0.0,
            factual_score: f1,
            counterfactual_score: f1 - 0.05,
        };
        vec![MethodEnvResults {
            method: "CFR".into(),
            per_env: vec![vec![eval(0.4, 0.8)], vec![eval(0.7, 0.6)]],
            failures: Vec::new(),
            retries: Vec::new(),
        }]
    }

    #[test]
    fn series_block_appends_mean_and_std() {
        let (header, rows) = series_block(&[2.5, -3.0], &fake(), |e| e.pehe);
        assert_eq!(header.last().unwrap(), "std");
        assert_eq!(rows[0].len(), 5);
        // mean of (0.4, 0.7) = 0.55
        assert_eq!(rows[0][3], "0.550");
    }

    #[test]
    fn degradation_block_computes_relative_decrease() {
        let (_, rows) = degradation_block(&[2.5, -3.0], &fake());
        assert_eq!(rows.len(), 1);
        // (0.7 - 0.4)/0.4 = +75%
        assert_eq!(rows[0][3], "+75.0%");
    }

    #[test]
    fn experiment_is_high_dimensional() {
        assert_eq!(experiment(Scale::Bench).data_cfg.dim(), 50);
    }
}
