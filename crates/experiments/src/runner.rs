//! Shared experiment execution: fit one method on one split, and run the
//! full method grid over synthetic environment sweeps with replications.

use sbrl_core::{Estimator, FittedModel, SbrlError, TrainConfig};
use sbrl_data::{CausalDataset, SyntheticConfig, SyntheticProcess};
use sbrl_metrics::Evaluation;
use sbrl_models::Backbone;

use crate::methods::{ExperimentPreset, MethodSpec};
use crate::scale::Scale;

/// Fits one method specification on a train/val split through the fluent
/// estimator pipeline. Training failures (divergence, invalid data) surface
/// as typed errors so sweep runners can skip and report them.
pub fn fit_method(
    spec: MethodSpec,
    preset: &ExperimentPreset,
    train_data: &CausalDataset,
    val_data: &CausalDataset,
    train_cfg: &TrainConfig,
) -> Result<FittedModel<Box<dyn Backbone>>, SbrlError> {
    Estimator::builder()
        .backbone(preset.backbone_config(spec.backbone, train_data.dim()))
        .sbrl(preset.sbrl_config(spec))
        .train(*train_cfg)
        .fit(train_data, val_data)
}

/// Configuration of one synthetic environment-sweep experiment (Table I /
/// Fig. 3 / Fig. 4 style).
#[derive(Clone, Debug)]
pub struct SyntheticExperiment {
    /// Dataset dimensions.
    pub data_cfg: SyntheticConfig,
    /// Hyper-parameter preset.
    pub preset: ExperimentPreset,
    /// Run scale (samples / iterations / replications).
    pub scale: Scale,
    /// Training-environment bias rate (paper: 2.5).
    pub train_rho: f64,
    /// Test-environment bias rates (paper: ±1.3, ±1.5, ±2.5, ±3).
    pub test_rhos: Vec<f64>,
}

impl SyntheticExperiment {
    /// The paper's standard sweep on a dataset config.
    pub fn paper_sweep(data_cfg: SyntheticConfig, preset: ExperimentPreset, scale: Scale) -> Self {
        Self {
            data_cfg,
            preset,
            scale,
            train_rho: sbrl_data::TRAIN_BIAS_RATE,
            test_rhos: sbrl_data::PAPER_BIAS_RATES.to_vec(),
        }
    }
}

/// Evaluations of one method across environments, accumulated over
/// replications: `per_env[env_index][replication]`.
#[derive(Clone, Debug, Default)]
pub struct MethodEnvResults {
    /// Method label.
    pub method: String,
    /// One vector of per-replication evaluations per test environment.
    pub per_env: Vec<Vec<Evaluation>>,
    /// Human-readable descriptions of failed replications (the sweep skips
    /// them instead of aborting).
    pub failures: Vec<String>,
}

impl MethodEnvResults {
    /// Extracts one metric across replications for an environment.
    pub fn metric(&self, env: usize, f: impl Fn(&Evaluation) -> f64) -> Vec<f64> {
        self.per_env[env].iter().map(f).collect()
    }
}

/// Runs the method grid over the synthetic sweep.
///
/// For every replication a fresh causal mechanism is drawn (process seed =
/// replication index), one training/validation pair is generated at
/// `train_rho`, every method is fitted once, and each fitted model is
/// evaluated on every test environment. A failed fit is reported through
/// `progress` and recorded in [`MethodEnvResults::failures`] instead of
/// aborting the whole sweep.
pub fn run_synthetic_sweep(
    exp: &SyntheticExperiment,
    methods: &[MethodSpec],
    mut progress: impl FnMut(&str),
) -> Vec<MethodEnvResults> {
    let (n_train, n_val, n_test) = exp.scale.synthetic_samples();
    let reps = exp.scale.replications();
    let mut results: Vec<MethodEnvResults> = methods
        .iter()
        .map(|m| MethodEnvResults {
            method: m.name(),
            per_env: vec![Vec::with_capacity(reps); exp.test_rhos.len()],
            failures: Vec::new(),
        })
        .collect();

    for rep in 0..reps {
        let process = SyntheticProcess::new(exp.data_cfg, 1000 + rep as u64);
        let train_data = process.generate(exp.train_rho, n_train, 10 * rep as u64);
        let val_data = process.generate(exp.train_rho, n_val, 10 * rep as u64 + 1);
        let test_envs: Vec<CausalDataset> = exp
            .test_rhos
            .iter()
            .enumerate()
            .map(|(k, &rho)| process.generate(rho, n_test, 10 * rep as u64 + 2 + k as u64))
            .collect();

        for (mi, spec) in methods.iter().enumerate() {
            let train_cfg =
                exp.scale.train_config(exp.preset.lr, exp.preset.l2, (rep * 97 + mi) as u64);
            let fitted = match fit_method(*spec, &exp.preset, &train_data, &val_data, &train_cfg) {
                Ok(fitted) => fitted,
                Err(e) => {
                    let msg =
                        format!("rep {}/{} method {} FAILED: {e}", rep + 1, reps, spec.name());
                    progress(&msg);
                    results[mi].failures.push(msg);
                    continue;
                }
            };
            for (env_idx, test) in test_envs.iter().enumerate() {
                let eval = fitted.evaluate(test).expect("synthetic data carries the oracle");
                results[mi].per_env[env_idx].push(eval);
            }
            progress(&format!(
                "rep {}/{} method {}/{} ({}) done in {:.1}s",
                rep + 1,
                reps,
                mi + 1,
                methods.len(),
                spec.name(),
                fitted.report().train_seconds
            ));
        }
    }
    results
}

/// Records one skipped fit: logs it to stderr under the runner's tag and
/// appends it to the runner's failure list (later rendered by
/// [`render_failures`]). The single code path for skip-and-report handling
/// in the eprintln-driven runners.
pub fn record_failure(tag: &str, message: String, failures: &mut Vec<String>) {
    eprintln!("[{tag}] {message}");
    failures.push(message);
}

/// Renders failed-replication messages as a report block (empty string when
/// every fit succeeded). The single formatting point for every runner's
/// skipped-replication output.
pub fn render_failures<'a>(failures: impl IntoIterator<Item = &'a String>) -> String {
    let mut out = String::new();
    for failure in failures {
        out.push_str(&format!("SKIPPED {failure}\n"));
    }
    if !out.is_empty() {
        out.insert_str(0, "\nFailed replications (skipped):\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::methods::BackboneKind;
    use crate::presets::{bench_variant, paper_syn_8_8_8_2};
    use sbrl_core::Framework;

    fn tiny_exp() -> SyntheticExperiment {
        SyntheticExperiment {
            data_cfg: SyntheticConfig {
                m_instrument: 3,
                m_confounder: 3,
                m_adjustment: 3,
                m_unstable: 2,
                pool_factor: 4,
                threshold_pool: 1000,
            },
            preset: bench_variant(paper_syn_8_8_8_2()),
            scale: Scale::Bench,
            train_rho: 2.5,
            test_rhos: vec![2.5, -2.5],
        }
    }

    #[test]
    fn sweep_produces_one_cell_per_method_env_rep() {
        let exp = tiny_exp();
        let methods = vec![
            MethodSpec { backbone: BackboneKind::Tarnet, framework: Framework::Vanilla },
            MethodSpec { backbone: BackboneKind::Cfr, framework: Framework::SbrlHap },
        ];
        let results = run_synthetic_sweep(&exp, &methods, |_| {});
        assert_eq!(results.len(), 2);
        for r in &results {
            assert_eq!(r.per_env.len(), 2);
            for env in &r.per_env {
                assert_eq!(env.len(), 1); // bench scale = 1 replication
                assert!(env[0].pehe.is_finite());
                assert!(env[0].ate_bias.is_finite());
            }
        }
        let pehes = results[0].metric(0, |e| e.pehe);
        assert_eq!(pehes.len(), 1);
    }

    #[test]
    fn sweep_reports_failures_instead_of_aborting() {
        let mut exp = tiny_exp();
        exp.preset.lr = f64::NAN; // invalid config: every fit fails fast
        let methods =
            vec![MethodSpec { backbone: BackboneKind::Tarnet, framework: Framework::Vanilla }];
        let mut messages = Vec::new();
        let results = run_synthetic_sweep(&exp, &methods, |m| messages.push(m.to_string()));
        assert_eq!(results[0].failures.len(), 1);
        assert!(results[0].per_env.iter().all(Vec::is_empty));
        assert!(messages.iter().any(|m| m.contains("FAILED")));
    }

    #[test]
    fn fit_method_surfaces_typed_errors() {
        let exp = tiny_exp();
        let process = SyntheticProcess::new(exp.data_cfg, 1);
        let train_data = process.generate(2.5, 120, 0);
        let val_data = process.generate(2.5, 60, 1);
        let spec = MethodSpec { backbone: BackboneKind::Cfr, framework: Framework::Vanilla };
        let bad = TrainConfig { iterations: 0, ..TrainConfig::smoke() };
        let err = fit_method(spec, &exp.preset, &train_data, &val_data, &bad).unwrap_err();
        assert!(matches!(err, SbrlError::InvalidConfig { what: "train.iterations", .. }));
    }
}
