//! Shared experiment execution: fit one method on one split, and run the
//! full method grid over synthetic environment sweeps with replications.

use sbrl_core::{Estimator, FittedModel, SbrlError, TrainConfig};
use sbrl_data::{CausalDataset, SyntheticConfig, SyntheticProcess};
use sbrl_metrics::Evaluation;
use sbrl_models::Backbone;

use crate::methods::{ExperimentPreset, MethodSpec};
use crate::scale::Scale;

/// Default bounded retry budget of the sweep runners: a transiently failed
/// fit (divergence, timeout, worker panic) is re-attempted up to this many
/// times with a reseeded configuration before being skipped.
pub const DEFAULT_FIT_RETRIES: usize = 2;

/// Salt mixed into the base seed for retry attempts, so each attempt walks a
/// fresh but deterministic initialisation/shuffle trajectory.
const RETRY_SEED_SALT: u64 = 0x9e37_79b9_97f4_a7c5;

/// The seed of retry `attempt`. Attempt 0 is the base seed itself, so a fit
/// that succeeds first try is bit-identical to the non-retrying path.
pub fn retry_seed(base_seed: u64, attempt: usize) -> u64 {
    if attempt == 0 {
        base_seed
    } else {
        base_seed ^ RETRY_SEED_SALT.wrapping_mul(attempt as u64)
    }
}

/// Whether an error is worth retrying with a fresh seed. Config and data
/// errors are deterministic — the retry would fail identically.
fn is_transient(e: &SbrlError) -> bool {
    matches!(
        e,
        SbrlError::NonFiniteLoss { .. }
            | SbrlError::TimedOut { .. }
            | SbrlError::WorkerPanic { .. }
    )
}

/// Runs `fit` with bounded retry-with-reseed: attempt 0 gets `base_seed`
/// verbatim, attempt `k > 0` gets [`retry_seed`]`(base_seed, k)`. Returns
/// the fitted value plus the number of retries consumed (0 = first try).
/// Non-transient errors and exhausted budgets surface the last error.
pub fn retrying<T>(
    base_seed: u64,
    max_retries: usize,
    mut fit: impl FnMut(u64) -> Result<T, SbrlError>,
) -> Result<(T, usize), SbrlError> {
    let mut attempt = 0;
    loop {
        match fit(retry_seed(base_seed, attempt)) {
            Ok(v) => return Ok((v, attempt)),
            Err(e) if attempt < max_retries && is_transient(&e) => attempt += 1,
            Err(e) => return Err(e),
        }
    }
}

/// [`fit_method`] wrapped in [`retrying`]: the sweep runners' upgrade from
/// skip-on-first-failure to bounded retry-with-reseed.
pub fn fit_method_retrying(
    spec: MethodSpec,
    preset: &ExperimentPreset,
    train_data: &CausalDataset,
    val_data: &CausalDataset,
    train_cfg: &TrainConfig,
    max_retries: usize,
) -> Result<(FittedModel<Box<dyn Backbone>>, usize), SbrlError> {
    retrying(train_cfg.seed, max_retries, |seed| {
        let cfg = TrainConfig { seed, ..*train_cfg };
        fit_method(spec, preset, train_data, val_data, &cfg)
    })
}

/// Fits one method specification on a train/val split through the fluent
/// estimator pipeline. Training failures (divergence, invalid data) surface
/// as typed errors so sweep runners can skip and report them.
pub fn fit_method(
    spec: MethodSpec,
    preset: &ExperimentPreset,
    train_data: &CausalDataset,
    val_data: &CausalDataset,
    train_cfg: &TrainConfig,
) -> Result<FittedModel<Box<dyn Backbone>>, SbrlError> {
    Estimator::builder()
        .backbone(preset.backbone_config(spec.backbone, train_data.dim()))
        .sbrl(preset.sbrl_config(spec))
        .train(*train_cfg)
        .fit(train_data, val_data)
}

/// Configuration of one synthetic environment-sweep experiment (Table I /
/// Fig. 3 / Fig. 4 style).
#[derive(Clone, Debug)]
pub struct SyntheticExperiment {
    /// Dataset dimensions.
    pub data_cfg: SyntheticConfig,
    /// Hyper-parameter preset.
    pub preset: ExperimentPreset,
    /// Run scale (samples / iterations / replications).
    pub scale: Scale,
    /// Training-environment bias rate (paper: 2.5).
    pub train_rho: f64,
    /// Test-environment bias rates (paper: ±1.3, ±1.5, ±2.5, ±3).
    pub test_rhos: Vec<f64>,
}

impl SyntheticExperiment {
    /// The paper's standard sweep on a dataset config.
    pub fn paper_sweep(data_cfg: SyntheticConfig, preset: ExperimentPreset, scale: Scale) -> Self {
        Self {
            data_cfg,
            preset,
            scale,
            train_rho: sbrl_data::TRAIN_BIAS_RATE,
            test_rhos: sbrl_data::PAPER_BIAS_RATES.to_vec(),
        }
    }
}

/// Evaluations of one method across environments, accumulated over
/// replications: `per_env[env_index][replication]`.
#[derive(Clone, Debug, Default)]
pub struct MethodEnvResults {
    /// Method label.
    pub method: String,
    /// One vector of per-replication evaluations per test environment.
    pub per_env: Vec<Vec<Evaluation>>,
    /// Human-readable descriptions of failed replications (the sweep skips
    /// them instead of aborting).
    pub failures: Vec<String>,
    /// Human-readable descriptions of fits that only succeeded after one or
    /// more reseeded retries.
    pub retries: Vec<String>,
}

impl MethodEnvResults {
    /// Extracts one metric across replications for an environment.
    pub fn metric(&self, env: usize, f: impl Fn(&Evaluation) -> f64) -> Vec<f64> {
        self.per_env[env].iter().map(f).collect()
    }
}

/// Runs the method grid over the synthetic sweep.
///
/// For every replication a fresh causal mechanism is drawn (process seed =
/// replication index), one training/validation pair is generated at
/// `train_rho`, every method is fitted once, and each fitted model is
/// evaluated on every test environment. A failed fit is reported through
/// `progress` and recorded in [`MethodEnvResults::failures`] instead of
/// aborting the whole sweep.
pub fn run_synthetic_sweep(
    exp: &SyntheticExperiment,
    methods: &[MethodSpec],
    mut progress: impl FnMut(&str),
) -> Vec<MethodEnvResults> {
    let (n_train, n_val, n_test) = exp.scale.synthetic_samples();
    let reps = exp.scale.replications();
    let mut results: Vec<MethodEnvResults> = methods
        .iter()
        .map(|m| MethodEnvResults {
            method: m.name(),
            per_env: vec![Vec::with_capacity(reps); exp.test_rhos.len()],
            failures: Vec::new(),
            retries: Vec::new(),
        })
        .collect();

    for rep in 0..reps {
        let process = SyntheticProcess::new(exp.data_cfg, 1000 + rep as u64);
        let train_data = process.generate(exp.train_rho, n_train, 10 * rep as u64);
        let val_data = process.generate(exp.train_rho, n_val, 10 * rep as u64 + 1);
        let test_envs: Vec<CausalDataset> = exp
            .test_rhos
            .iter()
            .enumerate()
            .map(|(k, &rho)| process.generate(rho, n_test, 10 * rep as u64 + 2 + k as u64))
            .collect();

        for (mi, spec) in methods.iter().enumerate() {
            let train_cfg =
                exp.scale.train_config(exp.preset.lr, exp.preset.l2, (rep * 97 + mi) as u64);
            let fitted = match fit_method_retrying(
                *spec,
                &exp.preset,
                &train_data,
                &val_data,
                &train_cfg,
                DEFAULT_FIT_RETRIES,
            ) {
                Ok((fitted, 0)) => fitted,
                Ok((fitted, attempts)) => {
                    let msg = format!(
                        "rep {}/{} method {} recovered after {attempts} reseeded retries",
                        rep + 1,
                        reps,
                        spec.name()
                    );
                    progress(&msg);
                    results[mi].retries.push(msg);
                    fitted
                }
                Err(e) => {
                    let msg =
                        format!("rep {}/{} method {} FAILED: {e}", rep + 1, reps, spec.name());
                    progress(&msg);
                    results[mi].failures.push(msg);
                    continue;
                }
            };
            for (env_idx, test) in test_envs.iter().enumerate() {
                // lint: allow(panic) — synthetic environments always carry the
                // oracle; a miss is a generator bug, not a recoverable state.
                let eval = fitted.evaluate(test).expect("synthetic data carries the oracle");
                results[mi].per_env[env_idx].push(eval);
            }
            progress(&format!(
                "rep {}/{} method {}/{} ({}) done in {:.1}s",
                rep + 1,
                reps,
                mi + 1,
                methods.len(),
                spec.name(),
                fitted.report().train_seconds
            ));
        }
    }
    results
}

/// Records one skipped fit: logs it to stderr under the runner's tag and
/// appends it to the runner's failure list (later rendered by
/// [`render_failures`]). The single code path for skip-and-report handling
/// in the eprintln-driven runners.
pub fn record_failure(tag: &str, message: String, failures: &mut Vec<String>) {
    eprintln!("[{tag}] {message}");
    failures.push(message);
}

/// Renders failed-replication messages as a report block (empty string when
/// every fit succeeded). The single formatting point for every runner's
/// skipped-replication output.
pub fn render_failures<'a>(failures: impl IntoIterator<Item = &'a String>) -> String {
    let mut out = String::new();
    for failure in failures {
        out.push_str(&format!("SKIPPED {failure}\n"));
    }
    if !out.is_empty() {
        out.insert_str(0, "\nFailed replications (skipped):\n");
    }
    out
}

/// Records one retried-then-recovered fit: logs it to stderr under the
/// runner's tag and appends it to the runner's retry list (later rendered by
/// [`render_retries`]).
pub fn record_retry(tag: &str, message: String, retries: &mut Vec<String>) {
    eprintln!("[{tag}] {message}");
    retries.push(message);
}

/// Renders retried-fit messages as a report block (empty string when every
/// fit succeeded first try). The single formatting point for every runner's
/// retry provenance output.
pub fn render_retries<'a>(retries: impl IntoIterator<Item = &'a String>) -> String {
    let mut out = String::new();
    for retry in retries {
        out.push_str(&format!("RETRIED {retry}\n"));
    }
    if !out.is_empty() {
        out.insert_str(0, "\nRetried fits (recovered after reseeding):\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::methods::BackboneKind;
    use crate::presets::{bench_variant, paper_syn_8_8_8_2};
    use sbrl_core::Framework;

    fn tiny_exp() -> SyntheticExperiment {
        SyntheticExperiment {
            data_cfg: SyntheticConfig {
                m_instrument: 3,
                m_confounder: 3,
                m_adjustment: 3,
                m_unstable: 2,
                pool_factor: 4,
                threshold_pool: 1000,
            },
            preset: bench_variant(paper_syn_8_8_8_2()),
            scale: Scale::Bench,
            train_rho: 2.5,
            test_rhos: vec![2.5, -2.5],
        }
    }

    #[test]
    fn sweep_produces_one_cell_per_method_env_rep() {
        let exp = tiny_exp();
        let methods = vec![
            MethodSpec { backbone: BackboneKind::Tarnet, framework: Framework::Vanilla },
            MethodSpec { backbone: BackboneKind::Cfr, framework: Framework::SbrlHap },
        ];
        let results = run_synthetic_sweep(&exp, &methods, |_| {});
        assert_eq!(results.len(), 2);
        for r in &results {
            assert_eq!(r.per_env.len(), 2);
            for env in &r.per_env {
                assert_eq!(env.len(), 1); // bench scale = 1 replication
                assert!(env[0].pehe.is_finite());
                assert!(env[0].ate_bias.is_finite());
            }
        }
        let pehes = results[0].metric(0, |e| e.pehe);
        assert_eq!(pehes.len(), 1);
    }

    #[test]
    fn sweep_reports_failures_instead_of_aborting() {
        let mut exp = tiny_exp();
        exp.preset.lr = f64::NAN; // invalid config: every fit fails fast
        let methods =
            vec![MethodSpec { backbone: BackboneKind::Tarnet, framework: Framework::Vanilla }];
        let mut messages = Vec::new();
        let results = run_synthetic_sweep(&exp, &methods, |m| messages.push(m.to_string()));
        assert_eq!(results[0].failures.len(), 1);
        assert!(results[0].per_env.iter().all(Vec::is_empty));
        assert!(messages.iter().any(|m| m.contains("FAILED")));
    }

    #[test]
    fn retry_seed_leaves_the_first_attempt_untouched() {
        assert_eq!(retry_seed(42, 0), 42);
        assert_ne!(retry_seed(42, 1), 42);
        assert_ne!(retry_seed(42, 1), retry_seed(42, 2));
        // Deterministic: same attempt, same seed.
        assert_eq!(retry_seed(42, 1), retry_seed(42, 1));
    }

    #[test]
    fn retrying_recovers_from_transient_errors_with_fresh_seeds() {
        let mut seeds = Vec::new();
        let (value, attempts) = retrying(7, 2, |seed| {
            seeds.push(seed);
            if seeds.len() < 3 {
                Err(SbrlError::NonFiniteLoss {
                    iteration: 5,
                    term: sbrl_core::NonFiniteTerm::FactualLoss,
                })
            } else {
                Ok(seed)
            }
        })
        .unwrap();
        assert_eq!(attempts, 2);
        assert_eq!(seeds[0], 7, "attempt 0 must use the base seed verbatim");
        assert_eq!(seeds.len(), 3);
        assert!(seeds.iter().skip(1).all(|&s| s != 7), "retries must reseed");
        assert_eq!(value, seeds[2]);
    }

    #[test]
    fn retrying_does_not_retry_deterministic_errors() {
        let mut calls = 0;
        let err = retrying(7, 5, |_| -> Result<(), SbrlError> {
            calls += 1;
            Err(SbrlError::InvalidConfig { what: "train.lr", message: "bad".into() })
        })
        .unwrap_err();
        assert_eq!(calls, 1, "config errors fail identically; retrying is pointless");
        assert!(matches!(err, SbrlError::InvalidConfig { .. }));
    }

    #[test]
    fn retrying_surfaces_the_last_error_when_the_budget_runs_out() {
        let mut calls = 0;
        let err = retrying(7, 2, |_| -> Result<(), SbrlError> {
            calls += 1;
            Err(SbrlError::NonFiniteLoss {
                iteration: calls,
                term: sbrl_core::NonFiniteTerm::Gradient,
            })
        })
        .unwrap_err();
        assert_eq!(calls, 3, "1 try + 2 retries");
        assert!(matches!(err, SbrlError::NonFiniteLoss { iteration: 3, .. }));
    }

    #[test]
    fn render_retries_formats_a_block_only_when_nonempty() {
        assert_eq!(render_retries(&[]), "");
        let notes = vec!["rep 1 method CFR recovered after 1 reseeded retries".to_string()];
        let block = render_retries(&notes);
        assert!(block.starts_with("\nRetried fits"));
        assert!(block.contains("RETRIED rep 1 method CFR"));
    }

    #[test]
    fn fit_method_surfaces_typed_errors() {
        let exp = tiny_exp();
        let process = SyntheticProcess::new(exp.data_cfg, 1);
        let train_data = process.generate(2.5, 120, 0);
        let val_data = process.generate(2.5, 60, 1);
        let spec = MethodSpec { backbone: BackboneKind::Cfr, framework: Framework::Vanilla };
        let bad = TrainConfig { iterations: 0, ..TrainConfig::smoke() };
        let err = fit_method(spec, &exp.preset, &train_data, &val_data, &bad).unwrap_err();
        assert!(matches!(err, SbrlError::InvalidConfig { what: "train.iterations", .. }));
    }
}
