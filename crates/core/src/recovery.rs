//! Checkpoint-rollback recovery for the alternating trainer.
//!
//! Training the SBRL objectives on heavy-tailed surfaces can diverge: a
//! single non-finite loss used to kill the whole fit. With a
//! [`RecoveryPolicy`] on [`TrainConfig`](crate::TrainConfig), the trainer
//! instead rolls back to the last best-validated checkpoint (the same
//! `store().snapshot()` early stopping already keeps), backs off the
//! learning rate, escalates gradient clipping, reseeds the batch shuffle
//! from a salted derivation, and resumes — recording every such event in
//! the [`FitReport`] carried on
//! [`FittedModel`](crate::FittedModel) provenance.
//!
//! The default policy performs **zero** retries: an untouched
//! configuration fails exactly as before (typed
//! [`NonFiniteLoss`](crate::SbrlError::NonFiniteLoss)) and every golden
//! regression stays bit-identical.

use std::time::Duration;

use crate::error::{NonFiniteTerm, SbrlError};

/// What the trainer does when a training-objective term goes non-finite.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RecoveryPolicy {
    /// Rollback-and-resume attempts before the fit fails with
    /// [`NonFiniteLoss`](crate::SbrlError::NonFiniteLoss). `0` (default)
    /// disables recovery entirely — no extra work on the training path.
    pub max_retries: usize,
    /// Multiplier applied to the network learning rate at each recovery
    /// (e.g. `0.5` halves it). Must be finite and in `(0, 1]`.
    pub lr_backoff: f64,
    /// Multiplier applied to Adam's global gradient-norm clip at each
    /// recovery (escalation = a *tighter* clip). Must be finite and in
    /// `(0, 1]`.
    pub grad_clip_escalation: f64,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        Self { max_retries: 0, lr_backoff: 0.5, grad_clip_escalation: 0.5 }
    }
}

impl RecoveryPolicy {
    /// A policy with `n` retries and the default backoff factors.
    pub fn retries(n: usize) -> Self {
        Self { max_retries: n, ..Self::default() }
    }

    /// Validates the backoff factors: both must be finite and in `(0, 1]`.
    pub fn validate(&self) -> Result<(), SbrlError> {
        let factors = [
            ("train.recovery.lr_backoff", self.lr_backoff),
            ("train.recovery.grad_clip_escalation", self.grad_clip_escalation),
        ];
        for (what, v) in factors {
            if !v.is_finite() || v <= 0.0 || v > 1.0 {
                return Err(SbrlError::InvalidConfig {
                    what,
                    message: format!("must be finite and in (0, 1], got {v}"),
                });
            }
        }
        Ok(())
    }
}

/// One recovery performed during a fit: what diverged, where the trainer
/// rolled back to, and the hyper-parameters it resumed with.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RecoveryEvent {
    /// Iteration at which the non-finite term was detected.
    pub iteration: usize,
    /// Which objective term diverged.
    pub term: NonFiniteTerm,
    /// 1-based retry count (the first recovery is `1`).
    pub retry: usize,
    /// Iteration of the best-validated checkpoint restored by the rollback.
    pub rolled_back_to: usize,
    /// Network learning rate after the backoff.
    pub lr: f64,
    /// Adam gradient-norm clip after the escalation.
    pub clip_norm: f64,
}

impl std::fmt::Display for RecoveryEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "recovery #{}: {} non-finite at iteration {}, rolled back to \
             iteration {} (lr {:.3e}, clip {:.3e})",
            self.retry, self.term, self.iteration, self.rolled_back_to, self.lr, self.clip_norm
        )
    }
}

/// Fault-tolerance provenance of a fit, carried on
/// [`FittedModel`](crate::FittedModel) alongside
/// [`numerics()`](crate::FittedModel::numerics): the policy the fit ran
/// under and every recovery it performed.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FitReport {
    /// Recovery events in the order they occurred (empty for a clean fit).
    pub recoveries: Vec<RecoveryEvent>,
    /// The policy the fit ran under.
    pub policy: RecoveryPolicy,
    /// The watchdog budget the fit ran under (`None` = unbounded).
    pub time_budget: Option<Duration>,
}

impl FitReport {
    /// True when the fit survived at least one non-finite divergence.
    pub fn recovered(&self) -> bool {
        !self.recoveries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_policy_performs_no_retries() {
        let p = RecoveryPolicy::default();
        assert_eq!(p.max_retries, 0);
        p.validate().expect("default policy is valid");
        assert_eq!(RecoveryPolicy::retries(3).max_retries, 3);
    }

    #[test]
    fn validate_rejects_out_of_range_factors() {
        for bad in [0.0, -0.5, 1.5, f64::NAN, f64::INFINITY] {
            let p = RecoveryPolicy { lr_backoff: bad, ..RecoveryPolicy::default() };
            assert!(p.validate().is_err(), "lr_backoff {bad} must be rejected");
            let p = RecoveryPolicy { grad_clip_escalation: bad, ..RecoveryPolicy::default() };
            assert!(p.validate().is_err(), "grad_clip_escalation {bad} must be rejected");
        }
    }

    #[test]
    fn report_default_is_clean_and_events_render() {
        let r = FitReport::default();
        assert!(!r.recovered() && r.recoveries.is_empty() && r.time_budget.is_none());
        let e = RecoveryEvent {
            iteration: 42,
            term: NonFiniteTerm::FactualLoss,
            retry: 1,
            rolled_back_to: 25,
            lr: 5e-4,
            clip_norm: 5.0,
        };
        let s = e.to_string();
        assert!(s.contains("iteration 42") && s.contains("factual loss") && s.contains("25"));
    }
}
