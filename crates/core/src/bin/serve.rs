//! `serve` — the model-persistence + inference-service CLI.
//!
//! ```text
//! serve check <registry-dir>             load + smoke-test every artifact
//! serve demo-train <out-dir>             train tiny models, save, verify the
//!                                        save→load round trip bit-for-bit
//! serve bench <registry-dir> [opts]      threaded load run; p50/p99/throughput
//!     --requests N   total requests          (default 200)
//!     --clients C    client threads          (default 4)
//!     --rows R       rows per request        (default 16)
//!     --batch-max B  batcher batch size      (default 64)
//!     --socket       also bench over a loopback TCP socket
//!     --json PATH    write a BENCH_serving.json-format snapshot
//! serve listen <registry-dir> [opts]     TCP front-end (wire protocol)
//!     --addr A       bind address            (default 127.0.0.1:7878; use
//!                                             port 0 for an ephemeral port)
//!     --smoke N      serve N loopback requests, verify each is
//!                    bit-identical to in-process predict, drain, exit
//! serve make-fixtures <fixture-root>     regenerate the committed golden
//!                                        fixtures (deliberate, reviewed act)
//! ```
//!
//! `listen` honours `SBRL_DEADLINE_MS` / `SBRL_QUEUE_MAX` (service knobs)
//! and the smoke client honours `SBRL_DEADLINE_MS` / `SBRL_RETRIES` /
//! `SBRL_BACKOFF_MS` (client knobs) — see `docs/SERVING.md`. Without
//! `--smoke`, `listen` serves until stdin reaches EOF, then drains
//! gracefully (fulfil or deadline-fail every queued request, bounded by the
//! drain budget).
//!
//! Exit code 0 on success, 1 on any typed failure (printed to stderr).

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Instant;

use sbrl_core::persist::{fixture, ModelRegistry};
use sbrl_core::serve::{summarize_latencies, InferenceService, ServeConfig, SocketServer};
use sbrl_core::wire::{ClientConfig, ServeClient};
use sbrl_core::{FittedModel, SbrlError};
use sbrl_models::Backbone;
use sbrl_tensor::kernels::NumericsMode;
use sbrl_tensor::Matrix;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("check") => args.get(1).map(|d| check(Path::new(d))).unwrap_or_else(usage_err),
        Some("demo-train") => {
            args.get(1).map(|d| demo_train(Path::new(d))).unwrap_or_else(usage_err)
        }
        Some("bench") => {
            args.get(1).map(|d| bench(Path::new(d), &args[2..])).unwrap_or_else(usage_err)
        }
        Some("listen") => {
            args.get(1).map(|d| listen(Path::new(d), &args[2..])).unwrap_or_else(usage_err)
        }
        Some("make-fixtures") => {
            args.get(1).map(|d| make_fixtures(Path::new(d))).unwrap_or_else(usage_err)
        }
        _ => usage_err(),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("serve: error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn usage_err() -> Result<(), SbrlError> {
    Err(SbrlError::InvalidConfig {
        what: "serve.args",
        message: "usage: serve <check|demo-train|bench|listen|make-fixtures> <dir> [options]"
            .into(),
    })
}

fn io_err(path: &Path, e: std::io::Error) -> SbrlError {
    SbrlError::Persist(sbrl_core::PersistError::Io {
        path: path.to_path_buf(),
        message: e.to_string(),
    })
}

/// Loads a registry, boots the service, and fires one smoke request per
/// model — the CI gate that the committed fixture registry stays servable.
fn check(dir: &Path) -> Result<(), SbrlError> {
    let registry = ModelRegistry::load_dir(dir)?;
    println!("registry at {}: {} model(s)", dir.display(), registry.len());
    let names = registry.names();
    for name in &names {
        let model = registry.require(name)?;
        println!(
            "  {name}: seed {}, {} parameters, numerics {:?}",
            model.seed(),
            model.model().store().num_scalars(),
            model.numerics()
        );
    }
    let service = InferenceService::start(registry, ServeConfig::default())?;
    for name in &names {
        let dim = service.registry().require(name)?.model().export_config().in_dim();
        let est = service.predict(name, fixture::probe_matrix(dim))?;
        let finite = est.y0_hat.iter().chain(est.y1_hat.iter()).all(|v| v.is_finite());
        if !finite {
            return Err(SbrlError::InvalidConfig {
                what: "serve.check",
                message: format!("model '{name}' produced non-finite predictions"),
            });
        }
        println!("  {name}: smoke request OK ({} rows, all finite)", est.y0_hat.len());
    }
    println!("check OK");
    Ok(())
}

/// Trains the two fixture-recipe models, saves them into `dir`, reloads
/// them, and verifies save→load→predict is bit-identical.
fn demo_train(dir: &Path) -> Result<(), SbrlError> {
    std::fs::create_dir_all(dir).map_err(|e| io_err(dir, e))?;
    type TrainFn = fn() -> Result<FittedModel<Box<dyn Backbone>>, SbrlError>;
    let specs: [(&str, TrainFn); 2] =
        [("cfr-sbrl-hap.sbrl", fixture::train_golden), ("tarnet.sbrl", fixture::train_second)];
    for (file_name, train) in specs {
        let fitted = train()?;
        let path = dir.join(file_name);
        fitted.save(&path)?;
        let loaded = FittedModel::load(&path)?;
        let probe = fixture::probe_matrix(loaded.model().export_config().in_dim());
        let before = fitted.predict(&probe);
        let after = loaded.predict(&probe);
        let identical = before
            .y0_hat
            .iter()
            .zip(&after.y0_hat)
            .chain(before.y1_hat.iter().zip(&after.y1_hat))
            .all(|(a, b)| a.to_bits() == b.to_bits());
        if !identical {
            return Err(SbrlError::InvalidConfig {
                what: "serve.demo-train",
                message: format!("round trip of {} was not bit-identical", path.display()),
            });
        }
        println!(
            "trained {} -> {} ({} bytes), round trip bit-identical",
            fitted.method_spec().name(),
            path.display(),
            fitted.to_sbrl_bytes().len()
        );
    }
    Ok(())
}

/// Deterministic request covariates for the load run: a cheap LCG keyed by
/// `(client, request)` so every run replays the same request stream.
fn request_matrix(rows: usize, dim: usize, salt: u64) -> Matrix {
    let mut state = salt.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
    let mut data = Vec::with_capacity(rows * dim);
    for _ in 0..rows * dim {
        state =
            state.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1_442_695_040_888_963_407);
        data.push(((state >> 33) % 4001) as f64 / 1000.0 - 2.0);
    }
    Matrix::from_vec(rows, dim, data)
}

struct BenchOpts {
    requests: usize,
    clients: usize,
    rows: usize,
    batch_max: usize,
    socket: bool,
    json: Option<PathBuf>,
}

fn parse_bench_opts(args: &[String]) -> Result<BenchOpts, SbrlError> {
    let mut opts =
        BenchOpts { requests: 200, clients: 4, rows: 16, batch_max: 64, socket: false, json: None };
    let bad = |message: String| SbrlError::InvalidConfig { what: "serve.bench", message };
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        if flag == "--socket" {
            opts.socket = true;
            continue;
        }
        let value = it.next().ok_or_else(|| bad(format!("flag {flag} needs a value")))?;
        let parse =
            |v: &str| v.parse::<usize>().map_err(|_| bad(format!("{flag}: not a number: {v}")));
        match flag.as_str() {
            "--requests" => opts.requests = parse(value)?.max(1),
            "--clients" => opts.clients = parse(value)?.max(1),
            "--rows" => opts.rows = parse(value)?.max(1),
            "--batch-max" => opts.batch_max = parse(value)?.max(1),
            "--json" => opts.json = Some(PathBuf::from(value)),
            other => return Err(bad(format!("unknown flag {other}"))),
        }
    }
    Ok(opts)
}

/// The threaded load run: `clients` threads fire `requests` total requests
/// (round-robin over the registry's models), and the run reports request
/// latency percentiles and row throughput.
fn bench(dir: &Path, args: &[String]) -> Result<(), SbrlError> {
    let opts = parse_bench_opts(args)?;
    let registry = ModelRegistry::load_dir(dir)?;
    let names = registry.names();
    let dims: Vec<usize> = names
        .iter()
        .filter_map(|n| registry.get(n).map(|m| m.model().export_config().in_dim()))
        .collect();
    let service = InferenceService::start(
        registry,
        ServeConfig { batch_max: opts.batch_max, ..ServeConfig::default() },
    )?;

    let started = Instant::now();
    let mut all_latencies: Vec<u64> = Vec::with_capacity(opts.requests);
    let per_client = opts.requests.div_ceil(opts.clients);
    // lint: allow(spawn) — bench client load generators: the clients *are*
    // the external world here, so they must be independent threads, not
    // worker-pool tasks (the pool is busy serving the predictions).
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(opts.clients);
        for client in 0..opts.clients {
            let service = &service;
            let names = &names;
            let dims = &dims;
            handles.push(scope.spawn(move || {
                let mut latencies = Vec::with_capacity(per_client);
                for req in 0..per_client {
                    let which = (client + req) % names.len();
                    let Some(name) = names.get(which) else { continue };
                    let Some(&dim) = dims.get(which) else { continue };
                    let x = request_matrix(opts.rows, dim, (client * 1_000_003 + req) as u64);
                    let t0 = Instant::now();
                    let outcome = service.predict(name, x);
                    let elapsed = t0.elapsed().as_nanos() as u64;
                    if outcome.is_ok() {
                        latencies.push(elapsed);
                    }
                }
                latencies
            }));
        }
        for handle in handles {
            if let Ok(latencies) = handle.join() {
                all_latencies.extend(latencies);
            }
        }
    });
    let wall = started.elapsed();

    let completed = all_latencies.len();
    let summary = summarize_latencies(all_latencies).ok_or_else(|| SbrlError::InvalidConfig {
        what: "serve.bench",
        message: "no request completed".into(),
    })?;
    let total_rows = completed * opts.rows;
    let rows_per_sec = total_rows as f64 / wall.as_secs_f64().max(1e-9);
    let mean_ns_per_row = summary.mean_ns / opts.rows.max(1) as u64;

    println!(
        "serving bench: {completed} requests x {} rows, {} clients, batch_max {}",
        opts.rows, opts.clients, opts.batch_max
    );
    println!("  p50 latency  {:>12} ns", summary.p50_ns);
    println!("  p99 latency  {:>12} ns", summary.p99_ns);
    println!("  mean/row     {:>12} ns", mean_ns_per_row);
    println!("  throughput   {rows_per_sec:>12.0} rows/s (wall {:.3}s)", wall.as_secs_f64());

    // Free the in-process service's worker pool before the socket run so the
    // two phases don't compete for cores.
    drop(service);
    let socket = if opts.socket {
        let (p50, p99) = socket_bench(dir, &opts)?;
        println!("  socket p50   {p50:>12} ns");
        println!("  socket p99   {p99:>12} ns");
        Some((p50, p99))
    } else {
        None
    };

    if let Some(json_path) = &opts.json {
        let body = bench_json(
            summary.p50_ns,
            summary.p99_ns,
            mean_ns_per_row,
            completed,
            opts.clients,
            socket,
        );
        std::fs::write(json_path, body).map_err(|e| io_err(json_path, e))?;
        println!("  snapshot     {}", json_path.display());
    }
    Ok(())
}

/// The same load run as [`bench()`], but over a loopback TCP socket: every
/// request pays the full wire round trip (encode, CRC, kernel hop, decode).
fn socket_bench(dir: &Path, opts: &BenchOpts) -> Result<(u64, u64), SbrlError> {
    let registry = ModelRegistry::load_dir(dir)?;
    let names = registry.names();
    let dims: Vec<usize> = names
        .iter()
        .filter_map(|n| registry.get(n).map(|m| m.model().export_config().in_dim()))
        .collect();
    let server = SocketServer::bind(
        registry,
        ServeConfig { batch_max: opts.batch_max, ..ServeConfig::default() },
        "127.0.0.1:0",
    )?;
    let addr = server.local_addr();
    let per_client = opts.requests.div_ceil(opts.clients);
    let mut all_latencies: Vec<u64> = Vec::with_capacity(opts.requests);
    // lint: allow(spawn) — socket bench clients: real TCP peers must live on
    // their own threads; the service's worker pool is the system under test.
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(opts.clients);
        for client in 0..opts.clients {
            let names = &names;
            let dims = &dims;
            handles.push(scope.spawn(move || {
                let mut latencies = Vec::with_capacity(per_client);
                let mut conn = ServeClient::connect(addr, ClientConfig::default());
                for req in 0..per_client {
                    let which = (client + req) % names.len().max(1);
                    let Some(name) = names.get(which) else { continue };
                    let Some(&dim) = dims.get(which) else { continue };
                    let x = request_matrix(opts.rows, dim, (client * 1_000_003 + req) as u64);
                    let t0 = Instant::now();
                    let outcome = conn.predict(name, &x);
                    let elapsed = t0.elapsed().as_nanos() as u64;
                    if outcome.is_ok() {
                        latencies.push(elapsed);
                    }
                }
                latencies
            }));
        }
        for handle in handles {
            if let Ok(latencies) = handle.join() {
                all_latencies.extend(latencies);
            }
        }
    });
    server.shutdown();
    let summary = summarize_latencies(all_latencies).ok_or_else(|| SbrlError::InvalidConfig {
        what: "serve.bench",
        message: "no socket request completed".into(),
    })?;
    Ok((summary.p50_ns, summary.p99_ns))
}

/// Renders the `BENCH_serving.json` snapshot in the same line-oriented
/// layout as the criterion shim's `SBRL_BENCH_JSON` output, so
/// `bench_compare` parses it unchanged. Latency metrics only (lower is
/// better, matching the comparator's direction).
fn bench_json(
    p50: u64,
    p99: u64,
    ns_per_row: u64,
    samples: usize,
    threads: usize,
    socket: Option<(u64, u64)>,
) -> String {
    let rev = std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .unwrap_or_else(|| "unknown".to_string());
    let mut body = String::new();
    body.push_str("{\n");
    body.push_str("  \"bench\": \"serving\",\n");
    body.push_str(&format!("  \"git_rev\": \"{rev}\",\n"));
    body.push_str(&format!("  \"threads\": {threads},\n"));
    body.push_str("  \"results\": [\n");
    body.push_str(&format!(
        "    {{\"name\": \"serving/request_p50\", \"median_ns\": {p50}, \"samples\": {samples}}},\n"
    ));
    body.push_str(&format!(
        "    {{\"name\": \"serving/request_p99\", \"median_ns\": {p99}, \"samples\": {samples}}},\n"
    ));
    let tail = if socket.is_some() { "," } else { "" };
    body.push_str(&format!(
        "    {{\"name\": \"serving/mean_ns_per_row\", \"median_ns\": {ns_per_row}, \"samples\": {samples}}}{tail}\n"
    ));
    if let Some((sp50, sp99)) = socket {
        body.push_str(&format!(
            "    {{\"name\": \"serving/socket_request_p50\", \"median_ns\": {sp50}, \"samples\": {samples}}},\n"
        ));
        body.push_str(&format!(
            "    {{\"name\": \"serving/socket_request_p99\", \"median_ns\": {sp99}, \"samples\": {samples}}}\n"
        ));
    }
    body.push_str("  ]\n}\n");
    body
}

/// `serve listen`: boots the socket front-end over a loaded registry and
/// serves the wire protocol until stdin reaches EOF (operator stop signal)
/// or, with `--smoke N`, until N loopback requests have been verified
/// bit-identical to the in-process answers. Either way the exit path is a
/// graceful drain: every queued request is fulfilled or deadline-failed
/// within the drain budget before the process returns.
fn listen(dir: &Path, args: &[String]) -> Result<(), SbrlError> {
    let bad = |message: String| SbrlError::InvalidConfig { what: "serve.listen", message };
    let mut addr = String::from("127.0.0.1:7878");
    let mut smoke: Option<usize> = None;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let value = it.next().ok_or_else(|| bad(format!("flag {flag} needs a value")))?;
        match flag.as_str() {
            "--addr" => addr = value.clone(),
            "--smoke" => {
                let n = value
                    .parse::<usize>()
                    .map_err(|_| bad(format!("--smoke: not a number: {value}")))?;
                smoke = Some(n.max(1));
            }
            other => return Err(bad(format!("unknown flag {other}"))),
        }
    }

    let registry = ModelRegistry::load_dir(dir)?;
    let cfg = ServeConfig::from_env()?;
    let server = SocketServer::bind(registry, cfg, addr.as_str())?;
    let service = server.service();
    let deadline = service
        .config()
        .deadline
        .map(|d| format!("{}ms", d.as_millis()))
        .unwrap_or_else(|| "off".into());
    println!(
        "listening on {} ({} model(s), queue_max {}, deadline {deadline})",
        server.local_addr(),
        service.registry().len(),
        service.config().queue_max,
    );

    match smoke {
        Some(n) => smoke_requests(&server, n)?,
        None => {
            // Serve until the operator (or CI harness) closes stdin.
            let mut sink = Vec::new();
            std::io::Read::read_to_end(&mut std::io::stdin().lock(), &mut sink)
                .map_err(|e| bad(format!("stdin wait failed: {e}")))?;
        }
    }
    let queued = server.shutdown();
    println!("drained: {queued} request(s) were queued at close, all answered");
    Ok(())
}

/// Fires `n` loopback requests through a real TCP [`ServeClient`] and
/// verifies each reply is bit-identical to the in-process answer for the
/// same covariates — the wire hop must not cost a single bit.
fn smoke_requests(server: &SocketServer, n: usize) -> Result<(), SbrlError> {
    let service = server.service();
    let names = service.registry().names();
    let mut client = ServeClient::connect(server.local_addr(), ClientConfig::from_env()?);
    let report = client.health()?;
    if !report.ready {
        return Err(SbrlError::InvalidConfig {
            what: "serve.listen",
            message: "health frame reports the service is not ready".into(),
        });
    }
    println!(
        "health: ready, queue {}/{}, models [{}]",
        report.queue_depth,
        report.queue_max,
        report.models.join(", ")
    );
    for req in 0..n {
        let which = req % names.len().max(1);
        let Some(name) = names.get(which) else { continue };
        let dim = service.registry().require(name)?.model().export_config().in_dim();
        let x = request_matrix(4, dim, req as u64);
        let over_socket = client.predict(name, &x)?;
        let in_process = service.predict(name, x)?;
        let identical = over_socket
            .y0_hat
            .iter()
            .zip(&in_process.y0_hat)
            .chain(over_socket.y1_hat.iter().zip(&in_process.y1_hat))
            .all(|(a, b)| a.to_bits() == b.to_bits());
        if !identical {
            return Err(SbrlError::InvalidConfig {
                what: "serve.listen",
                message: format!("smoke request {req} ({name}) was not bit-identical"),
            });
        }
        println!("  smoke {req}: {name} OK ({} rows, bit-identical)", over_socket.y0_hat.len());
    }
    Ok(())
}

/// Regenerates the committed golden fixtures under `root`:
///
/// * `golden_v2.sbrl` — the golden model at the current format version;
/// * `golden_v1.sbrl` — the same model encoded at format version 1
///   (version-skew coverage: no `FITR` section);
/// * `golden_expected_bits.txt` — the model's bit-exact predictions on the
///   deterministic probe matrix;
/// * `registry/` — two distinct-method artifacts the serve tests boot from.
fn make_fixtures(root: &Path) -> Result<(), SbrlError> {
    let registry_dir = root.join("registry");
    std::fs::create_dir_all(&registry_dir).map_err(|e| io_err(&registry_dir, e))?;

    let golden = fixture::train_golden()?;
    let second = fixture::train_second()?;

    let write = |path: &Path, bytes: &[u8]| -> Result<(), SbrlError> {
        std::fs::write(path, bytes).map_err(|e| io_err(path, e))?;
        println!("wrote {} ({} bytes)", path.display(), bytes.len());
        Ok(())
    };
    write(&root.join("golden_v2.sbrl"), &golden.to_sbrl_bytes())?;
    write(&root.join("golden_v1.sbrl"), &golden.to_sbrl_bytes_versioned(1))?;
    write(&registry_dir.join("cfr-sbrl-hap.sbrl"), &golden.to_sbrl_bytes())?;
    write(&registry_dir.join("tarnet.sbrl"), &second.to_sbrl_bytes())?;

    // The expected prediction bits, computed under the pinned BitExact tier
    // (the golden tests pin the same tier before comparing).
    NumericsMode::BitExact.set_global();
    let probe = fixture::probe_matrix(golden.model().export_config().in_dim());
    let est = golden.predict(&probe);
    NumericsMode::from_env().set_global();
    let mut bits = String::new();
    bits.push_str("# Bit-exact predictions of tests/fixtures/golden_v2.sbrl on\n");
    bits.push_str("# persist::fixture::probe_matrix, NumericsMode::BitExact.\n");
    bits.push_str("# Regenerate (deliberately!) with:\n");
    bits.push_str(
        "#   cargo run --release -p sbrl-core --bin serve -- make-fixtures tests/fixtures\n",
    );
    for v in &est.y0_hat {
        bits.push_str(&format!("y0 {:016x}\n", v.to_bits()));
    }
    for v in &est.y1_hat {
        bits.push_str(&format!("y1 {:016x}\n", v.to_bits()));
    }
    let bits_path = root.join("golden_expected_bits.txt");
    std::fs::write(&bits_path, &bits).map_err(|e| io_err(&bits_path, e))?;
    println!("wrote {}", bits_path.display());
    Ok(())
}
