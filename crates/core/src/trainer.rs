//! End-to-end alternating training (Algorithm 1 of the paper).
//!
//! Each iteration draws a mini-batch and performs two phases:
//!
//! 1. **Network phase** — update the backbone parameters `W, b` on the
//!    weighted factual loss `L^w_Y` (Eq. 13) plus the backbone's own
//!    regularizers and L2, with the sample weights held constant;
//! 2. **Weight phase** — rebuild the forward pass with the network *frozen*
//!    (parameters enter the tape as constants) and update the sample
//!    weights on `L_w` (Eq. 11).
//!
//! Validation uses the unweighted factual loss; the best-evaluated iterate
//! is restored at the end (Sec. V-C: early stopping, best iterate).

use std::sync::OnceLock;
use std::time::{Duration, Instant};

use sbrl_data::{CausalDataset, OutcomeKind, Scaler};
use sbrl_metrics::{evaluate, EffectEstimate, Evaluation};
use sbrl_models::{select_by_treatment, Backbone, BatchContext};
use sbrl_nn::{
    loss::l2_penalty, Adam, BatchIter, Binding, EarlyStopping, LrSchedule, Optimizer, OutcomeLoss,
};
use sbrl_stats::{HsicScratch, Rff};
use sbrl_tensor::kernels::NumericsMode;
use sbrl_tensor::rng::rng_from_seed;
use sbrl_tensor::{Graph, Matrix};

use crate::config::SbrlConfig;
use crate::error::{NonFiniteTerm, SbrlError};
use crate::faults;
use crate::recovery::{FitReport, RecoveryEvent, RecoveryPolicy};
use crate::regularizers::weight_objective;
use crate::weights::SampleWeights;

/// Salt folded into the batch-shuffle seed at each recovery, so a resumed
/// run draws a fresh (but fully reproducible) batch sequence instead of
/// replaying the exact batches that diverged.
const RECOVERY_SEED_SALT: u64 = 0x9e37_79b9_7f4a_7c15;

/// Standardised covariates are winsorised to this many standard deviations.
/// Unbounded test-time inputs otherwise let deep ELU heads extrapolate
/// explosively on rows far outside the training support (observed on the
/// IHDP surface's heavy tails).
const CLIP_SIGMA: f64 = 5.0;

fn prep(scaler: &Option<Scaler>, x: &Matrix) -> Matrix {
    match scaler {
        Some(s) => s.transform(x).clamp(-CLIP_SIGMA, CLIP_SIGMA),
        None => x.clone(),
    }
}

/// Optimisation hyper-parameters (Sec. V-C defaults scaled for CPU runs).
#[derive(Clone, Copy, Debug)]
pub struct TrainConfig {
    /// Maximum number of alternating iterations (paper: 3000).
    pub iterations: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Network learning rate.
    pub lr: f64,
    /// Sample-weight learning rate.
    pub weight_lr: f64,
    /// Exponential LR decay `(rate, steps)`; `None` = constant.
    pub lr_decay: Option<(f64, usize)>,
    /// L2 regularisation coefficient `λ` on the weight matrices.
    pub l2: f64,
    /// Validation cadence in iterations.
    pub eval_every: usize,
    /// Early-stopping patience in *evaluations* (not iterations).
    pub patience: usize,
    /// RNG seed for batching, RFF sampling and column subsampling.
    pub seed: u64,
    /// Standardise covariates with train-fold statistics.
    pub standardize: bool,
    /// Standardise *continuous* outcomes with train-fold statistics during
    /// training and invert at prediction time (the reference CFR's `y`
    /// normalisation; prevents divergence on heavy-tailed surfaces such as
    /// IHDP's exponential response).
    pub standardize_outcome: bool,
    /// What to do when a training-objective term goes non-finite: the
    /// default performs no retries (the fit fails with a typed
    /// [`NonFiniteLoss`](SbrlError::NonFiniteLoss), exactly as before);
    /// `max_retries > 0` enables checkpoint rollback + backoff + resume.
    pub recovery: RecoveryPolicy,
    /// Wall-clock watchdog: when set, the budget is checked at the top of
    /// every iteration and an overrun fails the fit with a typed
    /// [`TimedOut`](SbrlError::TimedOut). `None` (default) = unbounded.
    pub time_budget: Option<Duration>,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            iterations: 500,
            batch_size: 128,
            lr: 1e-3,
            weight_lr: 1e-2,
            lr_decay: Some((0.97, 100)),
            l2: 1e-4,
            eval_every: 25,
            patience: 10,
            seed: 0,
            standardize: true,
            standardize_outcome: true,
            recovery: RecoveryPolicy::default(),
            time_budget: None,
        }
    }
}

impl TrainConfig {
    /// The paper's full-scale settings (3000 iterations).
    pub fn paper() -> Self {
        Self { iterations: 3000, eval_every: 50, ..Self::default() }
    }

    /// A very small budget for unit tests.
    pub fn smoke() -> Self {
        Self { iterations: 60, batch_size: 64, eval_every: 20, patience: 50, ..Self::default() }
    }

    /// Validates the optimisation budget: counts must be positive and every
    /// rate finite and non-negative.
    pub fn validate(&self) -> Result<(), SbrlError> {
        let counts = [
            ("train.iterations", self.iterations),
            ("train.batch_size", self.batch_size),
            ("train.eval_every", self.eval_every),
        ];
        for (what, v) in counts {
            if v == 0 {
                return Err(SbrlError::InvalidConfig {
                    what,
                    message: "must be at least 1".into(),
                });
            }
        }
        let rates =
            [("train.lr", self.lr), ("train.weight_lr", self.weight_lr), ("train.l2", self.l2)];
        for (what, v) in rates {
            if !v.is_finite() || v < 0.0 {
                return Err(SbrlError::InvalidConfig {
                    what,
                    message: format!("must be finite and non-negative, got {v}"),
                });
            }
        }
        if let Some((rate, steps)) = self.lr_decay {
            if !rate.is_finite() || rate <= 0.0 || steps == 0 {
                return Err(SbrlError::InvalidConfig {
                    what: "train.lr_decay",
                    message: format!(
                        "needs a positive finite rate and steps >= 1, got ({rate}, {steps})"
                    ),
                });
            }
        }
        self.recovery.validate()?;
        Ok(())
    }
}

/// Former name of the unified error type, kept for one release.
#[deprecated(since = "0.2.0", note = "use `SbrlError` (the unified error enum) instead")]
pub type TrainError = SbrlError;

/// Summary of one training run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TrainReport {
    /// Iterations actually executed (early stopping may cut the budget).
    pub iterations_run: usize,
    /// Best validation loss observed.
    pub best_val_loss: f64,
    /// Iteration of the best validation loss.
    pub best_iteration: usize,
    /// Wall-clock training time in seconds.
    pub train_seconds: f64,
    /// `(min, mean, max)` of the final sample weights.
    pub weight_stats: (f64, f64, f64),
    /// `(iteration, validation loss)` trace.
    pub val_curve: Vec<(usize, f64)>,
}

/// A trained backbone bundled with its preprocessing and sample weights.
///
/// A fitted model is an **immutable inference artifact**: every serving
/// entry point ([`FittedModel::predict`], [`FittedModel::evaluate`],
/// [`FittedModel::representation`], ...) takes `&self`, and because
/// [`Backbone`] requires `Send + Sync` the model can fan out across threads
/// — see [`FittedModel::predict_batched`].
pub struct FittedModel<B: Backbone> {
    pub(crate) model: B,
    pub(crate) scaler: Option<Scaler>,
    pub(crate) loss_kind: OutcomeLoss,
    /// Outcome transform `(shift, scale)`: training used `(y - shift) / scale`.
    pub(crate) y_transform: (f64, f64),
    pub(crate) weights: Vec<f64>,
    pub(crate) report: TrainReport,
    /// Numerics tier the fit ran under — provenance, since `BitExact` and
    /// `Fast` fits of the same seed are not bit-identical.
    pub(crate) numerics: NumericsMode,
    /// Fault-tolerance provenance: the recovery policy the fit ran under
    /// and every rollback it performed.
    pub(crate) fit_report: FitReport,
    /// Which framework wrapped the fit (provenance + the registry key).
    pub(crate) framework: crate::config::Framework,
    /// Master seed the fit ran under (provenance; also rebuilds the
    /// architecture deterministically at load time).
    pub(crate) seed: u64,
}

impl<B: Backbone> std::fmt::Debug for FittedModel<B> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FittedModel")
            .field("model", &self.model.name())
            .field("loss_kind", &self.loss_kind)
            .field("numerics", &self.numerics)
            .field("report", &self.report)
            .field("fit_report", &self.fit_report)
            .finish_non_exhaustive()
    }
}

impl<B: Backbone> FittedModel<B> {
    /// Predicted potential outcomes for raw (unstandardised) covariates.
    pub fn predict(&self, x: &Matrix) -> EffectEstimate {
        let x = prep(&self.scaler, x);
        let n = x.rows();
        let t_dummy = vec![0.0; n];
        let (mut y0_hat, mut y1_hat) =
            sbrl_models::predict_potential_outcomes(&self.model, &x, &t_dummy, self.loss_kind);
        let (shift, scale) = self.y_transform;
        if shift != 0.0 || scale != 1.0 {
            for v in y0_hat.iter_mut().chain(y1_hat.iter_mut()) {
                *v = *v * scale + shift;
            }
        }
        EffectEstimate { y0_hat, y1_hat }
    }

    /// [`FittedModel::predict`] sharded across the workspace's persistent
    /// worker pool — the serving-shaped hot path for large inference
    /// matrices.
    ///
    /// Rows are split into contiguous shards, each shard is predicted as one
    /// pool task (no per-call thread spawns), and the pieces are reassembled
    /// in order. Every per-row operation of the inference path is
    /// independent of the other rows, so the result is **bit-identical** to
    /// a single-threaded [`FittedModel::predict`] for any worker count.
    ///
    /// `workers == 0` selects the worker count from the workspace-wide
    /// [`Parallelism`](sbrl_tensor::kernels::Parallelism) knob
    /// (`SBRL_THREADS` / available cores).
    /// # Panics
    /// Re-raises a worker-task panic as a panic on the calling thread.
    /// Server loops use [`FittedModel::try_predict_batched`], which
    /// contains the panic and returns it as a typed error instead.
    pub fn predict_batched(&self, x: &Matrix, workers: usize) -> EffectEstimate {
        self.try_predict_batched(x, workers)
            // lint: allow(panic) — documented re-raise (`# Panics`); serving
            // paths use the typed `try_predict_batched` instead.
            .unwrap_or_else(|e| panic!("predict_batched failed: {e}"))
    }

    /// [`FittedModel::predict_batched`] with typed failure: a panic inside
    /// a prediction shard is contained by the worker pool
    /// ([`run_tasks_catching`](sbrl_tensor::workers::run_tasks_catching))
    /// and surfaces as [`SbrlError::WorkerPanic`] naming the shard, with
    /// the pool left fully usable — one poisoned request cannot take down
    /// a serving loop.
    pub fn try_predict_batched(
        &self,
        x: &Matrix,
        workers: usize,
    ) -> Result<EffectEstimate, SbrlError> {
        let n = x.rows();
        let workers = if workers == 0 {
            sbrl_tensor::kernels::Parallelism::global().workers()
        } else {
            workers
        };
        let workers = workers.clamp(1, n.max(1));
        let chunk = n.div_ceil(workers);
        let ranges: Vec<(usize, usize)> = (0..workers)
            .map(|w| ((w * chunk).min(n), ((w + 1) * chunk).min(n)))
            .filter(|(lo, hi)| lo < hi)
            .collect();
        let shards: Vec<OnceLock<EffectEstimate>> =
            (0..ranges.len()).map(|_| OnceLock::new()).collect();
        sbrl_tensor::workers::run_tasks_catching(ranges.len(), workers, &|w| {
            let (lo, hi) = ranges[w];
            let rows: Vec<usize> = (lo..hi).collect();
            let est = self.predict(&x.select_rows(&rows));
            let _ = shards[w].set(est);
        })?;
        let mut y0_hat = Vec::with_capacity(n);
        let mut y1_hat = Vec::with_capacity(n);
        for shard in shards {
            // lint: allow(panic) — infallible: `run_tasks_catching` returned
            // Ok, so every shard task ran to completion and set its slot.
            let est = shard.into_inner().expect("a completed task set its shard");
            y0_hat.extend(est.y0_hat);
            y1_hat.extend(est.y1_hat);
        }
        Ok(EffectEstimate { y0_hat, y1_hat })
    }

    /// Evaluates against a dataset carrying the counterfactual oracle.
    pub fn evaluate(&self, data: &CausalDataset) -> Option<Evaluation> {
        let est = self.predict(&data.x);
        evaluate(&est, data)
    }

    /// The balanced representation `Z_r` for given covariates (used by the
    /// Fig. 5 decorrelation analysis).
    pub fn representation(&self, x: &Matrix) -> Matrix {
        let x = prep(&self.scaler, x);
        let mut g = Graph::new();
        let mut binding = Binding::new_frozen(self.model.store());
        let xc = g.constant(x);
        let n = g.value(xc).rows();
        let ctx = BatchContext::new(&vec![0.0; n]);
        let pass = self.model.forward(&mut g, &mut binding, xc, &ctx);
        g.value(pass.taps.z_r).clone()
    }

    /// The last hidden layer `Z_p` for given covariates (the layer the
    /// Independence Regularizer decorrelates). Computed with a zero
    /// treatment column, i.e. the control head's path.
    pub fn last_layer(&self, x: &Matrix) -> Matrix {
        let x = prep(&self.scaler, x);
        let mut g = Graph::new();
        let mut binding = Binding::new_frozen(self.model.store());
        let xc = g.constant(x);
        let n = g.value(xc).rows();
        let ctx = BatchContext::new(&vec![0.0; n]);
        let pass = self.model.forward(&mut g, &mut binding, xc, &ctx);
        g.value(pass.taps.z_p).clone()
    }

    /// The underlying backbone.
    pub fn model(&self) -> &B {
        &self.model
    }

    /// Mutable access to the backbone.
    pub fn model_mut(&mut self) -> &mut B {
        &mut self.model
    }

    /// The training report.
    pub fn report(&self) -> &TrainReport {
        &self.report
    }

    /// Final per-training-sample weights.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// The outcome-loss kind used at training time.
    pub fn loss_kind(&self) -> OutcomeLoss {
        self.loss_kind
    }

    /// The [`NumericsMode`] tier the global knob held while this model was
    /// fitted (provenance: `BitExact` fits reproduce the golden regressions
    /// bit for bit, `Fast` fits are tolerance-equivalent).
    pub fn numerics(&self) -> NumericsMode {
        self.numerics
    }

    /// Fault-tolerance provenance of the fit: the [`RecoveryPolicy`] it ran
    /// under, its watchdog budget, and every rollback-recovery it performed
    /// (empty for a clean fit).
    pub fn fit_report(&self) -> &FitReport {
        &self.fit_report
    }

    /// The framework that wrapped the fit (provenance).
    pub fn framework(&self) -> crate::config::Framework {
        self.framework
    }

    /// The master seed the fit ran under (provenance).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The grid cell this model belongs to — the
    /// [`ModelRegistry`](crate::persist::ModelRegistry) key, e.g.
    /// `"CFR+SBRL-HAP"`.
    pub fn method_spec(&self) -> crate::method::MethodSpec {
        crate::method::MethodSpec {
            backbone: self.model.export_config().kind(),
            framework: self.framework,
        }
    }
}

fn loss_kind_for(outcome: OutcomeKind) -> OutcomeLoss {
    match outcome {
        OutcomeKind::Binary => OutcomeLoss::BceWithLogits,
        OutcomeKind::Continuous => OutcomeLoss::Mse,
    }
}

/// Unweighted factual loss of the current model on a dataset (validation).
/// `g` is the caller's reusable tape — it is reset here, and reading the
/// scalar result out before returning keeps the tape free for the next step.
fn factual_loss(
    g: &mut Graph,
    model: &dyn Backbone,
    x: &Matrix,
    t: &[f64],
    yf: &[f64],
    loss_kind: OutcomeLoss,
) -> f64 {
    g.reset();
    let mut binding = Binding::new_frozen(model.store());
    let xc = g.constant_copied(x);
    let ctx = BatchContext::new(t);
    let pass = model.forward(g, &mut binding, xc, &ctx);
    let fac = select_by_treatment(g, &ctx, pass.y1_raw, pass.y0_raw);
    let target = g.constant_col(yf);
    let loss = loss_kind.loss(g, fac, target);
    g.give_id_buf(pass.taps.z_o);
    g.scalar(loss)
}

/// Trains `model` on `train`, early-stopping on `val`, with the SBRL /
/// SBRL-HAP weight objective given by `sbrl`.
///
/// Prefer [`crate::Estimator::builder`]; this free function survives only to
/// back the builder and the deprecated [`train`] shim.
pub(crate) fn fit_backbone<B: Backbone>(
    mut model: B,
    train: &CausalDataset,
    val: &CausalDataset,
    sbrl: &SbrlConfig,
    cfg: &TrainConfig,
) -> Result<FittedModel<B>, SbrlError> {
    sbrl.validate()?;
    cfg.validate()?;
    train.validate()?;
    val.validate()?;
    faults::fit_begin();
    let started = Instant::now();
    let loss_kind = loss_kind_for(train.outcome);
    let mut rng = rng_from_seed(cfg.seed ^ 0x5b71_7a11);

    let scaler = cfg.standardize.then(|| Scaler::fit(&train.x));
    let x_train = prep(&scaler, &train.x);
    let x_val = prep(&scaler, &val.x);

    // Outcome standardisation (continuous outcomes only, train statistics).
    let y_transform = if cfg.standardize_outcome && train.outcome == OutcomeKind::Continuous {
        let mean = train.yf.iter().sum::<f64>() / train.n() as f64;
        let var = train.yf.iter().map(|y| (y - mean) * (y - mean)).sum::<f64>() / train.n() as f64;
        (mean, var.sqrt().max(1e-8))
    } else {
        (0.0, 1.0)
    };
    let scale_y = |ys: &[f64]| -> Vec<f64> {
        ys.iter().map(|y| (y - y_transform.0) / y_transform.1).collect()
    };
    let yf_train = scale_y(&train.yf);
    let yf_val = scale_y(&val.yf);

    let n = train.n();
    let mut weights = SampleWeights::new(n, cfg.weight_lr);
    let schedule = match cfg.lr_decay {
        Some((rate, steps)) => LrSchedule::ExponentialDecay { rate, steps },
        None => LrSchedule::Constant,
    };
    let mut opt = Adam::new(model.store(), cfg.lr).with_schedule(schedule);
    let mut batches = BatchIter::new(&mut rng, n, cfg.batch_size);
    let mut stopper = EarlyStopping::new(cfg.patience);
    let rff = Rff::sample(&mut rng, sbrl.rff_functions.max(1));
    let l2_handles = model.l2_handles();

    // Step engine state, allocated once and recycled every iteration: the
    // reusable tape (with its buffer pool), the parameter bindings, the
    // batch context/target scratch and the regularizer scratch. A warmed-up
    // iteration performs no heap allocation.
    let mut tape = Graph::new();
    let mut net_binding = Binding::new(model.store());
    let mut frozen_binding = Binding::new_frozen(model.store());
    let mut w_binding = weights.new_binding();
    let mut ctx = BatchContext::default();
    let mut scratch = HsicScratch::new();
    let mut tb: Vec<f64> = Vec::with_capacity(batches.batch_size());
    let mut yb: Vec<f64> = Vec::with_capacity(batches.batch_size());

    let mut best_snapshot = model.store().snapshot();
    let mut best_val = f64::INFINITY;
    let mut best_iter = 0usize;
    let mut val_curve = Vec::new();
    let mut iterations_run = 0usize;

    // Recovery state. The weight-store checkpoint is maintained only when
    // rollback is enabled — the default policy pays nothing on this path.
    let mut lr_now = cfg.lr;
    let mut clip_now = Adam::DEFAULT_CLIP_NORM;
    let mut recoveries: Vec<RecoveryEvent> = Vec::new();
    let mut best_weights = (cfg.recovery.max_retries > 0).then(|| weights.snapshot());

    for iter in 0..cfg.iterations {
        // ---- Watchdog: fail typed (not hang) past the wall-clock budget ----
        faults::stall(iter);
        if let Some(budget) = cfg.time_budget {
            let elapsed = started.elapsed();
            if elapsed > budget {
                return Err(SbrlError::TimedOut { iteration: iter, elapsed });
            }
        }
        iterations_run = iter + 1;
        let batch = batches.next_batch(&mut rng);
        tb.clear();
        tb.extend(batch.iter().map(|&i| train.t[i]));
        yb.clear();
        yb.extend(batch.iter().map(|&i| yf_train[i]));
        ctx.rebuild(&tb);

        // ---- Phase 1: network update with weights fixed (Eq. 13) ----
        let mut diverged: Option<NonFiniteTerm> = None;
        {
            tape.reset();
            net_binding.reset(model.store());
            let g = &mut tape;
            let x = g.constant_selected_rows(&x_train, batch);
            let pass = model.train_step().forward(g, &mut net_binding, x, &ctx);
            let fac = select_by_treatment(g, &ctx, pass.y1_raw, pass.y0_raw);
            let target = g.constant_col(&yb);
            let w_node = if sbrl.weights_enabled() {
                weights.bind_const(g, batch)
            } else {
                g.constant_full(batch.len(), 1, 1.0)
            };
            let pred = loss_kind.weighted_loss(g, fac, target, w_node);
            let with_reg = g.add(pred, pass.reg_loss);
            let l2 = l2_penalty(g, model.store(), &mut net_binding, &l2_handles, cfg.l2);
            let total = g.add(with_reg, l2);
            g.give_id_buf(pass.taps.z_o);
            // Classify *which* term diverged: the factual loss itself, or
            // the regularizers/L2 stacked on a still-finite factual loss.
            let pred_val = faults::poison(NonFiniteTerm::FactualLoss, iter, g.scalar(pred));
            let total_val = if pred_val.is_finite() {
                faults::poison(NonFiniteTerm::Regularizer, iter, g.scalar(total))
            } else {
                f64::NAN
            };
            if !pred_val.is_finite() {
                diverged = Some(NonFiniteTerm::FactualLoss);
            } else if !total_val.is_finite() {
                diverged = Some(NonFiniteTerm::Regularizer);
            } else {
                g.backward(total);
                // The gradient scan runs only when its verdict can change
                // anything — rollback enabled or a fault plan armed — so
                // the default configuration pays nothing extra here.
                let check_grads = cfg.recovery.max_retries > 0 || faults::any_armed();
                let grad_bad = check_grads
                    && (faults::grad_poisoned(iter)
                        || net_binding
                            .bound()
                            .any(|(_, id)| g.grad(id).is_some_and(|m| !m.all_finite())));
                if grad_bad {
                    diverged = Some(NonFiniteTerm::Gradient);
                } else {
                    opt.step(model.store_mut(), g, &net_binding);
                }
            }
        }

        // ---- Phase 2: weight update with the network frozen (Eq. 11) ----
        if sbrl.weights_enabled() && diverged.is_none() {
            tape.reset();
            frozen_binding.reset(model.store());
            weights.reset_binding(&mut w_binding);
            let g = &mut tape;
            let x = g.constant_selected_rows(&x_train, batch);
            let pass = model.train_step().forward(g, &mut frozen_binding, x, &ctx);
            let w = weights.bind_trainable(g, &mut w_binding, batch);
            let r_w = weights.r_w(g, w);
            let terms =
                weight_objective(g, sbrl, &pass.taps, &ctx, w, r_w, &rff, &mut rng, &mut scratch);
            g.give_id_buf(pass.taps.z_o);
            let lw_val =
                faults::poison(NonFiniteTerm::WeightObjective, iter, g.scalar(terms.total));
            if !lw_val.is_finite() {
                diverged = Some(NonFiniteTerm::WeightObjective);
            } else {
                g.backward(terms.total);
                weights.step(g, &w_binding);
            }
        }

        // ---- Rollback recovery: restore the last best-validated checkpoint,
        // back off, reseed the shuffle, resume (docs/ROBUSTNESS.md) ----
        if let Some(term) = diverged {
            if recoveries.len() >= cfg.recovery.max_retries {
                return Err(SbrlError::NonFiniteLoss { iteration: iter, term });
            }
            let retry = recoveries.len() + 1;
            model.store_mut().restore(&best_snapshot);
            if let Some(bw) = &best_weights {
                weights.restore(bw);
            }
            lr_now *= cfg.recovery.lr_backoff;
            clip_now *= cfg.recovery.grad_clip_escalation;
            // Fresh optimisers on purpose: stale Adam moment estimates are
            // frequently what diverged in the first place.
            opt = Adam::new(model.store(), lr_now)
                .with_schedule(schedule)
                .with_clip_norm(Some(clip_now));
            weights.reset_optimizer(cfg.weight_lr, LrSchedule::Constant);
            rng = rng_from_seed(
                cfg.seed ^ 0x5b71_7a11 ^ RECOVERY_SEED_SALT.wrapping_mul(retry as u64),
            );
            batches = BatchIter::new(&mut rng, n, cfg.batch_size);
            recoveries.push(RecoveryEvent {
                iteration: iter,
                term,
                retry,
                rolled_back_to: best_iter,
                lr: lr_now,
                clip_norm: clip_now,
            });
            continue;
        }

        // ---- Validation / early stopping ----
        if iter % cfg.eval_every == 0 || iter + 1 == cfg.iterations {
            let vl = factual_loss(&mut tape, &model, &x_val, &val.t, &yf_val, loss_kind);
            val_curve.push((iter, vl));
            if vl.is_finite() && vl < best_val {
                best_val = vl;
                best_iter = iter;
                best_snapshot = model.store().snapshot();
                if let Some(bw) = &mut best_weights {
                    *bw = weights.snapshot();
                }
            }
            if stopper.update(iter, vl) {
                break;
            }
        }
    }

    model.store_mut().restore(&best_snapshot);
    let report = TrainReport {
        iterations_run,
        best_val_loss: best_val,
        best_iteration: best_iter,
        train_seconds: started.elapsed().as_secs_f64(),
        weight_stats: weights.stats(),
        val_curve,
    };
    Ok(FittedModel {
        model,
        scaler,
        loss_kind,
        y_transform,
        weights: weights.values(),
        report,
        numerics: NumericsMode::global(),
        fit_report: FitReport { recoveries, policy: cfg.recovery, time_budget: cfg.time_budget },
        framework: sbrl.framework(),
        seed: cfg.seed,
    })
}

/// Trains a prebuilt backbone with the positional argument list of the 0.1
/// API. Deprecated shim kept for one release: migrate to the fluent builder,
///
/// ```no_run
/// # use sbrl_core::{Estimator, Framework, TrainConfig};
/// # use sbrl_models::CfrConfig;
/// # let (train_data, val_data) = unimplemented!();
/// let fitted = Estimator::builder()
///     .backbone(CfrConfig::small(10))
///     .framework(Framework::SbrlHap)
///     .train(TrainConfig::default())
///     .fit(&train_data, &val_data)?;
/// # Ok::<(), sbrl_core::SbrlError>(())
/// ```
#[deprecated(
    since = "0.2.0",
    note = "use `Estimator::builder().backbone(..).framework(..).train(..).fit(train, val)`"
)]
pub fn train<B: Backbone>(
    model: B,
    train: &CausalDataset,
    val: &CausalDataset,
    sbrl: &SbrlConfig,
    cfg: &TrainConfig,
) -> Result<FittedModel<B>, SbrlError> {
    fit_backbone(model, train, val, sbrl, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbrl_data::{DataError, SyntheticConfig, SyntheticProcess};
    use sbrl_models::{Cfr, CfrConfig, Tarnet, TarnetConfig};
    use sbrl_tensor::rng::rng_from_seed;

    fn tiny_data() -> (CausalDataset, CausalDataset) {
        let cfg = SyntheticConfig {
            m_instrument: 3,
            m_confounder: 3,
            m_adjustment: 3,
            m_unstable: 2,
            pool_factor: 4,
            threshold_pool: 1500,
        };
        let proc = SyntheticProcess::new(cfg, 42);
        let train = proc.generate(2.5, 300, 0);
        let val = proc.generate(2.5, 120, 1);
        (train, val)
    }

    #[test]
    fn vanilla_training_improves_validation_loss() {
        let (train, val) = tiny_data();
        let mut rng = rng_from_seed(0);
        let model = Tarnet::new(TarnetConfig::small(train.dim()), &mut rng);
        let fitted = super::fit_backbone(
            model,
            &train,
            &val,
            &SbrlConfig::vanilla(),
            &TrainConfig { iterations: 150, ..TrainConfig::smoke() },
        )
        .unwrap();
        let curve = &fitted.report().val_curve;
        let first = curve.first().unwrap().1;
        let best = fitted.report().best_val_loss;
        assert!(best < first, "validation should improve: {first} -> {best}");
        // Vanilla framework leaves the weights untouched at 1.
        assert!(fitted.weights().iter().all(|&w| (w - 1.0).abs() < 1e-12));
    }

    #[test]
    fn sbrl_training_moves_weights_away_from_one() {
        let (train, val) = tiny_data();
        let mut rng = rng_from_seed(1);
        let model = Cfr::new(CfrConfig::small(train.dim()), &mut rng);
        let fitted = super::fit_backbone(
            model,
            &train,
            &val,
            &SbrlConfig::sbrl(1.0, 1.0),
            &TrainConfig::smoke(),
        )
        .unwrap();
        let (min, _, max) = fitted.report().weight_stats;
        assert!(max - min > 1e-4, "weights should differentiate, got [{min}, {max}]");
        assert!(min > 0.0, "weights stay positive");
    }

    #[test]
    fn hap_training_runs_and_predicts_finite_effects() {
        let (train, val) = tiny_data();
        let mut rng = rng_from_seed(2);
        let model = Cfr::new(CfrConfig::small(train.dim()), &mut rng);
        let fitted = super::fit_backbone(
            model,
            &train,
            &val,
            &SbrlConfig::sbrl_hap(1.0, 1.0, 0.1, 0.01),
            &TrainConfig::smoke(),
        )
        .unwrap();
        let est = fitted.predict(&val.x);
        assert_eq!(est.y0_hat.len(), val.n());
        assert!(est.y0_hat.iter().all(|v| v.is_finite() && (0.0..=1.0).contains(v)));
        assert!(est.y1_hat.iter().all(|v| v.is_finite() && (0.0..=1.0).contains(v)));
        let eval = fitted.evaluate(&val).expect("oracle available");
        assert!(eval.pehe.is_finite() && eval.pehe > 0.0);
    }

    #[test]
    fn trained_model_beats_untrained_on_factual_fit() {
        let (train, val) = tiny_data();
        let mut rng = rng_from_seed(3);
        let model = Tarnet::new(TarnetConfig::small(train.dim()), &mut rng);
        let untrained_model = Tarnet::new(TarnetConfig::small(train.dim()), &mut rng);
        let x_val = Scaler::fit(&train.x).transform(&val.x);
        let mut tape = Graph::new();
        let before = factual_loss(
            &mut tape,
            &untrained_model,
            &x_val,
            &val.t,
            &val.yf,
            OutcomeLoss::BceWithLogits,
        );
        let fitted = super::fit_backbone(
            model,
            &train,
            &val,
            &SbrlConfig::vanilla(),
            &TrainConfig { iterations: 200, ..TrainConfig::smoke() },
        )
        .unwrap();
        assert!(
            fitted.report().best_val_loss < before,
            "trained {} should beat untrained {}",
            fitted.report().best_val_loss,
            before
        );
    }

    #[test]
    fn invalid_data_is_rejected() {
        let (train, val) = tiny_data();
        let mut broken = train.clone();
        broken.t = vec![1.0; broken.n()]; // kill overlap
        let mut rng = rng_from_seed(4);
        let model = Tarnet::new(TarnetConfig::small(train.dim()), &mut rng);
        let err = super::fit_backbone(
            model,
            &broken,
            &val,
            &SbrlConfig::vanilla(),
            &TrainConfig::smoke(),
        );
        assert!(matches!(err, Err(SbrlError::Data(DataError::EmptyTreatmentArm { .. }))));
    }

    #[test]
    fn representation_has_expected_width() {
        let (train, val) = tiny_data();
        let mut rng = rng_from_seed(5);
        let model = Tarnet::new(TarnetConfig::small(train.dim()), &mut rng);
        let fitted = super::fit_backbone(
            model,
            &train,
            &val,
            &SbrlConfig::vanilla(),
            &TrainConfig { iterations: 30, ..TrainConfig::smoke() },
        )
        .unwrap();
        let rep = fitted.representation(&val.x);
        assert_eq!(rep.shape(), (val.n(), 32));
        assert!(rep.all_finite());
    }
}
