//! The serving wire protocol: length-framed, CRC-checked request/response
//! messages and the retrying [`ServeClient`].
//!
//! Framing follows the same discipline as [`persist`](crate::persist),
//! because the peer is just as untrusted as a file on disk:
//!
//! ```text
//! [magic 4B][version u8][kind u8][payload_len u32 LE][payload][crc32 u32 LE]
//! ```
//!
//! * the magic opens with a non-ASCII byte (`0x89`) so a stray HTTP client
//!   is rejected on byte one;
//! * `payload_len` is bounded by [`MAX_FRAME_PAYLOAD`] **before** any
//!   allocation — a corrupted length field is a typed
//!   [`WireError::FrameTooLarge`], not a multi-gigabyte `Vec`;
//! * the trailing CRC-32 (same IEEE polynomial as the `.sbrl` format) covers
//!   header and payload, so a flipped bit anywhere is a typed
//!   [`WireError::ChecksumMismatch`];
//! * every decode goes through the bounds-checked `WireReader` cursor —
//!   the reader is panic- and index-free (enforced by the `wire_reader`
//!   lint rule), so malformed bytes can produce *only* typed errors.
//!
//! `f64` payloads travel as little-endian bit patterns, so a served
//! prediction is **bit-identical** to the in-process result — the socket hop
//! adds no numeric noise.
//!
//! The [`ServeClient`] side of the contract: connect/read/write timeouts on
//! every call, an optional end-to-end deadline (`SBRL_DEADLINE_MS`), and
//! bounded retry with seeded exponential backoff + jitter. Only transient
//! failures are retried (connection resets, corrupt frames, a remote
//! [`SbrlError::WorkerPanic`]) — mirroring the sweep-runner retry policy;
//! typed application outcomes (`Overloaded`, `TimedOut`, unknown model, bad
//! shape) are returned to the caller untouched, because retrying them
//! either cannot help or would pile load onto an overloaded server.

use std::fmt;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use sbrl_metrics::EffectEstimate;
use sbrl_tensor::Matrix;

use crate::error::SbrlError;
use crate::persist::{crc32, PersistError};

/// First bytes of every frame; `0x89` keeps text protocols out on byte one.
pub const WIRE_MAGIC: [u8; 4] = [0x89, b'S', b'B', b'W'];

/// Current protocol version; bumped on any layout change.
pub const WIRE_VERSION: u8 = 1;

/// Upper bound on a frame payload (16 MiB) — checked before allocating.
pub const MAX_FRAME_PAYLOAD: usize = 1 << 24;

/// Upper bound on a request matrix dimension (rows or cols).
pub const MAX_WIRE_DIM: usize = 1 << 20;

const HEADER_LEN: usize = 10;
const CRC_LEN: usize = 4;

const KIND_PREDICT: u8 = 0x01;
const KIND_PREDICTION: u8 = 0x02;
const KIND_FAILURE: u8 = 0x03;
const KIND_HEALTH: u8 = 0x04;
const KIND_HEALTH_REPORT: u8 = 0x05;

// Failure-frame codes: a typed `SbrlError` crosses the wire as
// `[code u8][a u64][b u64][message str]` and is rebuilt on the far side.
const ERR_INTERNAL: u8 = 0;
const ERR_INVALID_REQUEST: u8 = 1;
const ERR_UNKNOWN_MODEL: u8 = 2;
const ERR_OVERLOADED: u8 = 3;
const ERR_TIMED_OUT: u8 = 4;
const ERR_WORKER_PANIC: u8 = 5;
const ERR_SERVICE_STOPPED: u8 = 6;

/// Typed failure of the wire layer: every malformed byte sequence and every
/// socket error decodes to exactly one of these — never a panic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// A socket operation failed (the originating `ErrorKind` is kept; the
    /// `std::io::Error` itself is not `Clone`/`Eq`).
    Io {
        /// Which operation failed.
        op: &'static str,
        /// The I/O error kind reported by the OS.
        kind: ErrorKind,
    },
    /// The frame did not start with [`WIRE_MAGIC`].
    BadMagic {
        /// The four bytes actually found.
        found: [u8; 4],
    },
    /// The peer speaks a different protocol version.
    UnsupportedVersion {
        /// The version byte actually found.
        found: u8,
    },
    /// The kind byte names no known message.
    UnknownKind {
        /// The kind byte actually found.
        found: u8,
    },
    /// The declared payload length exceeds [`MAX_FRAME_PAYLOAD`].
    FrameTooLarge {
        /// The declared payload length.
        len: usize,
        /// The enforced maximum.
        max: usize,
    },
    /// The frame or a field inside it ended early.
    Truncated {
        /// What was being read.
        what: &'static str,
        /// Bytes needed.
        needed: usize,
        /// Bytes available.
        available: usize,
    },
    /// The trailing CRC-32 does not match the received bytes.
    ChecksumMismatch {
        /// CRC stored in the frame.
        stored: u32,
        /// CRC computed over the received bytes.
        computed: u32,
    },
    /// The bytes parse as a frame but the payload violates the layout.
    Malformed {
        /// Human-readable description of the violation.
        what: String,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Io { op, kind } => write!(f, "socket {op} failed: {kind}"),
            WireError::BadMagic { found } => {
                write!(f, "bad frame magic {found:02x?} (not an sbrl wire frame)")
            }
            WireError::UnsupportedVersion { found } => {
                write!(f, "unsupported wire version {found} (this build speaks {WIRE_VERSION})")
            }
            WireError::UnknownKind { found } => write!(f, "unknown message kind 0x{found:02x}"),
            WireError::FrameTooLarge { len, max } => {
                write!(f, "declared payload of {len} bytes exceeds the {max}-byte frame limit")
            }
            WireError::Truncated { what, needed, available } => {
                write!(f, "truncated {what}: needed {needed} bytes, got {available}")
            }
            WireError::ChecksumMismatch { stored, computed } => {
                write!(f, "frame checksum mismatch: stored {stored:08x}, computed {computed:08x}")
            }
            WireError::Malformed { what } => write!(f, "malformed frame: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

fn malformed(what: impl Into<String>) -> WireError {
    WireError::Malformed { what: what.into() }
}

fn io_fail(op: &'static str, e: &std::io::Error) -> WireError {
    WireError::Io { op, kind: e.kind() }
}

/// Messages of the protocol. `Predict`/`Health` flow client → server;
/// the rest flow back.
#[derive(Debug)]
pub enum Message {
    /// Request: predict effects for `x` with the named model.
    Predict {
        /// Registry name of the model to serve from.
        model: String,
        /// Covariate rows to predict for.
        x: Matrix,
    },
    /// Response: the per-row potential-outcome estimates.
    Prediction {
        /// Predicted untreated outcomes, one per request row.
        y0_hat: Vec<f64>,
        /// Predicted treated outcomes, one per request row.
        y1_hat: Vec<f64>,
    },
    /// Response: the request failed with this typed error.
    Failure(SbrlError),
    /// Request: readiness probe (empty payload).
    Health,
    /// Response to [`Message::Health`].
    HealthReport(HealthReport),
}

/// Server state returned by a health probe — enough for an orchestrator to
/// decide readiness and for a load balancer to see queue pressure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HealthReport {
    /// True when the service is accepting and answering requests.
    pub ready: bool,
    /// Requests currently queued for the batcher.
    pub queue_depth: usize,
    /// The admission limit (`queue_max`).
    pub queue_max: usize,
    /// Names of the loaded models.
    pub models: Vec<String>,
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) -> Result<(), WireError> {
    let len = u32::try_from(s.len())
        .map_err(|_| malformed(format!("string of {} bytes does not fit a u32", s.len())))?;
    put_u32(out, len);
    out.extend_from_slice(s.as_bytes());
    Ok(())
}

fn put_f64s(out: &mut Vec<u8>, xs: &[f64]) {
    out.reserve(xs.len() * 8);
    for x in xs {
        out.extend_from_slice(&x.to_le_bytes());
    }
}

fn wire_dim(n: usize, what: &'static str) -> Result<u32, WireError> {
    if n == 0 || n > MAX_WIRE_DIM {
        return Err(malformed(format!("{what} {n} outside 1..={MAX_WIRE_DIM}")));
    }
    u32::try_from(n).map_err(|_| malformed(format!("{what} {n} does not fit a u32")))
}

/// Maps a typed [`SbrlError`] onto the failure-frame quadruple. Errors the
/// codes cannot express exactly travel as [`ERR_INTERNAL`] with their
/// rendered message (the mapping is lossy only for server-internal faults a
/// client cannot act on anyway).
fn encode_failure(e: &SbrlError) -> (u8, u64, u64, String) {
    match e {
        SbrlError::InvalidConfig { what, message } => {
            (ERR_INVALID_REQUEST, 0, 0, format!("{what}: {message}"))
        }
        SbrlError::Persist(PersistError::UnknownModel { name, .. }) => {
            (ERR_UNKNOWN_MODEL, 0, 0, name.clone())
        }
        SbrlError::Overloaded { depth, limit } => {
            (ERR_OVERLOADED, *depth as u64, *limit as u64, String::new())
        }
        SbrlError::TimedOut { iteration, elapsed } => {
            let millis = u64::try_from(elapsed.as_millis()).unwrap_or(u64::MAX);
            (ERR_TIMED_OUT, *iteration as u64, millis, String::new())
        }
        SbrlError::WorkerPanic { task } => (ERR_WORKER_PANIC, *task as u64, 0, String::new()),
        SbrlError::ServiceStopped { reason } => (ERR_SERVICE_STOPPED, 0, 0, reason.clone()),
        other => (ERR_INTERNAL, 0, 0, other.to_string()),
    }
}

fn decode_failure(code: u8, a: u64, b: u64, message: String) -> SbrlError {
    let as_usize = |v: u64| usize::try_from(v).unwrap_or(usize::MAX);
    match code {
        ERR_INVALID_REQUEST => SbrlError::InvalidConfig { what: "serve.remote", message },
        ERR_UNKNOWN_MODEL => {
            SbrlError::Persist(PersistError::UnknownModel { name: message, known: Vec::new() })
        }
        ERR_OVERLOADED => SbrlError::Overloaded { depth: as_usize(a), limit: as_usize(b) },
        ERR_TIMED_OUT => {
            SbrlError::TimedOut { iteration: as_usize(a), elapsed: Duration::from_millis(b) }
        }
        ERR_WORKER_PANIC => SbrlError::WorkerPanic { task: as_usize(a) },
        ERR_SERVICE_STOPPED => SbrlError::ServiceStopped { reason: message },
        _ => SbrlError::InvalidConfig { what: "serve.remote", message },
    }
}

/// Serializes a message into one complete frame (header, payload, CRC).
pub fn encode_message(msg: &Message) -> Result<Vec<u8>, WireError> {
    let mut payload = Vec::new();
    let kind = match msg {
        Message::Predict { model, x } => {
            put_str(&mut payload, model)?;
            put_u32(&mut payload, wire_dim(x.rows(), "request rows")?);
            put_u32(&mut payload, wire_dim(x.cols(), "request cols")?);
            put_f64s(&mut payload, x.as_slice());
            KIND_PREDICT
        }
        Message::Prediction { y0_hat, y1_hat } => {
            if y0_hat.len() != y1_hat.len() {
                return Err(malformed(format!(
                    "prediction arms disagree: {} vs {} rows",
                    y0_hat.len(),
                    y1_hat.len()
                )));
            }
            let n = u32::try_from(y0_hat.len())
                .map_err(|_| malformed("prediction row count does not fit a u32"))?;
            put_u32(&mut payload, n);
            put_f64s(&mut payload, y0_hat);
            put_f64s(&mut payload, y1_hat);
            KIND_PREDICTION
        }
        Message::Failure(e) => {
            let (code, a, b, message) = encode_failure(e);
            payload.push(code);
            put_u64(&mut payload, a);
            put_u64(&mut payload, b);
            put_str(&mut payload, &message)?;
            KIND_FAILURE
        }
        Message::Health => KIND_HEALTH,
        Message::HealthReport(report) => {
            payload.push(u8::from(report.ready));
            let depth = u32::try_from(report.queue_depth).unwrap_or(u32::MAX);
            let max = u32::try_from(report.queue_max).unwrap_or(u32::MAX);
            put_u32(&mut payload, depth);
            put_u32(&mut payload, max);
            let n = u32::try_from(report.models.len())
                .map_err(|_| malformed("model count does not fit a u32"))?;
            put_u32(&mut payload, n);
            for name in &report.models {
                put_str(&mut payload, name)?;
            }
            KIND_HEALTH_REPORT
        }
    };
    if payload.len() > MAX_FRAME_PAYLOAD {
        return Err(WireError::FrameTooLarge { len: payload.len(), max: MAX_FRAME_PAYLOAD });
    }
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len() + CRC_LEN);
    out.extend_from_slice(&WIRE_MAGIC);
    out.push(WIRE_VERSION);
    out.push(kind);
    put_u32(&mut out, payload.len() as u32);
    out.extend_from_slice(&payload);
    let crc = crc32(&out);
    put_u32(&mut out, crc);
    Ok(out)
}

// ---------------------------------------------------------------------------
// Decoding: the bounds-checked cursor over untrusted bytes
// ---------------------------------------------------------------------------

/// A bounds-checked cursor over untrusted wire bytes; every read validates
/// length *before* touching data, so the decode path cannot panic and
/// cannot allocate from an unvalidated length field.
struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
    what: &'static str,
}

impl<'a> WireReader<'a> {
    fn new(buf: &'a [u8], what: &'static str) -> Self {
        WireReader { buf, pos: 0, what }
    }

    fn remaining(&self) -> usize {
        self.buf.len().saturating_sub(self.pos)
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self
            .pos
            .checked_add(n)
            .ok_or_else(|| malformed(format!("length overflow in {}", self.what)))?;
        match self.buf.get(self.pos..end) {
            Some(slice) => {
                self.pos = end;
                Ok(slice)
            }
            None => Err(WireError::Truncated {
                what: self.what,
                needed: n,
                available: self.remaining(),
            }),
        }
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        let bytes = self.take(1)?;
        bytes.first().copied().ok_or_else(|| malformed("empty take(1)"))
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        let mut a = [0u8; 4];
        a.copy_from_slice(self.take(4)?);
        Ok(u32::from_le_bytes(a))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        let mut a = [0u8; 8];
        a.copy_from_slice(self.take(8)?);
        Ok(u64::from_le_bytes(a))
    }

    /// Reads a `u32` element count and validates that `count * elem_bytes`
    /// bytes are still present — the OOM guard that turns a corrupted count
    /// into a typed [`WireError::Truncated`], never a huge allocation.
    fn count(&mut self, elem_bytes: usize) -> Result<usize, WireError> {
        let count = self.u32()? as usize;
        let needed = count
            .checked_mul(elem_bytes.max(1))
            .ok_or_else(|| malformed(format!("count {count} overflows in {}", self.what)))?;
        if needed > self.remaining() {
            return Err(WireError::Truncated {
                what: self.what,
                needed,
                available: self.remaining(),
            });
        }
        Ok(count)
    }

    fn f64s(&mut self, count: usize) -> Result<Vec<f64>, WireError> {
        let needed = count
            .checked_mul(8)
            .ok_or_else(|| malformed(format!("f64 count {count} overflows in {}", self.what)))?;
        let bytes = self.take(needed)?;
        let mut out = Vec::with_capacity(count);
        for chunk in bytes.chunks_exact(8) {
            let mut a = [0u8; 8];
            a.copy_from_slice(chunk);
            out.push(f64::from_le_bytes(a));
        }
        Ok(out)
    }

    fn string(&mut self) -> Result<String, WireError> {
        let len = self.count(1)?;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| malformed(format!("non-UTF-8 string in {}", self.what)))
    }

    /// Asserts the buffer was consumed exactly — trailing bytes mean the
    /// writer and reader disagree about the layout.
    fn finish(self) -> Result<(), WireError> {
        if self.pos != self.buf.len() {
            return Err(malformed(format!(
                "{} trailing bytes after {}",
                self.buf.len() - self.pos,
                self.what
            )));
        }
        Ok(())
    }
}

/// Parses one complete frame (as produced by [`encode_message`]) back into
/// a [`Message`], validating magic, version, length bound, and CRC.
pub fn decode_message(bytes: &[u8]) -> Result<Message, WireError> {
    let mut r = WireReader::new(bytes, "frame header");
    let magic = r.take(4)?;
    if magic != WIRE_MAGIC {
        let mut found = [0u8; 4];
        found.copy_from_slice(magic);
        return Err(WireError::BadMagic { found });
    }
    let version = r.u8()?;
    if version != WIRE_VERSION {
        return Err(WireError::UnsupportedVersion { found: version });
    }
    let kind = r.u8()?;
    let len = r.u32()? as usize;
    if len > MAX_FRAME_PAYLOAD {
        return Err(WireError::FrameTooLarge { len, max: MAX_FRAME_PAYLOAD });
    }
    let payload = r.take(len)?;
    let stored = r.u32()?;
    r.finish()?;
    let body_len = bytes.len().saturating_sub(CRC_LEN);
    let computed = crc32(bytes.get(..body_len).unwrap_or(bytes));
    if stored != computed {
        return Err(WireError::ChecksumMismatch { stored, computed });
    }
    decode_payload(kind, payload)
}

fn decode_payload(kind: u8, payload: &[u8]) -> Result<Message, WireError> {
    let mut r = WireReader::new(payload, "payload");
    let msg = match kind {
        KIND_PREDICT => {
            let model = r.string()?;
            let rows = r.u32()? as usize;
            let cols = r.u32()? as usize;
            if rows == 0 || rows > MAX_WIRE_DIM || cols == 0 || cols > MAX_WIRE_DIM {
                return Err(malformed(format!(
                    "request dims {rows}x{cols} outside 1..={MAX_WIRE_DIM}"
                )));
            }
            let n = rows
                .checked_mul(cols)
                .ok_or_else(|| malformed(format!("request dims {rows}x{cols} overflow")))?;
            let needed = n.checked_mul(8).ok_or_else(|| malformed("request bytes overflow"))?;
            if needed > r.remaining() {
                return Err(WireError::Truncated {
                    what: "payload",
                    needed,
                    available: r.remaining(),
                });
            }
            let data = r.f64s(n)?;
            Message::Predict { model, x: Matrix::from_vec(rows, cols, data) }
        }
        KIND_PREDICTION => {
            let n = r.count(16)?;
            let y0_hat = r.f64s(n)?;
            let y1_hat = r.f64s(n)?;
            Message::Prediction { y0_hat, y1_hat }
        }
        KIND_FAILURE => {
            let code = r.u8()?;
            let a = r.u64()?;
            let b = r.u64()?;
            let message = r.string()?;
            Message::Failure(decode_failure(code, a, b, message))
        }
        KIND_HEALTH => Message::Health,
        KIND_HEALTH_REPORT => {
            let ready = r.u8()? != 0;
            let queue_depth = r.u32()? as usize;
            let queue_max = r.u32()? as usize;
            let n = r.count(4)?;
            let mut models = Vec::with_capacity(n);
            for _ in 0..n {
                models.push(r.string()?);
            }
            Message::HealthReport(HealthReport { ready, queue_depth, queue_max, models })
        }
        other => return Err(WireError::UnknownKind { found: other }),
    };
    r.finish()?;
    Ok(msg)
}

// ---------------------------------------------------------------------------
// Stream I/O
// ---------------------------------------------------------------------------

fn read_exact_wire(r: &mut impl Read, buf: &mut [u8], what: &'static str) -> Result<(), WireError> {
    r.read_exact(buf).map_err(|e| {
        if e.kind() == ErrorKind::UnexpectedEof {
            WireError::Truncated { what, needed: buf.len(), available: 0 }
        } else {
            io_fail("read", &e)
        }
    })
}

/// Writes one message as a complete frame and flushes.
pub fn write_message(w: &mut impl Write, msg: &Message) -> Result<(), WireError> {
    let frame = encode_message(msg)?;
    w.write_all(&frame).map_err(|e| io_fail("write", &e))?;
    w.flush().map_err(|e| io_fail("flush", &e))
}

/// Reads one complete frame. The header is read and validated first, so a
/// hostile length field is rejected *before* the payload buffer is sized.
pub fn read_message(r: &mut impl Read) -> Result<Message, WireError> {
    let mut header = [0u8; HEADER_LEN];
    read_exact_wire(r, &mut header, "frame header")?;
    let mut hr = WireReader::new(&header, "frame header");
    let magic = hr.take(4)?;
    if magic != WIRE_MAGIC {
        let mut found = [0u8; 4];
        found.copy_from_slice(magic);
        return Err(WireError::BadMagic { found });
    }
    let version = hr.u8()?;
    if version != WIRE_VERSION {
        return Err(WireError::UnsupportedVersion { found: version });
    }
    let _kind = hr.u8()?;
    let len = hr.u32()? as usize;
    if len > MAX_FRAME_PAYLOAD {
        return Err(WireError::FrameTooLarge { len, max: MAX_FRAME_PAYLOAD });
    }
    let mut rest = vec![0u8; len + CRC_LEN];
    read_exact_wire(r, &mut rest, "frame body")?;
    let mut frame = Vec::with_capacity(HEADER_LEN + rest.len());
    frame.extend_from_slice(&header);
    frame.extend_from_slice(&rest);
    decode_message(&frame)
}

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

/// Timeout/retry knobs of a [`ServeClient`].
#[derive(Clone, Copy, Debug)]
pub struct ClientConfig {
    /// Budget for establishing the TCP connection.
    pub connect_timeout: Duration,
    /// Per-attempt read/write timeout (clamped by the remaining deadline).
    pub io_timeout: Duration,
    /// End-to-end budget per call, including retries and backoff
    /// (`SBRL_DEADLINE_MS`); `None` = no deadline.
    pub deadline: Option<Duration>,
    /// Retries after the first attempt, for transient failures only
    /// (`SBRL_RETRIES`).
    pub retries: usize,
    /// Base of the exponential backoff between retries (`SBRL_BACKOFF_MS`);
    /// attempt `k` sleeps `base * 2^k` plus seeded jitter in `[0, base/2]`.
    pub backoff_base: Duration,
    /// Seed of the jitter RNG — fixed seed + fixed failures = identical
    /// retry schedule, so chaos tests are reproducible.
    pub retry_seed: u64,
}

impl Default for ClientConfig {
    fn default() -> Self {
        Self {
            connect_timeout: Duration::from_secs(1),
            io_timeout: Duration::from_secs(2),
            deadline: None,
            retries: 2,
            backoff_base: Duration::from_millis(5),
            retry_seed: 0x5b31_c11e,
        }
    }
}

pub(crate) fn env_u64(name: &'static str) -> Result<Option<u64>, SbrlError> {
    match std::env::var(name) {
        Ok(raw) => {
            let trimmed = raw.trim();
            if trimmed.is_empty() {
                return Ok(None);
            }
            trimmed.parse::<u64>().map(Some).map_err(|_| SbrlError::InvalidConfig {
                what: "serve.env",
                message: format!("{name}='{raw}' is not an unsigned integer"),
            })
        }
        Err(_) => Ok(None),
    }
}

impl ClientConfig {
    /// Defaults overridden by `SBRL_DEADLINE_MS` (0 disables the deadline),
    /// `SBRL_RETRIES`, and `SBRL_BACKOFF_MS`. A malformed value is a typed
    /// error, not a silently ignored knob.
    pub fn from_env() -> Result<Self, SbrlError> {
        let mut cfg = Self::default();
        if let Some(ms) = env_u64("SBRL_DEADLINE_MS")? {
            cfg.deadline = (ms > 0).then(|| Duration::from_millis(ms));
        }
        if let Some(n) = env_u64("SBRL_RETRIES")? {
            cfg.retries = usize::try_from(n).unwrap_or(usize::MAX);
        }
        if let Some(ms) = env_u64("SBRL_BACKOFF_MS")? {
            cfg.backoff_base = Duration::from_millis(ms.max(1));
        }
        Ok(cfg)
    }
}

/// True for wire failures worth retrying: socket errors and corrupt frames
/// (the connection is re-established). A version mismatch or an oversized
/// request is deterministic — retrying cannot change the outcome.
fn transient_wire(e: &WireError) -> bool {
    !matches!(e, WireError::UnsupportedVersion { .. } | WireError::FrameTooLarge { .. })
}

/// True for remote application errors worth retrying. Only a worker panic
/// qualifies (the pool recovers, mirroring the sweep-retry policy);
/// `Overloaded` and `TimedOut` answers are backpressure signals that a
/// retry storm would make worse.
fn transient_remote(e: &SbrlError) -> bool {
    matches!(e, SbrlError::WorkerPanic { .. })
}

pub(crate) fn is_timeout_kind(kind: ErrorKind) -> bool {
    matches!(kind, ErrorKind::WouldBlock | ErrorKind::TimedOut)
}

/// A blocking client for the serving socket: one persistent connection,
/// re-established transparently across retries.
pub struct ServeClient {
    addr: SocketAddr,
    cfg: ClientConfig,
    conn: Option<TcpStream>,
    rng: u64,
}

impl ServeClient {
    /// Creates a client for the server at `addr`. The connection is
    /// established lazily on the first call, so a refused connect is
    /// retried like any other transient failure.
    pub fn connect(addr: SocketAddr, cfg: ClientConfig) -> Self {
        let rng = cfg.retry_seed | 1;
        Self { addr, cfg, conn: None, rng }
    }

    /// The configured knobs.
    pub fn config(&self) -> &ClientConfig {
        &self.cfg
    }

    /// Predicts effects for `x` over the socket. Returns the same typed
    /// outcomes as the in-process service, plus [`SbrlError::Wire`] for
    /// unrecoverable transport failures and [`SbrlError::TimedOut`] when
    /// the deadline expires before an answer arrives.
    pub fn predict(&mut self, model: &str, x: &Matrix) -> Result<EffectEstimate, SbrlError> {
        if x.rows() == 0 || x.rows() > MAX_WIRE_DIM || x.cols() == 0 || x.cols() > MAX_WIRE_DIM {
            return Err(SbrlError::InvalidConfig {
                what: "serve.request",
                message: format!(
                    "request matrix is {}x{}; the wire accepts 1..={MAX_WIRE_DIM} per dimension",
                    x.rows(),
                    x.cols()
                ),
            });
        }
        let request = Message::Predict { model: String::from(model), x: x.clone() };
        match self.call(&request)? {
            Message::Prediction { y0_hat, y1_hat } => Ok(EffectEstimate { y0_hat, y1_hat }),
            other => Err(unexpected_reply(&other)),
        }
    }

    /// Probes server health and queue pressure.
    pub fn health(&mut self) -> Result<HealthReport, SbrlError> {
        match self.call(&Message::Health)? {
            Message::HealthReport(report) => Ok(report),
            other => Err(unexpected_reply(&other)),
        }
    }

    /// One request/response exchange with bounded retry. Transient
    /// transport failures reconnect and retry with seeded exponential
    /// backoff; typed remote failures surface as `Err` (retried only for
    /// [`transient_remote`] cases); everything is cut off by the deadline.
    fn call(&mut self, request: &Message) -> Result<Message, SbrlError> {
        let started = Instant::now();
        let mut attempt: usize = 0;
        loop {
            let io_timeout = match self.remaining(started)? {
                Some(rem) => self.cfg.io_timeout.min(rem),
                None => self.cfg.io_timeout,
            };
            let outcome = self.attempt(request, io_timeout);
            match outcome {
                Ok(Message::Failure(e)) => {
                    if attempt < self.cfg.retries && transient_remote(&e) {
                        self.pause(started, attempt)?;
                        attempt += 1;
                        continue;
                    }
                    return Err(e);
                }
                Ok(msg) => return Ok(msg),
                Err(e) => {
                    // The stream may hold half a frame; never reuse it.
                    self.conn = None;
                    if attempt < self.cfg.retries && transient_wire(&e) {
                        self.pause(started, attempt)?;
                        attempt += 1;
                        continue;
                    }
                    if self.cfg.deadline.is_some() {
                        if let WireError::Io { kind, .. } = e {
                            if is_timeout_kind(kind) {
                                return Err(timed_out(started));
                            }
                        }
                    }
                    return Err(SbrlError::Wire(e));
                }
            }
        }
    }

    /// Remaining deadline budget; `Err(TimedOut)` once spent.
    fn remaining(&self, started: Instant) -> Result<Option<Duration>, SbrlError> {
        match self.cfg.deadline {
            None => Ok(None),
            Some(d) => match d.checked_sub(started.elapsed()) {
                Some(rem) if !rem.is_zero() => Ok(Some(rem)),
                _ => Err(timed_out(started)),
            },
        }
    }

    /// Sleeps the backoff for `attempt`, unless that would overrun the
    /// deadline (then fails fast with `TimedOut`).
    fn pause(&mut self, started: Instant, attempt: usize) -> Result<(), SbrlError> {
        let delay = self.backoff_delay(attempt);
        if let Some(d) = self.cfg.deadline {
            if started.elapsed().saturating_add(delay) >= d {
                return Err(timed_out(started));
            }
        }
        std::thread::sleep(delay);
        Ok(())
    }

    /// `base * 2^attempt` plus xorshift jitter in `[0, base/2]` — fully
    /// determined by `retry_seed`, so tests can pin the schedule.
    fn backoff_delay(&mut self, attempt: usize) -> Duration {
        let base = self.cfg.backoff_base.max(Duration::from_millis(1));
        let shift = u32::try_from(attempt.min(10)).unwrap_or(10);
        let exp = base.saturating_mul(1u32 << shift);
        self.rng ^= self.rng << 13;
        self.rng ^= self.rng >> 7;
        self.rng ^= self.rng << 17;
        let half_base_ns = (base.as_nanos() / 2).min(u128::from(u64::MAX)) as u64;
        let jitter = Duration::from_nanos(self.rng % (half_base_ns + 1));
        exp.saturating_add(jitter)
    }

    fn attempt(&mut self, request: &Message, io_timeout: Duration) -> Result<Message, WireError> {
        let io_timeout = io_timeout.max(Duration::from_millis(1));
        if self.conn.is_none() {
            let connect_budget = self.cfg.connect_timeout.min(io_timeout);
            let stream = TcpStream::connect_timeout(&self.addr, connect_budget)
                .map_err(|e| io_fail("connect", &e))?;
            let _ = stream.set_nodelay(true);
            self.conn = Some(stream);
        }
        let Some(stream) = self.conn.as_mut() else {
            return Err(WireError::Io { op: "connect", kind: ErrorKind::NotConnected });
        };
        stream
            .set_read_timeout(Some(io_timeout))
            .and_then(|()| stream.set_write_timeout(Some(io_timeout)))
            .map_err(|e| io_fail("set timeout", &e))?;
        write_message(stream, request)?;
        read_message(stream)
    }
}

fn timed_out(started: Instant) -> SbrlError {
    SbrlError::TimedOut { iteration: 0, elapsed: started.elapsed() }
}

fn unexpected_reply(msg: &Message) -> SbrlError {
    let kind = match msg {
        Message::Predict { .. } => "Predict",
        Message::Prediction { .. } => "Prediction",
        Message::Failure(_) => "Failure",
        Message::Health => "Health",
        Message::HealthReport(_) => "HealthReport",
    };
    SbrlError::Wire(malformed(format!("unexpected {kind} reply")))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(msg: &Message) -> Message {
        let frame = encode_message(msg).expect("encode");
        decode_message(&frame).expect("decode")
    }

    #[test]
    fn predict_frames_round_trip_bit_exactly() {
        let x = Matrix::from_vec(2, 3, vec![1.0, -2.5, f64::MIN_POSITIVE, 0.0, -0.0, 3.25]);
        let msg = Message::Predict { model: "CFR+SBRL-HAP".into(), x: x.clone() };
        match round_trip(&msg) {
            Message::Predict { model, x: got } => {
                assert_eq!(model, "CFR+SBRL-HAP");
                assert_eq!(got.rows(), 2);
                assert_eq!(got.cols(), 3);
                let bits = |xs: &[f64]| xs.iter().map(|v| v.to_bits()).collect::<Vec<_>>();
                assert_eq!(bits(got.as_slice()), bits(x.as_slice()));
            }
            other => panic!("wrong kind: {other:?}"),
        }
    }

    #[test]
    fn prediction_and_health_frames_round_trip() {
        let msg = Message::Prediction { y0_hat: vec![1.5, 2.5], y1_hat: vec![-1.0, 0.5] };
        match round_trip(&msg) {
            Message::Prediction { y0_hat, y1_hat } => {
                assert_eq!(y0_hat, vec![1.5, 2.5]);
                assert_eq!(y1_hat, vec![-1.0, 0.5]);
            }
            other => panic!("wrong kind: {other:?}"),
        }
        assert!(matches!(round_trip(&Message::Health), Message::Health));
        let report =
            HealthReport { ready: true, queue_depth: 3, queue_max: 64, models: vec!["a".into()] };
        match round_trip(&Message::HealthReport(report.clone())) {
            Message::HealthReport(got) => assert_eq!(got, report),
            other => panic!("wrong kind: {other:?}"),
        }
    }

    #[test]
    fn failures_round_trip_with_their_payloads() {
        let cases: Vec<SbrlError> = vec![
            SbrlError::Overloaded { depth: 9, limit: 8 },
            SbrlError::TimedOut { iteration: 0, elapsed: Duration::from_millis(250) },
            SbrlError::WorkerPanic { task: 3 },
            SbrlError::ServiceStopped { reason: "drained".into() },
            SbrlError::InvalidConfig { what: "serve.request", message: "bad shape".into() },
            SbrlError::Persist(PersistError::UnknownModel {
                name: "NOPE".into(),
                known: vec!["a".into()],
            }),
        ];
        for original in cases {
            let frame = encode_message(&Message::Failure(original)).expect("encode");
            let Message::Failure(decoded) = decode_message(&frame).expect("decode") else {
                panic!("wrong kind");
            };
            match decoded {
                SbrlError::Overloaded { depth, limit } => assert_eq!((depth, limit), (9, 8)),
                SbrlError::TimedOut { iteration, elapsed } => {
                    assert_eq!(iteration, 0);
                    assert_eq!(elapsed, Duration::from_millis(250));
                }
                SbrlError::WorkerPanic { task } => assert_eq!(task, 3),
                SbrlError::ServiceStopped { reason } => assert_eq!(reason, "drained"),
                SbrlError::InvalidConfig { what, message } => {
                    assert_eq!(what, "serve.remote");
                    assert!(message.contains("bad shape"));
                }
                SbrlError::Persist(PersistError::UnknownModel { name, .. }) => {
                    assert_eq!(name, "NOPE");
                }
                other => panic!("unexpected decode: {other:?}"),
            }
        }
    }

    #[test]
    fn header_violations_are_typed() {
        let good = encode_message(&Message::Health).expect("encode");
        assert!(matches!(decode_message(&[]), Err(WireError::Truncated { .. })));
        let mut bad_magic = good.clone();
        if let Some(b) = bad_magic.first_mut() {
            *b = 0x00;
        }
        assert!(matches!(decode_message(&bad_magic), Err(WireError::BadMagic { .. })));
        let mut bad_version = good.clone();
        if let Some(b) = bad_version.get_mut(4) {
            *b = 99;
        }
        assert!(matches!(
            decode_message(&bad_version),
            Err(WireError::UnsupportedVersion { found: 99 })
        ));
        let mut bad_kind = good.clone();
        if let Some(b) = bad_kind.get_mut(5) {
            *b = 0xEE;
        }
        // The kind byte is covered by the CRC, so flipping it alone trips
        // the checksum first; repatching the CRC exposes the kind check.
        assert!(matches!(decode_message(&bad_kind), Err(WireError::ChecksumMismatch { .. })));
        let body_len = bad_kind.len() - CRC_LEN;
        let crc = crc32(&bad_kind[..body_len]).to_le_bytes();
        bad_kind.truncate(body_len);
        bad_kind.extend_from_slice(&crc);
        assert!(matches!(decode_message(&bad_kind), Err(WireError::UnknownKind { found: 0xEE })));
        let mut truncated = good.clone();
        truncated.truncate(good.len() - 1);
        assert!(matches!(decode_message(&truncated), Err(WireError::Truncated { .. })));
    }

    #[test]
    fn oversized_lengths_are_rejected_before_allocation() {
        let mut frame = Vec::new();
        frame.extend_from_slice(&WIRE_MAGIC);
        frame.push(WIRE_VERSION);
        frame.push(KIND_PREDICT);
        frame.extend_from_slice(&(u32::MAX).to_le_bytes());
        let crc = crc32(&frame).to_le_bytes();
        frame.extend_from_slice(&crc);
        assert!(matches!(decode_message(&frame), Err(WireError::FrameTooLarge { .. })));
        // A stream reader must reject the same header without sizing a buffer.
        let mut cursor = std::io::Cursor::new(frame);
        assert!(matches!(read_message(&mut cursor), Err(WireError::FrameTooLarge { .. })));
    }

    #[test]
    fn zero_dim_predict_payloads_are_malformed() {
        let mut payload = Vec::new();
        put_str(&mut payload, "m").expect("str");
        put_u32(&mut payload, 0);
        put_u32(&mut payload, 4);
        let mut frame = Vec::new();
        frame.extend_from_slice(&WIRE_MAGIC);
        frame.push(WIRE_VERSION);
        frame.push(KIND_PREDICT);
        put_u32(&mut frame, payload.len() as u32);
        frame.extend_from_slice(&payload);
        let crc = crc32(&frame).to_le_bytes();
        frame.extend_from_slice(&crc);
        assert!(matches!(decode_message(&frame), Err(WireError::Malformed { .. })));
    }

    #[test]
    fn backoff_schedule_is_deterministic_and_grows() {
        let cfg = ClientConfig {
            backoff_base: Duration::from_millis(4),
            retry_seed: 42,
            ..ClientConfig::default()
        };
        let addr: SocketAddr = "127.0.0.1:1".parse().expect("addr");
        let mut a = ServeClient::connect(addr, cfg);
        let mut b = ServeClient::connect(addr, cfg);
        let sched_a: Vec<Duration> = (0..4).map(|k| a.backoff_delay(k)).collect();
        let sched_b: Vec<Duration> = (0..4).map(|k| b.backoff_delay(k)).collect();
        assert_eq!(sched_a, sched_b, "same seed must give the same schedule");
        for (k, pair) in sched_a.windows(2).enumerate() {
            assert!(pair[1] > pair[0], "backoff must grow at attempt {k}");
        }
        assert!(sched_a[0] >= Duration::from_millis(4));
        assert!(sched_a[0] <= Duration::from_millis(6), "jitter bounded by base/2");
    }

    #[test]
    fn client_env_knobs_parse_and_reject_garbage() {
        let cfg = ClientConfig::default();
        assert_eq!(cfg.retries, 2);
        assert!(cfg.deadline.is_none());
        // from_env is exercised without touching process env for the happy
        // path (no vars set -> defaults); the parser itself is covered via
        // env_u64's error contract.
        assert!(env_u64("SBRL_WIRE_TEST_UNSET_VAR").expect("unset is None").is_none());
    }
}
