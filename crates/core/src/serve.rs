//! A small threaded inference service over a [`ModelRegistry`].
//!
//! The life of a served prediction (see `ARCHITECTURE.md`):
//!
//! ```text
//! client thread            batcher thread             worker pool
//! ─────────────            ──────────────             ───────────
//! submit(name, x) ──mpsc──▶ collect ≤ batch_max reqs
//!   returns a                within batch_window,
//!   PendingPrediction        group by model, vstack
//! wait() blocks on           ──▶ try_predict_batched ──▶ row shards
//!   the slot's condvar      split rows back per
//!             ◀── fulfil ── request, notify slots
//! ```
//!
//! One long-lived batcher thread owns the receive side; the actual numeric
//! work still goes through the workspace's persistent worker pool via
//! [`FittedModel::try_predict_batched`](crate::FittedModel::try_predict_batched), so serving adds **zero** per-request
//! thread spawns. Because every per-row operation of the inference path is
//! row-independent, folding many requests into one batched call and
//! splitting the rows back out returns **bit-identical** results to serving
//! each request alone — batching is a pure latency/throughput trade.
//!
//! A worker panic inside a batch is contained: the batch falls back to
//! per-request prediction so each caller receives its *own* typed result
//! ([`SbrlError::WorkerPanic`] only for the poisoned request), and the
//! service keeps serving.

use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use sbrl_metrics::EffectEstimate;
use sbrl_models::Backbone;
use sbrl_tensor::Matrix;

use crate::error::SbrlError;
use crate::persist::{ModelRegistry, PersistError};

/// Knobs of the request batcher.
#[derive(Clone, Copy, Debug)]
pub struct ServeConfig {
    /// Maximum requests folded into one batched prediction call.
    pub batch_max: usize,
    /// How long the batcher waits for more requests after the first one
    /// before dispatching a partial batch.
    pub batch_window: Duration,
    /// Worker count handed to [`FittedModel::try_predict_batched`](crate::FittedModel::try_predict_batched)
    /// (`0` = the workspace-wide `SBRL_THREADS` / core-count default).
    pub workers: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self { batch_max: 64, batch_window: Duration::from_micros(200), workers: 0 }
    }
}

impl ServeConfig {
    /// Validates the batcher knobs.
    pub fn validate(&self) -> Result<(), SbrlError> {
        if self.batch_max == 0 {
            return Err(SbrlError::InvalidConfig {
                what: "serve.batch_max",
                message: "must be at least 1".into(),
            });
        }
        Ok(())
    }
}

/// One request's result slot: a mutex-guarded option plus the condvar the
/// waiting client blocks on.
#[derive(Default)]
struct Slot {
    state: Mutex<Option<Result<EffectEstimate, SbrlError>>>,
    ready: Condvar,
}

/// Poison-tolerant lock: a panicking peer must not cascade panics into
/// waiting clients — the protected state is a plain `Option` that is valid
/// in either lock outcome.
fn lock_state(slot: &Slot) -> std::sync::MutexGuard<'_, Option<Result<EffectEstimate, SbrlError>>> {
    slot.state.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn fulfil(slot: &Slot, outcome: Result<EffectEstimate, SbrlError>) {
    let mut state = lock_state(slot);
    *state = Some(outcome);
    slot.ready.notify_all();
}

/// A submitted prediction that has not been waited on yet.
pub struct PendingPrediction {
    slot: Arc<Slot>,
}

impl PendingPrediction {
    /// Blocks until the batcher fulfils this request and returns its typed
    /// outcome.
    pub fn wait(self) -> Result<EffectEstimate, SbrlError> {
        let mut state = lock_state(&self.slot);
        loop {
            if let Some(outcome) = state.take() {
                return outcome;
            }
            state = self.slot.ready.wait(state).unwrap_or_else(|poisoned| poisoned.into_inner());
        }
    }
}

struct Request {
    model_idx: usize,
    x: Matrix,
    slot: Arc<Slot>,
}

/// The threaded inference service: a registry of loaded models behind a
/// request-batching loop. See the module docs for the data flow.
pub struct InferenceService {
    registry: Arc<ModelRegistry>,
    tx: Option<Sender<Request>>,
    batcher: Option<JoinHandle<()>>,
    workers: usize,
}

impl InferenceService {
    /// Boots the service over a loaded registry. Fails fast on an empty
    /// registry or invalid batcher knobs — a serving process must never
    /// come up unable to answer anything.
    pub fn start(registry: ModelRegistry, cfg: ServeConfig) -> Result<Self, SbrlError> {
        cfg.validate()?;
        if registry.is_empty() {
            return Err(SbrlError::InvalidConfig {
                what: "serve.registry",
                message: "cannot serve an empty model registry".into(),
            });
        }
        let registry = Arc::new(registry);
        let (tx, rx) = mpsc::channel::<Request>();
        let loop_registry = Arc::clone(&registry);
        // lint: allow(spawn) — the one long-lived batcher thread of the
        // service (started once, joined on Drop); the numeric work itself
        // still runs on the persistent worker pool via try_predict_batched.
        let batcher = std::thread::spawn(move || batch_loop(&loop_registry, &rx, cfg));
        Ok(Self { registry, tx: Some(tx), batcher: Some(batcher), workers: cfg.workers })
    }

    /// The registry this service answers from.
    pub fn registry(&self) -> &ModelRegistry {
        &self.registry
    }

    /// Enqueues a prediction request for the named model, validating the
    /// covariate shape up front so a bad request fails in the caller, not
    /// the batcher.
    pub fn submit(&self, method: &str, x: Matrix) -> Result<PendingPrediction, SbrlError> {
        let model_idx = self.registry.index_of(method).ok_or_else(|| {
            SbrlError::Persist(PersistError::UnknownModel {
                name: method.to_string(),
                known: self.registry.names(),
            })
        })?;
        let expected = self
            .registry
            .model_at(model_idx)
            .map(|m| m.model().export_config().in_dim())
            .unwrap_or(0);
        if x.rows() == 0 || x.cols() != expected {
            return Err(SbrlError::InvalidConfig {
                what: "serve.request",
                message: format!(
                    "request matrix is {}x{}, model '{method}' expects at least \
                     one row of width {expected}",
                    x.rows(),
                    x.cols()
                ),
            });
        }
        let slot = Arc::new(Slot::default());
        let request = Request { model_idx, x, slot: Arc::clone(&slot) };
        match &self.tx {
            Some(tx) if tx.send(request).is_ok() => Ok(PendingPrediction { slot }),
            _ => Err(SbrlError::InvalidConfig {
                what: "serve.batcher",
                message: "the batcher thread is no longer running".into(),
            }),
        }
    }

    /// Synchronous convenience: [`submit`](Self::submit) + wait.
    pub fn predict(&self, method: &str, x: Matrix) -> Result<EffectEstimate, SbrlError> {
        self.submit(method, x)?.wait()
    }

    /// The worker count batched predictions run with (`0` = global knob).
    pub fn workers(&self) -> usize {
        self.workers
    }
}

impl Drop for InferenceService {
    fn drop(&mut self) {
        // Closing the channel ends the batcher's recv loop; joining bounds
        // shutdown and surfaces nothing (a batcher panic would already have
        // fulfilled nothing further — clients see the closed channel).
        self.tx = None;
        if let Some(handle) = self.batcher.take() {
            let _ = handle.join();
        }
    }
}

/// The batcher loop: block for one request, drain more until the window
/// closes or the batch is full, then dispatch grouped by model.
fn batch_loop(registry: &ModelRegistry, rx: &Receiver<Request>, cfg: ServeConfig) {
    while let Ok(first) = rx.recv() {
        let mut batch = vec![first];
        let deadline = Instant::now() + cfg.batch_window;
        while batch.len() < cfg.batch_max {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            match rx.recv_timeout(deadline - now) {
                Ok(request) => batch.push(request),
                Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => break,
            }
        }
        // Group by model, preserving arrival order within each group. A Vec
        // scan keeps dispatch order deterministic (and the registry is tiny).
        let mut groups: Vec<(usize, Vec<Request>)> = Vec::new();
        for request in batch {
            match groups.iter_mut().find(|(idx, _)| *idx == request.model_idx) {
                Some((_, members)) => members.push(request),
                None => groups.push((request.model_idx, vec![request])),
            }
        }
        for (model_idx, members) in groups {
            dispatch_group(registry, model_idx, members, cfg.workers);
        }
    }
}

/// Serves one model's share of a batch: stack the request rows, predict
/// once, split the rows back out. On a batch-level failure, fall back to
/// per-request prediction so each caller gets its own typed outcome.
fn dispatch_group(
    registry: &ModelRegistry,
    model_idx: usize,
    members: Vec<Request>,
    workers: usize,
) {
    let Some(model) = registry.model_at(model_idx) else {
        // Unreachable: submit validated the index. Fail every slot typed
        // rather than dropping them (a dropped slot would hang its waiter).
        for request in members {
            fulfil(
                &request.slot,
                Err(SbrlError::InvalidConfig {
                    what: "serve.batcher",
                    message: format!("model index {model_idx} vanished from the registry"),
                }),
            );
        }
        return;
    };
    if let [single] = members.as_slice() {
        let outcome = model.try_predict_batched(&single.x, workers);
        fulfil(&single.slot, outcome);
        return;
    }
    let mut stacked: Option<Matrix> = None;
    for request in &members {
        stacked = Some(match stacked {
            Some(acc) => acc.vstack(&request.x),
            None => request.x.clone(),
        });
    }
    let Some(stacked) = stacked else { return };
    match model.try_predict_batched(&stacked, workers) {
        Ok(est) => {
            let mut y0 = est.y0_hat.into_iter();
            let mut y1 = est.y1_hat.into_iter();
            for request in members {
                let rows = request.x.rows();
                let piece = EffectEstimate {
                    y0_hat: y0.by_ref().take(rows).collect(),
                    y1_hat: y1.by_ref().take(rows).collect(),
                };
                fulfil(&request.slot, Ok(piece));
            }
        }
        Err(_) => {
            // A panic inside the stacked batch names a shard, not a request.
            // Re-run each request alone so the poisoned one gets its own
            // typed WorkerPanic and its neighbours still get answers.
            for request in members {
                let outcome = model.try_predict_batched(&request.x, workers);
                fulfil(&request.slot, outcome);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Latency accounting (used by the `serve` binary's bench mode)
// ---------------------------------------------------------------------------

/// Latency/throughput digest of a load run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LatencySummary {
    /// Median request latency in nanoseconds.
    pub p50_ns: u64,
    /// 99th-percentile request latency in nanoseconds.
    pub p99_ns: u64,
    /// Mean request latency in nanoseconds.
    pub mean_ns: u64,
    /// Number of latency samples.
    pub samples: usize,
}

/// Summarises per-request latency samples (nanoseconds). Returns `None` for
/// an empty sample set.
pub fn summarize_latencies(mut samples_ns: Vec<u64>) -> Option<LatencySummary> {
    if samples_ns.is_empty() {
        return None;
    }
    samples_ns.sort_unstable();
    let n = samples_ns.len();
    let percentile = |p: usize| -> u64 {
        let idx = ((n - 1) * p) / 100;
        samples_ns.get(idx).copied().unwrap_or(0)
    };
    let sum: u128 = samples_ns.iter().map(|&v| u128::from(v)).sum();
    Some(LatencySummary {
        p50_ns: percentile(50),
        p99_ns: percentile(99),
        mean_ns: (sum / n as u128) as u64,
        samples: n,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::persist::fixture;

    fn service() -> InferenceService {
        let mut registry = ModelRegistry::new();
        registry.insert(fixture::train_golden().expect("fixture fit")).expect("insert");
        InferenceService::start(registry, ServeConfig::default()).expect("start")
    }

    #[test]
    fn served_predictions_match_direct_predictions_bitwise() {
        let svc = service();
        let name = svc.registry().names().remove(0);
        let dim = fixture::dataset().0.dim();
        let probe = fixture::probe_matrix(dim);
        let direct = svc.registry().require(&name).expect("model").predict(&probe);
        let served = svc.predict(&name, probe).expect("served");
        let bits = |xs: &[f64]| xs.iter().map(|v| v.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&direct.y0_hat), bits(&served.y0_hat));
        assert_eq!(bits(&direct.y1_hat), bits(&served.y1_hat));
    }

    #[test]
    fn unknown_model_and_bad_shapes_fail_in_submit() {
        let svc = service();
        let err = svc.predict("NOPE", Matrix::zeros(1, 3)).unwrap_err();
        assert!(matches!(err, SbrlError::Persist(PersistError::UnknownModel { .. })));
        let name = svc.registry().names().remove(0);
        let err = svc.predict(&name, Matrix::zeros(1, 3)).unwrap_err();
        assert!(matches!(err, SbrlError::InvalidConfig { what: "serve.request", .. }));
        let dim = fixture::dataset().0.dim();
        let err = svc.predict(&name, Matrix::zeros(0, dim)).unwrap_err();
        assert!(matches!(err, SbrlError::InvalidConfig { what: "serve.request", .. }));
    }

    #[test]
    fn empty_registry_is_rejected_at_startup() {
        let err = InferenceService::start(ModelRegistry::new(), ServeConfig::default());
        assert!(matches!(err, Err(SbrlError::InvalidConfig { what: "serve.registry", .. })));
        let err = InferenceService::start(
            ModelRegistry::new(),
            ServeConfig { batch_max: 0, ..ServeConfig::default() },
        );
        assert!(matches!(err, Err(SbrlError::InvalidConfig { what: "serve.batch_max", .. })));
    }

    #[test]
    fn latency_summary_orders_percentiles() {
        let samples: Vec<u64> = (1..=100).rev().collect();
        let summary = summarize_latencies(samples).expect("non-empty");
        assert_eq!(summary.samples, 100);
        assert_eq!(summary.p50_ns, 50);
        assert_eq!(summary.p99_ns, 99);
        assert!(summary.p50_ns <= summary.p99_ns);
        assert_eq!(summarize_latencies(Vec::new()), None);
    }
}
