//! A threaded inference service over a [`ModelRegistry`], with a socket
//! front-end hardened for overload and failure.
//!
//! The life of a served prediction (see `ARCHITECTURE.md`):
//!
//! ```text
//! client ──TCP──▶ handler thread        batcher thread             worker pool
//! ──────          ──────────────        ──────────────             ───────────
//! Predict frame   decode + validate
//!   (CRC-checked)  submit(name, x) ──▶ bounded admission queue
//!                   sheds Overloaded    collect ≤ batch_max reqs
//!                   at queue_max        within batch_window,
//!                  wait_deadline()      shed expired deadlines,
//!                    blocks on the      group by model, vstack
//!                    slot's condvar     ──▶ try_predict_batched ──▶ row shards
//!                              ◀─ fulfil ─ split rows back per
//! Prediction /                            request, notify slots
//!   Failure frame ◀── encode
//! ```
//!
//! One long-lived batcher thread owns the queue's receive side; the actual
//! numeric work still goes through the workspace's persistent worker pool via
//! [`FittedModel::try_predict_batched`](crate::FittedModel::try_predict_batched), so serving adds **zero** per-request
//! thread spawns beyond the per-connection handler. Because every per-row
//! operation of the inference path is row-independent, folding many requests
//! into one batched call and splitting the rows back out returns
//! **bit-identical** results to serving each request alone — batching (and
//! the socket hop, which moves `f64` bit patterns) is a pure
//! latency/throughput trade.
//!
//! **The degradation contract.** Every submitted request terminates with a
//! typed outcome — never a hang:
//!
//! * a full admission queue sheds the request with [`SbrlError::Overloaded`]
//!   *before* it queues (backpressure at the door);
//! * a request whose `SBRL_DEADLINE_MS` budget expires while queued is
//!   failed with [`SbrlError::TimedOut`], and [`PendingPrediction::wait_deadline`]
//!   bounds the caller's wait symmetrically;
//! * a batcher that panics or stops fulfils every dequeued **and** every
//!   still-queued slot with [`SbrlError::ServiceStopped`] via its
//!   drop/unwind guards — the `wait` forever-hang is structurally gone;
//! * graceful drain ([`InferenceService::drain`], [`SocketServer::shutdown`])
//!   stops admission, then fulfils or deadline-fails every queued slot
//!   within `drain_budget`, then joins all threads.

use std::collections::VecDeque;
use std::io::Write;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use sbrl_metrics::EffectEstimate;
use sbrl_models::Backbone;
use sbrl_tensor::Matrix;

use crate::error::SbrlError;
use crate::faults::{self, NetAction};
use crate::persist::{ModelRegistry, PersistError};
use crate::wire::{self, HealthReport, Message, WireError};

/// Knobs of the request batcher and admission control.
#[derive(Clone, Copy, Debug)]
pub struct ServeConfig {
    /// Maximum requests folded into one batched prediction call.
    pub batch_max: usize,
    /// How long the batcher waits for more requests after the first one
    /// before dispatching a partial batch.
    pub batch_window: Duration,
    /// Worker count handed to [`FittedModel::try_predict_batched`](crate::FittedModel::try_predict_batched)
    /// (`0` = the workspace-wide `SBRL_THREADS` / core-count default).
    pub workers: usize,
    /// Admission limit: a request arriving with this many already queued is
    /// shed with a typed [`SbrlError::Overloaded`] (`SBRL_QUEUE_MAX`).
    pub queue_max: usize,
    /// Per-request budget from submission to fulfilment
    /// (`SBRL_DEADLINE_MS`); expired requests are failed with
    /// [`SbrlError::TimedOut`], not served late. `None` = unbounded.
    pub deadline: Option<Duration>,
    /// Budget of a graceful drain: queued requests not fulfilled within it
    /// are failed with [`SbrlError::ServiceStopped`] so shutdown stays
    /// bounded.
    pub drain_budget: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            batch_max: 64,
            batch_window: Duration::from_micros(200),
            workers: 0,
            queue_max: 1024,
            deadline: None,
            drain_budget: Duration::from_secs(5),
        }
    }
}

impl ServeConfig {
    /// Validates the batcher knobs.
    pub fn validate(&self) -> Result<(), SbrlError> {
        if self.batch_max == 0 {
            return Err(SbrlError::InvalidConfig {
                what: "serve.batch_max",
                message: "must be at least 1".into(),
            });
        }
        if self.queue_max == 0 {
            return Err(SbrlError::InvalidConfig {
                what: "serve.queue_max",
                message: "must be at least 1".into(),
            });
        }
        Ok(())
    }

    /// Defaults overridden by `SBRL_DEADLINE_MS` (0 disables the deadline)
    /// and `SBRL_QUEUE_MAX`. A malformed value is a typed error, not a
    /// silently ignored knob.
    pub fn from_env() -> Result<Self, SbrlError> {
        let mut cfg = Self::default();
        if let Some(ms) = wire::env_u64("SBRL_DEADLINE_MS")? {
            cfg.deadline = (ms > 0).then(|| Duration::from_millis(ms));
        }
        if let Some(n) = wire::env_u64("SBRL_QUEUE_MAX")? {
            cfg.queue_max = usize::try_from(n).unwrap_or(usize::MAX);
        }
        cfg.validate()?;
        Ok(cfg)
    }
}

/// One request's result slot: a mutex-guarded option plus the condvar the
/// waiting client blocks on.
#[derive(Debug, Default)]
struct Slot {
    state: Mutex<Option<Result<EffectEstimate, SbrlError>>>,
    ready: Condvar,
}

/// Poison-tolerant lock: a panicking peer must not cascade panics into
/// waiting clients — the protected state is a plain `Option` that is valid
/// in either lock outcome.
fn lock_state(slot: &Slot) -> MutexGuard<'_, Option<Result<EffectEstimate, SbrlError>>> {
    slot.state.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// First write wins: the drop/unwind guards race benignly with the normal
/// fulfilment path, and a slot abandoned by a timed-out waiter must keep
/// its first (authoritative) outcome.
fn fulfil(slot: &Slot, outcome: Result<EffectEstimate, SbrlError>) {
    let mut state = lock_state(slot);
    if state.is_none() {
        *state = Some(outcome);
        slot.ready.notify_all();
    }
}

/// A submitted prediction that has not been waited on yet.
#[derive(Debug)]
pub struct PendingPrediction {
    slot: Arc<Slot>,
}

impl PendingPrediction {
    /// Blocks until the batcher fulfils this request and returns its typed
    /// outcome. This cannot hang: a batcher that stops or panics fulfils
    /// every owed slot with [`SbrlError::ServiceStopped`] on its way out.
    pub fn wait(self) -> Result<EffectEstimate, SbrlError> {
        let mut state = lock_state(&self.slot);
        loop {
            if let Some(outcome) = state.take() {
                return outcome;
            }
            state = self.slot.ready.wait(state).unwrap_or_else(|poisoned| poisoned.into_inner());
        }
    }

    /// Like [`wait`](Self::wait), but gives up with [`SbrlError::TimedOut`]
    /// once `deadline` has elapsed. The slot itself stays valid — a late
    /// fulfilment lands in a slot nobody reads, which is safe.
    pub fn wait_deadline(self, deadline: Duration) -> Result<EffectEstimate, SbrlError> {
        let started = Instant::now();
        let mut state = lock_state(&self.slot);
        loop {
            if let Some(outcome) = state.take() {
                return outcome;
            }
            let elapsed = started.elapsed();
            let Some(remaining) = deadline.checked_sub(elapsed) else {
                return Err(SbrlError::TimedOut { iteration: 0, elapsed });
            };
            if remaining.is_zero() {
                return Err(SbrlError::TimedOut { iteration: 0, elapsed });
            }
            let (guard, _timed_out) = self
                .slot
                .ready
                .wait_timeout(state, remaining)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            state = guard;
        }
    }
}

struct Request {
    model_idx: usize,
    x: Matrix,
    slot: Arc<Slot>,
    submitted: Instant,
    deadline: Option<Instant>,
}

// ---------------------------------------------------------------------------
// Bounded admission queue
// ---------------------------------------------------------------------------

struct QueueState {
    queue: VecDeque<Request>,
    closed: bool,
    drain_deadline: Option<Instant>,
}

/// The bounded admission queue between `submit` and the batcher: pushes shed
/// load with typed errors instead of growing without bound, and closing the
/// queue wakes every waiter exactly once.
struct AdmissionQueue {
    state: Mutex<QueueState>,
    ready: Condvar,
    max: usize,
}

enum Popped {
    Request(Request),
    TimedOut,
    Closed,
}

impl AdmissionQueue {
    fn new(max: usize) -> Self {
        Self {
            state: Mutex::new(QueueState {
                queue: VecDeque::new(),
                closed: false,
                drain_deadline: None,
            }),
            ready: Condvar::new(),
            max,
        }
    }

    fn lock(&self) -> MutexGuard<'_, QueueState> {
        self.state.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Admits a request, or sheds it: [`SbrlError::Overloaded`] at the
    /// depth limit, [`SbrlError::ServiceStopped`] once closed.
    fn push(&self, request: Request) -> Result<(), SbrlError> {
        let mut state = self.lock();
        if state.closed {
            return Err(SbrlError::ServiceStopped {
                reason: "the service is stopped or draining; admission is closed".into(),
            });
        }
        if state.queue.len() >= self.max {
            return Err(SbrlError::Overloaded { depth: state.queue.len(), limit: self.max });
        }
        state.queue.push_back(request);
        drop(state);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocks for the next request; `None` once the queue is closed *and*
    /// empty (drain finishes serving what was admitted).
    fn pop_blocking(&self) -> Option<Request> {
        let mut state = self.lock();
        loop {
            if let Some(request) = state.queue.pop_front() {
                return Some(request);
            }
            if state.closed {
                return None;
            }
            state = self.ready.wait(state).unwrap_or_else(|poisoned| poisoned.into_inner());
        }
    }

    /// Non-blocking-ish pop used to fill a batch window.
    fn pop_until(&self, deadline: Instant) -> Popped {
        let mut state = self.lock();
        loop {
            if let Some(request) = state.queue.pop_front() {
                return Popped::Request(request);
            }
            if state.closed {
                return Popped::Closed;
            }
            let now = Instant::now();
            if now >= deadline {
                return Popped::TimedOut;
            }
            let (guard, _timed_out) = self
                .ready
                .wait_timeout(state, deadline - now)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            state = guard;
        }
    }

    /// Closes admission; queued requests keep draining until empty. With a
    /// drain deadline, the batcher fails (rather than serves) requests once
    /// the budget is spent, bounding shutdown.
    fn close(&self, drain_deadline: Option<Instant>) {
        let mut state = self.lock();
        state.closed = true;
        state.drain_deadline = drain_deadline;
        drop(state);
        self.ready.notify_all();
    }

    /// Closes admission and takes every queued request (the batcher-death
    /// sweep: the caller owes each one a typed outcome).
    fn close_and_take(&self) -> Vec<Request> {
        let mut state = self.lock();
        state.closed = true;
        let leftovers = state.queue.drain(..).collect();
        drop(state);
        self.ready.notify_all();
        leftovers
    }

    fn depth(&self) -> usize {
        self.lock().queue.len()
    }

    fn is_closed(&self) -> bool {
        self.lock().closed
    }

    fn drain_deadline(&self) -> Option<Instant> {
        self.lock().drain_deadline
    }
}

// ---------------------------------------------------------------------------
// The service
// ---------------------------------------------------------------------------

/// The threaded inference service: a registry of loaded models behind a
/// bounded admission queue and a request-batching loop. See the module docs
/// for the data flow and the degradation contract.
pub struct InferenceService {
    registry: Arc<ModelRegistry>,
    queue: Arc<AdmissionQueue>,
    batcher: Mutex<Option<JoinHandle<()>>>,
    cfg: ServeConfig,
}

impl InferenceService {
    /// Boots the service over a loaded registry. Fails fast on an empty
    /// registry or invalid batcher knobs — a serving process must never
    /// come up unable to answer anything.
    pub fn start(registry: ModelRegistry, cfg: ServeConfig) -> Result<Self, SbrlError> {
        cfg.validate()?;
        if registry.is_empty() {
            return Err(SbrlError::InvalidConfig {
                what: "serve.registry",
                message: "cannot serve an empty model registry".into(),
            });
        }
        let registry = Arc::new(registry);
        let queue = Arc::new(AdmissionQueue::new(cfg.queue_max));
        let loop_registry = Arc::clone(&registry);
        let loop_queue = Arc::clone(&queue);
        // lint: allow(spawn) — the one long-lived batcher thread of the
        // service (started once, joined on drain/Drop); the numeric work
        // itself still runs on the persistent worker pool.
        let batcher = std::thread::spawn(move || batch_loop(&loop_registry, &loop_queue, cfg));
        Ok(Self { registry, queue, batcher: Mutex::new(Some(batcher)), cfg })
    }

    /// The registry this service answers from.
    pub fn registry(&self) -> &ModelRegistry {
        &self.registry
    }

    /// The configured knobs.
    pub fn config(&self) -> &ServeConfig {
        &self.cfg
    }

    /// Current admission-queue depth (a point-in-time backpressure signal).
    pub fn queue_depth(&self) -> usize {
        self.queue.depth()
    }

    /// The health/readiness snapshot served to orchestration probes.
    pub fn health(&self) -> HealthReport {
        HealthReport {
            ready: !self.queue.is_closed(),
            queue_depth: self.queue.depth(),
            queue_max: self.cfg.queue_max,
            models: self.registry.names(),
        }
    }

    /// Enqueues a prediction request for the named model, validating the
    /// covariate shape up front so a bad request fails in the caller, not
    /// the batcher. Sheds load with [`SbrlError::Overloaded`] at
    /// `queue_max` and refuses with [`SbrlError::ServiceStopped`] once
    /// draining.
    pub fn submit(&self, method: &str, x: Matrix) -> Result<PendingPrediction, SbrlError> {
        let model_idx = self.registry.index_of(method).ok_or_else(|| {
            SbrlError::Persist(PersistError::UnknownModel {
                name: method.to_string(),
                known: self.registry.names(),
            })
        })?;
        let expected = self
            .registry
            .model_at(model_idx)
            .map(|m| m.model().export_config().in_dim())
            .unwrap_or(0);
        if x.rows() == 0 || x.cols() != expected {
            return Err(SbrlError::InvalidConfig {
                what: "serve.request",
                message: format!(
                    "request matrix is {}x{}, model '{method}' expects at least \
                     one row of width {expected}",
                    x.rows(),
                    x.cols()
                ),
            });
        }
        let slot = Arc::new(Slot::default());
        let submitted = Instant::now();
        let request = Request {
            model_idx,
            x,
            slot: Arc::clone(&slot),
            submitted,
            deadline: self.cfg.deadline.map(|d| submitted + d),
        };
        self.queue.push(request)?;
        Ok(PendingPrediction { slot })
    }

    /// Synchronous convenience: [`submit`](Self::submit) + wait, bounded by
    /// the configured deadline when one is set.
    pub fn predict(&self, method: &str, x: Matrix) -> Result<EffectEstimate, SbrlError> {
        let pending = self.submit(method, x)?;
        match self.cfg.deadline {
            Some(deadline) => pending.wait_deadline(deadline),
            None => pending.wait(),
        }
    }

    /// The worker count batched predictions run with (`0` = global knob).
    pub fn workers(&self) -> usize {
        self.cfg.workers
    }

    /// Graceful drain: closes admission, lets the batcher fulfil queued
    /// requests until `drain_budget` is spent (the rest are failed with
    /// [`SbrlError::ServiceStopped`]), then joins the batcher. Returns the
    /// queue depth observed when the drain began. Idempotent.
    pub fn drain(&self) -> usize {
        let queued = self.queue.depth();
        self.queue.close(Some(Instant::now() + self.cfg.drain_budget));
        let handle = self.batcher.lock().unwrap_or_else(|poisoned| poisoned.into_inner()).take();
        if let Some(handle) = handle {
            let _ = handle.join();
        }
        queued
    }
}

impl Drop for InferenceService {
    fn drop(&mut self) {
        self.drain();
    }
}

// ---------------------------------------------------------------------------
// The batcher
// ---------------------------------------------------------------------------

/// Unwind guard over the whole batcher: whatever ends the loop — a clean
/// drain or a panic — every request still queued is owed a typed outcome.
struct QueueSweeper<'a> {
    queue: &'a AdmissionQueue,
}

impl Drop for QueueSweeper<'_> {
    fn drop(&mut self) {
        for request in self.queue.close_and_take() {
            fulfil(
                &request.slot,
                Err(SbrlError::ServiceStopped {
                    reason: "the batcher stopped with this request still queued".into(),
                }),
            );
        }
    }
}

/// Unwind guard over one dequeued batch: if the batcher panics between
/// dequeue and fulfilment, the waiters of this batch still get a typed
/// outcome (first write wins, so the normal path is unaffected).
struct InFlight {
    slots: Vec<Arc<Slot>>,
}

impl Drop for InFlight {
    fn drop(&mut self) {
        for slot in &self.slots {
            fulfil(
                slot,
                Err(SbrlError::ServiceStopped {
                    reason: "the batcher died while this request was in flight".into(),
                }),
            );
        }
    }
}

/// The batcher loop: block for one request, drain more until the window
/// closes or the batch is full, shed expired deadlines, then dispatch
/// grouped by model.
fn batch_loop(registry: &ModelRegistry, queue: &AdmissionQueue, cfg: ServeConfig) {
    let _sweeper = QueueSweeper { queue };
    let mut batch_index: usize = 0;
    while let Some(first) = queue.pop_blocking() {
        let mut batch = vec![first];
        let window_end = Instant::now() + cfg.batch_window;
        while batch.len() < cfg.batch_max {
            match queue.pop_until(window_end) {
                Popped::Request(request) => batch.push(request),
                Popped::TimedOut | Popped::Closed => break,
            }
        }
        let _inflight = InFlight { slots: batch.iter().map(|r| Arc::clone(&r.slot)).collect() };
        faults::batcher_panic(batch_index);
        batch_index += 1;
        // Shed before serving: a request whose deadline passed while queued
        // gets TimedOut now (serving it late helps nobody), and once the
        // drain budget is spent every remaining request is failed fast so
        // shutdown stays bounded.
        let now = Instant::now();
        let drain_spent = queue.drain_deadline().is_some_and(|dl| now >= dl);
        let mut live: Vec<Request> = Vec::with_capacity(batch.len());
        for request in batch {
            if drain_spent {
                fulfil(
                    &request.slot,
                    Err(SbrlError::ServiceStopped {
                        reason: "the drain budget was exhausted before this request was served"
                            .into(),
                    }),
                );
            } else if request.deadline.is_some_and(|dl| now >= dl) {
                fulfil(
                    &request.slot,
                    Err(SbrlError::TimedOut { iteration: 0, elapsed: request.submitted.elapsed() }),
                );
            } else {
                live.push(request);
            }
        }
        // Group by model, preserving arrival order within each group. A Vec
        // scan keeps dispatch order deterministic (and the registry is tiny).
        let mut groups: Vec<(usize, Vec<Request>)> = Vec::new();
        for request in live {
            match groups.iter_mut().find(|(idx, _)| *idx == request.model_idx) {
                Some((_, members)) => members.push(request),
                None => groups.push((request.model_idx, vec![request])),
            }
        }
        for (model_idx, members) in groups {
            dispatch_group(registry, model_idx, members, cfg.workers);
        }
    }
}

/// Serves one model's share of a batch: stack the request rows, predict
/// once, split the rows back out. On a batch-level failure, fall back to
/// per-request prediction so each caller gets its own typed outcome.
fn dispatch_group(
    registry: &ModelRegistry,
    model_idx: usize,
    members: Vec<Request>,
    workers: usize,
) {
    let Some(model) = registry.model_at(model_idx) else {
        // Unreachable: submit validated the index. Fail every slot typed
        // rather than dropping them (a dropped slot would hang its waiter).
        for request in members {
            fulfil(
                &request.slot,
                Err(SbrlError::InvalidConfig {
                    what: "serve.batcher",
                    message: format!("model index {model_idx} vanished from the registry"),
                }),
            );
        }
        return;
    };
    if let [single] = members.as_slice() {
        let outcome = model.try_predict_batched(&single.x, workers);
        fulfil(&single.slot, outcome);
        return;
    }
    let mut stacked: Option<Matrix> = None;
    for request in &members {
        stacked = Some(match stacked {
            Some(acc) => acc.vstack(&request.x),
            None => request.x.clone(),
        });
    }
    let Some(stacked) = stacked else { return };
    match model.try_predict_batched(&stacked, workers) {
        Ok(est) => {
            let mut y0 = est.y0_hat.into_iter();
            let mut y1 = est.y1_hat.into_iter();
            for request in members {
                let rows = request.x.rows();
                let piece = EffectEstimate {
                    y0_hat: y0.by_ref().take(rows).collect(),
                    y1_hat: y1.by_ref().take(rows).collect(),
                };
                fulfil(&request.slot, Ok(piece));
            }
        }
        Err(_) => {
            // A panic inside the stacked batch names a shard, not a request.
            // Re-run each request alone so the poisoned one gets its own
            // typed WorkerPanic and its neighbours still get answers.
            for request in members {
                let outcome = model.try_predict_batched(&request.x, workers);
                fulfil(&request.slot, outcome);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// The socket front-end
// ---------------------------------------------------------------------------

/// How often idle loops re-check the shutdown flag.
const POLL_TICK: Duration = Duration::from_millis(20);

/// Read/write budget once a frame has started arriving (a stalled or
/// byte-dribbling peer cannot pin a handler forever).
const HANDLER_IO: Duration = Duration::from_secs(2);

/// A TCP front-end over an [`InferenceService`]: a nonblocking accept loop
/// plus one handler thread per connection, speaking the [`wire`] protocol.
/// Dropping (or [`shutdown`](Self::shutdown)) performs a graceful drain.
pub struct SocketServer {
    service: Arc<InferenceService>,
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    handlers: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

fn lock_handlers(handlers: &Mutex<Vec<JoinHandle<()>>>) -> MutexGuard<'_, Vec<JoinHandle<()>>> {
    handlers.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn wire_io(op: &'static str, e: &std::io::Error) -> SbrlError {
    SbrlError::Wire(WireError::Io { op, kind: e.kind() })
}

impl SocketServer {
    /// Boots the service and binds the listener (use port 0 for an
    /// OS-assigned loopback port). The accept loop runs nonblocking with a
    /// poll tick so drain can interrupt it without a self-connect trick.
    pub fn bind(
        registry: ModelRegistry,
        cfg: ServeConfig,
        addr: impl ToSocketAddrs,
    ) -> Result<Self, SbrlError> {
        let service = Arc::new(InferenceService::start(registry, cfg)?);
        let listener = TcpListener::bind(addr).map_err(|e| wire_io("bind", &e))?;
        listener.set_nonblocking(true).map_err(|e| wire_io("set nonblocking", &e))?;
        let addr = listener.local_addr().map_err(|e| wire_io("local addr", &e))?;
        let stop = Arc::new(AtomicBool::new(false));
        let handlers: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let loop_service = Arc::clone(&service);
        let loop_stop = Arc::clone(&stop);
        let loop_handlers = Arc::clone(&handlers);
        // lint: allow(spawn) — the one long-lived accept thread of the
        // socket front-end (joined on shutdown/Drop).
        let accept = std::thread::spawn(move || {
            accept_loop(&listener, &loop_service, &loop_stop, &loop_handlers);
        });
        Ok(Self { service, addr, stop, accept: Some(accept), handlers })
    }

    /// The bound address (resolves port 0 to the real port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The inference service behind the socket (same process: tests compare
    /// socket answers against in-process answers through this).
    pub fn service(&self) -> &InferenceService {
        &self.service
    }

    /// Graceful drain: stop accepting, close admission, fulfil or
    /// deadline-fail every queued slot within the drain budget, join every
    /// handler and the batcher. Returns the queue depth when drain began.
    pub fn shutdown(mut self) -> usize {
        self.stop_and_join()
    }

    fn stop_and_join(&mut self) -> usize {
        self.stop.store(true, Ordering::Release);
        let queued = self.service.drain();
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
        let handles: Vec<JoinHandle<()>> = lock_handlers(&self.handlers).drain(..).collect();
        for handle in handles {
            let _ = handle.join();
        }
        queued
    }
}

impl Drop for SocketServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn accept_loop(
    listener: &TcpListener,
    service: &Arc<InferenceService>,
    stop: &Arc<AtomicBool>,
    handlers: &Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    while !stop.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let _ = stream.set_nodelay(true);
                let conn_service = Arc::clone(service);
                let conn_stop = Arc::clone(stop);
                // lint: allow(spawn) — one handler thread per accepted
                // connection; all are joined on shutdown/Drop.
                let handle = std::thread::spawn(move || {
                    handle_connection(stream, &conn_service, &conn_stop);
                });
                lock_handlers(handlers).push(handle);
            }
            Err(_) => std::thread::sleep(POLL_TICK),
        }
    }
}

/// One connection's serve loop: wait (interruptibly) for a frame, decode,
/// serve, reply. Malformed bytes get a typed `Failure` frame and the
/// connection is closed (the stream may be desynchronized after garbage).
fn handle_connection(mut stream: TcpStream, service: &InferenceService, stop: &AtomicBool) {
    loop {
        if stream.set_read_timeout(Some(POLL_TICK)).is_err() {
            return;
        }
        // Peek (not read) so an idle wait consumes nothing and the drain
        // flag is re-checked every tick.
        let mut probe = [0u8; 1];
        match stream.peek(&mut probe) {
            Ok(0) => return, // peer closed
            Ok(_) => {}
            Err(e) if wire::is_timeout_kind(e.kind()) => {
                if stop.load(Ordering::Acquire) {
                    return;
                }
                continue;
            }
            Err(_) => return,
        }
        // A frame is arriving: give the exchange a real I/O budget.
        let budget_ok = stream
            .set_read_timeout(Some(HANDLER_IO))
            .and_then(|()| stream.set_write_timeout(Some(HANDLER_IO)))
            .is_ok();
        if !budget_ok {
            return;
        }
        let (reply, keep_alive) = match wire::read_message(&mut stream) {
            Ok(Message::Predict { model, x }) => (serve_predict(service, &model, x), true),
            Ok(Message::Health) => (Message::HealthReport(service.health()), true),
            Ok(_) => (
                Message::Failure(SbrlError::Wire(WireError::Malformed {
                    what: "clients send Predict or Health frames".into(),
                })),
                false,
            ),
            Err(WireError::Io { .. }) => return,
            Err(e) => (Message::Failure(SbrlError::Wire(e)), false),
        };
        if !write_response(&mut stream, &reply) || !keep_alive {
            return;
        }
        if stop.load(Ordering::Acquire) {
            return;
        }
    }
}

/// Serves one decoded Predict frame through the admission queue, bounding
/// the wait by the configured deadline.
fn serve_predict(service: &InferenceService, model: &str, x: Matrix) -> Message {
    let submitted = Instant::now();
    let outcome = match service.submit(model, x) {
        Err(e) => Err(e),
        Ok(pending) => match service.config().deadline {
            Some(deadline) => pending.wait_deadline(deadline.saturating_sub(submitted.elapsed())),
            None => pending.wait(),
        },
    };
    match outcome {
        Ok(est) => Message::Prediction { y0_hat: est.y0_hat, y1_hat: est.y1_hat },
        Err(e) => Message::Failure(e),
    }
}

/// Writes one response frame, routed through the network fault hooks (no-ops
/// unless the `fault-inject` feature armed a `net-*` fault). Returns whether
/// the connection is still usable.
fn write_response(stream: &mut TcpStream, msg: &Message) -> bool {
    let Ok(frame) = wire::encode_message(msg) else {
        let _ = stream.shutdown(Shutdown::Both);
        return false;
    };
    match faults::net_response() {
        NetAction::None => stream.write_all(&frame).and_then(|()| stream.flush()).is_ok(),
        NetAction::Delay(millis) => {
            std::thread::sleep(Duration::from_millis(millis));
            stream.write_all(&frame).and_then(|()| stream.flush()).is_ok()
        }
        NetAction::Drop => {
            let _ = stream.shutdown(Shutdown::Both);
            false
        }
        NetAction::Truncate => {
            let half = frame.len() / 2;
            if let Some(partial) = frame.get(..half) {
                let _ = stream.write_all(partial);
                let _ = stream.flush();
            }
            let _ = stream.shutdown(Shutdown::Both);
            false
        }
        NetAction::Garbage => {
            let mut corrupted = frame;
            let mid = corrupted.len() / 2;
            if let Some(byte) = corrupted.get_mut(mid) {
                *byte ^= 0xFF;
            }
            let _ = stream.write_all(&corrupted);
            let _ = stream.flush();
            // The client will fail the CRC; close so its retry reconnects
            // onto a clean stream.
            let _ = stream.shutdown(Shutdown::Both);
            false
        }
    }
}

// ---------------------------------------------------------------------------
// Latency accounting (used by the `serve` binary's bench mode)
// ---------------------------------------------------------------------------

/// Latency/throughput digest of a load run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LatencySummary {
    /// Median request latency in nanoseconds.
    pub p50_ns: u64,
    /// 99th-percentile request latency in nanoseconds.
    pub p99_ns: u64,
    /// Mean request latency in nanoseconds.
    pub mean_ns: u64,
    /// Number of latency samples.
    pub samples: usize,
}

/// Summarises per-request latency samples (nanoseconds). Returns `None` for
/// an empty sample set.
pub fn summarize_latencies(mut samples_ns: Vec<u64>) -> Option<LatencySummary> {
    if samples_ns.is_empty() {
        return None;
    }
    samples_ns.sort_unstable();
    let n = samples_ns.len();
    let percentile = |p: usize| -> u64 {
        let idx = ((n - 1) * p) / 100;
        samples_ns.get(idx).copied().unwrap_or(0)
    };
    let sum: u128 = samples_ns.iter().map(|&v| u128::from(v)).sum();
    Some(LatencySummary {
        p50_ns: percentile(50),
        p99_ns: percentile(99),
        mean_ns: (sum / n as u128) as u64,
        samples: n,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::persist::fixture;

    fn service() -> InferenceService {
        let mut registry = ModelRegistry::new();
        registry.insert(fixture::train_golden().expect("fixture fit")).expect("insert");
        InferenceService::start(registry, ServeConfig::default()).expect("start")
    }

    fn dummy_request() -> Request {
        Request {
            model_idx: 0,
            x: Matrix::zeros(1, 1),
            slot: Arc::new(Slot::default()),
            submitted: Instant::now(),
            deadline: None,
        }
    }

    #[test]
    fn served_predictions_match_direct_predictions_bitwise() {
        let svc = service();
        let name = svc.registry().names().remove(0);
        let dim = fixture::dataset().0.dim();
        let probe = fixture::probe_matrix(dim);
        let direct = svc.registry().require(&name).expect("model").predict(&probe);
        let served = svc.predict(&name, probe).expect("served");
        let bits = |xs: &[f64]| xs.iter().map(|v| v.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&direct.y0_hat), bits(&served.y0_hat));
        assert_eq!(bits(&direct.y1_hat), bits(&served.y1_hat));
    }

    #[test]
    fn unknown_model_and_bad_shapes_fail_in_submit() {
        let svc = service();
        let err = svc.predict("NOPE", Matrix::zeros(1, 3)).unwrap_err();
        assert!(matches!(err, SbrlError::Persist(PersistError::UnknownModel { .. })));
        let name = svc.registry().names().remove(0);
        let err = svc.predict(&name, Matrix::zeros(1, 3)).unwrap_err();
        assert!(matches!(err, SbrlError::InvalidConfig { what: "serve.request", .. }));
        let dim = fixture::dataset().0.dim();
        let err = svc.predict(&name, Matrix::zeros(0, dim)).unwrap_err();
        assert!(matches!(err, SbrlError::InvalidConfig { what: "serve.request", .. }));
    }

    #[test]
    fn empty_registry_is_rejected_at_startup() {
        let err = InferenceService::start(ModelRegistry::new(), ServeConfig::default());
        assert!(matches!(err, Err(SbrlError::InvalidConfig { what: "serve.registry", .. })));
        let err = InferenceService::start(
            ModelRegistry::new(),
            ServeConfig { batch_max: 0, ..ServeConfig::default() },
        );
        assert!(matches!(err, Err(SbrlError::InvalidConfig { what: "serve.batch_max", .. })));
        let err = InferenceService::start(
            ModelRegistry::new(),
            ServeConfig { queue_max: 0, ..ServeConfig::default() },
        );
        assert!(matches!(err, Err(SbrlError::InvalidConfig { what: "serve.queue_max", .. })));
    }

    #[test]
    fn full_queue_sheds_with_typed_overloaded() {
        let queue = AdmissionQueue::new(2);
        queue.push(dummy_request()).expect("first fits");
        queue.push(dummy_request()).expect("second fits");
        let err = queue.push(dummy_request()).unwrap_err();
        assert!(matches!(err, SbrlError::Overloaded { depth: 2, limit: 2 }));
        queue.close(None);
        let err = queue.push(dummy_request()).unwrap_err();
        assert!(matches!(err, SbrlError::ServiceStopped { .. }));
    }

    #[test]
    fn wait_deadline_times_out_on_an_unfulfilled_slot() {
        let pending = PendingPrediction { slot: Arc::new(Slot::default()) };
        let started = Instant::now();
        let err = pending.wait_deadline(Duration::from_millis(20)).unwrap_err();
        assert!(matches!(err, SbrlError::TimedOut { iteration: 0, .. }));
        assert!(started.elapsed() >= Duration::from_millis(20));
    }

    #[test]
    fn fulfilment_is_first_write_wins() {
        let slot = Slot::default();
        fulfil(&slot, Err(SbrlError::WorkerPanic { task: 1 }));
        fulfil(&slot, Ok(EffectEstimate::default()));
        let outcome = lock_state(&slot).take().expect("fulfilled");
        assert!(matches!(outcome, Err(SbrlError::WorkerPanic { task: 1 })));
    }

    #[test]
    fn batcher_death_sweep_fulfils_queued_slots() {
        let queue = AdmissionQueue::new(8);
        let request = dummy_request();
        let slot = Arc::clone(&request.slot);
        queue.push(request).expect("queued");
        {
            let _sweeper = QueueSweeper { queue: &queue };
        }
        let outcome = lock_state(&slot).take().expect("swept slot must be fulfilled");
        assert!(matches!(outcome, Err(SbrlError::ServiceStopped { .. })));
        assert!(queue.is_closed());
    }

    #[test]
    fn drain_closes_admission_and_answers_queued_requests() {
        let svc = service();
        let name = svc.registry().names().remove(0);
        let dim = fixture::dataset().0.dim();
        let pending = svc.submit(&name, fixture::probe_matrix(dim)).expect("submitted");
        svc.drain();
        // The queued request was fulfilled (served or typed), never hung.
        let outcome = pending.wait_deadline(Duration::from_secs(5));
        match outcome {
            Ok(_) | Err(SbrlError::ServiceStopped { .. }) => {}
            other => panic!("drain left a bad outcome: {other:?}"),
        }
        let err = svc.submit(&name, fixture::probe_matrix(dim)).unwrap_err();
        assert!(matches!(err, SbrlError::ServiceStopped { .. }));
        let health = svc.health();
        assert!(!health.ready);
    }

    #[test]
    fn serve_config_env_knobs_validate() {
        let cfg = ServeConfig::default();
        assert_eq!(cfg.queue_max, 1024);
        assert!(cfg.deadline.is_none());
        assert!(ServeConfig { queue_max: 0, ..cfg }.validate().is_err());
    }

    #[test]
    fn latency_summary_orders_percentiles() {
        let samples: Vec<u64> = (1..=100).rev().collect();
        let summary = summarize_latencies(samples).expect("non-empty");
        assert_eq!(summary.samples, 100);
        assert_eq!(summary.p50_ns, 50);
        assert_eq!(summary.p99_ns, 99);
        assert!(summary.p50_ns <= summary.p99_ns);
        assert_eq!(summarize_latencies(Vec::new()), None);
    }
}
