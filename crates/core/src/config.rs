//! Framework configuration: which regularizers are active and with what
//! coefficients (Eq. 11).

use std::fmt;
use std::str::FromStr;

use sbrl_stats::{DecorrelationConfig, IpmKind};

use crate::error::{ParseError, SbrlError};

/// Which framework wraps the backbone (Sec. V-A's `Vanilla` / `+SBRL` /
/// `+SBRL-HAP` columns).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Framework {
    /// The backbone alone.
    Vanilla,
    /// Balancing + Independence Regularizers, last-layer decorrelation only.
    Sbrl,
    /// Full framework with the Hierarchical-Attention Paradigm.
    SbrlHap,
}

impl Framework {
    /// All frameworks, in the paper's column order.
    pub const ALL: [Framework; 3] = [Framework::Vanilla, Framework::Sbrl, Framework::SbrlHap];

    /// Table label used in results (`""`, `"+SBRL"`, `"+SBRL-HAP"`).
    pub fn suffix(self) -> &'static str {
        match self {
            Framework::Vanilla => "",
            Framework::Sbrl => "+SBRL",
            Framework::SbrlHap => "+SBRL-HAP",
        }
    }

    /// Canonical standalone name (`"Vanilla"`, `"SBRL"`, `"SBRL-HAP"`).
    pub fn name(self) -> &'static str {
        match self {
            Framework::Vanilla => "Vanilla",
            Framework::Sbrl => "SBRL",
            Framework::SbrlHap => "SBRL-HAP",
        }
    }
}

impl fmt::Display for Framework {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for Framework {
    type Err = ParseError;

    /// Case-insensitive, separator-insensitive parse; the empty string (a
    /// method name with no `+SUFFIX`) resolves to [`Framework::Vanilla`].
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let norm: String =
            s.chars().filter(|c| *c != '-' && *c != '_').collect::<String>().to_ascii_lowercase();
        match norm.as_str() {
            "" | "vanilla" => Ok(Framework::Vanilla),
            "sbrl" => Ok(Framework::Sbrl),
            "sbrlhap" => Ok(Framework::SbrlHap),
            _ => Err(ParseError::Framework { input: s.to_string() }),
        }
    }
}

/// Full configuration of the sample-weight objective `L_w` (Eq. 11):
/// `L_w = α·L_B + γ1·L_I + γ2·L_D(Z_r, w) + γ3·Σ_i L_D(Z_o^i, w) + R_w`.
///
/// The three `use_*` flags exist for the paper's Table II ablation; the
/// [`SbrlConfig::vanilla`] / [`SbrlConfig::sbrl`] / [`SbrlConfig::sbrl_hap`]
/// constructors cover the standard frameworks.
#[derive(Clone, Copy, Debug)]
pub struct SbrlConfig {
    /// Balancing Regularizer `L_B` active (weighted IPM, Eq. 4).
    pub use_br: bool,
    /// Independence Regularizer `L_I = L_D(Z_p, w)` active (Eq. 10).
    pub use_ir: bool,
    /// Hierarchical-Attention terms `L_D(Z_r, w)` and `Σ L_D(Z_o^i, w)`
    /// active.
    pub use_hap: bool,
    /// Weight `α` of the balance loss.
    pub alpha: f64,
    /// Weight `γ1` of the last-layer independence loss.
    pub gamma1: f64,
    /// Weight `γ2` of the representation-layer decorrelation.
    pub gamma2: f64,
    /// Weight `γ3` of the remaining hidden-layer decorrelation.
    pub gamma3: f64,
    /// IPM used by the Balancing Regularizer.
    pub ipm: IpmKind,
    /// HSIC-RFF options (function count is
    /// [`sbrl_stats::Rff::DEFAULT_NUM_FUNCTIONS`] unless overridden).
    pub decor: DecorrelationConfig,
    /// Number of random Fourier functions per feature (paper default: 5).
    pub rff_functions: usize,
}

impl SbrlConfig {
    /// No weight learning at all — the backbone alone.
    pub fn vanilla() -> Self {
        Self {
            use_br: false,
            use_ir: false,
            use_hap: false,
            alpha: 0.0,
            gamma1: 0.0,
            gamma2: 0.0,
            gamma3: 0.0,
            ipm: IpmKind::MmdLin,
            decor: DecorrelationConfig::default(),
            rff_functions: 5,
        }
    }

    /// `+SBRL`: Balancing + Independence Regularizers (Sec. IV-B).
    pub fn sbrl(alpha: f64, gamma1: f64) -> Self {
        Self { use_br: true, use_ir: true, alpha, gamma1, ..Self::vanilla() }
    }

    /// `+SBRL-HAP`: the full hierarchical framework (Sec. IV-C).
    pub fn sbrl_hap(alpha: f64, gamma1: f64, gamma2: f64, gamma3: f64) -> Self {
        Self {
            use_br: true,
            use_ir: true,
            use_hap: true,
            alpha,
            gamma1,
            gamma2,
            gamma3,
            ..Self::vanilla()
        }
    }

    /// Which framework the flag combination corresponds to (ablation rows
    /// map to the nearest label).
    pub fn framework(&self) -> Framework {
        match (self.use_br || self.use_ir, self.use_hap) {
            (false, false) => Framework::Vanilla,
            (_, true) => Framework::SbrlHap,
            (true, false) => Framework::Sbrl,
        }
    }

    /// Whether any weight-learning objective is active.
    pub fn weights_enabled(&self) -> bool {
        self.use_br || self.use_ir || self.use_hap
    }

    /// Builder-style IPM override.
    pub fn with_ipm(mut self, ipm: IpmKind) -> Self {
        self.ipm = ipm;
        self
    }

    /// Builder-style decorrelation override.
    pub fn with_decor(mut self, decor: DecorrelationConfig) -> Self {
        self.decor = decor;
        self
    }

    /// Validates the coefficients: every weight must be finite and
    /// non-negative, and the RFF bank non-empty.
    pub fn validate(&self) -> Result<(), SbrlError> {
        let coeffs = [
            ("sbrl.alpha", self.alpha),
            ("sbrl.gamma1", self.gamma1),
            ("sbrl.gamma2", self.gamma2),
            ("sbrl.gamma3", self.gamma3),
        ];
        for (what, v) in coeffs {
            if !v.is_finite() || v < 0.0 {
                return Err(SbrlError::InvalidConfig {
                    what,
                    message: format!("must be finite and non-negative, got {v}"),
                });
            }
        }
        if self.rff_functions == 0 {
            return Err(SbrlError::InvalidConfig {
                what: "sbrl.rff_functions",
                message: "must be at least 1".into(),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_expected_flags() {
        let v = SbrlConfig::vanilla();
        assert!(!v.weights_enabled());
        assert_eq!(v.framework(), Framework::Vanilla);

        let s = SbrlConfig::sbrl(1.0, 1.0);
        assert!(s.use_br && s.use_ir && !s.use_hap);
        assert_eq!(s.framework(), Framework::Sbrl);

        let h = SbrlConfig::sbrl_hap(1.0, 1.0, 0.1, 0.01);
        assert!(h.use_br && h.use_ir && h.use_hap);
        assert_eq!(h.framework(), Framework::SbrlHap);
        assert!(h.weights_enabled());
    }

    #[test]
    fn suffixes_match_paper_tables() {
        assert_eq!(Framework::Vanilla.suffix(), "");
        assert_eq!(Framework::Sbrl.suffix(), "+SBRL");
        assert_eq!(Framework::SbrlHap.suffix(), "+SBRL-HAP");
    }

    #[test]
    fn framework_names_round_trip() {
        for fw in Framework::ALL {
            assert_eq!(fw.name().parse::<Framework>().unwrap(), fw);
            assert_eq!(fw.to_string().parse::<Framework>().unwrap(), fw);
        }
        assert_eq!("".parse::<Framework>().unwrap(), Framework::Vanilla);
        assert_eq!("sbrl_hap".parse::<Framework>().unwrap(), Framework::SbrlHap);
        assert!("JUNK".parse::<Framework>().is_err());
    }

    #[test]
    fn validate_rejects_bad_coefficients() {
        let mut bad = SbrlConfig::sbrl(1.0, 1.0);
        bad.alpha = f64::NAN;
        assert!(bad.validate().is_err());
        let mut zero_rff = SbrlConfig::vanilla();
        zero_rff.rff_functions = 0;
        assert!(zero_rff.validate().is_err());
        assert!(SbrlConfig::sbrl_hap(1.0, 1.0, 0.1, 0.01).validate().is_ok());
    }

    #[test]
    fn ablation_rows_are_expressible() {
        // Table II: IR+HAP (no BR), BR+HAP (no IR), BR+IR (no HAP), full.
        let no_br = SbrlConfig { use_br: false, ..SbrlConfig::sbrl_hap(1.0, 1.0, 1.0, 1.0) };
        assert!(!no_br.use_br && no_br.use_ir && no_br.use_hap);
        assert!(no_br.weights_enabled());
    }
}
