//! The three regularizers of SBRL-HAP assembled into the weight objective
//! `L_w` (Eq. 11).
//!
//! * **Balancing Regularizer** `L_B` (Eq. 4): weighted IPM between treated
//!   and control rows of the balanced representation `Z_r`.
//! * **Independence Regularizer** `L_I = L_D(Z_p, w)` (Eq. 10): weighted
//!   HSIC-RFF decorrelation of the last layer.
//! * **Hierarchical-Attention Paradigm**: additional decorrelation at
//!   `Z_r` (weight `γ2`) and every other hidden layer (weight `γ3`).

use rand::rngs::StdRng;
use sbrl_models::{BatchContext, LayerTaps};
use sbrl_stats::{decorrelation_loss_graph_scratch, ipm_weighted_graph, HsicScratch, Rff};
use sbrl_tensor::{Graph, TensorId};

use crate::config::SbrlConfig;

/// Individual loss terms of `L_w`, kept separate for logging/ablation.
pub struct WeightLossTerms {
    /// `α · L_B` (zero node when BR is disabled).
    pub balance: TensorId,
    /// `γ1 · L_I` (zero node when IR is disabled).
    pub independence: TensorId,
    /// `γ2 · L_D(Z_r, w) + γ3 · Σ L_D(Z_o^i, w)` (zero when HAP disabled).
    pub hierarchy: TensorId,
    /// `R_w` anti-collapse term.
    pub anchor: TensorId,
    /// The full `L_w` (Eq. 11).
    pub total: TensorId,
}

/// Builds `L_w` over a forward pass's layer taps.
///
/// `w` must be the *trainable* batch-weight node
/// ([`crate::weights::SampleWeights::bind_trainable`]); the representations
/// should come from a frozen binding so gradients stop at the taps.
/// `scratch` is the per-fit [`HsicScratch`] shared by every decorrelation
/// term — reusing it across steps keeps the weight phase allocation-free.
#[allow(clippy::too_many_arguments)]
pub fn weight_objective(
    g: &mut Graph,
    cfg: &SbrlConfig,
    taps: &LayerTaps,
    ctx: &BatchContext,
    w: TensorId,
    r_w: TensorId,
    rff: &Rff,
    rng: &mut StdRng,
    scratch: &mut HsicScratch,
) -> WeightLossTerms {
    let mut total = r_w;

    let balance = if cfg.use_br && cfg.alpha > 0.0 {
        let b = ipm_weighted_graph(g, cfg.ipm, taps.z_r, w, &ctx.treated_idx, &ctx.control_idx);
        g.scale(b, cfg.alpha)
    } else {
        g.scalar_const(0.0)
    };
    total = g.add(total, balance);

    let independence = if cfg.use_ir && cfg.gamma1 > 0.0 {
        let d = decorrelation_loss_graph_scratch(g, taps.z_p, w, rff, &cfg.decor, rng, scratch);
        g.scale(d, cfg.gamma1)
    } else {
        g.scalar_const(0.0)
    };
    total = g.add(total, independence);

    let hierarchy = if cfg.use_hap {
        let mut h = g.scalar_const(0.0);
        if cfg.gamma2 > 0.0 {
            let d = decorrelation_loss_graph_scratch(g, taps.z_r, w, rff, &cfg.decor, rng, scratch);
            let s = g.scale(d, cfg.gamma2);
            h = g.add(h, s);
        }
        if cfg.gamma3 > 0.0 {
            for &z in &taps.z_o {
                let d = decorrelation_loss_graph_scratch(g, z, w, rff, &cfg.decor, rng, scratch);
                let s = g.scale(d, cfg.gamma3);
                h = g.add(h, s);
            }
        }
        h
    } else {
        g.scalar_const(0.0)
    };
    total = g.add(total, hierarchy);

    WeightLossTerms { balance, independence, hierarchy, anchor: r_w, total }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SbrlConfig;
    use sbrl_tensor::rng::{randn, rng_from_seed};
    use sbrl_tensor::Matrix;

    fn toy_taps(g: &mut Graph, rng: &mut StdRng, n: usize) -> LayerTaps {
        let z_o = vec![g.constant(randn(rng, n, 4)), g.constant(randn(rng, n, 4))];
        let z_r = g.constant(randn(rng, n, 6));
        let z_p = g.constant(randn(rng, n, 3));
        LayerTaps { z_o, z_r, z_p }
    }

    fn toy_ctx(n: usize) -> BatchContext {
        let t: Vec<f64> = (0..n).map(|i| (i % 2) as f64).collect();
        BatchContext::new(&t)
    }

    fn build(cfg: &SbrlConfig) -> (f64, f64, f64, f64) {
        let mut rng = rng_from_seed(0);
        let mut g = Graph::new();
        let taps = toy_taps(&mut g, &mut rng, 16);
        let ctx = toy_ctx(16);
        let w = g.param(Matrix::ones(16, 1));
        let shifted = g.add_scalar(w, -1.0);
        let sq = g.square(shifted);
        let r_w = g.mean(sq);
        let rff = Rff::sample(&mut rng, 4);
        let mut scratch = HsicScratch::new();
        let terms =
            weight_objective(&mut g, cfg, &taps, &ctx, w, r_w, &rff, &mut rng, &mut scratch);
        (
            g.scalar(terms.balance),
            g.scalar(terms.independence),
            g.scalar(terms.hierarchy),
            g.scalar(terms.total),
        )
    }

    #[test]
    fn vanilla_reduces_to_anchor_only() {
        let (b, i, h, total) = build(&SbrlConfig::vanilla());
        assert_eq!((b, i, h), (0.0, 0.0, 0.0));
        assert_eq!(total, 0.0); // w = 1 -> R_w = 0
    }

    #[test]
    fn sbrl_activates_balance_and_independence() {
        let (b, i, h, total) = build(&SbrlConfig::sbrl(1.0, 1.0));
        assert!(b > 0.0, "balance term should fire, got {b}");
        assert!(i > 0.0, "independence term should fire, got {i}");
        assert_eq!(h, 0.0);
        assert!((total - (b + i)).abs() < 1e-12);
    }

    #[test]
    fn hap_adds_hierarchy_terms() {
        let cfg = SbrlConfig::sbrl_hap(1.0, 1.0, 0.5, 0.25);
        let (b, i, h, total) = build(&cfg);
        assert!(h > 0.0, "hierarchy terms should fire, got {h}");
        assert!((total - (b + i + h)).abs() < 1e-12);
    }

    #[test]
    fn coefficients_scale_terms_linearly() {
        let lo = SbrlConfig::sbrl(0.5, 0.5);
        let hi = SbrlConfig::sbrl(1.0, 1.0);
        let (b_lo, i_lo, _, _) = build(&lo);
        let (b_hi, i_hi, _, _) = build(&hi);
        assert!((b_hi - 2.0 * b_lo).abs() < 1e-9);
        assert!((i_hi - 2.0 * i_lo).abs() < 1e-9);
    }

    #[test]
    fn gradient_reaches_weights_through_every_term() {
        let mut rng = rng_from_seed(1);
        let mut g = Graph::new();
        let taps = toy_taps(&mut g, &mut rng, 12);
        let ctx = toy_ctx(12);
        let w = g.param(Matrix::ones(12, 1));
        let shifted = g.add_scalar(w, -1.0);
        let sq = g.square(shifted);
        let r_w = g.mean(sq);
        let rff = Rff::sample(&mut rng, 4);
        let cfg = SbrlConfig::sbrl_hap(1.0, 1.0, 1.0, 1.0);
        let mut scratch = HsicScratch::new();
        let terms =
            weight_objective(&mut g, &cfg, &taps, &ctx, w, r_w, &rff, &mut rng, &mut scratch);
        g.backward(terms.total);
        let grad = g.grad(w).expect("weights must receive gradient");
        assert!(grad.norm_fro() > 0.0, "non-trivial gradient expected");
    }
}
