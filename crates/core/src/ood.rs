//! OOD-level measurement and stability/performance interpolation — the
//! extension the paper sketches as future work in its conclusion:
//!
//! > "One potential solution to find a balance between stability and
//! > performance is to incorporate a module that measures the OOD level
//! > between the target domain and the source domain. Based on the measured
//! > OOD level, it would be feasible to use interpolation [...] to boost our
//! > algorithm with conventional supervised learning."
//!
//! [`OodDetector`] scores how far a target covariate sample sits from the
//! training distribution (kernel MMD² against a reference sample, in
//! standardised space, calibrated against within-distribution resamples).
//! [`BlendedEstimator`] uses that score to interpolate between a vanilla
//! backbone (sharper in-distribution, per the paper's Table I) and an
//! SBRL-HAP model (stabler out-of-distribution).

use rand::rngs::StdRng;
use sbrl_data::Scaler;
use sbrl_metrics::EffectEstimate;
use sbrl_stats::{ipm_plain, IpmKind};
use sbrl_tensor::rng::{rng_from_seed, sample_without_replacement};
use sbrl_tensor::Matrix;

/// Configuration of the OOD detector.
#[derive(Clone, Copy, Debug)]
pub struct OodDetectorConfig {
    /// Reference subsample size kept from the training covariates.
    pub reference_size: usize,
    /// Number of within-distribution resample pairs used for calibration.
    pub calibration_rounds: usize,
    /// RBF bandwidth (non-positive = median heuristic).
    pub sigma: f64,
    /// Seed for the subsampling.
    pub seed: u64,
}

impl Default for OodDetectorConfig {
    fn default() -> Self {
        Self { reference_size: 512, calibration_rounds: 8, sigma: -1.0, seed: 0 }
    }
}

/// Measures the OOD level of target covariates relative to a training
/// sample.
///
/// The raw statistic is the RBF-kernel MMD² between a training reference
/// subsample and the target sample, computed on standardised covariates. To
/// make the score interpretable across datasets it is calibrated against
/// the MMD² fluctuations between *within-distribution* resample pairs of
/// the training data: a score around 0 means "indistinguishable from
/// training", and the score grows with the shift.
pub struct OodDetector {
    scaler: Scaler,
    reference: Matrix,
    /// Mean of the null (within-distribution) MMD² distribution.
    null_mean: f64,
    /// Standard deviation of the null distribution (floored).
    null_std: f64,
    /// Per-feature null statistics `(mean, std)` for marginal MMD² scores.
    feature_null: Vec<(f64, f64)>,
    sigma: f64,
}

impl OodDetector {
    /// Fits the detector on training covariates.
    ///
    /// # Panics
    /// Panics if `x_train` has fewer than four rows.
    #[track_caller]
    pub fn fit(x_train: &Matrix, cfg: &OodDetectorConfig) -> Self {
        assert!(x_train.rows() >= 4, "OodDetector needs at least 4 training rows");
        let mut rng: StdRng = rng_from_seed(cfg.seed ^ 0x00d0_00d0);
        let scaler = Scaler::fit(x_train);
        let z = scaler.transform(x_train);
        let n = z.rows();
        let keep = cfg.reference_size.min(n);
        let ref_idx = sample_without_replacement(&mut rng, n, keep);
        let reference = z.select_rows(&ref_idx);

        let sigma =
            if cfg.sigma > 0.0 { cfg.sigma } else { sbrl_stats::median_bandwidth(&reference) };

        // Null distributions: joint and per-feature MMD² between disjoint
        // within-train halves. The per-feature scores make the detector
        // sensitive to shifts confined to a few covariates, which joint MMD
        // over many dimensions dilutes away.
        let rounds = cfg.calibration_rounds.max(2);
        let d = z.cols();
        let mut null = Vec::with_capacity(rounds);
        let mut feature_null_samples: Vec<Vec<f64>> = vec![Vec::with_capacity(rounds); d];
        let half = (keep / 2).max(2).min(n / 2);
        for _ in 0..rounds {
            let idx = sample_without_replacement(&mut rng, n, 2 * half);
            let a = z.select_rows(&idx[..half]);
            let b = z.select_rows(&idx[half..]);
            null.push(ipm_plain(IpmKind::MmdRbf { sigma }, &a, &b));
            for (j, samples) in feature_null_samples.iter_mut().enumerate() {
                let aj = a.slice_cols(j, j + 1);
                let bj = b.slice_cols(j, j + 1);
                samples.push(ipm_plain(IpmKind::MmdRbf { sigma: 1.0 }, &aj, &bj));
            }
        }
        let stats = |vals: &[f64]| -> (f64, f64) {
            let mean = vals.iter().sum::<f64>() / vals.len() as f64;
            let var = vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / vals.len() as f64;
            (mean, var.sqrt().max(1e-9))
        };
        let (null_mean, null_std) = stats(&null);
        let feature_null = feature_null_samples.iter().map(|v| stats(v)).collect();
        Self { scaler, reference, null_mean, null_std, feature_null, sigma }
    }

    /// Raw MMD² between the (standardised) target sample and the training
    /// reference.
    pub fn raw_mmd2(&self, x_target: &Matrix) -> f64 {
        let zt = self.scaler.transform(x_target);
        ipm_plain(IpmKind::MmdRbf { sigma: self.sigma }, &self.reference, &zt)
    }

    /// Calibrated joint score: `(MMD² - null_mean) / null_std`, clamped at 0.
    pub fn joint_score(&self, x_target: &Matrix) -> f64 {
        ((self.raw_mmd2(x_target) - self.null_mean) / self.null_std).max(0.0)
    }

    /// Calibrated per-feature marginal scores (one per covariate).
    pub fn feature_scores(&self, x_target: &Matrix) -> Vec<f64> {
        let zt = self.scaler.transform(x_target);
        (0..zt.cols())
            .map(|j| {
                let rj = self.reference.slice_cols(j, j + 1);
                let tj = zt.slice_cols(j, j + 1);
                let raw = ipm_plain(IpmKind::MmdRbf { sigma: 1.0 }, &rj, &tj);
                let (mean, std) = self.feature_null[j];
                ((raw - mean) / std).max(0.0)
            })
            .collect()
    }

    /// Calibrated OOD level: the maximum of the joint score and the
    /// per-feature marginal scores. ~0 = in-distribution; grows with shift
    /// strength, and stays sensitive when only a few covariates move.
    pub fn ood_level(&self, x_target: &Matrix) -> f64 {
        let joint = self.joint_score(x_target);
        let per_feature = self.feature_scores(x_target).into_iter().fold(0.0f64, f64::max);
        joint.max(per_feature)
    }

    /// Squashes the OOD level into an interpolation coefficient in `[0, 1]`
    /// (`0` = trust the in-distribution expert, `1` = trust the stable
    /// expert). `half_point` is the OOD level mapped to 0.5.
    pub fn blend_coefficient(&self, x_target: &Matrix, half_point: f64) -> f64 {
        let level = self.ood_level(x_target);
        let hp = half_point.max(1e-9);
        level / (level + hp)
    }
}

/// Interpolates two effect estimates by an OOD-driven coefficient: the
/// vanilla model's predictions in-distribution, sliding towards the stable
/// model's as the target population drifts.
pub struct BlendedEstimator {
    detector: OodDetector,
    /// OOD level mapped to an even 50/50 blend.
    pub half_point: f64,
}

impl BlendedEstimator {
    /// Builds a blender around a fitted detector.
    pub fn new(detector: OodDetector, half_point: f64) -> Self {
        Self { detector, half_point }
    }

    /// The blend coefficient for a target sample (0 = vanilla, 1 = stable).
    pub fn coefficient(&self, x_target: &Matrix) -> f64 {
        self.detector.blend_coefficient(x_target, self.half_point)
    }

    /// Blends two estimates; `vanilla` and `stable` must be aligned with the
    /// rows of `x_target`.
    ///
    /// # Panics
    /// Panics if the estimate lengths disagree.
    #[track_caller]
    pub fn blend(
        &self,
        x_target: &Matrix,
        vanilla: &EffectEstimate,
        stable: &EffectEstimate,
    ) -> EffectEstimate {
        assert_eq!(vanilla.y0_hat.len(), stable.y0_hat.len(), "estimate lengths disagree");
        assert_eq!(vanilla.y0_hat.len(), x_target.rows(), "estimates must align with x_target");
        let c = self.coefficient(x_target);
        let mix = |a: &[f64], b: &[f64]| -> Vec<f64> {
            a.iter().zip(b).map(|(&va, &vb)| (1.0 - c) * va + c * vb).collect()
        };
        EffectEstimate {
            y0_hat: mix(&vanilla.y0_hat, &stable.y0_hat),
            y1_hat: mix(&vanilla.y1_hat, &stable.y1_hat),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbrl_tensor::rng::randn;

    fn detector_on_gaussian(seed: u64) -> (OodDetector, StdRng) {
        let mut rng = rng_from_seed(seed);
        let x = randn(&mut rng, 600, 5);
        let det = OodDetector::fit(&x, &OodDetectorConfig::default());
        (det, rng)
    }

    #[test]
    fn in_distribution_scores_near_zero() {
        let (det, mut rng) = detector_on_gaussian(0);
        let same = randn(&mut rng, 300, 5);
        let level = det.ood_level(&same);
        assert!(level < 3.0, "ID level should be small, got {level}");
    }

    #[test]
    fn shifted_targets_score_higher_and_monotonically() {
        let (det, mut rng) = detector_on_gaussian(1);
        let id = det.ood_level(&randn(&mut rng, 300, 5));
        let near = det.ood_level(&randn(&mut rng, 300, 5).add_scalar(0.5));
        let far = det.ood_level(&randn(&mut rng, 300, 5).add_scalar(2.0));
        assert!(near > id, "near shift {near} should exceed ID {id}");
        assert!(far > near, "far shift {far} should exceed near {near}");
    }

    #[test]
    fn scale_shift_is_detected_too() {
        let (det, mut rng) = detector_on_gaussian(2);
        let id = det.ood_level(&randn(&mut rng, 300, 5));
        let wide = det.ood_level(&randn(&mut rng, 300, 5).scale(3.0));
        assert!(wide > id + 1.0, "variance shift should be detected: {wide} vs {id}");
    }

    #[test]
    fn blend_coefficient_is_bounded_and_monotone() {
        let (det, mut rng) = detector_on_gaussian(3);
        let id = randn(&mut rng, 200, 5);
        let ood = randn(&mut rng, 200, 5).add_scalar(3.0);
        let c_id = det.blend_coefficient(&id, 5.0);
        let c_ood = det.blend_coefficient(&ood, 5.0);
        assert!((0.0..=1.0).contains(&c_id) && (0.0..=1.0).contains(&c_ood));
        assert!(c_ood > c_id, "blend should lean stable under shift: {c_ood} vs {c_id}");
        assert!(c_ood > 0.5, "far OOD should pass the half point, got {c_ood}");
    }

    #[test]
    fn blended_estimates_interpolate_linearly() {
        let (det, mut rng) = detector_on_gaussian(4);
        let x = randn(&mut rng, 4, 5).add_scalar(10.0); // extreme shift -> c ~ 1
        let blender = BlendedEstimator::new(det, 1.0);
        let vanilla = EffectEstimate { y0_hat: vec![0.0; 4], y1_hat: vec![0.0; 4] };
        let stable = EffectEstimate { y0_hat: vec![1.0; 4], y1_hat: vec![2.0; 4] };
        let c = blender.coefficient(&x);
        let blended = blender.blend(&x, &vanilla, &stable);
        assert!(c > 0.9, "extreme shift should saturate, got {c}");
        for i in 0..4 {
            assert!((blended.y0_hat[i] - c).abs() < 1e-12);
            assert!((blended.y1_hat[i] - 2.0 * c).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "estimate lengths disagree")]
    fn blend_rejects_mismatched_estimates() {
        let (det, mut rng) = detector_on_gaussian(5);
        let x = randn(&mut rng, 3, 5);
        let blender = BlendedEstimator::new(det, 1.0);
        let a = EffectEstimate { y0_hat: vec![0.0; 3], y1_hat: vec![0.0; 3] };
        let b = EffectEstimate { y0_hat: vec![0.0; 2], y1_hat: vec![0.0; 2] };
        let _ = blender.blend(&x, &a, &b);
    }

    #[test]
    fn detector_is_deterministic_per_seed() {
        let mut rng = rng_from_seed(6);
        let x = randn(&mut rng, 400, 3);
        let target = randn(&mut rng, 100, 3).add_scalar(1.0);
        let cfg = OodDetectorConfig::default();
        let a = OodDetector::fit(&x, &cfg).ood_level(&target);
        let b = OodDetector::fit(&x, &cfg).ood_level(&target);
        assert_eq!(a, b);
    }
}
