//! # sbrl-core
//!
//! The paper's primary contribution: **Stable Balanced Representation
//! Learning with Hierarchical-Attention Paradigm** (SBRL-HAP, ICDE 2024).
//!
//! The framework wraps any [`sbrl_models::Backbone`] with three regularizers
//! driving a set of learnable per-sample weights:
//!
//! * [`config`] — framework flags and the `{α, γ1, γ2, γ3}` coefficients of
//!   the weight objective (Eq. 11);
//! * [`weights`] — the positive sample-weight module with its `R_w` anchor;
//! * [`regularizers`] — the Balancing Regularizer (weighted IPM, Eq. 4), the
//!   Independence Regularizer (weighted HSIC-RFF, Eq. 10) and the
//!   Hierarchical-Attention terms assembled into `L_w`;
//! * [`trainer`] — the alternating optimisation of Algorithm 1 and the
//!   [`FittedModel`] inference wrapper.
//!
//! ```no_run
//! use sbrl_core::{train, SbrlConfig, TrainConfig};
//! use sbrl_data::{SyntheticConfig, SyntheticProcess};
//! use sbrl_models::{Cfr, CfrConfig};
//! use sbrl_tensor::rng::rng_from_seed;
//!
//! let process = SyntheticProcess::new(SyntheticConfig::syn_8_8_8_2(), 0);
//! let train_data = process.generate(2.5, 1000, 0);
//! let val_data = process.generate(2.5, 300, 1);
//! let mut rng = rng_from_seed(0);
//! let model = Cfr::new(CfrConfig::small(train_data.dim()), &mut rng);
//! let mut fitted = train(
//!     model,
//!     &train_data,
//!     &val_data,
//!     &SbrlConfig::sbrl_hap(1.0, 1.0, 1.0, 0.1),
//!     &TrainConfig::default(),
//! )
//! .expect("training succeeds");
//! let ood = process.generate(-3.0, 500, 2);
//! let eval = fitted.evaluate(&ood).expect("oracle available");
//! println!("OOD PEHE = {:.3}", eval.pehe);
//! ```

pub mod config;
pub mod ood;
pub mod regularizers;
pub mod trainer;
pub mod weights;

pub use config::{Framework, SbrlConfig};
pub use ood::{BlendedEstimator, OodDetector, OodDetectorConfig};
pub use regularizers::{weight_objective, WeightLossTerms};
pub use trainer::{train, FittedModel, TrainConfig, TrainError, TrainReport};
pub use weights::SampleWeights;
