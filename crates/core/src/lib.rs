//! # sbrl-core
//!
//! The paper's primary contribution: **Stable Balanced Representation
//! Learning with Hierarchical-Attention Paradigm** (SBRL-HAP, ICDE 2024).
//!
//! The framework wraps any [`sbrl_models::Backbone`] with three regularizers
//! driving a set of learnable per-sample weights:
//!
//! * [`config`] — framework flags and the `{α, γ1, γ2, γ3}` coefficients of
//!   the weight objective (Eq. 11);
//! * [`weights`] — the positive sample-weight module with its `R_w` anchor;
//! * [`regularizers`] — the Balancing Regularizer (weighted IPM, Eq. 4), the
//!   Independence Regularizer (weighted HSIC-RFF, Eq. 10) and the
//!   Hierarchical-Attention terms assembled into `L_w`;
//! * [`trainer`] — the alternating optimisation of Algorithm 1 and the
//!   [`FittedModel`] inference wrapper;
//! * [`estimator`] — the fluent [`Estimator::builder`] fit pipeline;
//! * [`method`] — the name-addressable 3 x 3 method grid;
//! * [`recovery`] — the checkpoint-rollback [`RecoveryPolicy`] and the
//!   [`FitReport`] fault-tolerance provenance carried on [`FittedModel`];
//! * [`faults`] — deterministic fault injection (`fault-inject` feature;
//!   zero overhead and no hooks when off);
//! * [`persist`] — the versioned `.sbrl` artifact format
//!   ([`FittedModel::save`]/[`FittedModel::load`]) and the method-keyed
//!   [`ModelRegistry`];
//! * [`serve`] — the request-batching [`InferenceService`] over a loaded
//!   registry (the `serve` binary's engine) and the [`SocketServer`]
//!   front-end with deadlines, backpressure, and graceful drain;
//! * [`wire`] — the length-framed, CRC-checked socket protocol and the
//!   retrying [`ServeClient`];
//! * [`error`] — the unified [`SbrlError`] type.
//!
//! ```no_run
//! use sbrl_core::{Estimator, Framework, SbrlConfig, TrainConfig};
//! use sbrl_data::{SyntheticConfig, SyntheticProcess};
//! use sbrl_models::CfrConfig;
//!
//! let process = SyntheticProcess::new(SyntheticConfig::syn_8_8_8_2(), 0);
//! let train_data = process.generate(2.5, 1000, 0);
//! let val_data = process.generate(2.5, 300, 1);
//!
//! let fitted = Estimator::builder()
//!     .backbone(CfrConfig::small(train_data.dim()))
//!     .sbrl(SbrlConfig::sbrl_hap(1.0, 1.0, 1.0, 0.1))
//!     .train(TrainConfig::default())
//!     .seed(0)
//!     .fit(&train_data, &val_data)?;
//! let ood = process.generate(-3.0, 500, 2);
//! let eval = fitted.evaluate(&ood).expect("oracle available");
//! println!("OOD PEHE = {:.3}", eval.pehe);
//!
//! // Grid cells are name-addressable, too:
//! let fitted = Estimator::builder().method("CFR+SBRL-HAP".parse()?).fit(&train_data, &val_data)?;
//! # Ok::<(), sbrl_core::SbrlError>(())
//! ```
//!
//! The positional `train()` free function of the 0.1 API survives as a
//! deprecated shim for one release; migrate to [`Estimator::builder`].

pub mod config;
pub mod error;
pub mod estimator;
pub mod faults;
pub mod method;
pub mod ood;
pub mod persist;
pub mod recovery;
pub mod regularizers;
pub mod serve;
pub mod trainer;
pub mod weights;
pub mod wire;

pub use config::{Framework, SbrlConfig};
pub use error::{NonFiniteTerm, ParseError, SbrlError};
pub use estimator::{Estimator, EstimatorBuilder};
#[cfg(feature = "fault-inject")]
pub use faults::{inject, FaultGuard, FaultPlan};
pub use method::MethodSpec;
pub use ood::{BlendedEstimator, OodDetector, OodDetectorConfig};
pub use persist::{ModelRegistry, PersistError};
pub use recovery::{FitReport, RecoveryEvent, RecoveryPolicy};
pub use regularizers::{weight_objective, WeightLossTerms};
pub use serve::{InferenceService, LatencySummary, PendingPrediction, ServeConfig, SocketServer};
#[allow(deprecated)]
pub use trainer::{train, TrainError};
pub use trainer::{FittedModel, TrainConfig, TrainReport};
pub use weights::SampleWeights;
pub use wire::{ClientConfig, HealthReport, ServeClient, WireError};
