//! The learnable sample-weight module.
//!
//! Weights must stay positive, start at `w = 1` (Algorithm 1, line 2) and be
//! pulled back towards 1 by `R_w = mean((w_i - 1)^2)` (Eq. 11). We
//! parameterise `w = softplus(raw)` with `raw` initialised at
//! `softplus^{-1}(1)`, which keeps the positivity constraint out of the
//! optimiser.

use sbrl_nn::{Adam, Binding, LrSchedule, Optimizer, ParamHandle, ParamStore};
use sbrl_tensor::{stable_softplus, Graph, Matrix, TensorId};

/// `softplus^{-1}(1) = ln(e - 1)` — the raw value at which `w = 1`.
pub fn softplus_inverse_one() -> f64 {
    (std::f64::consts::E - 1.0).ln()
}

/// Per-training-sample positive weights with their own parameter store and
/// optimiser (the alternating scheme steps them separately from the
/// network).
pub struct SampleWeights {
    store: ParamStore,
    raw: ParamHandle,
    opt: Adam,
    n: usize,
}

impl SampleWeights {
    /// Creates `n` weights initialised to exactly 1.
    pub fn new(n: usize, lr: f64) -> Self {
        let mut store = ParamStore::new();
        let raw = store.register("sample_weights.raw", Matrix::full(n, 1, softplus_inverse_one()));
        let opt = Adam::new(&store, lr);
        Self { store, raw, opt, n }
    }

    /// Creates `n` weights with a scheduled optimiser.
    pub fn with_schedule(n: usize, lr: f64, schedule: LrSchedule) -> Self {
        let mut sw = Self::new(n, lr);
        sw.opt = Adam::new(&sw.store, lr).with_schedule(schedule);
        sw
    }

    /// Number of weights (training-set size).
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when the module tracks no samples.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Current weight values `softplus(raw)` (plain).
    pub fn values(&self) -> Vec<f64> {
        self.store.get(self.raw).as_slice().iter().map(|&r| stable_softplus(r)).collect()
    }

    /// Current weights for a batch of training indices.
    pub fn batch_values(&self, batch: &[usize]) -> Vec<f64> {
        let raw = self.store.get(self.raw);
        batch.iter().map(|&i| stable_softplus(raw[(i, 0)])).collect()
    }

    /// Binds the batch weights into a graph as a *trainable* function of the
    /// raw parameters: `w_b = softplus(raw[batch])`.
    pub fn bind_trainable(
        &self,
        g: &mut Graph,
        binding: &mut Binding,
        batch: &[usize],
    ) -> TensorId {
        let raw = binding.bind(&self.store, g, self.raw);
        let gathered = g.gather_rows(raw, batch);
        g.softplus(gathered)
    }

    /// Binds the batch weights as constants (network-update phase, Eq. 13).
    /// The values are written straight into a pooled graph buffer, so the
    /// steady-state step allocates nothing here.
    pub fn bind_const(&self, g: &mut Graph, batch: &[usize]) -> TensorId {
        let mut buf = g.take_buffer(batch.len(), 1);
        let raw = self.store.get(self.raw);
        for (o, &i) in buf.as_mut_slice().iter_mut().zip(batch) {
            *o = stable_softplus(raw[(i, 0)]);
        }
        g.constant(buf)
    }

    /// The anti-collapse regulariser `R_w = mean((w - 1)^2)` (Eq. 11).
    pub fn r_w(&self, g: &mut Graph, w: TensorId) -> TensorId {
        let shifted = g.add_scalar(w, -1.0);
        let sq = g.square(shifted);
        g.mean(sq)
    }

    /// Creates a fresh binding over the weight store.
    pub fn new_binding(&self) -> Binding {
        Binding::new(&self.store)
    }

    /// Resets a binding created by [`SampleWeights::new_binding`] for reuse
    /// on the next step (no allocation).
    pub fn reset_binding(&self, binding: &mut Binding) {
        binding.reset(&self.store);
    }

    /// Applies one optimiser step from the gradients in `g` / `binding`.
    pub fn step(&mut self, g: &Graph, binding: &Binding) {
        self.opt.step(&mut self.store, g, binding);
    }

    /// Snapshot of the raw weight parameters (checkpoint-rollback support:
    /// the trainer pairs this with the backbone's `store().snapshot()`).
    pub fn snapshot(&self) -> Vec<Matrix> {
        self.store.snapshot()
    }

    /// Restores a snapshot taken with [`SampleWeights::snapshot`].
    pub fn restore(&mut self, snapshot: &[Matrix]) {
        self.store.restore(snapshot);
    }

    /// Replaces the optimiser with a fresh one (recovery resumes with clean
    /// Adam moments — stale moment estimates are often what diverged).
    pub fn reset_optimizer(&mut self, lr: f64, schedule: LrSchedule) {
        self.opt = Adam::new(&self.store, lr).with_schedule(schedule);
    }

    /// Summary statistics of the current weights (min, mean, max).
    pub fn stats(&self) -> (f64, f64, f64) {
        let v = self.values();
        if v.is_empty() {
            return (0.0, 0.0, 0.0);
        }
        let min = v.iter().copied().fold(f64::INFINITY, f64::min);
        let max = v.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let mean = v.iter().sum::<f64>() / v.len() as f64;
        (min, mean, max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weights_start_at_one() {
        let w = SampleWeights::new(10, 1e-2);
        for v in w.values() {
            assert!((v - 1.0).abs() < 1e-12, "initial weight {v}");
        }
        let (min, mean, max) = w.stats();
        assert!(
            (min - 1.0).abs() < 1e-12 && (mean - 1.0).abs() < 1e-12 && (max - 1.0).abs() < 1e-12
        );
    }

    #[test]
    fn weights_remain_positive_under_aggressive_updates() {
        let mut w = SampleWeights::new(4, 0.5);
        // Push hard toward zero: minimise mean(w).
        for _ in 0..200 {
            let mut g = Graph::new();
            let mut binding = w.new_binding();
            let wb = w.bind_trainable(&mut g, &mut binding, &[0, 1, 2, 3]);
            let loss = g.mean(wb);
            g.backward(loss);
            w.step(&g, &binding);
        }
        for v in w.values() {
            assert!(v > 0.0, "weight must remain positive, got {v}");
        }
    }

    #[test]
    fn r_w_anchors_weights_at_one() {
        let mut w = SampleWeights::new(6, 0.05);
        // Perturb away from 1 by minimising -mean(w) for a while...
        for _ in 0..50 {
            let mut g = Graph::new();
            let mut binding = w.new_binding();
            let wb = w.bind_trainable(&mut g, &mut binding, &[0, 1, 2, 3, 4, 5]);
            let m = g.mean(wb);
            let loss = g.scale(m, -1.0);
            g.backward(loss);
            w.step(&g, &binding);
        }
        let (_, drifted, _) = w.stats();
        assert!(drifted > 1.2, "weights should have drifted up, got {drifted}");
        // ...then train on R_w alone: weights return to 1.
        for _ in 0..400 {
            let mut g = Graph::new();
            let mut binding = w.new_binding();
            let wb = w.bind_trainable(&mut g, &mut binding, &[0, 1, 2, 3, 4, 5]);
            let loss = w.r_w(&mut g, wb);
            g.backward(loss);
            w.step(&g, &binding);
        }
        let (_, recovered, _) = w.stats();
        assert!((recovered - 1.0).abs() < 0.05, "R_w should pull back to 1, got {recovered}");
    }

    #[test]
    fn batch_gather_matches_full_values() {
        let w = SampleWeights::new(5, 1e-2);
        let mut g = Graph::new();
        let mut binding = w.new_binding();
        let wb = w.bind_trainable(&mut g, &mut binding, &[4, 0, 2]);
        assert_eq!(g.value(wb).shape(), (3, 1));
        let full = w.values();
        let batch = w.batch_values(&[4, 0, 2]);
        assert_eq!(batch, vec![full[4], full[0], full[2]]);
    }

    #[test]
    fn const_binding_has_no_gradient_path() {
        let w = SampleWeights::new(3, 1e-2);
        let mut g = Graph::new();
        let wb = w.bind_const(&mut g, &[0, 1, 2]);
        let loss = g.mean(wb);
        g.backward(loss);
        assert!(g.grad(wb).is_none(), "const weights must not accumulate gradients");
    }
}
