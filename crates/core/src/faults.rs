//! Deterministic fault injection for recovery testing (the `fault-inject`
//! cargo feature).
//!
//! A `FaultPlan` names exactly *which* objective term goes non-finite at
//! *which* iteration (or which pool task panics / stalls), so every
//! recovery test is reproducible bit for bit: same seed + same plan →
//! identical recovered model. Plans come from two places:
//!
//! * programmatically — `FaultPlan::parse` + `inject`, the test path
//!   (the items only exist when the feature is on);
//! * the `SBRL_FAULTS` environment variable — read once per process at the
//!   first fit, the "break a real run" path for manual experiments.
//!
//! The grammar is `kind@iteration` (or `kind@index[:millis]` for pool
//! faults), `;`- or `,`-separated:
//!
//! ```text
//! SBRL_FAULTS="nan-loss@10"            # factual loss → NaN at iteration 10
//! SBRL_FAULTS="nan-grad@5;nan-reg@20"  # two one-shot faults
//! SBRL_FAULTS="stall-iter@3:250"       # sleep 250 ms before iteration 3
//! SBRL_FAULTS="panic-task@1"           # catching-path pool task 1 panics
//! SBRL_FAULTS="stall-task@0:50"        # pool task 0 sleeps 50 ms
//! SBRL_FAULTS="batcher-panic@0"        # serving batcher panics at batch 0
//! SBRL_FAULTS="net-drop@2"             # close the conn instead of reply 2
//! SBRL_FAULTS="net-delay@1:100"        # delay server reply 1 by 100 ms
//! SBRL_FAULTS="net-trunc@0"            # send half of reply 0, then close
//! SBRL_FAULTS="net-garbage@3"          # flip a byte of reply 3 (CRC trips)
//! ```
//!
//! Network faults index the server's *response frames* in the order they
//! are written (process-global counter, reset when a plan is armed).
//!
//! Every fault is **one-shot**: it disarms as it fires, so a recovered fit
//! does not re-diverge at the same point after rollback.
//!
//! **Zero overhead when off.** Without the feature this module compiles to
//! empty `#[inline(always)]` shims — no atomics, no branches beyond what
//! the optimiser deletes, and no `SBRL_FAULTS` string in the binary (CI
//! asserts the release binaries contain no such hook).

#[cfg(feature = "fault-inject")]
pub use enabled::{inject, FaultGuard, FaultPlan};

#[cfg(not(feature = "fault-inject"))]
use crate::error::NonFiniteTerm;

/// What to do to the next server response frame. Defined unconditionally so
/// the serving write path can match on it; without `fault-inject` the hook
/// always returns [`NetAction::None`], so the other variants are
/// intentionally never constructed in default builds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[cfg_attr(not(feature = "fault-inject"), allow(dead_code))]
pub(crate) enum NetAction {
    /// Write the frame normally.
    None,
    /// Close the connection instead of writing.
    Drop,
    /// Sleep this many milliseconds, then write normally.
    Delay(u64),
    /// Write only the first half of the frame, then close.
    Truncate,
    /// Flip one mid-frame byte (the client's CRC check trips), then close.
    Garbage,
}

#[cfg(feature = "fault-inject")]
mod enabled {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};
    use std::time::Duration;

    use super::NetAction;
    use crate::error::NonFiniteTerm;

    /// Index of the next server response frame (see the module docs: net
    /// faults address response frames by write order).
    static NET_FRAME: AtomicUsize = AtomicUsize::new(0);

    /// One deterministic fault: what fires, and at which iteration / task.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub(crate) enum Fault {
        /// Poison the weighted factual loss at this iteration.
        NanLoss { iteration: usize },
        /// Poison the regularized total (factual loss stays finite).
        NanReg { iteration: usize },
        /// Poison the weight-phase objective at this iteration.
        NanWeightLoss { iteration: usize },
        /// Poison the gradient check at this iteration (loss stays finite).
        NanGrad { iteration: usize },
        /// Sleep `millis` before this iteration (trips the watchdog).
        StallIteration { iteration: usize, millis: u64 },
        /// Panic the catching-path pool task with this chunk index.
        PanicTask { index: usize },
        /// Stall the catching-path pool task with this chunk index.
        StallTask { index: usize, millis: u64 },
        /// Panic the serving batcher thread at this batch index.
        BatcherPanic { batch: usize },
        /// Close the connection instead of writing response frame `frame`.
        NetDrop { frame: usize },
        /// Delay response frame `frame` by `millis`.
        NetDelay { frame: usize, millis: u64 },
        /// Write half of response frame `frame`, then close.
        NetTrunc { frame: usize },
        /// Corrupt one byte of response frame `frame`.
        NetGarbage { frame: usize },
    }

    /// A parsed, injectable set of one-shot faults.
    #[derive(Clone, Debug, Default, PartialEq, Eq)]
    pub struct FaultPlan {
        pub(crate) faults: Vec<Fault>,
    }

    impl FaultPlan {
        /// Parses the `SBRL_FAULTS` grammar (see the module docs).
        pub fn parse(s: &str) -> Result<Self, String> {
            let mut faults = Vec::new();
            for part in s.split([';', ',']).map(str::trim).filter(|p| !p.is_empty()) {
                let (kind, rest) = part
                    .split_once('@')
                    .ok_or_else(|| format!("'{part}': expected kind@iteration"))?;
                let (at, millis) = match rest.split_once(':') {
                    Some((at, ms)) => {
                        let ms: u64 =
                            ms.parse().map_err(|_| format!("'{part}': bad milliseconds '{ms}'"))?;
                        (at, Some(ms))
                    }
                    None => (rest, None),
                };
                let at: usize =
                    at.parse().map_err(|_| format!("'{part}': bad iteration '{at}'"))?;
                let fault = match (kind, millis) {
                    ("nan-loss", None) => Fault::NanLoss { iteration: at },
                    ("nan-reg", None) => Fault::NanReg { iteration: at },
                    ("nan-weight-loss", None) => Fault::NanWeightLoss { iteration: at },
                    ("nan-grad", None) => Fault::NanGrad { iteration: at },
                    ("stall-iter", Some(ms)) => Fault::StallIteration { iteration: at, millis: ms },
                    ("panic-task", None) => Fault::PanicTask { index: at },
                    ("stall-task", Some(ms)) => Fault::StallTask { index: at, millis: ms },
                    ("batcher-panic", None) => Fault::BatcherPanic { batch: at },
                    ("net-drop", None) => Fault::NetDrop { frame: at },
                    ("net-delay", Some(ms)) => Fault::NetDelay { frame: at, millis: ms },
                    ("net-trunc", None) => Fault::NetTrunc { frame: at },
                    ("net-garbage", None) => Fault::NetGarbage { frame: at },
                    ("stall-iter" | "stall-task" | "net-delay", None) => {
                        return Err(format!("'{part}': stalls and delays need ':millis'"));
                    }
                    (other, _) => {
                        return Err(format!(
                            "'{part}': unknown fault kind '{other}' (expected nan-loss, \
                             nan-reg, nan-weight-loss, nan-grad, stall-iter, panic-task, \
                             stall-task, batcher-panic, net-drop, net-delay, net-trunc, \
                             net-garbage)"
                        ));
                    }
                };
                faults.push(fault);
            }
            Ok(Self { faults })
        }

        /// Reads the plan from `SBRL_FAULTS`, if set and non-empty.
        ///
        /// # Panics
        /// On a malformed value — fault injection is a test facility; a
        /// typo'd plan silently injecting nothing would be worse.
        pub fn from_env() -> Option<Self> {
            let raw = std::env::var("SBRL_FAULTS").ok()?;
            if raw.trim().is_empty() {
                return None;
            }
            // lint: allow(panic) — documented (`# Panics`): a typo'd test
            // fault plan must fail loudly, not silently inject nothing.
            Some(Self::parse(&raw).unwrap_or_else(|e| panic!("invalid SBRL_FAULTS: {e}")))
        }
    }

    /// Faults currently armed for the trainer-side hooks (pool faults are
    /// armed directly into `sbrl_tensor::workers::fault`).
    fn armed() -> &'static Mutex<Vec<Fault>> {
        static ARMED: OnceLock<Mutex<Vec<Fault>>> = OnceLock::new();
        ARMED.get_or_init(|| Mutex::new(Vec::new()))
    }

    /// Serializes injected sections: the armed plan is process-global, so
    /// concurrent tests must not interleave their plans.
    fn test_lock() -> &'static Mutex<()> {
        static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
        LOCK.get_or_init(|| Mutex::new(()))
    }

    /// RAII guard over an injected [`FaultPlan`]: holds the process-wide
    /// injection lock (so concurrent tests serialize) and disarms every
    /// remaining fault on drop.
    pub struct FaultGuard {
        _lock: MutexGuard<'static, ()>,
    }

    impl Drop for FaultGuard {
        fn drop(&mut self) {
            disarm_all();
        }
    }

    /// Arms `plan` process-wide and returns the guard that keeps it armed.
    /// Faults fire one-shot; dropping the guard disarms whatever is left.
    pub fn inject(plan: &FaultPlan) -> FaultGuard {
        let lock = test_lock().lock().unwrap_or_else(PoisonError::into_inner);
        arm(plan);
        FaultGuard { _lock: lock }
    }

    pub(crate) fn arm(plan: &FaultPlan) {
        disarm_all();
        NET_FRAME.store(0, Ordering::SeqCst);
        let mut armed = armed().lock().unwrap_or_else(PoisonError::into_inner);
        for f in &plan.faults {
            match *f {
                Fault::PanicTask { index } => {
                    sbrl_tensor::workers::fault::arm_panic_task(index);
                }
                Fault::StallTask { index, millis } => {
                    sbrl_tensor::workers::fault::arm_stall_task(index, millis);
                }
                other => armed.push(other),
            }
        }
    }

    fn disarm_all() {
        armed().lock().unwrap_or_else(PoisonError::into_inner).clear();
        sbrl_tensor::workers::fault::disarm();
    }

    /// Arms the `SBRL_FAULTS` plan (read once per process) at fit start.
    pub(crate) fn fit_begin() {
        static ENV_PLAN: OnceLock<Option<FaultPlan>> = OnceLock::new();
        if let Some(plan) = ENV_PLAN.get_or_init(FaultPlan::from_env) {
            arm(plan);
        }
    }

    /// True when any trainer-side fault is still armed (the trainer uses
    /// this to keep its gradient scan active while a plan is pending).
    pub(crate) fn any_armed() -> bool {
        !armed().lock().unwrap_or_else(PoisonError::into_inner).is_empty()
    }

    /// Fires (and disarms) the first armed fault matching `matches`.
    fn fire(matches: impl Fn(&Fault) -> bool) -> Option<Fault> {
        let mut armed = armed().lock().unwrap_or_else(PoisonError::into_inner);
        let pos = armed.iter().position(matches)?;
        Some(armed.remove(pos))
    }

    /// Returns `value`, or NaN when a matching NaN fault is armed for this
    /// term at this iteration (one-shot).
    pub(crate) fn poison(term: NonFiniteTerm, iteration: usize, value: f64) -> f64 {
        let hit = fire(|f| match (*f, term) {
            (Fault::NanLoss { iteration: at }, NonFiniteTerm::FactualLoss) => at == iteration,
            (Fault::NanReg { iteration: at }, NonFiniteTerm::Regularizer) => at == iteration,
            (Fault::NanWeightLoss { iteration: at }, NonFiniteTerm::WeightObjective) => {
                at == iteration
            }
            _ => false,
        });
        if hit.is_some() {
            f64::NAN
        } else {
            value
        }
    }

    /// True when a gradient fault is armed for this iteration (one-shot).
    pub(crate) fn grad_poisoned(iteration: usize) -> bool {
        fire(|f| matches!(*f, Fault::NanGrad { iteration: at } if at == iteration)).is_some()
    }

    /// Sleeps when a stall fault is armed for this iteration (one-shot).
    pub(crate) fn stall(iteration: usize) {
        if let Some(Fault::StallIteration { millis, .. }) =
            fire(|f| matches!(*f, Fault::StallIteration { iteration: at, .. } if at == iteration))
        {
            std::thread::sleep(Duration::from_millis(millis));
        }
    }

    /// Panics when a batcher fault is armed for this batch index (one-shot)
    /// — the serving layer's drop/unwind guards are the subject under test.
    pub(crate) fn batcher_panic(batch: usize) {
        if fire(|f| matches!(*f, Fault::BatcherPanic { batch: at } if at == batch)).is_some() {
            // lint: allow(panic) — the injected fault *is* a panic; chaos
            // tests assert the service degrades to typed errors around it.
            panic!("injected fault: batcher panicked at batch {batch}");
        }
    }

    /// The action for the next server response frame (one-shot per armed
    /// fault; the frame counter advances on every call).
    pub(crate) fn net_response() -> NetAction {
        let frame = NET_FRAME.fetch_add(1, Ordering::SeqCst);
        let hit = fire(|f| {
            matches!(
                *f,
                Fault::NetDrop { frame: at }
                | Fault::NetDelay { frame: at, .. }
                | Fault::NetTrunc { frame: at }
                | Fault::NetGarbage { frame: at }
                if at == frame
            )
        });
        match hit {
            Some(Fault::NetDrop { .. }) => NetAction::Drop,
            Some(Fault::NetDelay { millis, .. }) => NetAction::Delay(millis),
            Some(Fault::NetTrunc { .. }) => NetAction::Truncate,
            Some(Fault::NetGarbage { .. }) => NetAction::Garbage,
            _ => NetAction::None,
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn parse_accepts_the_full_grammar() {
            let plan = FaultPlan::parse(
                "nan-loss@10; nan-reg@3,nan-weight-loss@4;nan-grad@5;\
                 stall-iter@2:250;panic-task@1;stall-task@0:50;\
                 batcher-panic@0;net-drop@1;net-delay@2:100;net-trunc@3;net-garbage@4",
            )
            .expect("valid plan");
            assert_eq!(
                plan.faults,
                vec![
                    Fault::NanLoss { iteration: 10 },
                    Fault::NanReg { iteration: 3 },
                    Fault::NanWeightLoss { iteration: 4 },
                    Fault::NanGrad { iteration: 5 },
                    Fault::StallIteration { iteration: 2, millis: 250 },
                    Fault::PanicTask { index: 1 },
                    Fault::StallTask { index: 0, millis: 50 },
                    Fault::BatcherPanic { batch: 0 },
                    Fault::NetDrop { frame: 1 },
                    Fault::NetDelay { frame: 2, millis: 100 },
                    Fault::NetTrunc { frame: 3 },
                    Fault::NetGarbage { frame: 4 },
                ]
            );
            assert_eq!(FaultPlan::parse("").expect("empty is fine"), FaultPlan::default());
        }

        #[test]
        fn parse_rejects_malformed_plans() {
            for bad in [
                "nan-loss",
                "nan-loss@x",
                "bogus@3",
                "stall-iter@3",
                "stall-task@0:abc",
                "net-delay@1",
                "net-drop@x",
            ] {
                assert!(FaultPlan::parse(bad).is_err(), "'{bad}' must be rejected");
            }
        }

        #[test]
        fn net_faults_fire_one_shot_on_their_response_frame() {
            let plan = FaultPlan::parse("net-drop@1;net-delay@2:30").expect("valid");
            let _guard = inject(&plan);
            assert_eq!(net_response(), NetAction::None); // frame 0
            assert_eq!(net_response(), NetAction::Drop); // frame 1
            assert_eq!(net_response(), NetAction::Delay(30)); // frame 2
            assert_eq!(net_response(), NetAction::None); // frame 3
            assert!(!any_armed(), "net faults must disarm as they fire");
        }

        #[test]
        fn faults_fire_one_shot_at_their_site() {
            let plan = FaultPlan::parse("nan-loss@2").expect("valid");
            let _guard = inject(&plan);
            // Wrong term / wrong iteration: passes through.
            assert_eq!(poison(NonFiniteTerm::Regularizer, 2, 1.5), 1.5);
            assert_eq!(poison(NonFiniteTerm::FactualLoss, 1, 1.5), 1.5);
            assert!(any_armed());
            // The armed site fires once, then disarms.
            assert!(poison(NonFiniteTerm::FactualLoss, 2, 1.5).is_nan());
            assert_eq!(poison(NonFiniteTerm::FactualLoss, 2, 1.5), 1.5);
            assert!(!any_armed());
        }

        #[test]
        fn guard_drop_disarms_leftover_faults() {
            {
                let plan = FaultPlan::parse("nan-grad@7").expect("valid");
                let _guard = inject(&plan);
                assert!(any_armed());
            }
            assert!(!any_armed(), "dropping the guard must disarm the plan");
            assert!(!grad_poisoned(7));
        }
    }
}

// ---- No-op shims: the trainer calls these unconditionally; without the
// ---- feature they compile away entirely (zero overhead, no env reads).

/// Arms the `SBRL_FAULTS` plan at fit start (no-op without `fault-inject`).
#[cfg(not(feature = "fault-inject"))]
#[inline(always)]
pub(crate) fn fit_begin() {}

#[cfg(feature = "fault-inject")]
pub(crate) use enabled::fit_begin;

/// True when any trainer-side fault is armed (always `false` without
/// `fault-inject`).
#[cfg(not(feature = "fault-inject"))]
#[inline(always)]
pub(crate) fn any_armed() -> bool {
    false
}

#[cfg(feature = "fault-inject")]
pub(crate) use enabled::any_armed;

/// Identity on `value` without `fault-inject`; with it, returns NaN when a
/// matching fault is armed.
#[cfg(not(feature = "fault-inject"))]
#[inline(always)]
pub(crate) fn poison(_term: NonFiniteTerm, _iteration: usize, value: f64) -> f64 {
    value
}

#[cfg(feature = "fault-inject")]
pub(crate) use enabled::poison;

/// Always `false` without `fault-inject`.
#[cfg(not(feature = "fault-inject"))]
#[inline(always)]
pub(crate) fn grad_poisoned(_iteration: usize) -> bool {
    false
}

#[cfg(feature = "fault-inject")]
pub(crate) use enabled::grad_poisoned;

/// No-op without `fault-inject`; with it, sleeps when a stall is armed.
#[cfg(not(feature = "fault-inject"))]
#[inline(always)]
pub(crate) fn stall(_iteration: usize) {}

#[cfg(feature = "fault-inject")]
pub(crate) use enabled::stall;

/// No-op without `fault-inject`; with it, panics the serving batcher when a
/// fault is armed for this batch index.
#[cfg(not(feature = "fault-inject"))]
#[inline(always)]
pub(crate) fn batcher_panic(_batch: usize) {}

#[cfg(feature = "fault-inject")]
pub(crate) use enabled::batcher_panic;

/// Always [`NetAction::None`] without `fault-inject`; with it, the armed
/// action for the next server response frame.
#[cfg(not(feature = "fault-inject"))]
#[inline(always)]
pub(crate) fn net_response() -> NetAction {
    NetAction::None
}

#[cfg(feature = "fault-inject")]
pub(crate) use enabled::net_response;
