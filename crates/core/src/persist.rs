//! Model persistence: the versioned, dependency-free `.sbrl` binary format.
//!
//! A fitted model ([`FittedModel`]) serialises to a single self-describing
//! artifact that captures everything inference needs **and** everything
//! provenance wants:
//!
//! ```text
//! ┌────────────┬─────────────┬──────────────────────────────┬───────────┐
//! │ magic (8B) │ version u32 │ sections …                   │ crc32 u32 │
//! └────────────┴─────────────┴──────────────────────────────┴───────────┘
//! section = [4-byte ASCII tag][u64 LE payload length][payload]
//! order   = META  BCFG  PARM  XTRA  SCAL  WGHT  TREP  FITR
//! ```
//!
//! | section | contents |
//! |---------|----------|
//! | `META`  | backbone kind, framework, numerics tier, loss kind, seed |
//! | `BCFG`  | the full [`BackboneConfig`] (architecture + penalty knobs) |
//! | `PARM`  | every parameter: name, shape, row-major `f64` data |
//! | `XTRA`  | non-parameter state (batch-norm running statistics) |
//! | `SCAL`  | covariate [`Scaler`] statistics + the outcome transform |
//! | `WGHT`  | final per-training-sample weights |
//! | `TREP`  | the [`TrainReport`] (val curve, timings, weight stats) |
//! | `FITR`  | the [`FitReport`] (recovery policy + events, watchdog) |
//!
//! Loading rebuilds the architecture from `BCFG` with the *same* seeded RNG
//! the fit used (`seed ^ INIT_SEED_SALT`), then overwrites every parameter —
//! so a loaded model is structurally identical to the fitted one and
//! [`FittedModel::predict`] is **bit-identical** across the round trip.
//!
//! Every failure mode is a typed [`PersistError`] (surfaced as
//! [`SbrlError::Persist`]); the reader never panics and never trusts a
//! length field before bounds-checking it against the remaining bytes.
//! Integrity is belt-and-braces: a trailing CRC-32 over the whole prefix
//! rejects random corruption before section parsing even starts, and the
//! section parsers re-validate structure for crafted inputs that keep the
//! checksum valid.
//!
//! **Version policy** (see `docs/SERVING.md`): the writer always emits
//! [`FORMAT_VERSION`]; the reader accepts [`MIN_SUPPORTED_VERSION`]`..=`
//! [`FORMAT_VERSION`]. Version 1 artifacts lack the `FITR` section and load
//! with a default (empty) [`FitReport`]. Newer-than-supported versions are
//! rejected with [`PersistError::UnsupportedVersion`] — never best-effort
//! parsed.

use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};
use std::time::Duration;

use sbrl_data::Scaler;
use sbrl_models::{Backbone, BackboneConfig, BackboneKind, CfrConfig, DerCfrConfig, TarnetConfig};
use sbrl_nn::OutcomeLoss;
use sbrl_stats::IpmKind;
use sbrl_tensor::kernels::NumericsMode;
use sbrl_tensor::rng::rng_from_seed;

use crate::config::Framework;
use crate::error::{NonFiniteTerm, SbrlError};
use crate::estimator::INIT_SEED_SALT;
use crate::recovery::{FitReport, RecoveryEvent, RecoveryPolicy};
use crate::trainer::{FittedModel, TrainReport};

/// File magic, PNG-style: a high-bit byte (catches 7-bit transports), the
/// format name, a CR/LF pair (catches newline translation), and a DOS EOF.
pub const MAGIC: [u8; 8] = [0x89, b'S', b'B', b'R', b'L', b'\r', b'\n', 0x1a];

/// The format version this build writes.
pub const FORMAT_VERSION: u32 = 2;

/// The oldest format version this build still reads.
pub const MIN_SUPPORTED_VERSION: u32 = 1;

/// The artifact file extension (without the dot).
pub const EXTENSION: &str = "sbrl";

/// Plausibility cap on architecture dimensions decoded from `BCFG`. A
/// crafted artifact with a valid checksum must not be able to trigger a
/// multi-gigabyte allocation before parameter data is even read.
const MAX_DIM: usize = 1 << 20;

/// Plausibility cap on layer counts decoded from `BCFG`.
const MAX_LAYERS: usize = 1 << 10;

/// Typed failure of `.sbrl` reading, writing or registry assembly.
///
/// Surfaced to callers as [`SbrlError::Persist`].
#[derive(Clone, Debug, PartialEq)]
pub enum PersistError {
    /// The underlying filesystem operation failed.
    Io {
        /// Path being read or written.
        path: PathBuf,
        /// Stringified OS error.
        message: String,
    },
    /// The first 8 bytes are not the `.sbrl` magic — not an artifact.
    BadMagic {
        /// The bytes actually found (zero-padded when the file is shorter).
        found: [u8; 8],
    },
    /// The artifact's format version is outside the supported window.
    UnsupportedVersion {
        /// Version stored in the artifact.
        found: u32,
        /// Oldest version this build reads ([`MIN_SUPPORTED_VERSION`]).
        min: u32,
        /// Newest version this build reads ([`FORMAT_VERSION`]).
        max: u32,
    },
    /// The artifact ends before a declared structure is complete.
    Truncated {
        /// Section (or header region) being parsed when bytes ran out.
        section: &'static str,
        /// Bytes the structure still needed.
        needed: usize,
        /// Bytes actually available.
        available: usize,
    },
    /// The trailing CRC-32 does not match the stored bytes.
    ChecksumMismatch {
        /// Checksum stored in the artifact's trailer.
        stored: u32,
        /// Checksum computed over the artifact's bytes.
        computed: u32,
    },
    /// A structure decoded but its contents are invalid (unknown enum byte,
    /// non-UTF-8 name, invalid statistics, trailing bytes, …).
    Malformed {
        /// What was malformed, spelled out.
        what: String,
    },
    /// Two sections of the artifact disagree with each other (e.g. the
    /// `META` backbone kind vs the `BCFG` architecture, or stored parameter
    /// names/shapes vs the architecture they claim to belong to).
    ProvenanceConflict {
        /// The disagreement, spelled out.
        what: String,
    },
    /// Two artifacts in one registry resolve to the same method name.
    DuplicateModel {
        /// The clashing method name.
        name: String,
        /// Path of the artifact that clashed (empty for in-memory inserts).
        path: PathBuf,
    },
    /// A requested method name is not in the registry.
    UnknownModel {
        /// The requested name.
        name: String,
        /// Names the registry does hold.
        known: Vec<String>,
    },
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io { path, message } => {
                write!(f, "io error at {}: {message}", path.display())
            }
            PersistError::BadMagic { found } => {
                write!(f, "bad magic {found:02x?}: not an .sbrl model artifact")
            }
            PersistError::UnsupportedVersion { found, min, max } => {
                write!(
                    f,
                    "unsupported .sbrl format version {found} \
                     (this build reads {min}..={max})"
                )
            }
            PersistError::Truncated { section, needed, available } => {
                write!(
                    f,
                    "truncated artifact in {section}: needed {needed} more \
                     bytes, only {available} available"
                )
            }
            PersistError::ChecksumMismatch { stored, computed } => {
                write!(
                    f,
                    "checksum mismatch: artifact stores {stored:#010x} but its \
                     bytes hash to {computed:#010x}"
                )
            }
            PersistError::Malformed { what } => write!(f, "malformed artifact: {what}"),
            PersistError::ProvenanceConflict { what } => {
                write!(f, "provenance conflict: {what}")
            }
            PersistError::DuplicateModel { name, path } => {
                write!(f, "duplicate model '{name}' in registry (from {})", path.display())
            }
            PersistError::UnknownModel { name, known } => {
                write!(f, "unknown model '{name}' (registry has: {})", known.join(", "))
            }
        }
    }
}

impl std::error::Error for PersistError {}

// ---------------------------------------------------------------------------
// Checksum
// ---------------------------------------------------------------------------

/// CRC-32 (IEEE 802.3, reflected polynomial `0xedb88320`) — the PNG/zlib
/// checksum, hand-rolled bitwise so the format stays dependency-free.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc: u32 = 0xffff_ffff;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xedb8_8320 & mask);
        }
    }
    !crc
}

// ---------------------------------------------------------------------------
// Enum byte codecs
// ---------------------------------------------------------------------------

fn malformed(what: impl Into<String>) -> PersistError {
    PersistError::Malformed { what: what.into() }
}

fn conflict(what: impl Into<String>) -> PersistError {
    PersistError::ProvenanceConflict { what: what.into() }
}

fn kind_byte(k: BackboneKind) -> u8 {
    match k {
        BackboneKind::Tarnet => 0,
        BackboneKind::Cfr => 1,
        BackboneKind::DerCfr => 2,
    }
}

fn kind_from_byte(b: u8) -> Result<BackboneKind, PersistError> {
    match b {
        0 => Ok(BackboneKind::Tarnet),
        1 => Ok(BackboneKind::Cfr),
        2 => Ok(BackboneKind::DerCfr),
        _ => Err(malformed(format!("unknown backbone kind byte {b}"))),
    }
}

fn framework_byte(fw: Framework) -> u8 {
    match fw {
        Framework::Vanilla => 0,
        Framework::Sbrl => 1,
        Framework::SbrlHap => 2,
    }
}

fn framework_from_byte(b: u8) -> Result<Framework, PersistError> {
    match b {
        0 => Ok(Framework::Vanilla),
        1 => Ok(Framework::Sbrl),
        2 => Ok(Framework::SbrlHap),
        _ => Err(malformed(format!("unknown framework byte {b}"))),
    }
}

fn numerics_byte(m: NumericsMode) -> u8 {
    match m {
        NumericsMode::BitExact => 0,
        NumericsMode::Fast => 1,
    }
}

fn numerics_from_byte(b: u8) -> Result<NumericsMode, PersistError> {
    match b {
        0 => Ok(NumericsMode::BitExact),
        1 => Ok(NumericsMode::Fast),
        _ => Err(malformed(format!("unknown numerics mode byte {b}"))),
    }
}

fn loss_byte(l: OutcomeLoss) -> u8 {
    match l {
        OutcomeLoss::Mse => 0,
        OutcomeLoss::BceWithLogits => 1,
    }
}

fn loss_from_byte(b: u8) -> Result<OutcomeLoss, PersistError> {
    match b {
        0 => Ok(OutcomeLoss::Mse),
        1 => Ok(OutcomeLoss::BceWithLogits),
        _ => Err(malformed(format!("unknown outcome loss byte {b}"))),
    }
}

fn term_byte(t: NonFiniteTerm) -> u8 {
    match t {
        NonFiniteTerm::FactualLoss => 0,
        NonFiniteTerm::Regularizer => 1,
        NonFiniteTerm::WeightObjective => 2,
        NonFiniteTerm::Gradient => 3,
    }
}

fn term_from_byte(b: u8) -> Result<NonFiniteTerm, PersistError> {
    match b {
        0 => Ok(NonFiniteTerm::FactualLoss),
        1 => Ok(NonFiniteTerm::Regularizer),
        2 => Ok(NonFiniteTerm::WeightObjective),
        3 => Ok(NonFiniteTerm::Gradient),
        _ => Err(malformed(format!("unknown non-finite term byte {b}"))),
    }
}

fn bool_from_byte(b: u8, what: &str) -> Result<bool, PersistError> {
    match b {
        0 => Ok(false),
        1 => Ok(true),
        _ => Err(malformed(format!("{what}: boolean byte must be 0 or 1, got {b}"))),
    }
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn put_u8(buf: &mut Vec<u8>, v: u8) {
    buf.push(v);
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_usize(buf: &mut Vec<u8>, v: usize) {
    put_u64(buf, v as u64);
}

fn put_f64(buf: &mut Vec<u8>, v: f64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_f64s(buf: &mut Vec<u8>, xs: &[f64]) {
    for &x in xs {
        put_f64(buf, x);
    }
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_usize(buf, s.len());
    buf.extend_from_slice(s.as_bytes());
}

fn put_section(out: &mut Vec<u8>, tag: &[u8; 4], payload: &[u8]) {
    out.extend_from_slice(tag);
    put_usize(out, payload.len());
    out.extend_from_slice(payload);
}

fn encode_ipm(buf: &mut Vec<u8>, ipm: IpmKind) {
    match ipm {
        IpmKind::MmdLin => put_u8(buf, 0),
        IpmKind::MmdRbf { sigma } => {
            put_u8(buf, 1);
            put_f64(buf, sigma);
        }
        IpmKind::Wasserstein { lambda, iterations } => {
            put_u8(buf, 2);
            put_f64(buf, lambda);
            put_usize(buf, iterations);
        }
    }
}

fn encode_arch(buf: &mut Vec<u8>, arch: &TarnetConfig) {
    put_usize(buf, arch.in_dim);
    put_usize(buf, arch.rep_layers);
    put_usize(buf, arch.rep_width);
    put_usize(buf, arch.head_layers);
    put_usize(buf, arch.head_width);
    put_u8(buf, u8::from(arch.batch_norm));
    put_u8(buf, u8::from(arch.rep_normalization));
}

fn encode_backbone_config(buf: &mut Vec<u8>, cfg: &BackboneConfig) {
    match cfg {
        BackboneConfig::Tarnet(c) => {
            put_u8(buf, 0);
            encode_arch(buf, c);
        }
        BackboneConfig::Cfr(c) => {
            put_u8(buf, 1);
            encode_arch(buf, &c.arch);
            put_f64(buf, c.alpha);
            encode_ipm(buf, c.ipm);
        }
        BackboneConfig::DerCfr(c) => {
            put_u8(buf, 2);
            encode_arch(buf, &c.arch);
            put_f64(buf, c.alpha);
            put_f64(buf, c.beta);
            put_f64(buf, c.gamma);
            put_f64(buf, c.mu);
            encode_ipm(buf, c.ipm);
        }
    }
}

fn encode<B: Backbone>(m: &FittedModel<B>, version: u32) -> Vec<u8> {
    let config = m.model().export_config();

    let mut meta = Vec::new();
    put_u8(&mut meta, kind_byte(config.kind()));
    put_u8(&mut meta, framework_byte(m.framework()));
    put_u8(&mut meta, numerics_byte(m.numerics()));
    put_u8(&mut meta, loss_byte(m.loss_kind()));
    put_u64(&mut meta, m.seed());

    let mut bcfg = Vec::new();
    encode_backbone_config(&mut bcfg, &config);

    let mut parm = Vec::new();
    put_usize(&mut parm, m.model().store().len());
    for (_, name, value) in m.model().store().iter() {
        put_str(&mut parm, name);
        let (rows, cols) = value.shape();
        put_usize(&mut parm, rows);
        put_usize(&mut parm, cols);
        put_f64s(&mut parm, value.as_slice());
    }

    let extra = m.model().export_extra_state();
    let mut xtra = Vec::new();
    put_usize(&mut xtra, extra.len());
    for (name, values) in &extra {
        put_str(&mut xtra, name);
        put_usize(&mut xtra, values.len());
        put_f64s(&mut xtra, values);
    }

    let mut scal = Vec::new();
    match m.scaler() {
        Some(s) => {
            put_u8(&mut scal, 1);
            put_usize(&mut scal, s.means().len());
            put_f64s(&mut scal, s.means());
            put_f64s(&mut scal, s.stds());
        }
        None => put_u8(&mut scal, 0),
    }
    let (y_shift, y_scale) = m.y_transform();
    put_f64(&mut scal, y_shift);
    put_f64(&mut scal, y_scale);

    let mut wght = Vec::new();
    put_usize(&mut wght, m.weights().len());
    put_f64s(&mut wght, m.weights());

    let report = m.report();
    let mut trep = Vec::new();
    put_usize(&mut trep, report.iterations_run);
    put_f64(&mut trep, report.best_val_loss);
    put_usize(&mut trep, report.best_iteration);
    put_f64(&mut trep, report.train_seconds);
    let (w_min, w_mean, w_max) = report.weight_stats;
    put_f64(&mut trep, w_min);
    put_f64(&mut trep, w_mean);
    put_f64(&mut trep, w_max);
    put_usize(&mut trep, report.val_curve.len());
    for &(iter, loss) in &report.val_curve {
        put_usize(&mut trep, iter);
        put_f64(&mut trep, loss);
    }

    let mut out = Vec::new();
    out.extend_from_slice(&MAGIC);
    put_u32(&mut out, version);
    put_section(&mut out, b"META", &meta);
    put_section(&mut out, b"BCFG", &bcfg);
    put_section(&mut out, b"PARM", &parm);
    put_section(&mut out, b"XTRA", &xtra);
    put_section(&mut out, b"SCAL", &scal);
    put_section(&mut out, b"WGHT", &wght);

    if version >= 2 {
        let fit = m.fit_report();
        let mut fitr = Vec::new();
        put_usize(&mut fitr, fit.policy.max_retries);
        put_f64(&mut fitr, fit.policy.lr_backoff);
        put_f64(&mut fitr, fit.policy.grad_clip_escalation);
        match fit.time_budget {
            Some(budget) => {
                put_u8(&mut fitr, 1);
                put_u64(&mut fitr, budget.as_secs());
                put_u32(&mut fitr, budget.subsec_nanos());
            }
            None => put_u8(&mut fitr, 0),
        }
        put_usize(&mut fitr, fit.recoveries.len());
        for ev in &fit.recoveries {
            put_usize(&mut fitr, ev.iteration);
            put_u8(&mut fitr, term_byte(ev.term));
            put_usize(&mut fitr, ev.retry);
            put_usize(&mut fitr, ev.rolled_back_to);
            put_f64(&mut fitr, ev.lr);
            put_f64(&mut fitr, ev.clip_norm);
        }
        put_section(&mut out, b"TREP", &trep);
        put_section(&mut out, b"FITR", &fitr);
    } else {
        put_section(&mut out, b"TREP", &trep);
    }

    let checksum = crc32(&out);
    put_u32(&mut out, checksum);
    out
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

/// A bounds-checked cursor over untrusted bytes: every read goes through
/// [`Reader::take`], which validates length *before* touching the data, so
/// the decode path cannot panic and cannot allocate from an unvalidated
/// length field.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
    section: &'static str,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8], section: &'static str) -> Self {
        Reader { buf, pos: 0, section }
    }

    fn remaining(&self) -> usize {
        self.buf.len().saturating_sub(self.pos)
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], PersistError> {
        let end = self
            .pos
            .checked_add(n)
            .ok_or_else(|| malformed(format!("length overflow in section {}", self.section)))?;
        match self.buf.get(self.pos..end) {
            Some(slice) => {
                self.pos = end;
                Ok(slice)
            }
            None => Err(PersistError::Truncated {
                section: self.section,
                needed: n,
                available: self.remaining(),
            }),
        }
    }

    fn u8(&mut self) -> Result<u8, PersistError> {
        let bytes = self.take(1)?;
        bytes.first().copied().ok_or_else(|| malformed("empty take(1)"))
    }

    fn u32(&mut self) -> Result<u32, PersistError> {
        let mut a = [0u8; 4];
        a.copy_from_slice(self.take(4)?);
        Ok(u32::from_le_bytes(a))
    }

    fn u64(&mut self) -> Result<u64, PersistError> {
        let mut a = [0u8; 8];
        a.copy_from_slice(self.take(8)?);
        Ok(u64::from_le_bytes(a))
    }

    fn f64(&mut self) -> Result<f64, PersistError> {
        let mut a = [0u8; 8];
        a.copy_from_slice(self.take(8)?);
        Ok(f64::from_le_bytes(a))
    }

    /// Reads a plain `u64` scalar (an iteration number, a retry count) as
    /// `usize` — no remaining-bytes bound, because nothing follows it.
    fn usize_val(&mut self) -> Result<usize, PersistError> {
        let raw = self.u64()?;
        usize::try_from(raw)
            .map_err(|_| malformed(format!("value {raw} exceeds this platform's usize")))
    }

    /// Reads a `u64` count and validates that `count * elem_bytes` elements
    /// could still fit in the remaining buffer — the OOM guard that makes a
    /// corrupted length field a [`PersistError::Truncated`], not a
    /// multi-gigabyte allocation.
    fn count(&mut self, elem_bytes: usize) -> Result<usize, PersistError> {
        let count = self.usize_val()?;
        let needed = count.checked_mul(elem_bytes.max(1)).ok_or_else(|| {
            malformed(format!("count {count} overflows in section {}", self.section))
        })?;
        if needed > self.remaining() {
            return Err(PersistError::Truncated {
                section: self.section,
                needed,
                available: self.remaining(),
            });
        }
        Ok(count)
    }

    fn f64s(&mut self, count: usize) -> Result<Vec<f64>, PersistError> {
        let needed = count.checked_mul(8).ok_or_else(|| {
            malformed(format!("f64 count {count} overflows in section {}", self.section))
        })?;
        let bytes = self.take(needed)?;
        let mut out = Vec::with_capacity(count);
        for chunk in bytes.chunks_exact(8) {
            let mut a = [0u8; 8];
            a.copy_from_slice(chunk);
            out.push(f64::from_le_bytes(a));
        }
        Ok(out)
    }

    fn string(&mut self) -> Result<String, PersistError> {
        let len = self.count(1)?;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| malformed(format!("non-UTF-8 string in section {}", self.section)))
    }

    /// Reads the `[tag][u64 len]` frame of the next section, validates the
    /// tag, and returns a sub-reader confined to exactly that payload.
    fn open_section(
        &mut self,
        tag: &[u8; 4],
        name: &'static str,
    ) -> Result<Reader<'a>, PersistError> {
        let found = self.take(4)?;
        if found != tag {
            return Err(malformed(format!("expected section {name}, found tag {found:02x?}")));
        }
        let len = self.count(1)?;
        let payload = self.take(len)?;
        Ok(Reader::new(payload, name))
    }

    /// Asserts the payload was consumed exactly — extra bytes inside a
    /// section mean the writer and reader disagree about its layout.
    fn finish(self) -> Result<(), PersistError> {
        if self.pos != self.buf.len() {
            return Err(malformed(format!(
                "{} trailing bytes in section {}",
                self.buf.len() - self.pos,
                self.section
            )));
        }
        Ok(())
    }
}

fn decode_ipm(r: &mut Reader<'_>) -> Result<IpmKind, PersistError> {
    match r.u8()? {
        0 => Ok(IpmKind::MmdLin),
        1 => Ok(IpmKind::MmdRbf { sigma: r.f64()? }),
        2 => {
            let lambda = r.f64()?;
            let iterations = usize::try_from(r.u64()?)
                .map_err(|_| malformed("Sinkhorn iteration count exceeds usize"))?;
            Ok(IpmKind::Wasserstein { lambda, iterations })
        }
        b => Err(malformed(format!("unknown IPM kind byte {b}"))),
    }
}

fn decode_arch(r: &mut Reader<'_>) -> Result<TarnetConfig, PersistError> {
    let dims = [r.u64()?, r.u64()?, r.u64()?, r.u64()?, r.u64()?];
    let mut it = dims.iter().map(|&v| usize::try_from(v).unwrap_or(usize::MAX));
    let mut next_dim = |what: &str, cap: usize| -> Result<usize, PersistError> {
        let v = it.next().unwrap_or(usize::MAX);
        if v > cap {
            return Err(malformed(format!("architecture {what} = {v} exceeds cap {cap}")));
        }
        Ok(v)
    };
    let in_dim = next_dim("in_dim", MAX_DIM)?;
    let rep_layers = next_dim("rep_layers", MAX_LAYERS)?;
    let rep_width = next_dim("rep_width", MAX_DIM)?;
    let head_layers = next_dim("head_layers", MAX_LAYERS)?;
    let head_width = next_dim("head_width", MAX_DIM)?;
    if in_dim == 0 {
        return Err(malformed("architecture in_dim must be at least 1"));
    }
    let batch_norm = bool_from_byte(r.u8()?, "arch.batch_norm")?;
    let rep_normalization = bool_from_byte(r.u8()?, "arch.rep_normalization")?;
    Ok(TarnetConfig {
        in_dim,
        rep_layers,
        rep_width,
        head_layers,
        head_width,
        batch_norm,
        rep_normalization,
    })
}

fn decode_backbone_config(r: &mut Reader<'_>) -> Result<BackboneConfig, PersistError> {
    match r.u8()? {
        0 => Ok(BackboneConfig::Tarnet(decode_arch(r)?)),
        1 => {
            let arch = decode_arch(r)?;
            let alpha = r.f64()?;
            let ipm = decode_ipm(r)?;
            Ok(BackboneConfig::Cfr(CfrConfig { arch, alpha, ipm }))
        }
        2 => {
            let arch = decode_arch(r)?;
            let alpha = r.f64()?;
            let beta = r.f64()?;
            let gamma = r.f64()?;
            let mu = r.f64()?;
            let ipm = decode_ipm(r)?;
            Ok(BackboneConfig::DerCfr(DerCfrConfig { arch, alpha, beta, gamma, mu, ipm }))
        }
        b => Err(malformed(format!("unknown backbone config byte {b}"))),
    }
}

fn decode(bytes: &[u8]) -> Result<FittedModel<Box<dyn Backbone>>, PersistError> {
    // --- Magic -------------------------------------------------------------
    let head = bytes.get(..8).unwrap_or(bytes);
    if head != MAGIC {
        let mut found = [0u8; 8];
        for (dst, src) in found.iter_mut().zip(head.iter()) {
            *dst = *src;
        }
        return Err(PersistError::BadMagic { found });
    }

    // --- Version gate ------------------------------------------------------
    let version = {
        let mut header = Reader::new(bytes, "header");
        let _ = header.take(8)?;
        header.u32()?
    };
    if !(MIN_SUPPORTED_VERSION..=FORMAT_VERSION).contains(&version) {
        return Err(PersistError::UnsupportedVersion {
            found: version,
            min: MIN_SUPPORTED_VERSION,
            max: FORMAT_VERSION,
        });
    }

    // --- Checksum: reject random corruption before parsing anything --------
    if bytes.len() < 16 {
        return Err(PersistError::Truncated {
            section: "checksum trailer",
            needed: 16_usize.saturating_sub(bytes.len()),
            available: 0,
        });
    }
    let body_end = bytes.len() - 4;
    let stored = {
        let mut a = [0u8; 4];
        a.copy_from_slice(bytes.get(body_end..).unwrap_or(&[0; 4]));
        u32::from_le_bytes(a)
    };
    let computed = crc32(bytes.get(..body_end).unwrap_or(&[]));
    if stored != computed {
        return Err(PersistError::ChecksumMismatch { stored, computed });
    }

    let mut body = Reader::new(bytes.get(12..body_end).unwrap_or(&[]), "body");

    // --- META --------------------------------------------------------------
    let mut meta = body.open_section(b"META", "META")?;
    let meta_kind = kind_from_byte(meta.u8()?)?;
    let framework = framework_from_byte(meta.u8()?)?;
    let numerics = numerics_from_byte(meta.u8()?)?;
    let loss_kind = loss_from_byte(meta.u8()?)?;
    let seed = meta.u64()?;
    meta.finish()?;

    // --- BCFG + provenance cross-check -------------------------------------
    let mut bcfg = body.open_section(b"BCFG", "BCFG")?;
    let config = decode_backbone_config(&mut bcfg)?;
    bcfg.finish()?;
    if config.kind() != meta_kind {
        return Err(conflict(format!(
            "META says backbone {} but BCFG holds a {} configuration",
            meta_kind.name(),
            config.kind().name()
        )));
    }

    // Rebuild the architecture with the fit's own init RNG, then overwrite
    // every parameter below — shapes and names must line up exactly.
    let mut init_rng = rng_from_seed(seed ^ INIT_SEED_SALT);
    let mut model = config.build(&mut init_rng);

    // --- PARM --------------------------------------------------------------
    let mut parm = body.open_section(b"PARM", "PARM")?;
    let expected: Vec<(sbrl_nn::ParamHandle, String, (usize, usize))> =
        model.store().iter().map(|(h, name, value)| (h, name.to_string(), value.shape())).collect();
    let stored_params = parm.count(8)?;
    if stored_params != expected.len() {
        return Err(conflict(format!(
            "artifact stores {stored_params} parameters but the rebuilt {} \
             architecture has {}",
            config.kind().name(),
            expected.len()
        )));
    }
    for (handle, exp_name, (exp_rows, exp_cols)) in expected {
        let name = parm.string()?;
        let rows = parm.count(1)?;
        let cols = parm.count(1)?;
        if name != exp_name || rows != exp_rows || cols != exp_cols {
            return Err(conflict(format!(
                "parameter mismatch: artifact has '{name}' ({rows}x{cols}), \
                 rebuilt architecture expects '{exp_name}' ({exp_rows}x{exp_cols})"
            )));
        }
        let scalars = rows.checked_mul(cols).ok_or_else(|| {
            malformed(format!("parameter '{name}' shape {rows}x{cols} overflows"))
        })?;
        let data = parm.f64s(scalars)?;
        model.store_mut().get_mut(handle).as_mut_slice().copy_from_slice(&data);
    }
    parm.finish()?;

    // --- XTRA --------------------------------------------------------------
    let mut xtra = body.open_section(b"XTRA", "XTRA")?;
    let extra_entries = xtra.count(16)?;
    let mut extra: Vec<(String, Vec<f64>)> = Vec::with_capacity(extra_entries);
    for _ in 0..extra_entries {
        let name = xtra.string()?;
        let values_len = xtra.count(8)?;
        let values = xtra.f64s(values_len)?;
        extra.push((name, values));
    }
    xtra.finish()?;
    model.import_extra_state(&extra).map_err(conflict)?;

    // --- SCAL --------------------------------------------------------------
    let mut scal = body.open_section(b"SCAL", "SCAL")?;
    let scaler = match scal.u8()? {
        0 => None,
        1 => {
            let dim = scal.count(16)?;
            let means = scal.f64s(dim)?;
            let stds = scal.f64s(dim)?;
            Some(Scaler::from_stats(means, stds).ok_or_else(|| {
                malformed(
                    "scaler statistics invalid: means/stds must be non-empty, \
                     equal-length, finite, with strictly positive stds",
                )
            })?)
        }
        b => return Err(malformed(format!("SCAL presence byte must be 0 or 1, got {b}"))),
    };
    let y_shift = scal.f64()?;
    let y_scale = scal.f64()?;
    scal.finish()?;
    if !y_shift.is_finite() || !y_scale.is_finite() || y_scale == 0.0 {
        return Err(malformed(format!(
            "outcome transform must be finite with a non-zero scale, \
             got shift {y_shift}, scale {y_scale}"
        )));
    }
    if let Some(s) = &scaler {
        if s.means().len() != config.in_dim() {
            return Err(conflict(format!(
                "scaler covers {} columns but the architecture expects {}",
                s.means().len(),
                config.in_dim()
            )));
        }
    }

    // --- WGHT --------------------------------------------------------------
    let mut wght = body.open_section(b"WGHT", "WGHT")?;
    let n_weights = wght.count(8)?;
    let weights = wght.f64s(n_weights)?;
    wght.finish()?;

    // --- TREP --------------------------------------------------------------
    let mut trep = body.open_section(b"TREP", "TREP")?;
    let iterations_run = trep.usize_val()?;
    let best_val_loss = trep.f64()?;
    let best_iteration = trep.usize_val()?;
    let train_seconds = trep.f64()?;
    let weight_stats = (trep.f64()?, trep.f64()?, trep.f64()?);
    let curve_len = trep.count(16)?;
    let mut val_curve = Vec::with_capacity(curve_len);
    for _ in 0..curve_len {
        let iter = trep.usize_val()?;
        let loss = trep.f64()?;
        val_curve.push((iter, loss));
    }
    trep.finish()?;
    let report = TrainReport {
        iterations_run,
        best_val_loss,
        best_iteration,
        train_seconds,
        weight_stats,
        val_curve,
    };

    // --- FITR (format version 2+) -------------------------------------------
    let fit_report = if version >= 2 {
        let mut fitr = body.open_section(b"FITR", "FITR")?;
        let max_retries = fitr.usize_val()?;
        let lr_backoff = fitr.f64()?;
        let grad_clip_escalation = fitr.f64()?;
        let policy = RecoveryPolicy { max_retries, lr_backoff, grad_clip_escalation };
        let time_budget = match fitr.u8()? {
            0 => None,
            1 => {
                let secs = fitr.u64()?;
                let nanos = fitr.u32()?;
                if nanos >= 1_000_000_000 {
                    return Err(malformed(format!(
                        "time budget subsecond nanos {nanos} out of range"
                    )));
                }
                Some(Duration::new(secs, nanos))
            }
            b => {
                return Err(malformed(format!(
                    "FITR time-budget presence byte must be 0 or 1, got {b}"
                )))
            }
        };
        let n_events = fitr.count(41)?;
        let mut recoveries = Vec::with_capacity(n_events);
        for _ in 0..n_events {
            let iteration = fitr.usize_val()?;
            let term = term_from_byte(fitr.u8()?)?;
            let retry = fitr.usize_val()?;
            let rolled_back_to = fitr.usize_val()?;
            let lr = fitr.f64()?;
            let clip_norm = fitr.f64()?;
            recoveries.push(RecoveryEvent {
                iteration,
                term,
                retry,
                rolled_back_to,
                lr,
                clip_norm,
            });
        }
        fitr.finish()?;
        FitReport { recoveries, policy, time_budget }
    } else {
        // Version 1 predates fault-tolerance provenance: a default (empty)
        // report, exactly what a clean default-policy fit carries.
        FitReport::default()
    };

    if body.remaining() != 0 {
        return Err(malformed(format!(
            "{} trailing bytes after the final section",
            body.remaining()
        )));
    }

    Ok(FittedModel {
        model,
        scaler,
        loss_kind,
        y_transform: (y_shift, y_scale),
        weights,
        report,
        numerics,
        fit_report,
        framework,
        seed,
    })
}

// ---------------------------------------------------------------------------
// FittedModel entry points
// ---------------------------------------------------------------------------

impl<B: Backbone> FittedModel<B> {
    /// Serialises this model to `.sbrl` bytes at the current
    /// [`FORMAT_VERSION`].
    pub fn to_sbrl_bytes(&self) -> Vec<u8> {
        encode(self, FORMAT_VERSION)
    }

    /// Serialises at an explicit historical format version — exists solely
    /// so `serve make-fixtures` can regenerate the committed version-skew
    /// fixtures. Versions outside the supported window are clamped into it.
    #[doc(hidden)]
    pub fn to_sbrl_bytes_versioned(&self, version: u32) -> Vec<u8> {
        encode(self, version.clamp(MIN_SUPPORTED_VERSION, FORMAT_VERSION))
    }

    /// Writes this model to `path` as an `.sbrl` artifact.
    pub fn save(&self, path: &Path) -> Result<(), SbrlError> {
        fs::write(path, self.to_sbrl_bytes()).map_err(|e| {
            SbrlError::Persist(PersistError::Io {
                path: path.to_path_buf(),
                message: e.to_string(),
            })
        })
    }

    /// The covariate scaler fitted on the training fold (`None` when the
    /// fit ran with `standardize: false`).
    pub fn scaler(&self) -> Option<&Scaler> {
        self.scaler.as_ref()
    }

    /// The outcome transform `(shift, scale)`: training used
    /// `(y - shift) / scale` and prediction inverts it.
    pub fn y_transform(&self) -> (f64, f64) {
        self.y_transform
    }
}

impl FittedModel<Box<dyn Backbone>> {
    /// Deserialises a model from `.sbrl` bytes, validating magic, version,
    /// checksum, section structure and cross-section provenance; every
    /// failure mode is a typed [`SbrlError::Persist`].
    pub fn from_sbrl_bytes(bytes: &[u8]) -> Result<Self, SbrlError> {
        decode(bytes).map_err(SbrlError::Persist)
    }

    /// Reads an `.sbrl` artifact from disk. See
    /// [`from_sbrl_bytes`](Self::from_sbrl_bytes) for the validation
    /// pipeline.
    pub fn load(path: &Path) -> Result<Self, SbrlError> {
        let bytes = fs::read(path).map_err(|e| {
            SbrlError::Persist(PersistError::Io {
                path: path.to_path_buf(),
                message: e.to_string(),
            })
        })?;
        Self::from_sbrl_bytes(&bytes)
    }
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

/// A set of loaded models keyed by their method name (the PR 2 grid
/// registry's labels: `"CFR+SBRL-HAP"`, `"TARNet"`, …), assembled fail-fast:
/// one corrupt or duplicate-named artifact rejects the whole directory, so a
/// serving process can never come up with a partial registry.
pub struct ModelRegistry {
    entries: Vec<(String, FittedModel<Box<dyn Backbone>>)>,
}

impl Default for ModelRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl ModelRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        ModelRegistry { entries: Vec::new() }
    }

    /// Loads every `*.sbrl` artifact in `dir` (sorted by file name for a
    /// deterministic registry order), failing on the first unreadable,
    /// corrupt, or duplicate-named artifact.
    pub fn load_dir(dir: &Path) -> Result<Self, SbrlError> {
        let io_err = |e: std::io::Error| {
            SbrlError::Persist(PersistError::Io { path: dir.to_path_buf(), message: e.to_string() })
        };
        let mut paths: Vec<PathBuf> = Vec::new();
        for entry in fs::read_dir(dir).map_err(io_err)? {
            let path = entry.map_err(io_err)?.path();
            if path.extension().and_then(|e| e.to_str()) == Some(EXTENSION) {
                paths.push(path);
            }
        }
        paths.sort();
        let mut registry = ModelRegistry::new();
        for path in paths {
            let model = FittedModel::load(&path)?;
            registry.insert_from(model, path)?;
        }
        Ok(registry)
    }

    /// Inserts an in-memory model under its method name, rejecting
    /// duplicates (names are compared case-insensitively, matching
    /// [`get`](Self::get)).
    pub fn insert(&mut self, model: FittedModel<Box<dyn Backbone>>) -> Result<(), SbrlError> {
        self.insert_from(model, PathBuf::new())
    }

    fn insert_from(
        &mut self,
        model: FittedModel<Box<dyn Backbone>>,
        path: PathBuf,
    ) -> Result<(), SbrlError> {
        let name = model.method_spec().name();
        if self.entries.iter().any(|(n, _)| n.eq_ignore_ascii_case(&name)) {
            return Err(SbrlError::Persist(PersistError::DuplicateModel { name, path }));
        }
        self.entries.push((name, model));
        Ok(())
    }

    /// Looks a model up by method name, case-insensitively.
    pub fn get(&self, name: &str) -> Option<&FittedModel<Box<dyn Backbone>>> {
        self.index_of(name).and_then(|i| self.entries.get(i)).map(|(_, m)| m)
    }

    /// Like [`get`](Self::get) but a typed
    /// [`UnknownModel`](PersistError::UnknownModel) on a miss, naming the
    /// models the registry does hold.
    pub fn require(&self, name: &str) -> Result<&FittedModel<Box<dyn Backbone>>, SbrlError> {
        self.get(name).ok_or_else(|| {
            SbrlError::Persist(PersistError::UnknownModel {
                name: name.to_string(),
                known: self.names(),
            })
        })
    }

    /// Position of a method name in the registry (case-insensitive).
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.entries.iter().position(|(n, _)| n.eq_ignore_ascii_case(name))
    }

    /// The model at a registry position (see [`index_of`](Self::index_of)).
    pub fn model_at(&self, index: usize) -> Option<&FittedModel<Box<dyn Backbone>>> {
        self.entries.get(index).map(|(_, m)| m)
    }

    /// Method names in registry order.
    pub fn names(&self) -> Vec<String> {
        self.entries.iter().map(|(n, _)| n.clone()).collect()
    }

    /// Number of loaded models.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no models are loaded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl fmt::Debug for ModelRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ModelRegistry").field("names", &self.names()).finish()
    }
}

// ---------------------------------------------------------------------------
// Fixture recipe (shared by `serve make-fixtures` and the golden tests)
// ---------------------------------------------------------------------------

/// The deterministic recipe behind the committed `tests/fixtures/` artifacts.
///
/// Both the `serve make-fixtures` generator and the golden-fixture tests
/// call these functions, so the recipe cannot silently drift between the
/// two; regenerating the committed bytes is a deliberate act (run
/// `serve make-fixtures` and review the diff).
#[doc(hidden)]
pub mod fixture {
    use sbrl_data::{CausalDataset, SyntheticConfig, SyntheticProcess};
    use sbrl_models::{Backbone, CfrConfig, TarnetConfig};
    use sbrl_tensor::kernels::NumericsMode;
    use sbrl_tensor::Matrix;

    use crate::config::{Framework, SbrlConfig};
    use crate::error::SbrlError;
    use crate::estimator::Estimator;
    use crate::trainer::{FittedModel, TrainConfig};

    /// Rows in the golden probe matrix.
    pub const PROBE_ROWS: usize = 8;

    /// The two synthetic folds every fixture model trains on.
    pub fn dataset() -> (CausalDataset, CausalDataset) {
        let cfg = SyntheticConfig {
            m_instrument: 2,
            m_confounder: 2,
            m_adjustment: 2,
            m_unstable: 1,
            pool_factor: 4,
            threshold_pool: 800,
        };
        let proc = SyntheticProcess::new(cfg, 7);
        (proc.generate(2.5, 160, 0), proc.generate(2.5, 80, 1))
    }

    /// The fixture architecture: tiny on purpose (the committed artifact
    /// stays a few kilobytes) with batch-norm enabled so the `XTRA`
    /// running-statistics section is exercised.
    pub fn arch(in_dim: usize) -> TarnetConfig {
        TarnetConfig {
            in_dim,
            rep_layers: 1,
            rep_width: 8,
            head_layers: 1,
            head_width: 4,
            batch_norm: true,
            rep_normalization: false,
        }
    }

    /// The training budget shared by every fixture fit.
    fn budget(seed: u64) -> TrainConfig {
        TrainConfig { iterations: 40, eval_every: 10, seed, ..TrainConfig::smoke() }
    }

    /// Runs `fit` with the numerics tier pinned to `BitExact` (the golden
    /// fixtures must not depend on the ambient `SBRL_NUMERICS` leg), then
    /// restores the environment-selected tier.
    fn fit_bitexact(
        fit: impl FnOnce() -> Result<FittedModel<Box<dyn Backbone>>, SbrlError>,
    ) -> Result<FittedModel<Box<dyn Backbone>>, SbrlError> {
        NumericsMode::BitExact.set_global();
        let out = fit();
        NumericsMode::from_env().set_global();
        out
    }

    /// The golden model: `CFR+SBRL-HAP` on the fixture dataset, bit-exact.
    pub fn train_golden() -> Result<FittedModel<Box<dyn Backbone>>, SbrlError> {
        let (train, val) = dataset();
        fit_bitexact(|| {
            Estimator::builder()
                .backbone(CfrConfig { arch: arch(train.dim()), ..CfrConfig::small(train.dim()) })
                .framework(Framework::SbrlHap)
                .sbrl(SbrlConfig::sbrl_hap(1.0, 1.0, 0.1, 0.01))
                .train(budget(11))
                .fit(&train, &val)
        })
    }

    /// The registry's second model: a vanilla `TARNet` on the same data, so
    /// the fixture registry holds two *distinct* method names.
    pub fn train_second() -> Result<FittedModel<Box<dyn Backbone>>, SbrlError> {
        let (train, val) = dataset();
        fit_bitexact(|| {
            Estimator::builder()
                .backbone(arch(train.dim()))
                .framework(Framework::Vanilla)
                .train(budget(13))
                .fit(&train, &val)
        })
    }

    /// The deterministic probe matrix the golden prediction bits are pinned
    /// on: a fixed integer lattice mapped into roughly `[-1, 1]` — no RNG,
    /// so the probe can never drift with an RNG implementation change.
    pub fn probe_matrix(in_dim: usize) -> Matrix {
        let mut data = Vec::with_capacity(PROBE_ROWS * in_dim);
        for row in 0..PROBE_ROWS {
            for col in 0..in_dim {
                let lattice = (row * 31 + col * 17 + 5) % 23;
                data.push(lattice as f64 / 11.0 - 1.0);
            }
        }
        Matrix::from_vec(PROBE_ROWS, in_dim, data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_the_ieee_check_value() {
        // The canonical CRC-32 test vector.
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn enum_bytes_round_trip() {
        for kind in BackboneKind::ALL {
            assert_eq!(kind_from_byte(kind_byte(kind)).unwrap(), kind);
        }
        for fw in Framework::ALL {
            assert_eq!(framework_from_byte(framework_byte(fw)).unwrap(), fw);
        }
        for mode in [NumericsMode::BitExact, NumericsMode::Fast] {
            assert_eq!(numerics_from_byte(numerics_byte(mode)).unwrap(), mode);
        }
        for loss in [OutcomeLoss::Mse, OutcomeLoss::BceWithLogits] {
            assert_eq!(loss_from_byte(loss_byte(loss)).unwrap(), loss);
        }
        for term in [
            NonFiniteTerm::FactualLoss,
            NonFiniteTerm::Regularizer,
            NonFiniteTerm::WeightObjective,
            NonFiniteTerm::Gradient,
        ] {
            assert_eq!(term_from_byte(term_byte(term)).unwrap(), term);
        }
        assert!(kind_from_byte(9).is_err());
        assert!(framework_from_byte(9).is_err());
        assert!(numerics_from_byte(9).is_err());
        assert!(loss_from_byte(9).is_err());
        assert!(term_from_byte(9).is_err());
    }

    #[test]
    fn reader_reports_truncation_with_counts() {
        let mut r = Reader::new(&[1, 2, 3], "unit");
        assert_eq!(r.take(2).unwrap(), &[1, 2]);
        let err = r.take(5).unwrap_err();
        assert_eq!(err, PersistError::Truncated { section: "unit", needed: 5, available: 1 });
    }

    #[test]
    fn reader_count_guards_allocation_against_absurd_lengths() {
        // A 1 GiB element count inside an 8-byte buffer must become a typed
        // Truncated error before any allocation happens.
        let mut buf = Vec::new();
        put_u64(&mut buf, 1 << 30);
        let mut r = Reader::new(&buf, "unit");
        let err = r.count(8).unwrap_err();
        assert!(matches!(err, PersistError::Truncated { section: "unit", .. }));
    }

    #[test]
    fn ipm_kinds_round_trip_through_bytes() {
        for ipm in [
            IpmKind::MmdLin,
            IpmKind::MmdRbf { sigma: 1.5 },
            IpmKind::Wasserstein { lambda: 10.0, iterations: 10 },
        ] {
            let mut buf = Vec::new();
            encode_ipm(&mut buf, ipm);
            let mut r = Reader::new(&buf, "unit");
            assert_eq!(decode_ipm(&mut r).unwrap(), ipm);
            r.finish().unwrap();
        }
    }

    fn tiny_fitted() -> FittedModel<Box<dyn Backbone>> {
        let (train, val) = fixture::dataset();
        crate::estimator::Estimator::builder()
            .backbone(CfrConfig {
                arch: fixture::arch(train.dim()),
                ..CfrConfig::small(train.dim())
            })
            .framework(Framework::SbrlHap)
            .train(crate::trainer::TrainConfig {
                iterations: 25,
                eval_every: 10,
                seed: 3,
                ..crate::trainer::TrainConfig::smoke()
            })
            .fit(&train, &val)
            .expect("fixture fit")
    }

    #[test]
    fn round_trip_preserves_provenance_and_predictions() {
        let fitted = tiny_fitted();
        let bytes = fitted.to_sbrl_bytes();
        let loaded = FittedModel::from_sbrl_bytes(&bytes).expect("round trip");
        assert_eq!(loaded.seed(), fitted.seed());
        assert_eq!(loaded.framework(), fitted.framework());
        assert_eq!(loaded.numerics(), fitted.numerics());
        assert_eq!(loaded.loss_kind(), fitted.loss_kind());
        assert_eq!(loaded.weights(), fitted.weights());
        assert_eq!(loaded.fit_report(), fitted.fit_report());
        assert_eq!(loaded.report().val_curve, fitted.report().val_curve);
        assert_eq!(loaded.method_spec(), fitted.method_spec());

        let probe = fixture::probe_matrix(fixture::dataset().0.dim());
        let a = fitted.predict(&probe);
        let b = loaded.predict(&probe);
        let bits = |xs: &[f64]| xs.iter().map(|v| v.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&a.y0_hat), bits(&b.y0_hat), "y0 must be bit-identical");
        assert_eq!(bits(&a.y1_hat), bits(&b.y1_hat), "y1 must be bit-identical");
    }

    #[test]
    fn fit_report_with_recoveries_survives_the_round_trip() {
        let mut fitted = tiny_fitted();
        // Inject a synthetic recovery history: divergence is hard to provoke
        // on the tiny fixture surface, and the codec must not care how the
        // events came to be.
        fitted.fit_report = FitReport {
            recoveries: vec![
                RecoveryEvent {
                    iteration: 12,
                    term: NonFiniteTerm::Gradient,
                    retry: 1,
                    rolled_back_to: 10,
                    lr: 5e-4,
                    clip_norm: 2.5,
                },
                RecoveryEvent {
                    iteration: 19,
                    term: NonFiniteTerm::WeightObjective,
                    retry: 2,
                    rolled_back_to: 10,
                    lr: 2.5e-4,
                    clip_norm: 1.25,
                },
            ],
            policy: RecoveryPolicy { max_retries: 3, lr_backoff: 0.5, grad_clip_escalation: 0.5 },
            time_budget: Some(Duration::new(90, 250_000_000)),
        };
        let loaded = FittedModel::from_sbrl_bytes(&fitted.to_sbrl_bytes()).expect("round trip");
        assert_eq!(loaded.fit_report(), fitted.fit_report());
        assert!(loaded.fit_report().recovered());
    }

    #[test]
    fn version_1_bytes_load_with_a_default_fit_report() {
        let fitted = tiny_fitted();
        let v1 = fitted.to_sbrl_bytes_versioned(1);
        let loaded = FittedModel::from_sbrl_bytes(&v1).expect("v1 load");
        assert_eq!(loaded.fit_report(), &FitReport::default());
        // Everything else still round-trips.
        assert_eq!(loaded.seed(), fitted.seed());
        assert_eq!(loaded.weights(), fitted.weights());
    }

    #[test]
    fn future_versions_are_rejected_not_guessed() {
        let fitted = tiny_fitted();
        let mut bytes = fitted.to_sbrl_bytes();
        // Patch the version field to 99 and fix the checksum so only the
        // version gate can reject it.
        bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
        let crc = crc32(&bytes[..bytes.len() - 4]);
        let end = bytes.len();
        bytes[end - 4..].copy_from_slice(&crc.to_le_bytes());
        let err = FittedModel::from_sbrl_bytes(&bytes).unwrap_err();
        assert!(matches!(
            err,
            SbrlError::Persist(PersistError::UnsupportedVersion { found: 99, min: 1, max: 2 })
        ));
    }

    #[test]
    fn registry_rejects_duplicates_and_resolves_case_insensitively() {
        let mut registry = ModelRegistry::new();
        let fitted = tiny_fitted();
        let name = fitted.method_spec().name();
        registry.insert(fitted).expect("first insert");
        assert_eq!(registry.names(), vec![name.clone()]);
        assert!(registry.get(&name.to_lowercase()).is_some());
        assert!(registry.require("JUNK").is_err());

        let err = registry.insert(tiny_fitted()).unwrap_err();
        assert!(matches!(err, SbrlError::Persist(PersistError::DuplicateModel { .. })));
        // The failed insert did not corrupt the registry.
        assert_eq!(registry.len(), 1);
    }
}
