//! The paper's 3 x 3 method grid as a name-addressable specification:
//! {TARNet, CFR, DeR-CFR} x {Vanilla, +SBRL, +SBRL-HAP}.
//!
//! [`MethodSpec`] round-trips through strings (`"CFR+SBRL-HAP".parse()`), so
//! runners, examples and server endpoints can select grid cells by name
//! instead of compiled-in match arms.

use std::fmt;
use std::str::FromStr;

use sbrl_models::BackboneKind;

use crate::config::Framework;
use crate::error::ParseError;

/// One method of the evaluation grid.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct MethodSpec {
    /// Backbone architecture.
    pub backbone: BackboneKind,
    /// Wrapping framework.
    pub framework: Framework,
}

impl MethodSpec {
    /// Table label, e.g. `"CFR+SBRL-HAP"`.
    pub fn name(self) -> String {
        format!("{}{}", self.backbone.name(), self.framework.suffix())
    }

    /// The full 9-method grid in the paper's row order.
    pub fn grid() -> Vec<MethodSpec> {
        let mut out = Vec::with_capacity(9);
        for backbone in BackboneKind::ALL {
            for framework in Framework::ALL {
                out.push(MethodSpec { backbone, framework });
            }
        }
        out
    }
}

impl fmt::Display for MethodSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", self.backbone.name(), self.framework.suffix())
    }
}

impl FromStr for MethodSpec {
    type Err = ParseError;

    /// Parses `"BACKBONE"` or `"BACKBONE+FRAMEWORK"` (e.g. `"TARNet"`,
    /// `"CFR+SBRL-HAP"`), case-insensitively.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (backbone_part, framework_part) = match s.split_once('+') {
            Some((b, f)) => (b, f),
            None => (s, ""),
        };
        let backbone = backbone_part.trim().parse::<BackboneKind>().map_err(ParseError::from)?;
        let framework = framework_part.trim().parse::<Framework>()?;
        Ok(MethodSpec { backbone, framework })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_has_nine_methods_in_paper_order() {
        let grid = MethodSpec::grid();
        assert_eq!(grid.len(), 9);
        assert_eq!(grid[0].name(), "TARNet");
        assert_eq!(grid[1].name(), "TARNet+SBRL");
        assert_eq!(grid[2].name(), "TARNet+SBRL-HAP");
        assert_eq!(grid[8].name(), "DeRCFR+SBRL-HAP");
    }

    #[test]
    fn every_grid_name_round_trips() {
        for spec in MethodSpec::grid() {
            assert_eq!(spec.name().parse::<MethodSpec>().unwrap(), spec);
            assert_eq!(spec.to_string(), spec.name());
        }
    }

    #[test]
    fn parse_is_case_and_separator_insensitive() {
        let spec: MethodSpec = "cfr+sbrl-hap".parse().unwrap();
        assert_eq!(spec.name(), "CFR+SBRL-HAP");
        let spec: MethodSpec = "DeR-CFR + SBRL".parse().unwrap();
        assert_eq!(spec.name(), "DeRCFR+SBRL");
        let spec: MethodSpec = "TARNet+Vanilla".parse().unwrap();
        assert_eq!(spec.name(), "TARNet");
    }

    #[test]
    fn junk_segments_yield_typed_errors() {
        assert!(matches!("GRU+SBRL".parse::<MethodSpec>(), Err(ParseError::Backbone { .. })));
        assert!(matches!("CFR+JUNK".parse::<MethodSpec>(), Err(ParseError::Framework { .. })));
        assert!(matches!("".parse::<MethodSpec>(), Err(ParseError::Backbone { .. })));
    }
}
