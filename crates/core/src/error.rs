//! The unified error type of the estimator pipeline.
//!
//! Everything that can go wrong between "configure an estimator" and "hold a
//! fitted model" — structural data validation, training divergence, builder
//! misconfiguration, and name parsing — surfaces as one [`SbrlError`], so
//! callers (sweep runners, server endpoints) match a single enum instead of
//! juggling per-layer error types.

use std::fmt;
use std::time::Duration;

use sbrl_data::DataError;
use sbrl_models::ParseBackboneError;

/// Which term of the training objective went non-finite — the recovery log
/// and SKIPPED lines say *what* diverged, not just when.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NonFiniteTerm {
    /// The weighted factual outcome loss `L^w_Y` (Eq. 13).
    FactualLoss,
    /// The backbone regularizers / L2 added on top of a finite factual loss.
    Regularizer,
    /// The sample-weight objective `L_w` (Eq. 11) of the weight phase.
    WeightObjective,
    /// A parameter gradient (the loss itself was still finite).
    Gradient,
}

impl fmt::Display for NonFiniteTerm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            NonFiniteTerm::FactualLoss => "factual loss",
            NonFiniteTerm::Regularizer => "regularizer",
            NonFiniteTerm::WeightObjective => "weight objective",
            NonFiniteTerm::Gradient => "gradient",
        };
        f.write_str(name)
    }
}

/// Typed failure of the fit/predict pipeline.
#[derive(Debug)]
pub enum SbrlError {
    /// The training or validation data failed structural validation.
    Data(DataError),
    /// A training-objective term became non-finite (and the configured
    /// [`RecoveryPolicy`](crate::RecoveryPolicy) retries, if any, were
    /// exhausted).
    NonFiniteLoss {
        /// Iteration at which the divergence was detected.
        iteration: usize,
        /// Which objective term diverged.
        term: NonFiniteTerm,
    },
    /// A deadline expired: the fit exceeded
    /// [`TrainConfig::time_budget`](crate::TrainConfig) (checked at the top
    /// of every iteration — the watchdog), or a serving request ran past its
    /// `SBRL_DEADLINE_MS` budget (`iteration` is 0 for serving deadlines).
    TimedOut {
        /// Iteration at which the budget check tripped (0 for serving).
        iteration: usize,
        /// Wall-clock time elapsed when the check tripped.
        elapsed: Duration,
    },
    /// A worker-pool task panicked during batched inference; the panic was
    /// contained to its shard and the pool remains usable.
    WorkerPanic {
        /// Chunk index of the (lowest) panicking task.
        task: usize,
    },
    /// An estimator/training configuration failed validation.
    InvalidConfig {
        /// Which configuration field or builder step is at fault.
        what: &'static str,
        /// Human-readable explanation.
        message: String,
    },
    /// A method/backbone/framework name failed to parse.
    Parse(ParseError),
    /// A persisted model artifact could not be written, read or validated.
    Persist(crate::persist::PersistError),
    /// The serving admission queue was full: the request was shed at the
    /// door instead of queueing without bound (backpressure, not collapse).
    Overloaded {
        /// Queue depth observed when the request was shed.
        depth: usize,
        /// The configured `queue_max` admission limit.
        limit: usize,
    },
    /// The inference service stopped (drain, shutdown, or a dead batcher)
    /// before this request could be answered.
    ServiceStopped {
        /// What stopped the service.
        reason: String,
    },
    /// A wire-protocol frame could not be written, read, or decoded.
    Wire(crate::wire::WireError),
}

impl fmt::Display for SbrlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SbrlError::Data(e) => write!(f, "invalid data: {e}"),
            SbrlError::NonFiniteLoss { iteration, term } => {
                write!(f, "the {term} became non-finite at iteration {iteration}")
            }
            SbrlError::TimedOut { iteration, elapsed } => {
                write!(
                    f,
                    "deadline exceeded at iteration {iteration} (elapsed {:.3}s)",
                    elapsed.as_secs_f64()
                )
            }
            SbrlError::WorkerPanic { task } => {
                write!(f, "batched inference worker task {task} panicked")
            }
            SbrlError::InvalidConfig { what, message } => {
                write!(f, "invalid configuration ({what}): {message}")
            }
            SbrlError::Parse(e) => write!(f, "{e}"),
            SbrlError::Persist(e) => write!(f, "persistence failure: {e}"),
            SbrlError::Overloaded { depth, limit } => {
                write!(f, "service overloaded: admission queue is at depth {depth}/{limit}")
            }
            SbrlError::ServiceStopped { reason } => {
                write!(f, "service stopped before answering: {reason}")
            }
            SbrlError::Wire(e) => write!(f, "wire failure: {e}"),
        }
    }
}

impl From<sbrl_tensor::workers::TaskPanicked> for SbrlError {
    fn from(e: sbrl_tensor::workers::TaskPanicked) -> Self {
        SbrlError::WorkerPanic { task: e.task }
    }
}

impl std::error::Error for SbrlError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SbrlError::Data(e) => Some(e),
            SbrlError::Parse(e) => Some(e),
            SbrlError::Persist(e) => Some(e),
            SbrlError::Wire(e) => Some(e),
            _ => None,
        }
    }
}

impl From<crate::persist::PersistError> for SbrlError {
    fn from(e: crate::persist::PersistError) -> Self {
        SbrlError::Persist(e)
    }
}

impl From<DataError> for SbrlError {
    fn from(e: DataError) -> Self {
        SbrlError::Data(e)
    }
}

impl From<ParseError> for SbrlError {
    fn from(e: ParseError) -> Self {
        SbrlError::Parse(e)
    }
}

impl From<crate::wire::WireError> for SbrlError {
    fn from(e: crate::wire::WireError) -> Self {
        SbrlError::Wire(e)
    }
}

/// Typed error for a name that failed to parse into a grid component.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ParseError {
    /// The backbone segment of the name was not recognised.
    Backbone {
        /// The rejected segment.
        input: String,
    },
    /// The framework segment of the name was not recognised.
    Framework {
        /// The rejected segment.
        input: String,
    },
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            // Delegate so the expected-backbones list has a single source.
            ParseError::Backbone { input } => ParseBackboneError { input: input.clone() }.fmt(f),
            ParseError::Framework { input } => {
                write!(f, "unknown framework '{input}' (expected one of: Vanilla, SBRL, SBRL-HAP)")
            }
        }
    }
}

impl std::error::Error for ParseError {}

impl From<ParseBackboneError> for ParseError {
    fn from(e: ParseBackboneError) -> Self {
        ParseError::Backbone { input: e.input }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_every_variant() {
        let d = SbrlError::Data(DataError::Empty);
        assert!(d.to_string().contains("invalid data"));
        let n = SbrlError::NonFiniteLoss { iteration: 7, term: NonFiniteTerm::FactualLoss };
        assert!(n.to_string().contains("iteration 7"));
        assert!(n.to_string().contains("factual loss"));
        let t = SbrlError::TimedOut { iteration: 3, elapsed: Duration::from_millis(1500) };
        assert!(t.to_string().contains("iteration 3") && t.to_string().contains("1.500"));
        let w = SbrlError::WorkerPanic { task: 2 };
        assert!(w.to_string().contains("task 2"));
        let c = SbrlError::InvalidConfig { what: "train.lr", message: "must be finite".into() };
        assert!(c.to_string().contains("train.lr"));
        let p = SbrlError::Parse(ParseError::Framework { input: "JUNK".into() });
        assert!(p.to_string().contains("JUNK"));
        let s = SbrlError::Persist(crate::persist::PersistError::BadMagic {
            found: [0, 1, 2, 3, 4, 5, 6, 7],
        });
        assert!(s.to_string().contains("persistence failure"));
        assert!(s.to_string().contains("magic"));
        let o = SbrlError::Overloaded { depth: 128, limit: 128 };
        assert!(o.to_string().contains("128/128"));
        let st = SbrlError::ServiceStopped { reason: "drained".into() };
        assert!(st.to_string().contains("drained"));
        let wi = SbrlError::Wire(crate::wire::WireError::BadMagic { found: [0, 1, 2, 3] });
        assert!(wi.to_string().contains("wire failure") && wi.to_string().contains("magic"));
    }

    #[test]
    fn non_finite_terms_name_the_objective_term() {
        let names: Vec<String> = [
            NonFiniteTerm::FactualLoss,
            NonFiniteTerm::Regularizer,
            NonFiniteTerm::WeightObjective,
            NonFiniteTerm::Gradient,
        ]
        .iter()
        .map(|t| t.to_string())
        .collect();
        assert_eq!(names, ["factual loss", "regularizer", "weight objective", "gradient"]);
    }

    #[test]
    fn task_panics_convert_to_worker_panic() {
        let e: SbrlError = sbrl_tensor::workers::TaskPanicked { task: 5 }.into();
        assert!(matches!(e, SbrlError::WorkerPanic { task: 5 }));
    }

    #[test]
    fn conversions_preserve_payloads() {
        let e: SbrlError = DataError::Empty.into();
        assert!(matches!(e, SbrlError::Data(DataError::Empty)));
        let p: ParseError = ParseBackboneError { input: "x".into() }.into();
        assert_eq!(p, ParseError::Backbone { input: "x".into() });
    }
}
