//! The unified error type of the estimator pipeline.
//!
//! Everything that can go wrong between "configure an estimator" and "hold a
//! fitted model" — structural data validation, training divergence, builder
//! misconfiguration, and name parsing — surfaces as one [`SbrlError`], so
//! callers (sweep runners, server endpoints) match a single enum instead of
//! juggling per-layer error types.

use std::fmt;

use sbrl_data::DataError;
use sbrl_models::ParseBackboneError;

/// Typed failure of the fit/predict pipeline.
#[derive(Debug)]
pub enum SbrlError {
    /// The training or validation data failed structural validation.
    Data(DataError),
    /// The loss became non-finite at the given iteration.
    NonFiniteLoss {
        /// Iteration at which the divergence was detected.
        iteration: usize,
    },
    /// An estimator/training configuration failed validation.
    InvalidConfig {
        /// Which configuration field or builder step is at fault.
        what: &'static str,
        /// Human-readable explanation.
        message: String,
    },
    /// A method/backbone/framework name failed to parse.
    Parse(ParseError),
}

impl fmt::Display for SbrlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SbrlError::Data(e) => write!(f, "invalid data: {e}"),
            SbrlError::NonFiniteLoss { iteration } => {
                write!(f, "loss became non-finite at iteration {iteration}")
            }
            SbrlError::InvalidConfig { what, message } => {
                write!(f, "invalid configuration ({what}): {message}")
            }
            SbrlError::Parse(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SbrlError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SbrlError::Data(e) => Some(e),
            SbrlError::Parse(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DataError> for SbrlError {
    fn from(e: DataError) -> Self {
        SbrlError::Data(e)
    }
}

impl From<ParseError> for SbrlError {
    fn from(e: ParseError) -> Self {
        SbrlError::Parse(e)
    }
}

/// Typed error for a name that failed to parse into a grid component.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ParseError {
    /// The backbone segment of the name was not recognised.
    Backbone {
        /// The rejected segment.
        input: String,
    },
    /// The framework segment of the name was not recognised.
    Framework {
        /// The rejected segment.
        input: String,
    },
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            // Delegate so the expected-backbones list has a single source.
            ParseError::Backbone { input } => ParseBackboneError { input: input.clone() }.fmt(f),
            ParseError::Framework { input } => {
                write!(f, "unknown framework '{input}' (expected one of: Vanilla, SBRL, SBRL-HAP)")
            }
        }
    }
}

impl std::error::Error for ParseError {}

impl From<ParseBackboneError> for ParseError {
    fn from(e: ParseBackboneError) -> Self {
        ParseError::Backbone { input: e.input }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_every_variant() {
        let d = SbrlError::Data(DataError::Empty);
        assert!(d.to_string().contains("invalid data"));
        let n = SbrlError::NonFiniteLoss { iteration: 7 };
        assert!(n.to_string().contains("iteration 7"));
        let c = SbrlError::InvalidConfig { what: "train.lr", message: "must be finite".into() };
        assert!(c.to_string().contains("train.lr"));
        let p = SbrlError::Parse(ParseError::Framework { input: "JUNK".into() });
        assert!(p.to_string().contains("JUNK"));
    }

    #[test]
    fn conversions_preserve_payloads() {
        let e: SbrlError = DataError::Empty.into();
        assert!(matches!(e, SbrlError::Data(DataError::Empty)));
        let p: ParseError = ParseBackboneError { input: "x".into() }.into();
        assert_eq!(p, ParseError::Backbone { input: "x".into() });
    }
}
