//! The fluent estimator pipeline — the workspace's primary fit/predict
//! surface.
//!
//! ```no_run
//! use sbrl_core::{Estimator, Framework};
//! use sbrl_data::{SyntheticConfig, SyntheticProcess};
//!
//! let process = SyntheticProcess::new(SyntheticConfig::syn_8_8_8_2(), 0);
//! let train_data = process.generate(2.5, 1000, 0);
//! let val_data = process.generate(2.5, 300, 1);
//!
//! let fitted = Estimator::builder()
//!     .method("CFR+SBRL-HAP".parse()?)
//!     .seed(7)
//!     .fit(&train_data, &val_data)?;
//! let ood = process.generate(-3.0, 500, 2);
//! println!("OOD PEHE = {:.3}", fitted.evaluate(&ood).unwrap().pehe);
//! # Ok::<(), sbrl_core::SbrlError>(())
//! ```
//!
//! An [`Estimator`] is a validated, immutable recipe: `fit` can be called
//! repeatedly (different splits, different replications) and each call
//! builds a fresh backbone from the configured seed.

use sbrl_data::CausalDataset;
use sbrl_models::{Backbone, BackboneConfig, BackboneKind};
use sbrl_tensor::rng::rng_from_seed;

use crate::config::{Framework, SbrlConfig};
use crate::error::SbrlError;
use crate::method::MethodSpec;
use crate::trainer::{fit_backbone, FittedModel, TrainConfig};

/// Salt mixed into the training seed to derive the model-initialisation RNG
/// (kept identical to the historical experiment runner, so results
/// reproduce across the API migration). `pub(crate)` so model loading
/// (`crate::persist`) rebuilds the architecture from the same derivation.
pub(crate) const INIT_SEED_SALT: u64 = 0x00f1_77ed;

/// How the builder selects the backbone architecture.
#[derive(Clone, Copy, Debug)]
enum BackboneChoice {
    /// A fully specified configuration.
    Config(BackboneConfig),
    /// A kind only; the `small()` architecture is instantiated at fit time
    /// with the training data's covariate dimension.
    Kind(BackboneKind),
}

/// A validated, reusable estimator configuration produced by
/// [`Estimator::builder`].
#[derive(Clone, Copy, Debug)]
pub struct Estimator {
    backbone: BackboneChoice,
    sbrl: SbrlConfig,
    train_cfg: TrainConfig,
}

impl Estimator {
    /// Starts the fluent builder.
    pub fn builder() -> EstimatorBuilder {
        EstimatorBuilder::default()
    }

    /// The resolved framework configuration.
    pub fn sbrl(&self) -> &SbrlConfig {
        &self.sbrl
    }

    /// The resolved optimisation budget.
    pub fn train_config(&self) -> &TrainConfig {
        &self.train_cfg
    }

    /// Builds the backbone (seeded from the training seed) and fits it on
    /// `train`, early-stopping on `val`.
    pub fn fit(
        &self,
        train: &CausalDataset,
        val: &CausalDataset,
    ) -> Result<FittedModel<Box<dyn Backbone>>, SbrlError> {
        let config = match self.backbone {
            BackboneChoice::Config(cfg) => {
                if cfg.in_dim() != train.dim() {
                    return Err(SbrlError::InvalidConfig {
                        what: "backbone.in_dim",
                        message: format!(
                            "backbone expects {} covariates but the training data has {}",
                            cfg.in_dim(),
                            train.dim()
                        ),
                    });
                }
                cfg
            }
            BackboneChoice::Kind(kind) => kind.small_config(train.dim()),
        };
        let mut rng = rng_from_seed(self.train_cfg.seed ^ INIT_SEED_SALT);
        let model = config.build(&mut rng);
        fit_backbone(model, train, val, &self.sbrl, &self.train_cfg)
    }
}

/// Fluent builder for [`Estimator`]; every setter returns `self`.
#[derive(Clone, Copy, Debug, Default)]
pub struct EstimatorBuilder {
    backbone: Option<BackboneChoice>,
    /// Backbone kind demanded by [`EstimatorBuilder::method`]; checked
    /// against an explicitly configured backbone at build time.
    method_backbone: Option<BackboneKind>,
    framework: Option<Framework>,
    sbrl: Option<SbrlConfig>,
    train_cfg: Option<TrainConfig>,
    seed: Option<u64>,
}

impl EstimatorBuilder {
    /// Selects the backbone by full configuration ([`sbrl_models::TarnetConfig`],
    /// [`sbrl_models::CfrConfig`] and [`sbrl_models::DerCfrConfig`] convert
    /// implicitly).
    pub fn backbone(mut self, cfg: impl Into<BackboneConfig>) -> Self {
        self.backbone = Some(BackboneChoice::Config(cfg.into()));
        self
    }

    /// Selects the backbone by kind only; the default (`small()`)
    /// architecture is sized to the training data at fit time.
    pub fn backbone_kind(mut self, kind: BackboneKind) -> Self {
        self.backbone = Some(BackboneChoice::Kind(kind));
        self
    }

    /// Selects the wrapping framework with its default coefficients. Use
    /// [`EstimatorBuilder::sbrl`] instead for full coefficient control; a
    /// `.sbrl(..)` whose flags encode a *different* framework than the one
    /// named here is rejected at build time.
    pub fn framework(mut self, framework: Framework) -> Self {
        self.framework = Some(framework);
        self
    }

    /// Selects a whole grid cell by [`MethodSpec`] — backbone kind plus
    /// framework — enabling `"CFR+SBRL-HAP".parse()`-driven configuration.
    ///
    /// An explicitly configured `.backbone(..)` supplies the architecture
    /// hyper-parameters, but its kind must agree with the spec; a mismatch
    /// is rejected at build time so a name-selected method can never run a
    /// different architecture than its name says.
    pub fn method(mut self, spec: MethodSpec) -> Self {
        if self.backbone.is_none() {
            self.backbone = Some(BackboneChoice::Kind(spec.backbone));
        }
        self.method_backbone = Some(spec.backbone);
        self.framework = Some(spec.framework);
        self
    }

    /// Full control over the weight-objective coefficients (Eq. 11).
    pub fn sbrl(mut self, cfg: SbrlConfig) -> Self {
        self.sbrl = Some(cfg);
        self
    }

    /// Optimisation budget (iterations, batch size, learning rates, ...).
    pub fn train(mut self, cfg: TrainConfig) -> Self {
        self.train_cfg = Some(cfg);
        self
    }

    /// Recovery policy for non-finite divergence (rollback + backoff +
    /// resume); overrides `TrainConfig::recovery`.
    pub fn recovery(mut self, policy: crate::RecoveryPolicy) -> Self {
        let cfg = self.train_cfg.unwrap_or_default();
        self.train_cfg = Some(TrainConfig { recovery: policy, ..cfg });
        self
    }

    /// Wall-clock watchdog budget checked every iteration; overrides
    /// `TrainConfig::time_budget`.
    pub fn time_budget(mut self, budget: std::time::Duration) -> Self {
        let cfg = self.train_cfg.unwrap_or_default();
        self.train_cfg = Some(TrainConfig { time_budget: Some(budget), ..cfg });
        self
    }

    /// Master seed: drives backbone initialisation, batching, RFF sampling
    /// — overrides `TrainConfig::seed`.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    /// Validates the configuration into a reusable [`Estimator`].
    pub fn build(self) -> Result<Estimator, SbrlError> {
        let backbone = self.backbone.ok_or(SbrlError::InvalidConfig {
            what: "backbone",
            message: "no backbone selected: call .backbone(config), .backbone_kind(kind) or \
                      .method(spec)"
                .into(),
        })?;
        if let Some(required) = self.method_backbone {
            let configured = match backbone {
                BackboneChoice::Config(cfg) => cfg.kind(),
                BackboneChoice::Kind(kind) => kind,
            };
            if configured != required {
                return Err(SbrlError::InvalidConfig {
                    what: "backbone",
                    message: format!(
                        ".method(..) names a {required} backbone but .backbone(..) configures \
                         {configured}"
                    ),
                });
            }
        }
        let sbrl = match (self.sbrl, self.framework) {
            (Some(cfg), Some(fw)) if cfg.framework() != fw => {
                return Err(SbrlError::InvalidConfig {
                    what: "framework",
                    message: format!(
                        ".framework({fw}) conflicts with the .sbrl(..) configuration (which \
                         encodes {})",
                        cfg.framework()
                    ),
                });
            }
            (Some(cfg), _) => cfg,
            (None, fw) => default_sbrl_for(fw.unwrap_or(Framework::Vanilla)),
        };
        let mut train_cfg = self.train_cfg.unwrap_or_default();
        if let Some(seed) = self.seed {
            train_cfg.seed = seed;
        }
        sbrl.validate()?;
        train_cfg.validate()?;
        Ok(Estimator { backbone, sbrl, train_cfg })
    }

    /// Builds the estimator and fits it in one call.
    pub fn fit(
        self,
        train: &CausalDataset,
        val: &CausalDataset,
    ) -> Result<FittedModel<Box<dyn Backbone>>, SbrlError> {
        self.build()?.fit(train, val)
    }
}

/// The framework's textbook coefficients, used when only a framework (not a
/// full [`SbrlConfig`]) selects the weight objective.
fn default_sbrl_for(framework: Framework) -> SbrlConfig {
    match framework {
        Framework::Vanilla => SbrlConfig::vanilla(),
        Framework::Sbrl => SbrlConfig::sbrl(1.0, 1.0),
        Framework::SbrlHap => SbrlConfig::sbrl_hap(1.0, 1.0, 1.0, 0.1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbrl_data::{SyntheticConfig, SyntheticProcess};
    use sbrl_models::CfrConfig;

    fn tiny_data() -> (CausalDataset, CausalDataset) {
        let cfg = SyntheticConfig {
            m_instrument: 3,
            m_confounder: 3,
            m_adjustment: 3,
            m_unstable: 2,
            pool_factor: 4,
            threshold_pool: 1500,
        };
        let proc = SyntheticProcess::new(cfg, 42);
        (proc.generate(2.5, 300, 0), proc.generate(2.5, 120, 1))
    }

    #[test]
    fn builder_requires_a_backbone() {
        let err = Estimator::builder().build().unwrap_err();
        assert!(matches!(err, SbrlError::InvalidConfig { what: "backbone", .. }));
    }

    #[test]
    fn framework_conflicting_with_sbrl_is_rejected() {
        let err = Estimator::builder()
            .backbone_kind(BackboneKind::Cfr)
            .framework(Framework::Vanilla)
            .sbrl(SbrlConfig::sbrl(1.0, 1.0))
            .build()
            .unwrap_err();
        assert!(matches!(err, SbrlError::InvalidConfig { what: "framework", .. }));
    }

    #[test]
    fn invalid_train_config_is_a_typed_error() {
        let err = Estimator::builder()
            .backbone_kind(BackboneKind::Tarnet)
            .train(TrainConfig { iterations: 0, ..TrainConfig::default() })
            .build()
            .unwrap_err();
        assert!(matches!(err, SbrlError::InvalidConfig { what: "train.iterations", .. }));
    }

    #[test]
    fn dimension_mismatch_is_a_typed_error() {
        let (train, val) = tiny_data();
        let err = Estimator::builder()
            .backbone(CfrConfig::small(train.dim() + 3))
            .train(TrainConfig::smoke())
            .fit(&train, &val)
            .unwrap_err();
        assert!(matches!(err, SbrlError::InvalidConfig { what: "backbone.in_dim", .. }));
    }

    #[test]
    fn seed_overrides_the_train_config_seed() {
        let est = Estimator::builder()
            .backbone_kind(BackboneKind::Tarnet)
            .train(TrainConfig { seed: 1, ..TrainConfig::smoke() })
            .seed(99)
            .build()
            .unwrap();
        assert_eq!(est.train_config().seed, 99);
    }

    #[test]
    fn method_spec_configures_backbone_and_framework() {
        let est = Estimator::builder()
            .method("DeRCFR+SBRL".parse().unwrap())
            .train(TrainConfig::smoke())
            .build()
            .unwrap();
        assert_eq!(est.sbrl().framework(), Framework::Sbrl);
    }

    #[test]
    fn method_spec_conflicting_with_backbone_config_is_rejected() {
        // A name-selected grid cell must never silently run a different
        // architecture than its name says.
        let err = Estimator::builder()
            .backbone(sbrl_models::TarnetConfig::small(5))
            .method("CFR+SBRL-HAP".parse().unwrap())
            .build()
            .unwrap_err();
        assert!(matches!(err, SbrlError::InvalidConfig { what: "backbone", .. }));
        // An agreeing explicit config supplies the architecture.
        let est = Estimator::builder()
            .backbone(CfrConfig::small(5))
            .method("CFR+SBRL-HAP".parse().unwrap())
            .build()
            .unwrap();
        assert_eq!(est.sbrl().framework(), Framework::SbrlHap);
    }

    #[test]
    fn builder_fit_produces_a_working_model() {
        let (train, val) = tiny_data();
        let fitted = Estimator::builder()
            .backbone(CfrConfig::small(train.dim()))
            .framework(Framework::SbrlHap)
            .train(TrainConfig::smoke())
            .seed(3)
            .fit(&train, &val)
            .expect("training succeeds");
        let est = fitted.predict(&val.x);
        assert_eq!(est.y0_hat.len(), val.n());
        assert!(est.y0_hat.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn same_seed_same_model_different_seed_different_model() {
        let (train, val) = tiny_data();
        let fit_with = |seed: u64| {
            Estimator::builder()
                .backbone_kind(BackboneKind::Cfr)
                .train(TrainConfig::smoke())
                .seed(seed)
                .fit(&train, &val)
                .expect("training succeeds")
                .predict(&val.x)
                .ite_hat()
        };
        assert_eq!(fit_with(5), fit_with(5));
        assert_ne!(fit_with(5), fit_with(6));
    }
}
