//! Bench for **Table VI** (training cost): directly measures the quantity
//! the table reports — wall-clock of a single training execution on IHDP —
//! for the vanilla / +SBRL / +SBRL-HAP CFR variants, exposing the cost
//! ordering the paper describes (vanilla < +SBRL < +SBRL-HAP).

mod common;

use criterion::{criterion_group, criterion_main, Criterion};
use sbrl_core::Framework;
use sbrl_data::{IhdpConfig, IhdpSimulator};
use sbrl_experiments::presets::{bench_variant, paper_ihdp};
use sbrl_experiments::{fit_method, BackboneKind, MethodSpec};
use std::hint::black_box;

fn bench_table6(c: &mut Criterion) {
    let preset = bench_variant(paper_ihdp());
    let sim = IhdpSimulator::new(IhdpConfig::default(), 3);
    let split = sim.replicate(0);
    let budget = common::budget(&preset);
    let mut group = c.benchmark_group("table6");
    for (label, framework) in [
        ("cfr_vanilla", Framework::Vanilla),
        ("cfr_sbrl", Framework::Sbrl),
        ("cfr_sbrl_hap", Framework::SbrlHap),
    ] {
        let spec = MethodSpec { backbone: BackboneKind::Cfr, framework };
        group.bench_function(label, |b| {
            b.iter(|| {
                black_box(
                    fit_method(spec, &preset, &split.train, &split.val, &budget)
                        .expect("bench training"),
                )
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = common::criterion();
    targets = bench_table6
}
criterion_main!(benches);
