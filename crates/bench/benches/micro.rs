//! Micro-benchmarks of the numerical hot paths behind every experiment:
//! the matmul kernel, the differentiable weighted IPMs, the HSIC-RFF
//! decorrelation loss and one full alternating training step — each also
//! timed under the `NumericsMode::Fast` global knob (`*_fast` cases).

mod common;

use criterion::{criterion_group, criterion_main, Criterion};
use sbrl_stats::{
    decorrelation_loss_graph_scratch, ipm_weighted_graph, DecorrelationConfig, HsicScratch,
    IpmKind, Rff,
};
use sbrl_tensor::kernels::NumericsMode;
use sbrl_tensor::rng::{randn, rng_from_seed};
use sbrl_tensor::{Graph, Matrix};
use std::hint::black_box;

// The autodiff cases mirror the trainer's step loop: one reusable tape
// (reset per step, buffers pooled) and one per-fit scratch, so each sample
// measures the steady-state cost of a step, not one-shot allocation churn.
fn bench_micro(c: &mut Criterion) {
    let mut rng = rng_from_seed(0);
    let mut group = c.benchmark_group("micro");

    let a = randn(&mut rng, 128, 64);
    let b = randn(&mut rng, 64, 64);
    let phi = randn(&mut rng, 128, 48);
    let ones = Matrix::ones(128, 1);
    let treated: Vec<usize> = (0..64).collect();
    let control: Vec<usize> = (64..128).collect();
    let z = randn(&mut rng, 128, 48);
    let rff = Rff::sample(&mut rng, 5);
    let cfg = DecorrelationConfig { normalize: false, ..Default::default() };

    // Graph-space ops resolve the numerics knob globally, so each tier pins
    // it for its cases; the env value is restored below.
    for (suffix, mode) in [("", NumericsMode::BitExact), ("_fast", NumericsMode::Fast)] {
        mode.set_global();

        group.bench_function(&format!("matmul_128x64x64{suffix}"), |bch| {
            bch.iter(|| black_box(a.matmul(&b)));
        });

        for (label, kind) in [
            ("ipm_mmd_lin_fwd_bwd", IpmKind::MmdLin),
            ("ipm_wasserstein_fwd_bwd", IpmKind::Wasserstein { lambda: 10.0, iterations: 5 }),
        ] {
            let mut g = Graph::new();
            group.bench_function(&format!("{label}{suffix}"), |bch| {
                bch.iter(|| {
                    g.reset();
                    let p = g.constant_copied(&phi);
                    let w = g.param_copied(&ones);
                    let loss = ipm_weighted_graph(&mut g, kind, p, w, &treated, &control);
                    g.backward(loss);
                    black_box(g.grad(w).map(Matrix::norm_fro))
                });
            });
        }

        let mut g = Graph::new();
        let mut scratch = HsicScratch::new();
        group.bench_function(&format!("hsic_decorrelation_fwd_bwd{suffix}"), |bch| {
            bch.iter(|| {
                g.reset();
                let zc = g.constant_copied(&z);
                let w = g.param_copied(&ones);
                let mut r = rng_from_seed(1);
                let loss = decorrelation_loss_graph_scratch(
                    &mut g,
                    zc,
                    w,
                    &rff,
                    &cfg,
                    &mut r,
                    &mut scratch,
                );
                g.backward(loss);
                black_box(g.grad(w).map(Matrix::norm_fro))
            });
        });
    }
    NumericsMode::from_env().set_global();
    group.finish();
}

criterion_group! {
    name = benches;
    config = common::criterion();
    targets = bench_micro
}
criterion_main!(benches);
