//! Bench for **Table III** (real-world benchmarks): one sample = one
//! method fitted on one Twins partition round / one IHDP replication.

mod common;

use criterion::{criterion_group, criterion_main, Criterion};
use sbrl_data::{IhdpConfig, IhdpSimulator, TwinsConfig, TwinsSimulator};
use sbrl_experiments::fit_method;
use sbrl_experiments::presets::{bench_variant, paper_ihdp, paper_twins};
use std::hint::black_box;

fn bench_table3(c: &mut Criterion) {
    let mut group = c.benchmark_group("table3");

    let twins_preset = bench_variant(paper_twins());
    let twins = TwinsSimulator::new(TwinsConfig { n: 800, ..Default::default() }, 7);
    let split = twins.partition(0);
    let twins_budget = common::budget(&twins_preset);
    group.bench_function("twins_round_cfr_sbrl_hap", |b| {
        b.iter(|| {
            let fitted = fit_method(
                common::hap_method(),
                &twins_preset,
                &split.train,
                &split.val,
                &twins_budget,
            )
            .expect("bench training");
            black_box(fitted.evaluate(&split.test).expect("oracle").pehe)
        });
    });

    let ihdp_preset = bench_variant(paper_ihdp());
    let ihdp = IhdpSimulator::new(IhdpConfig::default(), 11);
    let isplit = ihdp.replicate(0);
    let ihdp_budget = common::budget(&ihdp_preset);
    group.bench_function("ihdp_rep_cfr_sbrl_hap", |b| {
        b.iter(|| {
            let fitted = fit_method(
                common::hap_method(),
                &ihdp_preset,
                &isplit.train,
                &isplit.val,
                &ihdp_budget,
            )
            .expect("bench training");
            black_box(fitted.evaluate(&isplit.test).expect("oracle").pehe)
        });
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = common::criterion();
    targets = bench_table3
}
criterion_main!(benches);
