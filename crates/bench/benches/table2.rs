//! Bench for **Table II** (sub-module ablation): one sample = fit one
//! ablation row (CFR backbone) and evaluate ID + OOD PEHE.

mod common;

use criterion::{criterion_group, criterion_main, Criterion};
use sbrl_data::SyntheticConfig;
use sbrl_experiments::BackboneKind;
use std::hint::black_box;

fn bench_table2(c: &mut Criterion) {
    let preset = common::preset_syn16();
    let data = common::synthetic_fixture(SyntheticConfig::syn_16_16_16_2(), 5);
    let budget = common::budget(&preset);
    let mut group = c.benchmark_group("table2");
    // The BR+IR row (SBRL) and the full BR+IR+HAP row.
    for (label, hap) in [("row_br_ir", false), ("row_full", true)] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let (g1, g2, g3) = preset.gammas;
                let mut cfg =
                    sbrl_core::SbrlConfig::sbrl_hap(preset.alpha, g1, g2, g3).with_ipm(preset.ipm);
                cfg.use_hap = hap;
                let fitted = sbrl_core::Estimator::builder()
                    .backbone(preset.backbone_config(BackboneKind::Cfr, data.train.dim()))
                    .sbrl(cfg)
                    .train(budget)
                    .seed(6)
                    .fit(&data.train, &data.val)
                    .expect("train");
                black_box((
                    fitted.evaluate(&data.test_id).expect("oracle").pehe,
                    fitted.evaluate(&data.test_ood).expect("oracle").pehe,
                ))
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = common::criterion();
    targets = bench_table2
}
criterion_main!(benches);
