//! HSIC kernel-statistic bench at Fig. 5 scale: the classic biased RBF
//! estimator (O(n²) kernel fills + implicit double-centring; it used to pay
//! two O(n³) centring GEMMs) and the pairwise HSIC-RFF matrix (O(d² n) with
//! per-column feature maps computed once, sharded over column pairs):
//! serial, parallel, and parallel + `NumericsMode::Fast` (FMA + tree
//! reductions). Emits the baseline tracked in `results/BENCH_hsic.json`
//! (see `docs/PERFORMANCE.md`).

mod common;

use criterion::{criterion_group, criterion_main, Criterion};
use sbrl_stats::{hsic_biased_with, pairwise_hsic_matrix_with, Rff};
use sbrl_tensor::kernels::{available_cores, NumericsMode, Parallelism};
use sbrl_tensor::rng::{randn, rng_from_seed};
use std::hint::black_box;

fn bench_hsic(c: &mut Criterion) {
    let mut rng = rng_from_seed(0);
    let mut group = c.benchmark_group("hsic");
    let parallel = Parallelism::Threads(available_cores());
    let tiers = [
        ("serial", Parallelism::Serial, NumericsMode::BitExact),
        ("parallel", parallel, NumericsMode::BitExact),
        ("fast", parallel, NumericsMode::Fast),
    ];

    let x = randn(&mut rng, 256, 8);
    let y = randn(&mut rng, 256, 8);
    for (label, par, mode) in tiers {
        group.bench_function(&format!("biased_256x8/{label}"), |bch| {
            bch.iter(|| black_box(hsic_biased_with(&x, &y, 1.0, 1.0, par, mode)));
        });
    }

    // The Fig. 5 diagnostic: all column pairs of a 256 x 16 representation.
    let z = randn(&mut rng, 256, 16);
    let rff = Rff::sample(&mut rng, 5);
    for (label, par, mode) in tiers {
        group.bench_function(&format!("pairwise_256x16/{label}"), |bch| {
            bch.iter(|| black_box(pairwise_hsic_matrix_with(&z, &rff, None, par, mode)));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = common::criterion();
    targets = bench_hsic
}
criterion_main!(benches);
