//! HSIC kernel-statistic bench at Fig. 5 scale: the classic biased RBF
//! estimator (O(n²) kernel fills + implicit double-centring; it used to pay
//! two O(n³) centring GEMMs) and the pairwise HSIC-RFF matrix (O(d² n) with
//! per-column feature maps computed once, sharded over column pairs), serial
//! vs parallel. Emits the baseline tracked in `results/BENCH_hsic.json`
//! (see `docs/PERFORMANCE.md`).

mod common;

use criterion::{criterion_group, criterion_main, Criterion};
use sbrl_stats::{hsic_biased, pairwise_hsic_matrix_with, Rff};
use sbrl_tensor::kernels::{available_cores, Parallelism};
use sbrl_tensor::rng::{randn, rng_from_seed};
use std::hint::black_box;

fn bench_hsic(c: &mut Criterion) {
    let mut rng = rng_from_seed(0);
    let mut group = c.benchmark_group("hsic");
    let parallel = Parallelism::Threads(available_cores());

    // hsic_biased parallelises through the global knob (its cost is the
    // kernel matrices and centring GEMMs), so the knob is pinned per case.
    let x = randn(&mut rng, 256, 8);
    let y = randn(&mut rng, 256, 8);
    for (label, par) in [("serial", Parallelism::Serial), ("parallel", parallel)] {
        group.bench_function(&format!("biased_256x8/{label}"), |bch| {
            par.set_global();
            bch.iter(|| black_box(hsic_biased(&x, &y, -1.0, -1.0)));
        });
    }
    Parallelism::from_env().set_global();

    // The Fig. 5 diagnostic: all column pairs of a 256 x 16 representation.
    let z = randn(&mut rng, 256, 16);
    let rff = Rff::sample(&mut rng, 5);
    for (label, par) in [("serial", Parallelism::Serial), ("parallel", parallel)] {
        group.bench_function(&format!("pairwise_256x16/{label}"), |bch| {
            bch.iter(|| black_box(pairwise_hsic_matrix_with(&z, &rff, None, par)));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = common::criterion();
    targets = bench_hsic
}
criterion_main!(benches);
