//! Blocked-GEMM kernel bench at `Syn_16_16_16_2` training shapes: the
//! batch-by-width products of one forward pass plus the fused-transpose
//! backward pair, each timed serially, under the parallel sharded path, and
//! under the parallel path with `NumericsMode::Fast` (FMA microkernels).
//! Emits the baseline tracked in `results/BENCH_gemm.json`
//! (see `docs/PERFORMANCE.md`).

mod common;

use criterion::{criterion_group, criterion_main, Criterion};
use sbrl_tensor::kernels::{
    available_cores, gemm_mode, gemm_nt_mode, gemm_tn_mode, NumericsMode, Parallelism,
};
use sbrl_tensor::rng::{randn, rng_from_seed};
use std::hint::black_box;

fn bench_gemm(c: &mut Criterion) {
    let mut rng = rng_from_seed(0);
    let mut group = c.benchmark_group("gemm");
    let parallel = Parallelism::Threads(available_cores());
    let tiers = [
        ("serial", Parallelism::Serial, NumericsMode::BitExact),
        ("parallel", parallel, NumericsMode::BitExact),
        ("fast", parallel, NumericsMode::Fast),
    ];

    // Forward-pass shapes of a syn_16 (50-feature) batch at paper widths
    // (256 x 50 -> rep width 128 -> 128), plus a square stress shape.
    for (label, m, k, n) in [
        ("fwd_256x50x128", 256, 50, 128),
        ("fwd_256x128x128", 256, 128, 128),
        ("square_256", 256, 256, 256),
    ] {
        let a = randn(&mut rng, m, k);
        let b = randn(&mut rng, k, n);
        for (tier, par, mode) in tiers {
            group.bench_function(&format!("{label}/{tier}"), |bch| {
                bch.iter(|| black_box(gemm_mode(&a, &b, par, mode)));
            });
        }
    }

    // The autodiff tape's MatMul backward pair: dA = g * B^T, dB = A^T * g.
    let x = randn(&mut rng, 256, 128);
    let g = randn(&mut rng, 256, 128);
    for (tier, par, mode) in tiers {
        group.bench_function(&format!("bwd_nt_256x128x128/{tier}"), |bch| {
            bch.iter(|| black_box(gemm_nt_mode(&g, &x, par, mode)));
        });
        group.bench_function(&format!("bwd_tn_256x128x128/{tier}"), |bch| {
            bch.iter(|| black_box(gemm_tn_mode(&x, &g, par, mode)));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = common::criterion();
    targets = bench_gemm
}
criterion_main!(benches);
