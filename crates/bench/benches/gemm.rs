//! Blocked-GEMM kernel bench at `Syn_16_16_16_2` training shapes: the
//! batch-by-width products of one forward pass plus the fused-transpose
//! backward pair, each timed serially and under the parallel sharded path.
//! Emits the serial-vs-parallel baseline tracked in `results/BENCH_gemm.json`
//! (see `docs/PERFORMANCE.md`).

mod common;

use criterion::{criterion_group, criterion_main, Criterion};
use sbrl_tensor::kernels::{available_cores, gemm, gemm_nt, gemm_tn, Parallelism};
use sbrl_tensor::rng::{randn, rng_from_seed};
use std::hint::black_box;

fn bench_gemm(c: &mut Criterion) {
    let mut rng = rng_from_seed(0);
    let mut group = c.benchmark_group("gemm");
    let parallel = Parallelism::Threads(available_cores());

    // Forward-pass shapes of a syn_16 (50-feature) batch at paper widths
    // (256 x 50 -> rep width 128 -> 128), plus a square stress shape.
    for (label, m, k, n) in [
        ("fwd_256x50x128", 256, 50, 128),
        ("fwd_256x128x128", 256, 128, 128),
        ("square_256", 256, 256, 256),
    ] {
        let a = randn(&mut rng, m, k);
        let b = randn(&mut rng, k, n);
        group.bench_function(&format!("{label}/serial"), |bch| {
            bch.iter(|| black_box(gemm(&a, &b, Parallelism::Serial)));
        });
        group.bench_function(&format!("{label}/parallel"), |bch| {
            bch.iter(|| black_box(gemm(&a, &b, parallel)));
        });
    }

    // The autodiff tape's MatMul backward pair: dA = g * B^T, dB = A^T * g.
    let x = randn(&mut rng, 256, 128);
    let g = randn(&mut rng, 256, 128);
    group.bench_function("bwd_nt_256x128x128/serial", |bch| {
        bch.iter(|| black_box(gemm_nt(&g, &x, Parallelism::Serial)));
    });
    group.bench_function("bwd_nt_256x128x128/parallel", |bch| {
        bch.iter(|| black_box(gemm_nt(&g, &x, parallel)));
    });
    group.bench_function("bwd_tn_256x128x128/serial", |bch| {
        bch.iter(|| black_box(gemm_tn(&x, &g, Parallelism::Serial)));
    });
    group.bench_function("bwd_tn_256x128x128/parallel", |bch| {
        bch.iter(|| black_box(gemm_tn(&x, &g, parallel)));
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = common::criterion();
    targets = bench_gemm
}
criterion_main!(benches);
