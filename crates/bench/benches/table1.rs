//! Bench for **Table I** (`Syn_8_8_8_2` sweep): one Criterion sample = fit
//! one method at bench scale and evaluate it on an ID and a far-OOD
//! environment — the unit of work the full table repeats 9 x reps times.

mod common;

use criterion::{criterion_group, criterion_main, Criterion};
use sbrl_data::SyntheticConfig;
use sbrl_experiments::fit_method;
use std::hint::black_box;

fn bench_table1(c: &mut Criterion) {
    let preset = common::preset_syn8();
    let data = common::synthetic_fixture(SyntheticConfig::syn_8_8_8_2(), 1);
    let budget = common::budget(&preset);
    let mut group = c.benchmark_group("table1");
    for (label, spec) in
        [("cfr_vanilla", common::vanilla_method()), ("cfr_sbrl_hap", common::hap_method())]
    {
        group.bench_function(label, |b| {
            b.iter(|| {
                let fitted = fit_method(spec, &preset, &data.train, &data.val, &budget)
                    .expect("bench training");
                let id = fitted.evaluate(&data.test_id).expect("oracle");
                let ood = fitted.evaluate(&data.test_ood).expect("oracle");
                black_box((id.pehe, ood.pehe))
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = common::criterion();
    targets = bench_table1
}
criterion_main!(benches);
