//! Allocation-count and thread-spawn probes: a warmed-up two-phase SBRL-HAP
//! optimisation step — the exact per-iteration structure of
//! `sbrl-core`'s trainer (network phase + weight phase, reusable tape,
//! recycled bindings/context/scratch) — must perform **zero** heap
//! allocations (under `Parallelism::Serial`), and once the persistent
//! worker pool is warm the parallel path must spawn **zero** new threads
//! per step.
//!
//! Requires the `alloc-probe` feature, which installs the counting global
//! allocator from `sbrl_bench::alloc_probe`:
//!
//! ```sh
//! cargo bench -p sbrl-bench --features alloc-probe --bench allocs
//! ```
//!
//! The step uses a fixed batch (the trainer's shapes recur per step; a fixed
//! batch makes the shape set deterministic, so the warm-up provably
//! populates every buffer-pool class). The allocation section runs under
//! `Parallelism::Serial` (worker threads would allocate their stacks); the
//! thread-spawn section then warms the pool under `Parallelism::Threads(4)`
//! and asserts `sbrl_tensor::workers::threads_spawned()` stays flat.

use sbrl_bench::alloc_probe;
use sbrl_core::{weight_objective, SampleWeights, SbrlConfig};
use sbrl_data::{SyntheticConfig, SyntheticProcess};
use sbrl_models::{select_by_treatment, Backbone, BatchContext, Cfr, CfrConfig};
use sbrl_nn::{loss::l2_penalty, Adam, Binding, Optimizer, OutcomeLoss};
use sbrl_stats::{HsicScratch, Rff};
use sbrl_tensor::rng::{randn, rng_from_seed};
use sbrl_tensor::{Graph, Parallelism};

const BATCH: usize = 64;
const WARMUP_STEPS: usize = 10;
const MEASURED_STEPS: usize = 25;

fn main() {
    // `--test` smoke mode (CI bench smoke) runs the probe once like any
    // other bench; the assertion is identical either way. The zero-alloc
    // contract is a BitExact-tier contract (docs/PERFORMANCE.md): Fast's
    // sharded statistics gather per-worker partials into fresh vectors, so
    // the probe pins the tier rather than inheriting `SBRL_NUMERICS`.
    Parallelism::Serial.set_global();
    sbrl_tensor::kernels::NumericsMode::BitExact.set_global();

    let process = SyntheticProcess::new(SyntheticConfig::syn_8_8_8_2(), 7);
    let data = process.generate(2.5, 256, 0);
    let mut rng = rng_from_seed(0);
    let mut model = Cfr::new(CfrConfig::small(data.dim()), &mut rng);
    let sbrl = SbrlConfig::sbrl_hap(1.0, 1.0, 0.1, 0.01);
    let rff = Rff::sample(&mut rng, sbrl.rff_functions.max(1));
    let l2_handles = model.l2_handles();
    let loss_kind = OutcomeLoss::BceWithLogits;

    let mut weights = SampleWeights::new(data.n(), 1e-2);
    let mut opt = Adam::new(model.store(), 1e-3);
    let mut tape = Graph::new();
    let mut net_binding = Binding::new(model.store());
    let mut frozen_binding = Binding::new_frozen(model.store());
    let mut w_binding = weights.new_binding();
    let mut scratch = HsicScratch::new();

    let batch: Vec<usize> = (0..BATCH).collect();
    let tb: Vec<f64> = batch.iter().map(|&i| data.t[i]).collect();
    let yb: Vec<f64> = batch.iter().map(|&i| data.yf[i]).collect();
    let mut ctx = BatchContext::default();
    ctx.rebuild(&tb);

    let mut step = |tape: &mut Graph,
                    model: &mut Cfr,
                    weights: &mut SampleWeights,
                    net_binding: &mut Binding,
                    frozen_binding: &mut Binding,
                    w_binding: &mut Binding,
                    scratch: &mut HsicScratch,
                    rng: &mut rand::rngs::StdRng| {
        // ---- Phase 1: network update, weights fixed (trainer shape) ----
        {
            tape.reset();
            net_binding.reset(model.store());
            let g = &mut *tape;
            let x = g.constant_selected_rows(&data.x, &batch);
            let pass = model.train_step().forward(g, net_binding, x, &ctx);
            let fac = select_by_treatment(g, &ctx, pass.y1_raw, pass.y0_raw);
            let target = g.constant_col(&yb);
            let w_node = weights.bind_const(g, &batch);
            let pred = loss_kind.weighted_loss(g, fac, target, w_node);
            let with_reg = g.add(pred, pass.reg_loss);
            let l2 = l2_penalty(g, model.store(), net_binding, &l2_handles, 1e-4);
            let total = g.add(with_reg, l2);
            g.give_id_buf(pass.taps.z_o);
            g.backward(total);
            opt.step(model.store_mut(), g, net_binding);
        }
        // ---- Phase 2: weight update, network frozen ----
        {
            tape.reset();
            frozen_binding.reset(model.store());
            weights.reset_binding(w_binding);
            let g = &mut *tape;
            let x = g.constant_selected_rows(&data.x, &batch);
            let pass = model.train_step().forward(g, frozen_binding, x, &ctx);
            let w = weights.bind_trainable(g, w_binding, &batch);
            let r_w = weights.r_w(g, w);
            let terms = weight_objective(g, &sbrl, &pass.taps, &ctx, w, r_w, &rff, rng, scratch);
            g.give_id_buf(pass.taps.z_o);
            g.backward(terms.total);
            weights.step(g, w_binding);
        }
    };

    for _ in 0..WARMUP_STEPS {
        step(
            &mut tape,
            &mut model,
            &mut weights,
            &mut net_binding,
            &mut frozen_binding,
            &mut w_binding,
            &mut scratch,
            &mut rng,
        );
    }

    let before = alloc_probe::allocation_count();
    for _ in 0..MEASURED_STEPS {
        step(
            &mut tape,
            &mut model,
            &mut weights,
            &mut net_binding,
            &mut frozen_binding,
            &mut w_binding,
            &mut scratch,
            &mut rng,
        );
    }
    let delta = alloc_probe::allocation_count() - before;

    println!(
        "allocs: {delta} heap allocations across {MEASURED_STEPS} steady-state steps \
         ({WARMUP_STEPS} warm-up steps, batch {BATCH}, CFR + SBRL-HAP, serial)"
    );
    assert_eq!(delta, 0, "steady-state training steps must not allocate");
    println!("test allocs/steady_state_steps_allocate_zero ... ok");

    // ---- Thread-spawn probe --------------------------------------------
    // The persistent worker pool replaces PR 3's per-call `thread::scope`
    // spawns. Warm it under the parallel knob, then assert that further
    // training steps — plus a large sharded GEMM per step, well above the
    // kernel layer's parallel gating — spawn zero new threads.
    Parallelism::Threads(4).set_global();
    let big_a = randn(&mut rng, 256, 256);
    let big_b = randn(&mut rng, 256, 256);
    std::hint::black_box(big_a.matmul(&big_b)); // warms the pool
    let warmed = sbrl_tensor::workers::threads_spawned();
    assert!(warmed > 0, "the warm-up GEMM must have taken the pooled parallel path");

    for _ in 0..MEASURED_STEPS {
        step(
            &mut tape,
            &mut model,
            &mut weights,
            &mut net_binding,
            &mut frozen_binding,
            &mut w_binding,
            &mut scratch,
            &mut rng,
        );
        std::hint::black_box(big_a.matmul(&big_b));
    }
    let spawned = sbrl_tensor::workers::threads_spawned() - warmed;

    Parallelism::Serial.set_global();
    println!(
        "threads: {spawned} spawned across {MEASURED_STEPS} warmed-up parallel steps \
         (pool size {})",
        sbrl_tensor::workers::pool_size()
    );
    assert_eq!(spawned, 0, "warmed-up parallel steps must not spawn threads");
    println!("test allocs/steady_state_steps_spawn_zero_threads ... ok");
}
