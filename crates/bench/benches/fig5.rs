//! Bench for **Fig. 5** (representation decorrelation analysis): one sample
//! = the pairwise HSIC-RFF matrix over 25 sampled representation
//! dimensions, the analysis cost on top of a fitted model.

mod common;

use criterion::{criterion_group, criterion_main, Criterion};
use sbrl_stats::{mean_offdiag_hsic, pairwise_hsic_matrix, Rff};
use sbrl_tensor::rng::{randn, rng_from_seed};
use std::hint::black_box;

fn bench_fig5(c: &mut Criterion) {
    let mut rng = rng_from_seed(4);
    let rep = randn(&mut rng, 500, 25);
    let rff = Rff::sample(&mut rng, Rff::DEFAULT_NUM_FUNCTIONS);
    let mut group = c.benchmark_group("fig5");
    group.bench_function("pairwise_hsic_25dims", |b| {
        b.iter(|| black_box(pairwise_hsic_matrix(&rep, &rff, None)));
    });
    group.bench_function("mean_offdiag_hsic", |b| {
        b.iter(|| black_box(mean_offdiag_hsic(&rep, &rff, None)));
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = common::criterion();
    targets = bench_fig5
}
criterion_main!(benches);
