//! End-to-end training bench: one bench-scale CFR+SBRL-HAP fit on
//! `Syn_16_16_16_2` (the full alternating loop — backbone GEMMs, weighted
//! IPM, HSIC-RFF decorrelation), under the serial, parallel, and
//! parallel + `NumericsMode::Fast` global knobs. Emits the baseline tracked
//! in `results/BENCH_train_epoch.json`.

mod common;

use criterion::{criterion_group, criterion_main, Criterion};
use sbrl_data::SyntheticConfig;
use sbrl_experiments::fit_method;
use sbrl_tensor::kernels::{available_cores, NumericsMode, Parallelism};
use std::hint::black_box;

fn bench_train_epoch(c: &mut Criterion) {
    let preset = common::preset_syn16();
    let data = common::synthetic_fixture(SyntheticConfig::syn_16_16_16_2(), 1);
    let budget = common::budget(&preset);
    let spec = common::hap_method();
    let parallel = Parallelism::Threads(available_cores());
    let mut group = c.benchmark_group("train_epoch");
    // The fit resolves both knobs globally, so each case pins them for its
    // duration and the pair is restored from the environment afterwards.
    for (label, par, mode) in [
        ("serial", Parallelism::Serial, NumericsMode::BitExact),
        ("parallel", parallel, NumericsMode::BitExact),
        ("fast", parallel, NumericsMode::Fast),
    ] {
        group.bench_function(&format!("syn16_sbrl_hap/{label}"), |bch| {
            par.set_global();
            mode.set_global();
            bch.iter(|| {
                let fitted = fit_method(spec, &preset, &data.train, &data.val, &budget)
                    .expect("bench training");
                black_box(fitted.evaluate(&data.test_id).expect("oracle").pehe)
            });
        });
    }
    Parallelism::from_env().set_global();
    NumericsMode::from_env().set_global();
    group.finish();
}

criterion_group! {
    name = benches;
    config = common::criterion();
    targets = bench_train_epoch
}
criterion_main!(benches);
