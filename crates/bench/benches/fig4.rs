//! Bench for **Fig. 4** (factual / counterfactual F1 series): one sample =
//! the evaluation pass computing both F1 series across environments for a
//! pre-fitted model (the figure's incremental cost over Fig. 3).

mod common;

use criterion::{criterion_group, criterion_main, Criterion};
use sbrl_data::SyntheticConfig;
use sbrl_experiments::fit_method;
use sbrl_metrics::env_aggregate;
use std::hint::black_box;

fn bench_fig4(c: &mut Criterion) {
    let preset = common::preset_syn16();
    let data = common::synthetic_fixture(SyntheticConfig::syn_16_16_16_2(), 3);
    let budget = common::budget(&preset);
    let fitted = fit_method(common::hap_method(), &preset, &data.train, &data.val, &budget)
        .expect("bench training");
    let envs = [&data.test_id, &data.test_ood];
    c.benchmark_group("fig4").bench_function("f1_series_eval", |b| {
        b.iter(|| {
            let factual: Vec<f64> =
                envs.iter().map(|e| fitted.evaluate(e).expect("oracle").factual_score).collect();
            let cf: Vec<f64> = envs
                .iter()
                .map(|e| fitted.evaluate(e).expect("oracle").counterfactual_score)
                .collect();
            black_box((env_aggregate(&factual), env_aggregate(&cf)))
        });
    });
}

criterion_group! {
    name = benches;
    config = common::criterion();
    targets = bench_fig4
}
criterion_main!(benches);
