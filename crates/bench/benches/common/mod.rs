//! Shared fixtures for the per-artefact benches: tiny synthetic splits and
//! bench-scale presets so each Criterion sample is one representative unit
//! of the corresponding table/figure (one method fitted and evaluated), not
//! the whole grid.
//!
//! Each bench target compiles this module independently and uses a subset
//! of it, so unused-item lints are expected and silenced.
#![allow(dead_code)]

use criterion::Criterion;
use sbrl_core::{Framework, TrainConfig};
use sbrl_data::{CausalDataset, SyntheticConfig, SyntheticProcess};
use sbrl_experiments::presets::{bench_variant, paper_syn_16_16_16_2, paper_syn_8_8_8_2};
use sbrl_experiments::{BackboneKind, ExperimentPreset, MethodSpec, Scale};

/// Criterion tuned for heavyweight single-iteration workloads.
pub fn criterion() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(6))
        .warm_up_time(std::time::Duration::from_secs(1))
}

/// Train/val/ID-test/OOD-test splits at bench scale.
pub struct BenchData {
    pub train: CausalDataset,
    pub val: CausalDataset,
    pub test_id: CausalDataset,
    pub test_ood: CausalDataset,
}

/// Generates a bench-scale synthetic fixture.
pub fn synthetic_fixture(cfg: SyntheticConfig, seed: u64) -> BenchData {
    let (n_train, n_val, n_test) = Scale::Bench.synthetic_samples();
    let process = SyntheticProcess::new(cfg, seed);
    BenchData {
        train: process.generate(2.5, n_train, 0),
        val: process.generate(2.5, n_val, 1),
        test_id: process.generate(2.5, n_test, 2),
        test_ood: process.generate(-3.0, n_test, 3),
    }
}

/// Bench-scale preset for `Syn_8_8_8_2`.
pub fn preset_syn8() -> ExperimentPreset {
    bench_variant(paper_syn_8_8_8_2())
}

/// Bench-scale preset for `Syn_16_16_16_2`.
pub fn preset_syn16() -> ExperimentPreset {
    bench_variant(paper_syn_16_16_16_2())
}

/// Bench-scale optimisation budget.
pub fn budget(preset: &ExperimentPreset) -> TrainConfig {
    Scale::Bench.train_config(preset.lr, preset.l2, 0)
}

/// The headline method of the paper.
pub fn hap_method() -> MethodSpec {
    MethodSpec { backbone: BackboneKind::Cfr, framework: Framework::SbrlHap }
}

/// The vanilla comparator.
pub fn vanilla_method() -> MethodSpec {
    MethodSpec { backbone: BackboneKind::Cfr, framework: Framework::Vanilla }
}
