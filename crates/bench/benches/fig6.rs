//! Bench for **Fig. 6** (gamma sensitivity): one sample = one sweep point
//! (one CFR+SBRL-HAP fit at a non-default gamma) — the figure repeats this
//! 18 times.

mod common;

use criterion::{criterion_group, criterion_main, Criterion};
use sbrl_data::SyntheticConfig;
use sbrl_experiments::{fit_method, ExperimentPreset};
use std::hint::black_box;

fn bench_fig6(c: &mut Criterion) {
    let base = common::preset_syn16();
    let preset = ExperimentPreset { gammas: (10.0, base.gammas.1, base.gammas.2), ..base };
    let data = common::synthetic_fixture(SyntheticConfig::syn_16_16_16_2(), 8);
    let budget = common::budget(&preset);
    c.benchmark_group("fig6").bench_function("sweep_point_gamma1_10", |b| {
        b.iter(|| {
            let fitted = fit_method(common::hap_method(), &preset, &data.train, &data.val, &budget)
                .expect("bench training");
            black_box((
                fitted.evaluate(&data.test_id).expect("oracle").pehe,
                fitted.evaluate(&data.test_ood).expect("oracle").factual_score,
            ))
        });
    });
}

criterion_group! {
    name = benches;
    config = common::criterion();
    targets = bench_fig6
}
criterion_main!(benches);
