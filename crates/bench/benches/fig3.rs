//! Bench for **Fig. 3** (`Syn_16_16_16_2` PEHE-vs-rho series): one sample =
//! fit one method on the high-dimensional dataset and trace PEHE across a
//! reduced environment sweep.

mod common;

use criterion::{criterion_group, criterion_main, Criterion};
use sbrl_data::{SyntheticConfig, SyntheticProcess};
use sbrl_experiments::fit_method;
use std::hint::black_box;

fn bench_fig3(c: &mut Criterion) {
    let preset = common::preset_syn16();
    let data = common::synthetic_fixture(SyntheticConfig::syn_16_16_16_2(), 2);
    let process = SyntheticProcess::new(SyntheticConfig::syn_16_16_16_2(), 2);
    let envs: Vec<_> = [-3.0, -1.5, 1.5, 2.5]
        .iter()
        .map(|&rho| process.generate(rho, 200, 50 + rho.to_bits() % 13))
        .collect();
    let budget = common::budget(&preset);
    c.benchmark_group("fig3").bench_function("cfr_sbrl_series", |b| {
        b.iter(|| {
            let fitted = fit_method(
                "CFR+SBRL".parse().expect("grid method name"),
                &preset,
                &data.train,
                &data.val,
                &budget,
            )
            .expect("bench training");
            let series: Vec<f64> =
                envs.iter().map(|e| fitted.evaluate(e).expect("oracle").pehe).collect();
            black_box(series)
        });
    });
}

criterion_group! {
    name = benches;
    config = common::criterion();
    targets = bench_fig3
}
criterion_main!(benches);
