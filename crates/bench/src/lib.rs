//! # sbrl-bench
//!
//! Criterion benches: hot-path kernel benches (`gemm`, `hsic`,
//! `train_epoch` — each timed serial vs parallel under the workspace
//! `Parallelism` knob), micro-benchmarks of the autodiff paths (`micro`),
//! and one bench per paper table/figure driving the `sbrl-experiments`
//! runners at bench scale (`table1`, `fig3`, `fig4`, `fig5`, `table2`,
//! `table3`, `fig6`, `table6`).
//!
//! Run with `cargo bench -p sbrl-bench`. Setting `SBRL_BENCH_JSON` records
//! a median-per-case JSON snapshot — the `results/BENCH_*.json` baseline
//! format described in `docs/PERFORMANCE.md`.
