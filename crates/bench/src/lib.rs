//! # sbrl-bench
//!
//! Criterion benches: hot-path kernel benches (`gemm`, `hsic`,
//! `train_epoch` — each timed serial vs parallel under the workspace
//! `Parallelism` knob), micro-benchmarks of the autodiff paths (`micro`),
//! an allocation-count probe (`allocs`, behind the `alloc-probe` feature),
//! and one bench per paper table/figure driving the `sbrl-experiments`
//! runners at bench scale (`table1`, `fig3`, `fig4`, `fig5`, `table2`,
//! `table3`, `fig6`, `table6`).
//!
//! Run with `cargo bench -p sbrl-bench`. Setting `SBRL_BENCH_JSON` records
//! a median-per-case JSON snapshot — the `results/BENCH_*.json` baseline
//! format described in `docs/PERFORMANCE.md`. The committed baselines are
//! compared against fresh runs in CI by the `bench_compare` binary
//! ([`parse_bench_medians`]).
//!
//! The allocation probe (`cargo bench -p sbrl-bench --features alloc-probe
//! --bench allocs`) installs `alloc_probe::CountingAllocator` as the
//! global allocator and asserts that a warmed-up two-phase SBRL-HAP
//! training step performs **zero** heap allocations.

/// Heap-allocation counting instrumentation (feature `alloc-probe`).
///
/// When the feature is enabled this module installs a counting wrapper
/// around the system allocator for every binary linking this crate, so the
/// `allocs` bench can assert that steady-state training steps are
/// allocation-free.
#[cfg(feature = "alloc-probe")]
pub mod alloc_probe {
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicU64, Ordering};

    static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

    /// System-allocator wrapper counting every acquisition (`alloc`,
    /// `alloc_zeroed`, `realloc`). Frees are not counted: the steady-state
    /// assertion cares about new memory being requested, not returned.
    pub struct CountingAllocator;

    // SAFETY: delegates every operation verbatim to `System`; the counter
    // update has no effect on allocation behaviour.
    unsafe impl GlobalAlloc for CountingAllocator {
        /// # Safety
        /// Same contract as [`System::alloc`], to which this delegates.
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
            // SAFETY: `layout` is forwarded unchanged; `System` upholds the
            // `GlobalAlloc` contract.
            unsafe { System.alloc(layout) }
        }

        /// # Safety
        /// Same contract as [`System::dealloc`], to which this delegates.
        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            // SAFETY: `ptr`/`layout` come from this allocator, which only
            // ever hands out `System` pointers.
            unsafe { System.dealloc(ptr, layout) }
        }

        /// # Safety
        /// Same contract as [`System::alloc_zeroed`], to which this delegates.
        unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
            // SAFETY: `layout` is forwarded unchanged to `System`.
            unsafe { System.alloc_zeroed(layout) }
        }

        /// # Safety
        /// Same contract as [`System::realloc`], to which this delegates.
        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
            // SAFETY: `ptr`/`layout`/`new_size` are forwarded unchanged;
            // `ptr` originates from this allocator.
            unsafe { System.realloc(ptr, layout, new_size) }
        }
    }

    #[global_allocator]
    static GLOBAL: CountingAllocator = CountingAllocator;

    /// Number of heap acquisitions since process start.
    pub fn allocation_count() -> u64 {
        ALLOCATIONS.load(Ordering::Relaxed)
    }
}

/// Extracts `(name, median_ns)` pairs from the bench-snapshot JSON format
/// written by the vendored criterion shim under `SBRL_BENCH_JSON`
/// (`{"bench", "git_rev", "threads", "results": [{"name", "median_ns",
/// "samples"}]}`). Tolerant of whitespace; entries missing either field are
/// skipped. Used by the `bench_compare` CI binary.
pub fn parse_bench_medians(json: &str) -> Vec<(String, u128)> {
    let mut out = Vec::new();
    for line in json.lines() {
        let Some(name) = extract_str_field(line, "name") else { continue };
        let Some(median) = extract_u128_field(line, "median_ns") else { continue };
        out.push((name, median));
    }
    out
}

fn extract_str_field(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\":");
    let at = line.find(&pat)? + pat.len();
    let rest = line[at..].trim_start();
    let rest = rest.strip_prefix('"')?;
    let end = rest.find('"')?;
    Some(rest[..end].to_string())
}

fn extract_u128_field(line: &str, key: &str) -> Option<u128> {
    let pat = format!("\"{key}\":");
    let at = line.find(&pat)? + pat.len();
    let digits: String =
        line[at..].trim_start().chars().take_while(|c| c.is_ascii_digit()).collect();
    digits.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"{
  "bench": "micro",
  "git_rev": "abc1234",
  "threads": 1,
  "results": [
    {"name": "micro/matmul_128x64x64", "median_ns": 140722, "samples": 10},
    {"name": "micro/hsic_decorrelation_fwd_bwd", "median_ns": 3603886, "samples": 10}
  ]
}
"#;

    #[test]
    fn parses_all_result_entries() {
        let parsed = parse_bench_medians(SAMPLE);
        assert_eq!(
            parsed,
            vec![
                ("micro/matmul_128x64x64".to_string(), 140_722),
                ("micro/hsic_decorrelation_fwd_bwd".to_string(), 3_603_886),
            ]
        );
    }

    #[test]
    fn skips_lines_without_both_fields() {
        assert!(parse_bench_medians("{\"bench\": \"micro\"}").is_empty());
        assert!(parse_bench_medians("{\"name\": \"x\"}").is_empty());
        assert!(parse_bench_medians("").is_empty());
    }
}
