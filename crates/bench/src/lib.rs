//! # sbrl-bench
//!
//! Criterion benches, one per paper table/figure, driving the
//! `sbrl-experiments` runners at bench scale plus micro-benchmarks of the
//! numerical hot paths (matmul, IPM, HSIC-RFF, one full alternating step).
//!
//! Run with `cargo bench --workspace`; per-artefact benches live in
//! `benches/` (`table1`, `fig3`, `fig4`, `fig5`, `table2`, `table3`,
//! `fig6`, `table6`, `micro`).
