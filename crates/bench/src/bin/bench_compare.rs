//! CI bench-regression gate: compares freshly recorded `SBRL_BENCH_JSON`
//! medians against a committed `results/BENCH_*.json` baseline and fails on
//! gross regressions.
//!
//! ```sh
//! bench_compare <baseline.json> <fresh.json> [tolerance] [--strict]
//! ```
//!
//! A case regresses when `fresh > tolerance * baseline` (default tolerance
//! 2.0 — generous on purpose: CI runners are noisy and heterogeneous; the
//! gate exists to catch order-of-magnitude rots, not micro-jitter). By
//! default, cases present in only one file are reported but not fatal, so
//! benches can be added or retired without breaking CI in the same commit;
//! `--strict` makes a baseline case that is *missing* from the fresh run
//! fatal, so the gate provably covers every committed column (fresh-only
//! cases stay non-fatal — they are new columns awaiting a baseline).

use std::process::ExitCode;

use sbrl_bench::parse_bench_medians;

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().collect();
    let strict = {
        let before = args.len();
        args.retain(|a| a != "--strict");
        args.len() != before
    };
    if args.len() < 3 || args.len() > 4 {
        eprintln!("usage: bench_compare <baseline.json> <fresh.json> [tolerance] [--strict]");
        return ExitCode::from(2);
    }
    let tolerance: f64 = match args.get(3).map(|t| t.parse()) {
        None => 2.0,
        Some(Ok(t)) if t > 0.0 => t,
        Some(_) => {
            eprintln!("bench_compare: tolerance must be a positive number");
            return ExitCode::from(2);
        }
    };
    let read = |path: &str| match std::fs::read_to_string(path) {
        Ok(s) => Some(s),
        Err(e) => {
            eprintln!("bench_compare: cannot read {path}: {e}");
            None
        }
    };
    let (Some(baseline_json), Some(fresh_json)) = (read(&args[1]), read(&args[2])) else {
        return ExitCode::from(2);
    };
    let baseline = parse_bench_medians(&baseline_json);
    let fresh = parse_bench_medians(&fresh_json);
    if baseline.is_empty() {
        eprintln!("bench_compare: no cases parsed from baseline {}", args[1]);
        return ExitCode::from(2);
    }

    let mut regressions = 0usize;
    let mut compared = 0usize;
    let mut missing = 0usize;
    for (name, base_ns) in &baseline {
        match fresh.iter().find(|(n, _)| n == name) {
            Some((_, fresh_ns)) => {
                compared += 1;
                let ratio = *fresh_ns as f64 / (*base_ns).max(1) as f64;
                let verdict = if ratio > tolerance {
                    regressions += 1;
                    "REGRESSED"
                } else {
                    "ok"
                };
                println!(
                    "{verdict:>9}  {name}: baseline {base_ns} ns, fresh {fresh_ns} ns \
                     ({ratio:.2}x)"
                );
            }
            None => {
                missing += 1;
                let note = if strict { "fatal under --strict" } else { "skipped" };
                println!("  missing  {name}: present in baseline only ({note})");
            }
        }
    }
    for (name, _) in &fresh {
        if !baseline.iter().any(|(n, _)| n == name) {
            println!("      new  {name}: present in fresh run only (skipped)");
        }
    }

    if compared == 0 {
        eprintln!("bench_compare: no overlapping cases between the two files");
        return ExitCode::from(2);
    }
    if strict && missing > 0 {
        eprintln!(
            "bench_compare: {missing} baseline case(s) missing from the fresh run \
             (--strict requires full coverage)"
        );
        return ExitCode::FAILURE;
    }
    if regressions > 0 {
        eprintln!(
            "bench_compare: {regressions} case(s) regressed beyond {tolerance}x the \
             committed baseline"
        );
        return ExitCode::FAILURE;
    }
    println!("bench_compare: {compared} case(s) within {tolerance}x of the baseline");
    ExitCode::SUCCESS
}
