//! The linter must run clean on the workspace that ships it: every `unsafe`
//! site documented, every library panic converted or justified, every
//! determinism contract honoured. This is the same walk `cargo run -p
//! sbrl-lint` (and the CI `lint-static` job) performs.

use std::path::Path;

use sbrl_lint::{find_workspace_root, lint_workspace};

fn workspace_root() -> std::path::PathBuf {
    let manifest = Path::new(env!("CARGO_MANIFEST_DIR"));
    find_workspace_root(manifest).expect("the lint crate lives inside the workspace")
}

#[test]
fn workspace_has_zero_violations() {
    let report = lint_workspace(&workspace_root()).expect("workspace sources are readable");
    let rendered: Vec<String> = report.diagnostics.iter().map(|d| d.to_string()).collect();
    assert!(
        report.is_clean(),
        "sbrl-lint found {} violation(s):\n{}",
        rendered.len(),
        rendered.join("\n")
    );
}

#[test]
fn walk_covers_every_crate_and_the_root_src() {
    let report = lint_workspace(&workspace_root()).expect("workspace sources are readable");
    // The root meta-crate plus each member crate must contribute files: a
    // walk that silently drops a crate would let its contracts rot.
    for prefix in [
        "src/",
        "crates/bench/src/",
        "crates/core/src/",
        "crates/data/src/",
        "crates/experiments/src/",
        "crates/lint/src/",
        "crates/metrics/src/",
        "crates/models/src/",
        "crates/nn/src/",
        "crates/stats/src/",
        "crates/tensor/src/",
    ] {
        assert!(
            report.files.iter().any(|f| f.starts_with(prefix)),
            "no files walked under {prefix}"
        );
    }
    // vendor/ shims and target/ are out of scope by design.
    assert!(!report.files.iter().any(|f| f.starts_with("vendor/") || f.starts_with("target/")));
}

#[test]
fn workspace_carries_real_no_alloc_coverage() {
    // The static no-alloc rule only has teeth while hot-path functions stay
    // annotated; this keeps the annotation set from being deleted wholesale
    // without anyone noticing.
    let root = workspace_root();
    let mut annotated = 0usize;
    for file in ["crates/tensor/src/kernels.rs", "crates/tensor/src/matrix.rs"] {
        let src = std::fs::read_to_string(root.join(file)).expect("kernel sources exist");
        annotated += src.matches("lint: no_alloc").count();
    }
    assert!(annotated >= 8, "expected >= 8 no_alloc annotations in the kernel layer");
}
