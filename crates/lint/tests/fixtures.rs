//! Fixture-based tests for every rule family: each rule gets positive
//! (violation caught), negative (clean code passes), and allow-annotation
//! (suppression honoured, reason required) cases, exercised through the
//! same [`sbrl_lint::lint_source`] entry point the CLI uses.

use sbrl_lint::{lint_source, Diagnostic};

/// Findings for `src` as if it lived at `path`, as `(line, rule)` pairs.
fn findings(path: &str, src: &str) -> Vec<(usize, &'static str)> {
    lint_source(path, src).into_iter().map(|d| (d.line, d.rule)).collect()
}

fn rules_of(found: &[(usize, &'static str)]) -> Vec<&'static str> {
    found.iter().map(|&(_, r)| r).collect()
}

// ---------------------------------------------------------------- determinism

#[test]
fn hash_collection_flagged_in_numeric_crate() {
    let src = "use std::collections::HashMap;\npub struct S {\n    map: HashMap<u64, f64>,\n}\n";
    let found = findings("crates/tensor/src/x.rs", src);
    assert_eq!(found, vec![(1, "hash_collection"), (3, "hash_collection")]);
}

#[test]
fn hash_collection_ok_outside_numeric_crates() {
    let src = "use std::collections::HashMap;\npub fn f() -> HashMap<u64, f64> {\n    HashMap::new()\n}\n";
    assert!(findings("crates/experiments/src/x.rs", src).is_empty());
    assert!(findings("crates/data/src/x.rs", src).is_empty());
}

#[test]
fn hash_collection_allow_with_reason_suppresses() {
    let src = "// lint: allow(hash_collection) — keyed access only, never iterated\n\
               use std::collections::HashMap;\n";
    assert!(findings("crates/nn/src/x.rs", src).is_empty());
}

#[test]
fn hash_set_in_test_module_is_exempt() {
    let src = "pub fn lib() {}\n#[cfg(test)]\nmod tests {\n    use std::collections::HashSet;\n    #[test]\n    fn t() {\n        let _ = HashSet::<u64>::new();\n    }\n}\n";
    assert!(findings("crates/stats/src/x.rs", src).is_empty());
}

#[test]
fn thread_spawn_flagged_outside_workers() {
    let src = "pub fn f() {\n    std::thread::spawn(|| {});\n}\n";
    assert_eq!(findings("crates/models/src/x.rs", src), vec![(2, "spawn")]);
    // The same code in workers.rs is the sanctioned spawn site.
    assert!(findings("crates/tensor/src/workers.rs", src).is_empty());
}

#[test]
fn thread_scope_flagged_and_allow_suppresses() {
    let src = "pub fn f() {\n    std::thread::scope(|s| { let _ = s; });\n}\n";
    assert_eq!(rules_of(&findings("crates/core/src/x.rs", src)), vec!["spawn"]);
    let src = "pub fn f() {\n    // lint: allow(spawn) — one-shot startup helper, never per-step\n    std::thread::scope(|s| { let _ = s; });\n}\n";
    assert!(findings("crates/core/src/x.rs", src).is_empty());
}

#[test]
fn fma_flagged_outside_kernels() {
    let src = "pub fn f(a: f64, b: f64, c: f64) -> f64 {\n    a.mul_add(b, c)\n}\n";
    assert_eq!(findings("crates/stats/src/x.rs", src), vec![(2, "fma")]);
    assert!(findings("crates/tensor/src/kernels.rs", src).is_empty());
}

#[test]
fn fma_in_comment_or_string_is_not_code() {
    let src = "// a doc note about mul_add contraction\npub fn f() -> &'static str {\n    \"mul_add\"\n}\n";
    assert!(findings("crates/stats/src/x.rs", src).is_empty());
}

#[test]
fn wall_clock_flagged_in_kernel_files_only() {
    let src = "pub fn f() {\n    let _ = std::time::Instant::now();\n}\n";
    assert_eq!(findings("crates/tensor/src/kernels.rs", src), vec![(2, "time")]);
    assert_eq!(findings("crates/tensor/src/matrix.rs", src), vec![(2, "time")]);
    // Outside kernel code (e.g. the trainer watchdog) timing is legitimate.
    assert!(findings("crates/core/src/trainer.rs", src).is_empty());
}

#[test]
fn system_time_flagged_with_allow_escape() {
    let src = "pub fn f() {\n    // lint: allow(time) — debug tracing, compiled out of release\n    let _ = std::time::SystemTime::now();\n}\n";
    assert!(findings("crates/tensor/src/matrix.rs", src).is_empty());
}

// ------------------------------------------------------------- unsafe hygiene

#[test]
fn undocumented_unsafe_block_flagged() {
    let src = "pub fn f(p: *const u8) -> u8 {\n    unsafe { *p }\n}\n";
    assert_eq!(findings("crates/tensor/src/x.rs", src), vec![(2, "unsafe")]);
}

#[test]
fn safety_comment_above_discharges_unsafe() {
    let src = "pub fn f(p: *const u8) -> u8 {\n    // SAFETY: caller guarantees p is valid.\n    unsafe { *p }\n}\n";
    assert!(findings("crates/tensor/src/x.rs", src).is_empty());
}

#[test]
fn safety_comment_same_line_discharges_unsafe() {
    let src = "pub fn f(p: *const u8) -> u8 {\n    unsafe { *p } // SAFETY: caller guarantees p is valid.\n}\n";
    assert!(findings("crates/tensor/src/x.rs", src).is_empty());
}

#[test]
fn safety_doc_section_covers_unsafe_fn_through_attributes() {
    let src = "/// Lowers to wide ops.\n///\n/// # Safety\n/// Caller must verify AVX2 first.\n#[target_feature(enable = \"avx2\")]\npub unsafe fn f(x: &mut [f64]) {\n    x[0] = 1.0;\n}\n";
    assert!(findings("crates/tensor/src/x.rs", src).is_empty());
}

#[test]
fn safety_comment_above_multiline_statement_is_adjacent() {
    let src = "pub fn f(p: *const u8) -> u8 {\n    // SAFETY: caller guarantees p is valid.\n    let v =\n        unsafe { *p };\n    v\n}\n";
    assert!(findings("crates/tensor/src/x.rs", src).is_empty());
}

#[test]
fn each_unsafe_impl_needs_its_own_safety_comment() {
    let src = "struct P(*mut u8);\n// SAFETY: only ever written from one thread.\nunsafe impl Send for P {}\nunsafe impl Sync for P {}\n";
    assert_eq!(findings("crates/tensor/src/x.rs", src), vec![(4, "unsafe")]);
}

#[test]
fn unsafe_in_raw_string_or_comment_is_not_flagged() {
    let src = "/// Explains the unsafe contract at length.\npub fn f() -> &'static str {\n    r#\"unsafe { *p } // not code\"#\n}\n";
    assert!(findings("crates/tensor/src/x.rs", src).is_empty());
}

#[test]
fn unsafe_rule_applies_inside_test_modules_too() {
    let src = "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {\n        let x = 0u8;\n        let _ = unsafe { *(&x as *const u8) };\n    }\n}\n";
    assert_eq!(rules_of(&findings("crates/tensor/src/x.rs", src)), vec!["unsafe"]);
}

#[test]
fn blank_line_breaks_safety_adjacency() {
    let src = "pub fn f(p: *const u8) -> u8 {\n    // SAFETY: caller guarantees p is valid.\n\n    unsafe { *p }\n}\n";
    assert_eq!(rules_of(&findings("crates/tensor/src/x.rs", src)), vec!["unsafe"]);
}

// -------------------------------------------------------------- panic-freedom

#[test]
fn panic_family_flagged_in_library_code() {
    let src = "pub fn f(v: Option<u8>) -> u8 {\n    v.unwrap()\n}\npub fn g(v: Option<u8>) -> u8 {\n    v.expect(\"set\")\n}\npub fn h() {\n    panic!(\"boom\");\n}\npub fn i() {\n    unreachable!();\n}\npub fn j() {\n    todo!();\n}\n";
    let found = findings("crates/metrics/src/x.rs", src);
    assert_eq!(found, vec![(2, "panic"), (5, "panic"), (8, "panic"), (11, "panic"), (14, "panic")]);
}

#[test]
fn non_panicking_unwrap_variants_pass() {
    let src = "pub fn f(v: Option<u8>) -> u8 {\n    v.unwrap_or(0)\n}\npub fn g(v: Option<u8>) -> u8 {\n    v.unwrap_or_else(|| 1)\n}\npub fn h(v: Option<u8>) -> u8 {\n    v.unwrap_or_default()\n}\n";
    assert!(findings("crates/metrics/src/x.rs", src).is_empty());
}

#[test]
fn panic_allowed_in_bins_tests_and_with_annotation() {
    let src = "fn main() {\n    std::env::args().next().unwrap();\n}\n";
    assert!(findings("crates/experiments/src/bin/table1.rs", src).is_empty());

    let src = "pub fn lib() {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {\n        Some(1).unwrap();\n    }\n}\n";
    assert!(findings("crates/core/src/x.rs", src).is_empty());

    let src = "pub fn f(v: Option<u8>) -> u8 {\n    // lint: allow(panic) — invariant: caller checked is_some above\n    v.unwrap()\n}\n";
    assert!(findings("crates/core/src/x.rs", src).is_empty());
}

#[test]
fn multiline_allow_reason_still_suppresses() {
    let src = "pub fn f(v: Option<u8>) -> u8 {\n    // lint: allow(panic) — a long justification that wraps onto the\n    // following comment line before the finding itself.\n    v.unwrap()\n}\n";
    assert!(findings("crates/core/src/x.rs", src).is_empty());
}

#[test]
fn allow_without_reason_is_rejected_and_does_not_suppress() {
    let src = "pub fn f(v: Option<u8>) -> u8 {\n    // lint: allow(panic)\n    v.unwrap()\n}\n";
    let found = findings("crates/core/src/x.rs", src);
    assert_eq!(rules_of(&found), vec!["annotation", "panic"]);
}

#[test]
fn unknown_allow_rule_is_rejected() {
    let src = "// lint: allow(painc) — typo'd rule name\npub fn f() {}\n";
    assert_eq!(rules_of(&findings("crates/core/src/x.rs", src)), vec!["annotation"]);
}

// ------------------------------------------------------------ static no-alloc

#[test]
fn no_alloc_fn_with_allocation_is_flagged() {
    let src = "// lint: no_alloc\npub fn f(n: usize) -> Vec<f64> {\n    let v: Vec<f64> = (0..n).map(|i| i as f64).collect();\n    v\n}\n";
    let found = findings("crates/tensor/src/x.rs", src);
    assert_eq!(found, vec![(3, "alloc")]);
}

#[test]
fn no_alloc_fn_catches_each_allocating_construct() {
    for expr in
        ["Vec::new()", "vec![0.0; 4]", "x.to_vec()", "format!(\"{n}\")", "Box::new(n)", "x.clone()"]
    {
        let src = format!(
            "// lint: no_alloc\npub fn f(n: usize, x: &[f64]) {{\n    let _ = {expr};\n}}\n"
        );
        let found = findings("crates/tensor/src/x.rs", &src);
        assert_eq!(rules_of(&found), vec!["alloc"], "construct: {expr}");
    }
}

#[test]
fn clean_no_alloc_fn_passes() {
    let src = "// lint: no_alloc\npub fn f(out: &mut [f64], a: &[f64]) {\n    for (o, &v) in out.iter_mut().zip(a) {\n        *o += v * v;\n    }\n}\n";
    assert!(findings("crates/tensor/src/x.rs", src).is_empty());
}

#[test]
fn unannotated_fn_may_allocate_freely() {
    let src = "pub fn f(n: usize) -> Vec<f64> {\n    (0..n).map(|i| i as f64).collect()\n}\n";
    assert!(findings("crates/tensor/src/x.rs", src).is_empty());
}

#[test]
fn no_alloc_scan_stops_at_fn_end() {
    let src = "// lint: no_alloc\npub fn f(out: &mut [f64]) {\n    out.fill(0.0);\n}\n\npub fn g(n: usize) -> Vec<f64> {\n    Vec::with_capacity(n)\n}\n";
    assert!(findings("crates/tensor/src/x.rs", src).is_empty());
}

#[test]
fn no_alloc_allows_line_level_warmup_escape() {
    let src = "// lint: no_alloc\npub fn f(slot: &mut Option<Vec<f64>>, n: usize) {\n    // lint: allow(alloc) — warm-up only, reused afterwards\n    let buf = slot.get_or_insert_with(|| Vec::with_capacity(n));\n    buf.fill(0.0);\n}\n";
    assert!(findings("crates/tensor/src/x.rs", src).is_empty());
}

#[test]
fn dangling_no_alloc_annotation_is_flagged() {
    let src = "// lint: no_alloc\npub struct NotAFunction;\n";
    assert_eq!(rules_of(&findings("crates/tensor/src/x.rs", src)), vec!["annotation"]);
}

#[test]
fn no_alloc_skips_attributes_between_annotation_and_fn() {
    let src = "// lint: no_alloc\n#[inline(always)]\n#[cfg(target_arch = \"x86_64\")]\npub fn f(out: &mut [f64]) {\n    out.fill(1.0);\n}\n";
    assert!(findings("crates/tensor/src/x.rs", src).is_empty());
}

// ---------------------------------------------------------------- diagnostics

#[test]
fn diagnostics_carry_path_line_and_render_clickable() {
    let src = "pub fn f(v: Option<u8>) -> u8 {\n    v.unwrap()\n}\n";
    let found: Vec<Diagnostic> = lint_source("crates/core/src/x.rs", src);
    assert_eq!(found.len(), 1);
    let rendered = found[0].to_string();
    assert!(rendered.starts_with("crates/core/src/x.rs:2: [panic]"), "got: {rendered}");
}

#[test]
fn findings_are_reported_in_line_order() {
    let src = "pub fn a() {\n    panic!(\"one\");\n}\npub fn b() {\n    todo!();\n}\n";
    let lines: Vec<usize> = findings("crates/core/src/x.rs", src).iter().map(|&(l, _)| l).collect();
    assert_eq!(lines, vec![2, 5]);
}
