//! CLI for `sbrl-lint`: walks the workspace, prints `file:line: [rule]`
//! diagnostics, and exits non-zero on any finding.
//!
//! ```text
//! cargo run --release -p sbrl-lint            # lint the enclosing workspace
//! cargo run --release -p sbrl-lint -- --root /path/to/ws
//! cargo run --release -p sbrl-lint -- --quiet # suppress the clean summary
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use sbrl_lint::{find_workspace_root, lint_workspace};

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut quiet = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("sbrl-lint: --root needs a path argument");
                    return ExitCode::from(2);
                }
            },
            "--quiet" => quiet = true,
            "--help" | "-h" => {
                println!(
                    "sbrl-lint: determinism/safety static analysis for this workspace\n\
                     \n\
                     USAGE: sbrl-lint [--root <workspace>] [--quiet]\n\
                     \n\
                     Exits 0 when clean, 1 on any diagnostic, 2 on usage/IO errors.\n\
                     Rule catalog and annotation grammar: docs/STATIC_ANALYSIS.md"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("sbrl-lint: unknown argument `{other}` (try --help)");
                return ExitCode::from(2);
            }
        }
    }

    let root = match root {
        Some(r) => r,
        None => {
            let cwd = match std::env::current_dir() {
                Ok(d) => d,
                Err(e) => {
                    eprintln!("sbrl-lint: cannot determine working directory: {e}");
                    return ExitCode::from(2);
                }
            };
            match find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!(
                        "sbrl-lint: no workspace Cargo.toml found above {} (use --root)",
                        cwd.display()
                    );
                    return ExitCode::from(2);
                }
            }
        }
    };

    let report = match lint_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("sbrl-lint: failed to walk {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    for d in &report.diagnostics {
        println!("{d}");
    }
    if report.is_clean() {
        if !quiet {
            println!("sbrl-lint: {} files clean", report.files.len());
        }
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "sbrl-lint: {} violation(s) across {} files",
            report.diagnostics.len(),
            report.files.len()
        );
        ExitCode::FAILURE
    }
}
