//! Per-file context the rules need: which crate a file belongs to, whether
//! it is library or binary code, and which line ranges are test-only.
//!
//! Region detection is lexical but brace-accurate: `#[cfg(test)] mod … { … }`
//! blocks and `#[test]` functions are found on the *code* stream (comments
//! and string contents already stripped by the lexer), then delimited by
//! brace matching, so a stray `}` inside a string can never truncate a test
//! region.

use crate::lexer::{has_token, LexedFile};

/// How a file participates in the build, derived from its path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Ordinary library source under `src/`.
    Library,
    /// An executable entry point (`src/bin/*` or `src/main.rs`): panics are
    /// an acceptable top-level error strategy there.
    Binary,
}

/// Context for one lexed file.
#[derive(Debug, Clone)]
pub struct FileContext {
    /// Workspace-relative path, `/`-separated (used in diagnostics).
    pub path: String,
    /// Crate the file belongs to (`tensor`, `core`, …; the root meta-crate
    /// is `sbrl-hap`).
    pub crate_name: String,
    /// Library vs binary classification.
    pub kind: FileKind,
    /// 1-based `(start, end)` line ranges that are test-only code.
    pub test_regions: Vec<(usize, usize)>,
}

/// Crates whose numeric results feed the paper's reproduction claims; the
/// determinism rules apply to these.
pub const NUMERIC_CRATES: &[&str] = &["tensor", "stats", "nn", "models", "core"];

impl FileContext {
    /// Builds a context from a workspace-relative path and its lexed source.
    pub fn new(rel_path: &str, lexed: &LexedFile) -> FileContext {
        let path = rel_path.replace('\\', "/");
        let crate_name = match path.strip_prefix("crates/") {
            Some(rest) => rest.split('/').next().unwrap_or("").to_string(),
            None => "sbrl-hap".to_string(),
        };
        let kind = if path.contains("/bin/") || path.ends_with("/main.rs") {
            FileKind::Binary
        } else {
            FileKind::Library
        };
        let test_regions = find_test_regions(lexed);
        FileContext { path, crate_name, kind, test_regions }
    }

    /// True when the determinism rules apply to this file's crate.
    pub fn is_numeric_crate(&self) -> bool {
        NUMERIC_CRATES.contains(&self.crate_name.as_str())
    }

    /// File basename (`workers.rs`), for rules scoped to specific files.
    pub fn file_name(&self) -> &str {
        self.path.rsplit('/').next().unwrap_or(&self.path)
    }

    /// True when 1-based `line` falls inside a test-only region.
    pub fn is_test_line(&self, line: usize) -> bool {
        self.test_regions.iter().any(|&(start, end)| line >= start && line <= end)
    }
}

/// Finds `#[cfg(test)]`-gated items and `#[test]` functions, returning their
/// 1-based inclusive line ranges.
fn find_test_regions(lexed: &LexedFile) -> Vec<(usize, usize)> {
    let mut regions = Vec::new();
    let mut i = 1usize;
    while i <= lexed.len() {
        let code = lexed.line(i).code;
        let is_test_attr = code.contains("#[cfg(test)]")
            || code.contains("#[cfg(all(test")
            || has_token(&code, "#[test]");
        if is_test_attr {
            if let Some(end) = item_end(lexed, i) {
                regions.push((i, end));
                i = end + 1;
                continue;
            }
        }
        i += 1;
    }
    regions
}

/// Given the line of an attribute, finds the last line of the item it
/// decorates by matching braces from the item's opening `{`. Items that end
/// without a body (`#[cfg(test)] use …;`) span to their terminating `;`.
fn item_end(lexed: &LexedFile, attr_line: usize) -> Option<usize> {
    let mut depth = 0isize;
    let mut seen_open = false;
    for line_no in attr_line..=lexed.len() {
        let code = lexed.line(line_no).code;
        for c in code.chars() {
            match c {
                '{' => {
                    depth += 1;
                    seen_open = true;
                }
                '}' => depth -= 1,
                ';' if !seen_open && line_no > attr_line => return Some(line_no),
                ';' if !seen_open && !code.contains('{') && code.contains(';') => {
                    return Some(line_no)
                }
                _ => {}
            }
        }
        if seen_open && depth == 0 {
            return Some(line_no);
        }
    }
    None
}

/// Finds the end line of the `fn` whose signature begins at or after
/// `from_line` (skipping attribute/doc lines), returning the 1-based range
/// `(signature_line, body_end_line)`. Returns `None` when no `fn` follows
/// within `max_skip` non-fn lines — callers treat that as a malformed
/// annotation.
pub fn fn_span(lexed: &LexedFile, from_line: usize, max_skip: usize) -> Option<(usize, usize)> {
    let mut sig = None;
    for line_no in from_line..=lexed.len().min(from_line + max_skip) {
        let code = lexed.line(line_no).code;
        if has_token(&code, "fn") {
            sig = Some(line_no);
            break;
        }
        // Attributes, doc comments, and blank lines may sit between the
        // annotation and the signature; real code may not.
        let trimmed = code.trim().to_string();
        if !trimmed.is_empty() && !trimmed.starts_with("#[") && !trimmed.starts_with(']') {
            return None;
        }
    }
    let sig = sig?;
    let end = item_end(lexed, sig)?;
    Some((sig, end))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn cfg_test_module_becomes_a_region() {
        let src = "fn lib_code() {}\n\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { assert!(true); }\n}\n";
        let lexed = lex(src);
        let ctx = FileContext::new("crates/core/src/x.rs", &lexed);
        assert!(!ctx.is_test_line(1));
        assert!(ctx.is_test_line(3));
        assert!(ctx.is_test_line(6));
        assert!(ctx.is_test_line(7));
    }

    #[test]
    fn test_fn_outside_module_becomes_a_region() {
        let src = "fn lib() {}\n#[test]\nfn standalone() {\n    lib();\n}\nfn more_lib() {}\n";
        let lexed = lex(src);
        let ctx = FileContext::new("crates/core/src/x.rs", &lexed);
        assert!(ctx.is_test_line(2));
        assert!(ctx.is_test_line(4));
        assert!(!ctx.is_test_line(6));
    }

    #[test]
    fn braces_in_strings_do_not_truncate_regions() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t() { let s = \"}\"; check(s); }\n    fn u() {}\n}\nfn lib() {}\n";
        let lexed = lex(src);
        let ctx = FileContext::new("crates/core/src/x.rs", &lexed);
        assert!(ctx.is_test_line(4));
        assert!(!ctx.is_test_line(6));
    }

    #[test]
    fn crate_and_kind_classification() {
        let lexed = lex("fn main() {}\n");
        let ctx = FileContext::new("crates/experiments/src/bin/table1.rs", &lexed);
        assert_eq!(ctx.crate_name, "experiments");
        assert_eq!(ctx.kind, FileKind::Binary);
        assert!(!ctx.is_numeric_crate());

        let ctx = FileContext::new("crates/tensor/src/kernels.rs", &lexed);
        assert_eq!(ctx.kind, FileKind::Library);
        assert!(ctx.is_numeric_crate());
        assert_eq!(ctx.file_name(), "kernels.rs");

        let ctx = FileContext::new("src/lib.rs", &lexed);
        assert_eq!(ctx.crate_name, "sbrl-hap");
        assert!(!ctx.is_numeric_crate());
    }

    #[test]
    fn fn_span_skips_attributes_and_matches_body() {
        let src = "#[inline]\n#[target_feature(enable = \"avx2\")]\nunsafe fn f(x: &mut [f64]) {\n    body();\n}\nfn g() {}\n";
        let lexed = lex(src);
        assert_eq!(fn_span(&lexed, 1, 8), Some((3, 5)));
    }

    #[test]
    fn fn_span_rejects_intervening_code() {
        let src = "let x = 1;\nfn f() {}\n";
        let lexed = lex(src);
        assert_eq!(fn_span(&lexed, 1, 8), None);
    }
}
