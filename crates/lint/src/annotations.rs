//! The `// lint:` annotation grammar.
//!
//! Two annotation forms are recognised, both living in comments so the
//! compiler never sees them:
//!
//! - `// lint: allow(<rule>) — <reason>` suppresses one rule on the **same
//!   line** or the **line immediately below** the annotation. The reason is
//!   mandatory: an allow without a justification is itself a diagnostic
//!   (the `annotation` meta-rule), so suppressions cannot silently
//!   accumulate. `—`, `--`, `-`, or `:` all work as the reason separator.
//! - `// lint: no_alloc` marks the `fn` whose signature starts on the next
//!   code line (attributes and doc comments may intervene) as statically
//!   allocation-free: its body is scanned for allocating calls by the
//!   no-alloc rule. An annotation that is not followed by a `fn` is a
//!   diagnostic — the marker is *checked*, never decorative.
//!
//! Known rule names are listed in [`ALLOW_RULES`]; an unknown name is a
//! diagnostic too, so typos (`allow(painc)`) fail loudly instead of
//! suppressing nothing.

/// Rule names accepted inside `allow(…)`.
pub const ALLOW_RULES: &[&str] =
    &["hash_collection", "spawn", "fma", "time", "panic", "persist_reader", "wire_reader", "alloc"];

/// A parsed `lint:` annotation found in a comment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Annotation {
    /// `allow(rule) — reason`: suppress `rule` here, with a justification.
    Allow {
        /// The rule being suppressed (one of [`ALLOW_RULES`]).
        rule: String,
        /// Mandatory human-readable justification.
        reason: String,
    },
    /// `no_alloc`: the next function must not allocate.
    NoAlloc,
    /// The comment says `lint:` but the rest does not parse; the payload is
    /// the error message to report.
    Malformed(String),
}

/// Parses the `lint:` annotation in `comment`, if any. Returns `None` for
/// comments without a `lint:` marker; anything *with* the marker parses to
/// either a valid annotation or [`Annotation::Malformed`].
pub fn parse(comment: &str) -> Option<Annotation> {
    let idx = comment.find("lint:")?;
    // Require the marker at the start of the comment text (modulo doc-sigils
    // and whitespace) so prose like "the lint: rule catalog" is not parsed.
    let lead = &comment[..idx];
    if !lead.chars().all(|c| c.is_whitespace() || c == '/' || c == '!') {
        return None;
    }
    let body = comment[idx + "lint:".len()..].trim();
    if body == "no_alloc" {
        return Some(Annotation::NoAlloc);
    }
    if let Some(rest) = body.strip_prefix("allow") {
        let rest = rest.trim_start();
        let Some(inner) = rest.strip_prefix('(') else {
            return Some(Annotation::Malformed("expected `allow(<rule>) — <reason>`".to_string()));
        };
        let Some(close) = inner.find(')') else {
            return Some(Annotation::Malformed("unclosed `allow(` annotation".to_string()));
        };
        let rule = inner[..close].trim();
        if !ALLOW_RULES.contains(&rule) {
            return Some(Annotation::Malformed(format!(
                "unknown rule `{rule}` in allow annotation (known: {})",
                ALLOW_RULES.join(", ")
            )));
        }
        let mut reason = inner[close + 1..].trim_start();
        // Strip the separator: an em-dash, any run of ASCII dashes, or a colon.
        reason = reason.trim_start_matches(['—', '-', ':']).trim();
        if reason.is_empty() {
            return Some(Annotation::Malformed(format!(
                "allow({rule}) needs a reason: `// lint: allow({rule}) — <why this is sound>`"
            )));
        }
        return Some(Annotation::Allow { rule: rule.to_string(), reason: reason.to_string() });
    }
    Some(Annotation::Malformed(format!(
        "unrecognised lint annotation `{body}` (expected `allow(<rule>) — <reason>` or `no_alloc`)"
    )))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_allow_with_em_dash_reason() {
        let a = parse(" lint: allow(panic) — poisoned mutex is unrecoverable").unwrap();
        assert_eq!(
            a,
            Annotation::Allow {
                rule: "panic".into(),
                reason: "poisoned mutex is unrecoverable".into()
            }
        );
    }

    #[test]
    fn parses_allow_with_ascii_separators() {
        for sep in ["--", "-", ":"] {
            let a = parse(&format!(" lint: allow(fma) {sep} fixture only")).unwrap();
            assert_eq!(a, Annotation::Allow { rule: "fma".into(), reason: "fixture only".into() });
        }
    }

    #[test]
    fn parses_no_alloc() {
        assert_eq!(parse(" lint: no_alloc"), Some(Annotation::NoAlloc));
    }

    #[test]
    fn missing_reason_is_malformed() {
        assert!(matches!(parse(" lint: allow(panic)"), Some(Annotation::Malformed(_))));
        assert!(matches!(parse(" lint: allow(panic) — "), Some(Annotation::Malformed(_))));
    }

    #[test]
    fn unknown_rule_is_malformed() {
        let a = parse(" lint: allow(painc) — typo").unwrap();
        assert!(matches!(a, Annotation::Malformed(m) if m.contains("painc")));
    }

    #[test]
    fn garbage_after_marker_is_malformed() {
        assert!(matches!(parse(" lint: frobnicate"), Some(Annotation::Malformed(_))));
    }

    #[test]
    fn plain_comments_are_ignored() {
        assert_eq!(parse(" just a comment"), None);
        assert_eq!(parse(" the lint: rule catalog lives in docs/"), None);
    }

    #[test]
    fn doc_comment_sigils_before_marker_are_tolerated() {
        assert!(parse("! lint: no_alloc").is_some());
    }
}
