//! `sbrl-lint` — workspace-local static analysis for the SBRL-HAP
//! reproduction.
//!
//! The paper's claims only reproduce under contracts the compiler cannot
//! see: bit-exact `(code, seed, mode)` reproducibility, zero-allocation /
//! zero-spawn steady-state training steps, and panic-free library code that
//! a serving stack can trust. The runtime probes (counting allocator,
//! spawn probe, golden regressions) catch violations *after* they ship;
//! this crate catches them at review time, statically, with zero
//! dependencies and a sub-second run.
//!
//! Four rule families (see [`rules`] for the catalog):
//!
//! 1. **determinism** — no hash-ordered collections in numeric crates, no
//!    thread spawns outside the worker pool, no FMA contraction outside the
//!    gated kernel clones, no wall-clock reads in kernel code;
//! 2. **unsafe hygiene** — every `unsafe` token carries an adjacent
//!    `// SAFETY:` comment (independently enforced by
//!    `clippy::undocumented_unsafe_blocks` via `[workspace.lints]`);
//! 3. **panic-freedom** — no `unwrap`/`expect`/`panic!`-family calls in
//!    library code without a reasoned `// lint: allow(panic)` annotation;
//! 4. **static no-alloc** — `// lint: no_alloc`-annotated functions (the
//!    ones the pooled training step reaches) must not contain allocating
//!    constructs, complementing the runtime alloc probe.
//!
//! The analysis is lexical, not semantic: a hand-rolled lexer ([`lexer`])
//! strips comments and blanks string/char literals so rules match real code
//! tokens only, and [`context`] scopes rules by crate, binary-vs-library
//! role, and `#[cfg(test)]` regions. See `docs/STATIC_ANALYSIS.md` for the
//! rule catalog and the allow-annotation grammar.

#![warn(missing_docs)]

pub mod annotations;
pub mod context;
pub mod engine;
pub mod lexer;
pub mod rules;

pub use engine::{find_workspace_root, lint_source, lint_workspace, Report};
pub use rules::Diagnostic;
