//! A minimal Rust lexer that separates *code* from *comments* and blanks out
//! string/char literal contents.
//!
//! The rule engine ([`crate::rules`]) is purely lexical: it looks for tokens
//! like `unsafe`, `HashMap`, or `.unwrap()` in source text. Doing that on raw
//! source would misfire on the word `unsafe` inside a doc comment or a raw
//! string, so every file is first lexed into per-line `(code, comment)` pairs
//! where
//!
//! - line (`//`) and block (`/* … */`) comments — including **nested** block
//!   comments — are routed to the line's `comment` field,
//! - string literals (`"…"`), raw strings (`r"…"`, `r#"…"#`, any hash
//!   depth), byte strings (`b"…"`, `br#"…"#`), and char literals (`'x'`,
//!   `'\n'`) keep their delimiters in `code` but have their **contents
//!   blanked**, so a string containing `unsafe` or `*/` cannot confuse a
//!   rule (or the lexer itself),
//! - lifetimes (`'a`, `'static`) are left in `code` untouched (they are not
//!   char literals), and raw identifiers (`r#fn`) are left in `code` (they
//!   are not raw strings).
//!
//! The lexer is infallible by design: any input produces *some* lexing, and
//! unterminated constructs simply run to end-of-file. Rules only ever see
//! well-formed repository sources, which the self-check test keeps honest.

/// One source line, split into its code and comment parts.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Line {
    /// Code text with comments removed and literal contents blanked.
    /// Column positions are **not** preserved (blanking shortens the text);
    /// rules report line numbers only.
    pub code: String,
    /// Concatenated comment text of the line (without `//`, `/*`, `*/`
    /// markers), or empty when the line has no comment.
    pub comment: String,
}

impl Line {
    /// True when the line carries code tokens (not just whitespace).
    pub fn has_code(&self) -> bool {
        !self.code.trim().is_empty()
    }

    /// True when the line carries a comment.
    pub fn has_comment(&self) -> bool {
        !self.comment.trim().is_empty()
    }
}

/// A lexed source file: one [`Line`] per physical source line.
#[derive(Debug, Clone, Default)]
pub struct LexedFile {
    /// Per-line code/comment split, index 0 = line 1.
    pub lines: Vec<Line>,
}

impl LexedFile {
    /// 1-based accessor used by the rules; out-of-range lines read as empty.
    pub fn line(&self, number: usize) -> Line {
        if number == 0 {
            return Line::default();
        }
        self.lines.get(number - 1).cloned().unwrap_or_default()
    }

    /// Number of physical lines.
    pub fn len(&self) -> usize {
        self.lines.len()
    }

    /// True for an empty file.
    pub fn is_empty(&self) -> bool {
        self.lines.is_empty()
    }
}

/// Lexes `source` into per-line code/comment pairs. Infallible; see the
/// module docs for the exact blanking semantics.
pub fn lex(source: &str) -> LexedFile {
    Lexer::new(source).run()
}

struct Lexer<'a> {
    chars: Vec<char>,
    pos: usize,
    source: &'a str,
    lines: Vec<Line>,
    line: Line,
}

impl<'a> Lexer<'a> {
    fn new(source: &'a str) -> Self {
        Lexer {
            chars: source.chars().collect(),
            pos: 0,
            source,
            lines: Vec::new(),
            line: Line::default(),
        }
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek(0)?;
        self.pos += 1;
        if c == '\n' {
            let finished = std::mem::take(&mut self.line);
            self.lines.push(finished);
        }
        Some(c)
    }

    fn push_code(&mut self, c: char) {
        if c != '\n' {
            self.line.code.push(c);
        }
    }

    fn push_comment(&mut self, c: char) {
        if c != '\n' {
            self.line.comment.push(c);
        }
    }

    /// True when the character *before* `self.pos` continues an identifier,
    /// i.e. a following `r`/`b` cannot start a raw/byte string literal and a
    /// following `'` is more likely a lifetime position. Looks at the code
    /// emitted so far on this line, which excludes comment text.
    fn prev_is_ident(&self) -> bool {
        self.line.code.chars().last().is_some_and(|c| c.is_alphanumeric() || c == '_')
    }

    fn run(mut self) -> LexedFile {
        while let Some(c) = self.peek(0) {
            match c {
                '/' if self.peek(1) == Some('/') => self.line_comment(),
                '/' if self.peek(1) == Some('*') => self.block_comment(),
                '"' => self.string_literal(),
                '\'' => self.char_or_lifetime(),
                'r' | 'b' if !self.prev_is_ident() => {
                    if !self.raw_or_byte_literal() {
                        self.push_code(c);
                        self.bump();
                    }
                }
                _ => {
                    self.push_code(c);
                    self.bump();
                }
            }
        }
        if self.line.has_code() || self.line.has_comment() || !self.source.ends_with('\n') {
            let last = std::mem::take(&mut self.line);
            if !self.source.is_empty() {
                self.lines.push(last);
            }
        }
        LexedFile { lines: self.lines }
    }

    /// `// …` to end of line. The `//` marker is dropped; the text after it
    /// (doc-comment `/`/`!` sigils included) goes to `comment`.
    fn line_comment(&mut self) {
        self.bump();
        self.bump();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            self.push_comment(c);
            self.bump();
        }
    }

    /// `/* … */` with nesting; spans lines, each line receiving its share of
    /// the comment text.
    fn block_comment(&mut self) {
        self.bump();
        self.bump();
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some('/'), Some('*')) => {
                    depth += 1;
                    self.push_comment('/');
                    self.push_comment('*');
                    self.bump();
                    self.bump();
                }
                (Some('*'), Some('/')) => {
                    depth -= 1;
                    self.bump();
                    self.bump();
                }
                (Some(c), _) => {
                    self.push_comment(c);
                    self.bump();
                }
                (None, _) => break,
            }
        }
    }

    /// `"…"` with escape handling; contents blanked, delimiters kept.
    fn string_literal(&mut self) {
        self.push_code('"');
        self.bump();
        while let Some(c) = self.peek(0) {
            match c {
                '\\' => {
                    self.bump();
                    self.bump();
                }
                '"' => {
                    self.push_code('"');
                    self.bump();
                    return;
                }
                _ => {
                    self.bump();
                }
            }
        }
    }

    /// Distinguishes `'x'` / `'\n'` char literals (blanked) from lifetimes
    /// (`'a`, `'static`), which stay in the code stream.
    fn char_or_lifetime(&mut self) {
        let is_char_literal = match self.peek(1) {
            Some('\\') => true,
            Some(_) => self.peek(2) == Some('\''),
            None => false,
        };
        if !is_char_literal {
            self.push_code('\'');
            self.bump();
            return;
        }
        self.push_code('\'');
        self.bump();
        while let Some(c) = self.peek(0) {
            match c {
                '\\' => {
                    self.bump();
                    self.bump();
                }
                '\'' => {
                    self.push_code('\'');
                    self.bump();
                    return;
                }
                _ => {
                    self.bump();
                }
            }
        }
    }

    /// Handles `r"…"`, `r#"…"#` (any hash depth), `b"…"`, `br#"…"#`, and
    /// `b'…'`. Returns false when the lookahead is **not** a literal (e.g.
    /// the raw identifier `r#fn`, or a plain identifier starting with `r`),
    /// in which case the caller emits the character as ordinary code.
    fn raw_or_byte_literal(&mut self) -> bool {
        let mut ahead = 1usize;
        let first = self.peek(0).unwrap_or('r');
        let mut raw = first == 'r';
        if first == 'b' {
            match self.peek(1) {
                Some('r') => {
                    raw = true;
                    ahead = 2;
                }
                Some('"') => {
                    // b"…": plain byte string.
                    self.push_code('b');
                    self.bump();
                    self.string_literal();
                    return true;
                }
                Some('\'') => {
                    // b'…': byte char literal.
                    self.push_code('b');
                    self.bump();
                    self.char_or_lifetime();
                    return true;
                }
                _ => return false,
            }
        }
        if !raw {
            return false;
        }
        let mut hashes = 0usize;
        while self.peek(ahead) == Some('#') {
            hashes += 1;
            ahead += 1;
        }
        if self.peek(ahead) != Some('"') {
            // `r#fn`-style raw identifier or a plain ident: not a literal.
            return false;
        }
        // Consume prefix + opening quote, keeping delimiters in the code.
        for _ in 0..ahead + 1 {
            let c = self.peek(0).unwrap_or('"');
            self.push_code(c);
            self.bump();
        }
        // Raw string body: no escapes; ends at `"` followed by `hashes` #s.
        while let Some(c) = self.peek(0) {
            if c == '"' {
                let mut matched = true;
                for i in 0..hashes {
                    if self.peek(1 + i) != Some('#') {
                        matched = false;
                        break;
                    }
                }
                if matched {
                    for _ in 0..hashes + 1 {
                        let d = self.peek(0).unwrap_or('#');
                        self.push_code(d);
                        self.bump();
                    }
                    return true;
                }
            }
            self.bump();
        }
        true
    }
}

/// True when `haystack` contains `needle` as a whole token: the characters
/// on either side of the match must not be identifier characters. Non-ident
/// needles (e.g. `.unwrap()`) reduce to a plain substring search on their
/// ident-boundary ends.
pub fn has_token(haystack: &str, needle: &str) -> bool {
    let ident = |c: char| c.is_alphanumeric() || c == '_';
    let needle_starts_ident = needle.chars().next().is_some_and(ident);
    let needle_ends_ident = needle.chars().last().is_some_and(ident);
    let mut start = 0;
    while let Some(found) = haystack[start..].find(needle) {
        let at = start + found;
        let before_ok =
            !needle_starts_ident || at == 0 || !haystack[..at].chars().last().is_some_and(ident);
        let end = at + needle.len();
        let after_ok = !needle_ends_ident || !haystack[end..].chars().next().is_some_and(ident);
        if before_ok && after_ok {
            return true;
        }
        start = at + 1;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_code_and_line_comment() {
        let lexed = lex("let x = 1; // trailing note\n");
        assert_eq!(lexed.lines[0].code, "let x = 1; ");
        assert_eq!(lexed.lines[0].comment, " trailing note");
    }

    #[test]
    fn doc_comments_are_comments() {
        let lexed = lex("/// calls unsafe code\nfn f() {}\n");
        assert!(!lexed.lines[0].has_code());
        assert!(lexed.lines[0].comment.contains("unsafe"));
        assert!(lexed.lines[1].code.contains("fn f"));
    }

    #[test]
    fn nested_block_comments_terminate_correctly() {
        let lexed = lex("a /* outer /* inner */ still comment */ b\n");
        assert_eq!(lexed.lines[0].code, "a  b");
        assert!(lexed.lines[0].comment.contains("inner"));
    }

    #[test]
    fn multiline_block_comment_spans_lines() {
        let lexed = lex("x /* one\ntwo\nthree */ y\n");
        assert_eq!(lexed.lines[0].code, "x ");
        assert!(!lexed.lines[1].has_code());
        assert_eq!(lexed.lines[1].comment, "two");
        assert_eq!(lexed.lines[2].code, " y");
    }

    #[test]
    fn string_contents_are_blanked() {
        let lexed = lex("let s = \"unsafe // not a comment\";\n");
        assert_eq!(lexed.lines[0].code, "let s = \"\";");
        assert!(!lexed.lines[0].has_comment());
    }

    #[test]
    fn escaped_quote_does_not_end_string() {
        let lexed = lex("let s = \"a\\\"unsafe\"; let t = 1;\n");
        assert_eq!(lexed.lines[0].code, "let s = \"\"; let t = 1;");
    }

    #[test]
    fn raw_string_with_hashes_hides_unsafe_and_quotes() {
        let lexed = lex("let s = r#\"unsafe { \"nested\" } */\"#; call();\n");
        assert_eq!(lexed.lines[0].code, "let s = r#\"\"#; call();");
    }

    #[test]
    fn raw_identifier_is_not_a_string() {
        let lexed = lex("let r#fn = 3; use_it(r#fn);\n");
        assert_eq!(lexed.lines[0].code, "let r#fn = 3; use_it(r#fn);");
    }

    #[test]
    fn byte_and_raw_byte_strings_are_blanked() {
        let lexed = lex("let a = b\"unsafe\"; let b2 = br#\"panic!\"#;\n");
        assert_eq!(lexed.lines[0].code, "let a = b\"\"; let b2 = br#\"\"#;");
    }

    #[test]
    fn char_literals_blank_but_lifetimes_survive() {
        let lexed = lex("fn f<'a>(x: &'a str) -> char { '\\'' }\n");
        assert_eq!(lexed.lines[0].code, "fn f<'a>(x: &'a str) -> char { '' }");
        let lexed = lex("let c = 'u'; let l: &'static str = \"\";\n");
        assert_eq!(lexed.lines[0].code, "let c = ''; let l: &'static str = \"\";");
    }

    #[test]
    fn identifier_ending_in_r_does_not_start_raw_string() {
        let lexed = lex("let var = 1; for r in 0..var {}\n");
        assert_eq!(lexed.lines[0].code, "let var = 1; for r in 0..var {}");
    }

    #[test]
    fn multiline_string_blanks_every_line() {
        let lexed = lex("let s = \"line one\nunsafe line two\";\nlet t = 1;\n");
        assert_eq!(lexed.lines[0].code, "let s = \"");
        assert_eq!(lexed.lines[1].code, "\";");
        assert_eq!(lexed.lines[2].code, "let t = 1;");
    }

    #[test]
    fn unterminated_block_comment_runs_to_eof() {
        let lexed = lex("code(); /* never closed\nstill comment\n");
        assert_eq!(lexed.lines[0].code, "code(); ");
        assert_eq!(lexed.lines[1].comment, "still comment");
    }

    #[test]
    fn file_without_trailing_newline_keeps_last_line() {
        let lexed = lex("let x = 1;");
        assert_eq!(lexed.len(), 1);
        assert_eq!(lexed.lines[0].code, "let x = 1;");
    }

    #[test]
    fn token_matching_respects_identifier_boundaries() {
        assert!(has_token("use std::collections::HashMap;", "HashMap"));
        assert!(!has_token("type MyHashMapLike = ();", "HashMap"));
        assert!(has_token("x.unwrap()", ".unwrap()"));
        assert!(!has_token("x.unwrap_or(0)", ".unwrap()"));
        assert!(has_token("res.expect(\"msg\")", ".expect("));
        assert!(!has_token("res.expect_err(\"msg\")", ".expect("));
        assert!(has_token("panic!(\"boom\")", "panic!"));
        assert!(!has_token("std::panic::catch_unwind", "panic!"));
    }
}
