//! Workspace walking: discovers every Rust source the rules apply to and
//! runs [`crate::rules::check_file`] over each.
//!
//! The walk covers `src/` (the root meta-crate) and every `crates/*/src`
//! tree — exactly the code whose contracts the rules enforce. `vendor/`
//! (offline API shims for upstream crates), `target/`, crate `tests/`,
//! `benches/`, and `examples/` directories are *not* walked: integration
//! tests and benches may unwrap freely, and the vendor shims mirror
//! upstream APIs we do not own. (Test modules *inside* `src` files are
//! excluded per-rule via [`crate::context::FileContext::is_test_line`].)

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::context::FileContext;
use crate::lexer;
use crate::rules::{self, Diagnostic};

/// Lints one source string as if it lived at `rel_path` inside the
/// workspace. This is the engine's core and the fixture tests' entry point.
pub fn lint_source(rel_path: &str, source: &str) -> Vec<Diagnostic> {
    let lexed = lexer::lex(source);
    let ctx = FileContext::new(rel_path, &lexed);
    rules::check_file(&ctx, &lexed)
}

/// Result of a workspace lint run.
#[derive(Debug, Default)]
pub struct Report {
    /// Files scanned, workspace-relative, in walk order.
    pub files: Vec<String>,
    /// All findings, ordered by path then line.
    pub diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// True when the run found nothing.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }
}

/// Walks the workspace rooted at `root` and lints every in-scope file.
pub fn lint_workspace(root: &Path) -> io::Result<Report> {
    let mut files = Vec::new();
    collect_rs_files(&root.join("src"), &mut files)?;
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut crate_dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)?
            .collect::<Result<Vec<_>, _>>()?
            .into_iter()
            .map(|e| e.path())
            .filter(|p| p.is_dir())
            .collect();
        crate_dirs.sort();
        for dir in crate_dirs {
            collect_rs_files(&dir.join("src"), &mut files)?;
        }
    }
    files.sort();

    let mut report = Report::default();
    for path in files {
        let rel = path.strip_prefix(root).unwrap_or(&path).to_string_lossy().replace('\\', "/");
        let source = fs::read_to_string(&path)?;
        report.diagnostics.extend(lint_source(&rel, &source));
        report.files.push(rel);
    }
    report.diagnostics.sort_by(|a, b| a.path.cmp(&b.path).then(a.line.cmp(&b.line)));
    Ok(report)
}

/// Recursively collects `.rs` files under `dir` (sorted for deterministic
/// diagnostics ordering). A missing directory is not an error: crate layouts
/// without a `src/` subdir simply contribute nothing.
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> =
        fs::read_dir(dir)?.collect::<Result<Vec<_>, _>>()?.into_iter().map(|e| e.path()).collect();
    entries.sort();
    for entry in entries {
        if entry.is_dir() {
            collect_rs_files(&entry, out)?;
        } else if entry.extension().is_some_and(|e| e == "rs") {
            out.push(entry);
        }
    }
    Ok(())
}

/// Finds the workspace root by walking up from `start` until a `Cargo.toml`
/// declaring `[workspace]` appears.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(d);
                }
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}
