//! The rule engine: four rule families over one lexed file.
//!
//! Every rule is lexical (tokens on the comment-stripped, literal-blanked
//! code stream of [`crate::lexer`]) and scoped by [`crate::context`]:
//!
//! | rule id           | family        | scope                                        |
//! |-------------------|---------------|----------------------------------------------|
//! | `hash_collection` | determinism   | numeric crates, non-test code                |
//! | `spawn`           | determinism   | everywhere except `workers.rs`, non-test     |
//! | `fma`             | determinism   | everywhere except `kernels.rs`, non-test     |
//! | `time`            | determinism   | kernel files (`kernels.rs`, `matrix.rs`)     |
//! | `unsafe`          | unsafe hygiene| every `unsafe` token, tests included         |
//! | `panic`           | panic-freedom | library (non-bin, non-test) code             |
//! | `persist_reader`  | panic-freedom | `persist.rs` non-test code, stricter overlay |
//! | `wire_reader`     | panic-freedom | `wire.rs` non-test code, stricter overlay    |
//! | `alloc`           | static no-alloc| bodies of `// lint: no_alloc` functions     |
//! | `annotation`      | meta          | malformed / dangling `lint:` annotations     |
//!
//! Suppression is per-line via `// lint: allow(<rule>) — <reason>` on the
//! finding's line or the line above (see [`crate::annotations`]); the
//! `unsafe` rule is instead discharged by an adjacent `// SAFETY:` comment,
//! mirroring `clippy::undocumented_unsafe_blocks`.

use crate::annotations::{self, Annotation};
use crate::context::{FileContext, FileKind};
use crate::lexer::{has_token, LexedFile};

/// One finding: `path:line: [rule] message`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path of the offending file.
    pub path: String,
    /// 1-based line of the finding.
    pub line: usize,
    /// Stable rule identifier (see the module table).
    pub rule: &'static str,
    /// Human-readable explanation with the fix spelled out.
    pub message: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.path, self.line, self.rule, self.message)
    }
}

/// Panicking constructs flagged by the panic-freedom rule.
const PANIC_TOKENS: &[&str] =
    &[".unwrap()", ".expect(", "panic!", "unreachable!", "todo!", "unimplemented!"];

/// Allocating constructs flagged inside `// lint: no_alloc` functions. The
/// list names this workspace's allocation surface: std constructors plus
/// [`Matrix::zeros`], the repo's own allocating constructor.
const ALLOC_TOKENS: &[&str] = &[
    "Vec::new",
    "vec!",
    ".to_vec(",
    ".collect(",
    "format!",
    "Box::new",
    "Rc::new",
    "Arc::new",
    "String::new",
    ".to_string(",
    ".to_owned(",
    "with_capacity",
    "Matrix::zeros",
    ".clone()",
];

/// Runs every rule over one lexed file, returning all findings in line
/// order.
pub fn check_file(ctx: &FileContext, lexed: &LexedFile) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    annotation_rule(ctx, lexed, &mut out);
    determinism_rules(ctx, lexed, &mut out);
    unsafe_rule(ctx, lexed, &mut out);
    panic_rule(ctx, lexed, &mut out);
    untrusted_reader_rule(ctx, lexed, &mut out);
    no_alloc_rule(ctx, lexed, &mut out);
    out.sort_by_key(|d| d.line);
    out
}

/// True when `rule` is suppressed at `line` by an allow annotation on the
/// same line or anywhere in the contiguous comment block directly above
/// (multi-line reasons wrap; the annotation stays adjacent as long as no
/// code or blank line intervenes).
fn allowed(lexed: &LexedFile, line: usize, rule: &str) -> bool {
    let matches = |comment: &str| {
        matches!(annotations::parse(comment),
                 Some(Annotation::Allow { rule: r, .. }) if r == rule)
    };
    if matches(&lexed.line(line).comment) {
        return true;
    }
    let mut probe = line;
    while probe > 1 {
        probe -= 1;
        let l = lexed.line(probe);
        if l.has_code() || !l.has_comment() {
            return false;
        }
        if matches(&l.comment) {
            return true;
        }
    }
    false
}

fn diag(
    out: &mut Vec<Diagnostic>,
    ctx: &FileContext,
    line: usize,
    rule: &'static str,
    message: String,
) {
    out.push(Diagnostic { path: ctx.path.clone(), line, rule, message });
}

/// Meta-rule: every comment carrying a `lint:` marker must parse to a valid
/// annotation, so typos cannot silently suppress nothing.
fn annotation_rule(ctx: &FileContext, lexed: &LexedFile, out: &mut Vec<Diagnostic>) {
    for line_no in 1..=lexed.len() {
        let comment = lexed.line(line_no).comment;
        if let Some(Annotation::Malformed(msg)) = annotations::parse(&comment) {
            diag(out, ctx, line_no, "annotation", msg);
        }
    }
}

/// Determinism family: hash iteration order, thread spawning, FMA
/// contraction, and wall-clock reads in kernel code.
fn determinism_rules(ctx: &FileContext, lexed: &LexedFile, out: &mut Vec<Diagnostic>) {
    let in_workers = ctx.file_name() == "workers.rs";
    let in_kernels = ctx.file_name() == "kernels.rs";
    let kernel_file = in_kernels || ctx.file_name() == "matrix.rs";
    for line_no in 1..=lexed.len() {
        if ctx.is_test_line(line_no) {
            continue;
        }
        let code = lexed.line(line_no).code;
        if ctx.is_numeric_crate()
            && (has_token(&code, "HashMap") || has_token(&code, "HashSet"))
            && !allowed(lexed, line_no, "hash_collection")
        {
            diag(
                out,
                ctx,
                line_no,
                "hash_collection",
                "HashMap/HashSet in a numeric crate: hash iteration order is \
                 nondeterministic and would break (code, seed, mode) reproducibility. \
                 Use a Vec/BTreeMap, or annotate a keyed-access-only use with \
                 `// lint: allow(hash_collection) — <why iteration order never matters>`"
                    .to_string(),
            );
        }
        if !in_workers
            && (has_token(&code, "thread::spawn") || has_token(&code, "thread::scope"))
            && !allowed(lexed, line_no, "spawn")
        {
            diag(
                out,
                ctx,
                line_no,
                "spawn",
                "thread spawn outside sbrl_tensor::workers: all parallelism must go \
                 through the persistent worker pool (the steady-state probe asserts \
                 zero spawns per step). Route the work through workers::run_tasks"
                    .to_string(),
            );
        }
        if !in_kernels
            && (has_token(&code, "mul_add") || has_token(&code, "fmadd"))
            && !allowed(lexed, line_no, "fma")
        {
            diag(
                out,
                ctx,
                line_no,
                "fma",
                "FMA contraction outside the `const FMA: bool`-gated kernel clones in \
                 kernels.rs: fused multiply-add changes rounding and is only sound \
                 behind the NumericsMode::Fast gate"
                    .to_string(),
            );
        }
        if kernel_file
            && (has_token(&code, "Instant::now") || has_token(&code, "SystemTime"))
            && !allowed(lexed, line_no, "time")
        {
            diag(
                out,
                ctx,
                line_no,
                "time",
                "wall-clock read in kernel code: kernels must be pure functions of \
                 their inputs; timing belongs in the bench/trainer layers"
                    .to_string(),
            );
        }
    }
}

/// Unsafe hygiene: every line with an `unsafe` token must carry a SAFETY
/// comment on the same line or in the contiguous comment/attribute block
/// directly above (doc `# Safety` sections count).
fn unsafe_rule(ctx: &FileContext, lexed: &LexedFile, out: &mut Vec<Diagnostic>) {
    for line_no in 1..=lexed.len() {
        let line = lexed.line(line_no);
        if !has_token(&line.code, "unsafe") {
            continue;
        }
        if has_safety_comment(lexed, line_no) {
            continue;
        }
        diag(
            out,
            ctx,
            line_no,
            "unsafe",
            "undocumented unsafe: add an adjacent `// SAFETY: <why the invariants \
             hold>` comment (same line or directly above)"
                .to_string(),
        );
    }
}

/// Looks for a safety comment on `line` or in the comment/attribute block
/// immediately above it.
fn has_safety_comment(lexed: &LexedFile, line: usize) -> bool {
    let mentions_safety = |comment: &str| {
        let lower = comment.to_lowercase();
        lower.contains("safety:") || lower.contains("# safety")
    };
    if mentions_safety(&lexed.line(line).comment) {
        return true;
    }
    let mut probe = line;
    while probe > 1 {
        probe -= 1;
        let l = lexed.line(probe);
        if mentions_safety(&l.comment) {
            return true;
        }
        let trimmed = l.code.trim().to_string();
        let is_attr = trimmed.starts_with("#[") || trimmed == "]";
        // A line ending mid-statement (`let x =`, an open call, an operator)
        // means the `unsafe` below is a continuation of *this* statement, so
        // the comment above it is still adjacent — keep walking.
        let is_continuation = trimmed.ends_with(['=', '(', '{', ',', '+', '-', '|', '&']);
        if l.has_code() && !is_attr && !is_continuation {
            return false;
        }
        if !l.has_code() && !l.has_comment() {
            // Blank line: the comment block above it is no longer adjacent.
            return false;
        }
    }
    false
}

/// Panic-freedom: no `unwrap`/`expect`/`panic!`-family calls in library
/// (non-bin, non-test) code without an explicit allow annotation.
fn panic_rule(ctx: &FileContext, lexed: &LexedFile, out: &mut Vec<Diagnostic>) {
    if ctx.kind == FileKind::Binary {
        return;
    }
    for line_no in 1..=lexed.len() {
        if ctx.is_test_line(line_no) {
            continue;
        }
        let code = lexed.line(line_no).code;
        for token in PANIC_TOKENS {
            if has_token(&code, token) && !allowed(lexed, line_no, "panic") {
                diag(
                    out,
                    ctx,
                    line_no,
                    "panic",
                    format!(
                        "`{token}` in library code: return a typed SbrlError/DataError \
                         instead, or — if this is provably infallible — annotate with \
                         `// lint: allow(panic) — <why it cannot fire>`"
                    ),
                );
                break;
            }
        }
    }
}

/// The files that decode *untrusted* bytes, each with its own rule id so
/// allow annotations and docs stay precise: `(file name, rule id, what the
/// bytes are, the typed error, the bounds-checked reader helpers)`.
const READER_SCOPES: &[(&str, &str, &str, &str, &str)] = &[
    ("persist.rs", "persist_reader", "artifact bytes", "PersistError", "Reader::take/u64/f64s"),
    (
        "wire.rs",
        "wire_reader",
        "frame bytes off the socket",
        "WireError",
        "WireReader::take/u32/f64s",
    ),
];

/// Untrusted-reader hardening: `persist.rs` decodes artifact bytes and
/// `wire.rs` decodes socket frames — both inputs are attacker-shaped, so
/// their non-test code may not use panicking constructs or direct `[`
/// indexing/slicing. Every read must flow through the bounds-checked reader
/// helpers, which return typed errors instead of panicking.
///
/// This is a stricter overlay on the `panic` rule: a `// lint: allow(panic)`
/// escape elsewhere in the library does not exist here — reader code has no
/// provably-infallible panics, because the input is attacker-shaped.
fn untrusted_reader_rule(ctx: &FileContext, lexed: &LexedFile, out: &mut Vec<Diagnostic>) {
    let Some(&(_, rule, what, error, helpers)) =
        READER_SCOPES.iter().find(|(file, ..)| *file == ctx.file_name())
    else {
        return;
    };
    for line_no in 1..=lexed.len() {
        if ctx.is_test_line(line_no) {
            continue;
        }
        let code = lexed.line(line_no).code;
        for token in PANIC_TOKENS {
            if has_token(&code, token) && !allowed(lexed, line_no, rule) {
                diag(
                    out,
                    ctx,
                    line_no,
                    rule,
                    format!(
                        "`{token}` in untrusted-reader code: {what} are untrusted, \
                         so every failure mode must surface as a typed {error} — \
                         route the read through the {helpers} helpers"
                    ),
                );
                break;
            }
        }
        if has_index_expr(&code) && !allowed(lexed, line_no, rule) {
            diag(
                out,
                ctx,
                line_no,
                rule,
                format!(
                    "direct `[` indexing/slicing in untrusted-reader code: \
                     out-of-range positions in {what} must become a typed {error}, \
                     not a panic — use the bounds-checked {helpers} helpers \
                     (or slice::get)"
                ),
            );
        }
    }
}

/// A `[` directly following an identifier character, `)`, or `]` is an
/// index or slice expression. Attribute lines (`#[...]`), array-literal and
/// array-type brackets all follow punctuation or whitespace and never match.
fn has_index_expr(code: &str) -> bool {
    let bytes = code.as_bytes();
    (1..bytes.len()).any(|i| {
        bytes[i] == b'['
            && matches!(bytes[i - 1], b'_' | b')' | b']' | b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9')
    })
}

/// Static no-alloc: the body of every `// lint: no_alloc`-annotated function
/// is scanned for allocating constructs. The annotation itself is checked —
/// one that does not precede a `fn` is a finding.
fn no_alloc_rule(ctx: &FileContext, lexed: &LexedFile, out: &mut Vec<Diagnostic>) {
    for line_no in 1..=lexed.len() {
        let comment = lexed.line(line_no).comment;
        if annotations::parse(&comment) != Some(Annotation::NoAlloc) {
            continue;
        }
        let from = if lexed.line(line_no).has_code() { line_no } else { line_no + 1 };
        let Some((sig, end)) = crate::context::fn_span(lexed, from, 8) else {
            diag(
                out,
                ctx,
                line_no,
                "annotation",
                "`lint: no_alloc` must directly precede a fn (only attributes and \
                 doc comments may intervene)"
                    .to_string(),
            );
            continue;
        };
        for body_line in sig..=end {
            let code = lexed.line(body_line).code;
            for token in ALLOC_TOKENS {
                if has_token(&code, token) && !allowed(lexed, body_line, "alloc") {
                    diag(
                        out,
                        ctx,
                        body_line,
                        "alloc",
                        format!(
                            "`{token}` inside `no_alloc` fn (annotated on line {line_no}): \
                             steady-state steps must reuse pooled buffers; take one from \
                             the BufferPool or hoist the allocation to setup"
                        ),
                    );
                    break;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn check(path: &str, src: &str) -> Vec<Diagnostic> {
        let lexed = lex(src);
        let ctx = FileContext::new(path, &lexed);
        check_file(&ctx, &lexed)
    }

    #[test]
    fn clean_file_has_no_findings() {
        let src = "/// A doc comment mentioning unsafe and panic! freely.\n\
                   pub fn add(a: f64, b: f64) -> f64 {\n    a + b\n}\n";
        assert!(check("crates/tensor/src/ops.rs", src).is_empty());
    }

    #[test]
    fn rules_fire_and_allow_suppresses() {
        let src = "use std::collections::HashMap;\n";
        let found = check("crates/stats/src/x.rs", src);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].rule, "hash_collection");

        let src = "// lint: allow(hash_collection) — keyed access only, never iterated\n\
                   use std::collections::HashMap;\n";
        assert!(check("crates/stats/src/x.rs", src).is_empty());
    }

    #[test]
    fn persist_reader_flags_indexing_only_in_persist_rs() {
        let src = "fn peek(bytes: &[u8]) -> u8 {\n    bytes[0]\n}\n";
        let found = check("crates/core/src/persist.rs", src);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].rule, "persist_reader");
        assert_eq!(found[0].line, 2);
        // The same indexing outside persist.rs is not this rule's business.
        assert!(check("crates/core/src/trainer.rs", src).is_empty());
    }

    #[test]
    fn persist_reader_flags_panics_on_top_of_the_panic_rule() {
        let src = "fn read(bytes: &[u8]) -> u8 {\n    decode(bytes).unwrap()\n}\n";
        let found = check("crates/core/src/persist.rs", src);
        let rules: Vec<&str> = found.iter().map(|d| d.rule).collect();
        assert!(rules.contains(&"persist_reader"), "rules: {rules:?}");
        assert!(rules.contains(&"panic"), "rules: {rules:?}");
    }

    #[test]
    fn persist_reader_spares_attributes_literals_and_tests() {
        let src = "#[derive(Debug)]\n\
                   pub struct Header {\n    magic: [u8; 8],\n}\n\
                   const TAGS: &[&str] = &[\"META\"];\n\
                   #[cfg(test)]\n\
                   mod tests {\n    fn t(b: &[u8]) -> u8 { b[0] }\n}\n";
        assert!(check("crates/core/src/persist.rs", src).is_empty());
    }

    #[test]
    fn persist_reader_allows_with_an_annotation() {
        let src = "// lint: allow(persist_reader) — length proven by the section frame\n\
                   fn peek(bytes: &[u8]) -> u8 { bytes[0] }\n";
        assert!(check("crates/core/src/persist.rs", src).is_empty());
    }

    #[test]
    fn wire_reader_fires_in_wire_rs_with_its_own_rule_id() {
        let src = "fn peek(bytes: &[u8]) -> u8 {\n    bytes[0]\n}\n";
        let found = check("crates/core/src/wire.rs", src);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].rule, "wire_reader");
        assert!(found[0].message.contains("WireError"), "message: {}", found[0].message);

        let src = "fn read(bytes: &[u8]) -> u8 {\n    decode(bytes).unwrap()\n}\n";
        let found = check("crates/core/src/wire.rs", src);
        let rules: Vec<&str> = found.iter().map(|d| d.rule).collect();
        assert!(rules.contains(&"wire_reader"), "rules: {rules:?}");
    }

    #[test]
    fn wire_reader_allows_with_an_annotation_and_spares_tests() {
        let src = "// lint: allow(wire_reader) — index bounded by HEADER_LEN check above\n\
                   fn peek(bytes: &[u8]) -> u8 { bytes[0] }\n";
        assert!(check("crates/core/src/wire.rs", src).is_empty());

        let src = "#[cfg(test)]\nmod tests {\n    fn t(b: &[u8]) -> u8 { b[0] }\n}\n";
        assert!(check("crates/core/src/wire.rs", src).is_empty());
    }
}
