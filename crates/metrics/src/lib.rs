//! # sbrl-metrics
//!
//! Evaluation metrics of the paper's Sec. V-B:
//!
//! * PEHE — precision in estimation of heterogeneous effect,
//!   `sqrt(mean(((y1_hat - y0_hat) - (y1 - y0))^2))`;
//! * `eps_ATE` — absolute bias of the average treatment effect;
//! * F1 score on factual and counterfactual outcome predictions (binary
//!   outcomes);
//! * cross-environment mean and stability (the paper's `bar(F1)` /
//!   `F1^std`).

use sbrl_data::{CausalDataset, OutcomeKind};

/// Predicted potential outcomes for one dataset.
#[derive(Clone, Debug, Default)]
pub struct EffectEstimate {
    /// Predicted outcome under control per unit (probability for binary).
    pub y0_hat: Vec<f64>,
    /// Predicted outcome under treatment per unit.
    pub y1_hat: Vec<f64>,
}

impl EffectEstimate {
    /// Predicted individual effects `y1_hat - y0_hat`.
    pub fn ite_hat(&self) -> Vec<f64> {
        self.y1_hat.iter().zip(&self.y0_hat).map(|(a, b)| a - b).collect()
    }

    /// Predicted average treatment effect.
    pub fn ate_hat(&self) -> f64 {
        if self.y0_hat.is_empty() {
            return 0.0;
        }
        self.ite_hat().iter().sum::<f64>() / self.y0_hat.len() as f64
    }

    /// Predicted factual outcome per unit given the observed treatment.
    pub fn factual(&self, t: &[f64]) -> Vec<f64> {
        t.iter()
            .enumerate()
            .map(|(i, &t)| if t > 0.5 { self.y1_hat[i] } else { self.y0_hat[i] })
            .collect()
    }

    /// Predicted counterfactual outcome per unit.
    pub fn counterfactual(&self, t: &[f64]) -> Vec<f64> {
        t.iter()
            .enumerate()
            .map(|(i, &t)| if t > 0.5 { self.y0_hat[i] } else { self.y1_hat[i] })
            .collect()
    }
}

/// `sqrt(mean(((y1_hat - y0_hat) - (y1 - y0))^2))` (Sec. V-B).
///
/// # Panics
/// Panics if the slices have different lengths.
#[track_caller]
pub fn pehe(ite_hat: &[f64], ite_true: &[f64]) -> f64 {
    assert_eq!(ite_hat.len(), ite_true.len(), "pehe: length mismatch");
    if ite_hat.is_empty() {
        return 0.0;
    }
    let mse: f64 = ite_hat.iter().zip(ite_true).map(|(&a, &b)| (a - b) * (a - b)).sum::<f64>()
        / ite_hat.len() as f64;
    mse.sqrt()
}

/// `|ATE - ATE_hat|` (Sec. V-B).
#[track_caller]
pub fn ate_bias(ite_hat: &[f64], ite_true: &[f64]) -> f64 {
    assert_eq!(ite_hat.len(), ite_true.len(), "ate_bias: length mismatch");
    if ite_hat.is_empty() {
        return 0.0;
    }
    let n = ite_hat.len() as f64;
    let a: f64 = ite_hat.iter().sum::<f64>() / n;
    let b: f64 = ite_true.iter().sum::<f64>() / n;
    (a - b).abs()
}

/// Root mean squared error between predictions and targets.
#[track_caller]
pub fn rmse(pred: &[f64], target: &[f64]) -> f64 {
    assert_eq!(pred.len(), target.len(), "rmse: length mismatch");
    if pred.is_empty() {
        return 0.0;
    }
    let mse: f64 =
        pred.iter().zip(target).map(|(&a, &b)| (a - b) * (a - b)).sum::<f64>() / pred.len() as f64;
    mse.sqrt()
}

/// Binary F1 score; predictions are thresholded at `threshold`.
///
/// Returns 0 when there are no true positives.
#[track_caller]
pub fn f1_score(pred: &[f64], target: &[f64], threshold: f64) -> f64 {
    assert_eq!(pred.len(), target.len(), "f1_score: length mismatch");
    let mut tp = 0.0;
    let mut fp = 0.0;
    let mut fneg = 0.0;
    for (&p, &t) in pred.iter().zip(target) {
        let p = p > threshold;
        let t = t > 0.5;
        match (p, t) {
            (true, true) => tp += 1.0,
            (true, false) => fp += 1.0,
            (false, true) => fneg += 1.0,
            (false, false) => {}
        }
    }
    if tp == 0.0 {
        return 0.0;
    }
    let precision = tp / (tp + fp);
    let recall = tp / (tp + fneg);
    2.0 * precision * recall / (precision + recall)
}

/// Full evaluation of an estimate against a dataset with oracle outcomes.
#[derive(Clone, Copy, Debug, Default)]
pub struct Evaluation {
    /// PEHE (individual-level error).
    pub pehe: f64,
    /// Absolute ATE bias (population-level error).
    pub ate_bias: f64,
    /// Factual fit: F1 for binary outcomes, RMSE for continuous.
    pub factual_score: f64,
    /// Counterfactual fit: F1 for binary outcomes, RMSE for continuous.
    pub counterfactual_score: f64,
}

/// Evaluates predicted potential outcomes against a dataset carrying the
/// counterfactual oracle. Returns `None` when the dataset has no oracle.
pub fn evaluate(estimate: &EffectEstimate, data: &CausalDataset) -> Option<Evaluation> {
    let ite_true = data.true_ite()?;
    let ite_hat = estimate.ite_hat();
    let fact_pred = estimate.factual(&data.t);
    let cf_pred = estimate.counterfactual(&data.t);
    let cf_true: Vec<f64> = data.ycf.clone()?;
    let (factual_score, counterfactual_score) = match data.outcome {
        OutcomeKind::Binary => {
            (f1_score(&fact_pred, &data.yf, 0.5), f1_score(&cf_pred, &cf_true, 0.5))
        }
        OutcomeKind::Continuous => (rmse(&fact_pred, &data.yf), rmse(&cf_pred, &cf_true)),
    };
    Some(Evaluation {
        pehe: pehe(&ite_hat, &ite_true),
        ate_bias: ate_bias(&ite_hat, &ite_true),
        factual_score,
        counterfactual_score,
    })
}

/// Cross-environment aggregate: the paper's average and stability
/// (`bar(F1) = mean`, `F1^std = mean squared deviation`, Sec. V-B).
#[derive(Clone, Copy, Debug, Default)]
pub struct EnvAggregate {
    /// Mean across environments.
    pub mean: f64,
    /// The paper's stability statistic: mean squared deviation from the mean.
    pub stability: f64,
    /// Standard deviation (square root of `stability`).
    pub std: f64,
}

/// Aggregates one metric across environments.
pub fn env_aggregate(values: &[f64]) -> EnvAggregate {
    if values.is_empty() {
        return EnvAggregate::default();
    }
    let n = values.len() as f64;
    let mean = values.iter().sum::<f64>() / n;
    let stability = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
    EnvAggregate { mean, stability, std: stability.sqrt() }
}

/// Mean and standard deviation of replicate values — the `mean ± std`
/// entries of the paper's tables.
pub fn mean_std(values: &[f64]) -> (f64, f64) {
    let agg = env_aggregate(values);
    (agg.mean, agg.std)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbrl_tensor::Matrix;

    #[test]
    fn pehe_zero_for_perfect_predictions() {
        let ite = vec![1.0, -0.5, 2.0];
        assert_eq!(pehe(&ite, &ite), 0.0);
    }

    #[test]
    fn pehe_matches_hand_computation() {
        let hat = vec![1.0, 0.0];
        let tru = vec![0.0, 2.0];
        // sqrt((1 + 4)/2)
        assert!((pehe(&hat, &tru) - (2.5f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn ate_bias_is_difference_of_means() {
        let hat = vec![1.0, 1.0];
        let tru = vec![0.0, 1.0];
        assert!((ate_bias(&hat, &tru) - 0.5).abs() < 1e-12);
        // Bias can cancel across units even when PEHE is large.
        let hat2 = vec![2.0, -2.0];
        let tru2 = vec![-2.0, 2.0];
        assert_eq!(ate_bias(&hat2, &tru2), 0.0);
        assert!(pehe(&hat2, &tru2) > 3.9);
    }

    #[test]
    fn f1_perfect_and_degenerate() {
        let t = vec![1.0, 0.0, 1.0, 0.0];
        assert_eq!(f1_score(&t, &t, 0.5), 1.0);
        assert_eq!(f1_score(&[0.0, 0.0], &[1.0, 1.0], 0.5), 0.0);
        assert_eq!(f1_score(&[1.0, 1.0], &[0.0, 0.0], 0.5), 0.0);
    }

    #[test]
    fn f1_known_value() {
        // tp=1, fp=1, fn=1 -> precision=recall=0.5 -> F1=0.5
        let pred = vec![0.9, 0.9, 0.1];
        let target = vec![1.0, 0.0, 1.0];
        assert!((f1_score(&pred, &target, 0.5) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn env_aggregate_matches_paper_definition() {
        let vals = vec![0.4, 0.6];
        let agg = env_aggregate(&vals);
        assert!((agg.mean - 0.5).abs() < 1e-12);
        assert!((agg.stability - 0.01).abs() < 1e-12);
        assert!((agg.std - 0.1).abs() < 1e-12);
    }

    #[test]
    fn effect_estimate_helpers() {
        let est = EffectEstimate { y0_hat: vec![0.0, 1.0], y1_hat: vec![1.0, 3.0] };
        assert_eq!(est.ite_hat(), vec![1.0, 2.0]);
        assert!((est.ate_hat() - 1.5).abs() < 1e-12);
        let t = vec![1.0, 0.0];
        assert_eq!(est.factual(&t), vec![1.0, 1.0]);
        assert_eq!(est.counterfactual(&t), vec![0.0, 3.0]);
    }

    fn toy_binary() -> CausalDataset {
        CausalDataset {
            x: Matrix::zeros(4, 2),
            t: vec![1.0, 0.0, 1.0, 0.0],
            yf: vec![1.0, 0.0, 0.0, 1.0],
            ycf: Some(vec![0.0, 1.0, 0.0, 0.0]),
            mu0: None,
            mu1: None,
            outcome: OutcomeKind::Binary,
        }
    }

    #[test]
    fn evaluate_produces_all_fields() {
        let d = toy_binary();
        let est = EffectEstimate { y0_hat: vec![0.1; 4], y1_hat: vec![0.9; 4] };
        let e = evaluate(&est, &d).unwrap();
        assert!(e.pehe > 0.0 && e.pehe.is_finite());
        assert!(e.ate_bias.is_finite());
        assert!((0.0..=1.0).contains(&e.factual_score));
        assert!((0.0..=1.0).contains(&e.counterfactual_score));
    }

    #[test]
    fn evaluate_none_without_oracle() {
        let mut d = toy_binary();
        d.ycf = None;
        let est = EffectEstimate { y0_hat: vec![0.0; 4], y1_hat: vec![0.0; 4] };
        assert!(evaluate(&est, &d).is_none());
    }

    #[test]
    fn perfect_estimate_scores_perfectly() {
        let d = toy_binary();
        let (y0, y1) = d.potential_outcomes().unwrap();
        let est = EffectEstimate { y0_hat: y0, y1_hat: y1 };
        let e = evaluate(&est, &d).unwrap();
        assert_eq!(e.pehe, 0.0);
        assert_eq!(e.ate_bias, 0.0);
        assert_eq!(e.factual_score, 1.0);
    }

    #[test]
    fn mean_std_of_replicates() {
        let (m, s) = mean_std(&[1.0, 3.0]);
        assert!((m - 2.0).abs() < 1e-12);
        assert!((s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn continuous_evaluation_uses_rmse() {
        let d = CausalDataset {
            x: Matrix::zeros(2, 1),
            t: vec![1.0, 0.0],
            yf: vec![3.0, 1.0],
            ycf: Some(vec![1.0, 3.0]),
            mu0: None,
            mu1: None,
            outcome: OutcomeKind::Continuous,
        };
        let est = EffectEstimate { y0_hat: vec![1.0, 1.0], y1_hat: vec![3.0, 3.0] };
        let e = evaluate(&est, &d).unwrap();
        assert_eq!(e.factual_score, 0.0);
        assert_eq!(e.counterfactual_score, 0.0);
        assert_eq!(e.pehe, 0.0);
    }
}
