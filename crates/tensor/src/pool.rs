//! Shape-keyed buffer pool backing the reusable autodiff tape.
//!
//! Training loops build one [`Graph`](crate::Graph) per optimisation step
//! with the same batch shapes every time. Allocating fresh value/gradient
//! buffers for every node each step dominated the step cost (large buffers
//! round-trip through `mmap`, so every step paid page faults on top of the
//! allocator). A [`BufferPool`] keeps the `Vec<f64>` backing stores alive
//! across [`Graph::reset`](crate::Graph::reset) calls, keyed by element
//! count, so a warmed-up step loop performs no heap allocation at all.

// lint: allow(hash_collection) — keyed take/park only; the sole iteration
// (`parked`) is an order-independent length sum.
use std::collections::HashMap;

use crate::matrix::Matrix;

/// Maximum parked buffers per element count. Balanced take/give patterns
/// (pooled leaf constructors + ops) never approach this; the cap only bounds
/// growth when callers repeatedly hand externally-allocated matrices to
/// [`Graph::constant`](crate::Graph::constant) on a reused tape.
const MAX_PARKED_PER_LEN: usize = 256;

/// A pool of reusable `f64` buffers keyed by element count.
///
/// Buffers are handed out as [`Matrix`] values whose **contents are
/// unspecified** (recycled buffers keep their stale values); callers must
/// overwrite every element, or use [`BufferPool::take_zeroed`].
#[derive(Default)]
pub struct BufferPool {
    // lint: allow(hash_collection) — looked up by exact element count only;
    // numeric results never depend on this map's iteration order.
    free: HashMap<usize, Vec<Vec<f64>>>,
}

impl BufferPool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of buffers currently parked in the pool.
    pub fn parked(&self) -> usize {
        self.free.values().map(Vec::len).sum()
    }

    /// Takes a `rows x cols` buffer with **unspecified contents**.
    ///
    /// A recycled buffer of matching element count is reused when available;
    /// otherwise a fresh zeroed matrix is allocated. Callers must overwrite
    /// every element before reading.
    pub fn take(&mut self, rows: usize, cols: usize) -> Matrix {
        let len = rows * cols;
        if let Some(data) = self.free.get_mut(&len).and_then(Vec::pop) {
            return Matrix::from_vec(rows, cols, data);
        }
        Matrix::zeros(rows, cols)
    }

    /// Takes a `rows x cols` buffer with every element set to zero.
    pub fn take_zeroed(&mut self, rows: usize, cols: usize) -> Matrix {
        let len = rows * cols;
        if let Some(mut data) = self.free.get_mut(&len).and_then(Vec::pop) {
            data.fill(0.0);
            return Matrix::from_vec(rows, cols, data);
        }
        Matrix::zeros(rows, cols)
    }

    /// Returns a buffer to the pool for reuse (empty matrices are dropped,
    /// as are buffers beyond a generous per-length cap).
    pub fn give(&mut self, m: Matrix) {
        let len = m.len();
        if len == 0 {
            return;
        }
        let stack = self.free.entry(len).or_default();
        if stack.len() < MAX_PARKED_PER_LEN {
            stack.push(m.into_vec());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_reuses_returned_buffers_by_len() {
        let mut pool = BufferPool::new();
        let m = Matrix::from_vec(2, 3, vec![1.0; 6]);
        pool.give(m);
        assert_eq!(pool.parked(), 1);
        // A 3x2 request reuses the 6-element buffer (shape is re-interpreted).
        let t = pool.take(3, 2);
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(pool.parked(), 0);
    }

    #[test]
    fn take_zeroed_clears_stale_contents() {
        let mut pool = BufferPool::new();
        pool.give(Matrix::full(2, 2, 7.0));
        let z = pool.take_zeroed(2, 2);
        assert!(z.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn mismatched_lengths_allocate_fresh() {
        let mut pool = BufferPool::new();
        pool.give(Matrix::ones(2, 2));
        let m = pool.take(3, 3);
        assert_eq!(m.shape(), (3, 3));
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
        assert_eq!(pool.parked(), 1, "the 4-element buffer stays parked");
    }

    #[test]
    fn empty_buffers_are_not_pooled() {
        let mut pool = BufferPool::new();
        pool.give(Matrix::zeros(0, 5));
        assert_eq!(pool.parked(), 0);
    }
}
