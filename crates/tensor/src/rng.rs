//! Seeded random sampling helpers.
//!
//! Every stochastic component of the workspace draws from a [`StdRng`] seeded
//! with an explicit `u64` so that all experiments are exactly reproducible.
//! Gaussian samples use the Box–Muller transform so we do not need the
//! `rand_distr` crate.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::matrix::Matrix;

/// Creates a deterministic RNG from a seed.
pub fn rng_from_seed(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Draws one standard-normal sample via the Box–Muller transform.
pub fn sample_standard_normal(rng: &mut StdRng) -> f64 {
    // Avoid ln(0) by nudging the lower bound of the open interval.
    let u1: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
    let u2: f64 = rng.random();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Draws one `N(mean, std^2)` sample.
pub fn sample_normal(rng: &mut StdRng, mean: f64, std: f64) -> f64 {
    mean + std * sample_standard_normal(rng)
}

/// Draws one `U(lo, hi)` sample.
pub fn sample_uniform(rng: &mut StdRng, lo: f64, hi: f64) -> f64 {
    lo + (hi - lo) * rng.random::<f64>()
}

/// Draws a Bernoulli sample with success probability `p` (clamped to `[0,1]`).
pub fn sample_bernoulli(rng: &mut StdRng, p: f64) -> bool {
    rng.random::<f64>() < p.clamp(0.0, 1.0)
}

/// A matrix with i.i.d. `N(0,1)` entries.
pub fn randn(rng: &mut StdRng, rows: usize, cols: usize) -> Matrix {
    Matrix::from_fn(rows, cols, |_, _| sample_standard_normal(rng))
}

/// A matrix with i.i.d. `N(mean, std^2)` entries.
pub fn randn_scaled(rng: &mut StdRng, rows: usize, cols: usize, mean: f64, std: f64) -> Matrix {
    Matrix::from_fn(rows, cols, |_, _| sample_normal(rng, mean, std))
}

/// A matrix with i.i.d. `U(lo, hi)` entries.
pub fn rand_uniform(rng: &mut StdRng, rows: usize, cols: usize, lo: f64, hi: f64) -> Matrix {
    Matrix::from_fn(rows, cols, |_, _| sample_uniform(rng, lo, hi))
}

/// A random permutation of `0..n` (Fisher–Yates).
pub fn permutation(rng: &mut StdRng, n: usize) -> Vec<usize> {
    let mut idx = Vec::with_capacity(n);
    permutation_into(rng, &mut idx, n);
    idx
}

/// Writes a random permutation of `0..n` into `out`, reusing its capacity —
/// the allocation-free variant of [`permutation`]. Consumes exactly the same
/// RNG draws, so the resulting permutation is identical.
pub fn permutation_into(rng: &mut StdRng, out: &mut Vec<usize>, n: usize) {
    out.clear();
    out.extend(0..n);
    for i in (1..n).rev() {
        let j = rng.random_range(0..=i);
        out.swap(i, j);
    }
}

/// Samples `k` indices from `0..n` without replacement.
///
/// # Panics
/// Panics if `k > n`.
#[track_caller]
pub fn sample_without_replacement(rng: &mut StdRng, n: usize, k: usize) -> Vec<usize> {
    assert!(k <= n, "cannot sample {k} items from {n} without replacement");
    let mut idx = permutation(rng, n);
    idx.truncate(k);
    idx
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = rng_from_seed(42);
        let mut b = rng_from_seed(42);
        for _ in 0..100 {
            assert_eq!(sample_standard_normal(&mut a), sample_standard_normal(&mut b));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = rng_from_seed(1);
        let mut b = rng_from_seed(2);
        let xs: Vec<f64> = (0..8).map(|_| sample_standard_normal(&mut a)).collect();
        let ys: Vec<f64> = (0..8).map(|_| sample_standard_normal(&mut b)).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn normal_moments_are_plausible() {
        let mut rng = rng_from_seed(7);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| sample_standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean too far from 0: {mean}");
        assert!((var - 1.0).abs() < 0.05, "variance too far from 1: {var}");
    }

    #[test]
    fn uniform_stays_in_range() {
        let mut rng = rng_from_seed(3);
        for _ in 0..1000 {
            let u = sample_uniform(&mut rng, -2.0, 5.0);
            assert!((-2.0..5.0).contains(&u));
        }
    }

    #[test]
    fn bernoulli_rate_tracks_p() {
        let mut rng = rng_from_seed(11);
        let hits = (0..10_000).filter(|_| sample_bernoulli(&mut rng, 0.3)).count();
        let rate = hits as f64 / 10_000.0;
        assert!((rate - 0.3).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn permutation_is_a_bijection() {
        let mut rng = rng_from_seed(5);
        let p = permutation(&mut rng, 100);
        let mut seen = [false; 100];
        for &i in &p {
            assert!(!seen[i]);
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn sampling_without_replacement_is_unique() {
        let mut rng = rng_from_seed(9);
        let s = sample_without_replacement(&mut rng, 50, 20);
        assert_eq!(s.len(), 20);
        let mut sorted = s.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 20);
    }

    #[test]
    fn randn_shape() {
        let mut rng = rng_from_seed(1);
        assert_eq!(randn(&mut rng, 3, 4).shape(), (3, 4));
        assert_eq!(rand_uniform(&mut rng, 2, 2, 0.0, 1.0).shape(), (2, 2));
    }
}
