//! Dense row-major `f64` matrix type and the linear-algebra kernels the rest
//! of the workspace is built on.
//!
//! The matrix is deliberately simple: a `(rows, cols)` header over a flat
//! `Vec<f64>`. All shape mismatches are programmer errors and panic with a
//! `#[track_caller]` location; numerical failure modes (NaN propagation) are
//! surfaced through [`Matrix::all_finite`] checks at the library boundaries.

use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense, row-major matrix of `f64` values.
///
/// Vectors are represented as `n x 1` (column) or `1 x n` (row) matrices; a
/// scalar produced by a reduction is a `1 x 1` matrix.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let max_rows = 8.min(self.rows);
        for i in 0..max_rows {
            write!(f, "  [")?;
            let max_cols = 8.min(self.cols);
            for j in 0..max_cols {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{:.4}", self[(i, j)])?;
            }
            if self.cols > max_cols {
                write!(f, ", ...")?;
            }
            writeln!(f, "]")?;
        }
        if self.rows > max_rows {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

impl Matrix {
    /// Creates a matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates a matrix filled with ones.
    pub fn ones(rows: usize, cols: usize) -> Self {
        Self::full(rows, cols, 1.0)
    }

    /// Creates a matrix filled with `value`.
    pub fn full(rows: usize, cols: usize, value: f64) -> Self {
        Self { rows, cols, data: vec![value; rows * cols] }
    }

    /// Creates the identity matrix of size `n x n`.
    pub fn eye(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from a flat row-major vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    #[track_caller]
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "from_vec: data length {} does not match shape {}x{}",
            data.len(),
            rows,
            cols
        );
        Self { rows, cols, data }
    }

    /// Creates a matrix by evaluating `f(i, j)` at every position.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Self { rows, cols, data }
    }

    /// Creates a matrix from a slice of rows.
    ///
    /// # Panics
    /// Panics if the rows have inconsistent lengths.
    #[track_caller]
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        if rows.is_empty() {
            return Self::zeros(0, 0);
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(r.len(), cols, "from_rows: row {i} has length {} != {cols}", r.len());
            data.extend_from_slice(r);
        }
        Self { rows: rows.len(), cols, data }
    }

    /// Creates an `n x 1` column vector from a slice.
    pub fn col_vec(values: &[f64]) -> Self {
        Self { rows: values.len(), cols: 1, data: values.to_vec() }
    }

    /// Creates a `1 x n` row vector from a slice.
    pub fn row_vec(values: &[f64]) -> Self {
        Self { rows: 1, cols: values.len(), data: values.to_vec() }
    }

    /// Creates a `1 x 1` matrix holding `value`.
    pub fn scalar(value: f64) -> Self {
        Self { rows: 1, cols: 1, data: vec![value] }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the matrix holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Flat row-major view of the data.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable flat row-major view of the data.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the matrix and returns the flat data vector.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Borrow of row `i` as a slice.
    #[inline]
    #[track_caller]
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(i < self.rows, "row index {i} out of bounds for {} rows", self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable borrow of row `i`.
    #[inline]
    #[track_caller]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        assert!(i < self.rows, "row index {i} out of bounds for {} rows", self.rows);
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copy of column `j`.
    #[track_caller]
    pub fn col(&self, j: usize) -> Vec<f64> {
        assert!(j < self.cols, "col index {j} out of bounds for {} cols", self.cols);
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// Overwrites column `j` with `values`.
    #[track_caller]
    pub fn set_col(&mut self, j: usize, values: &[f64]) {
        assert!(j < self.cols, "col index {j} out of bounds for {} cols", self.cols);
        assert_eq!(values.len(), self.rows, "set_col: length mismatch");
        for (i, &v) in values.iter().enumerate() {
            self[(i, j)] = v;
        }
    }

    /// The single value of a `1 x 1` matrix.
    ///
    /// # Panics
    /// Panics if the matrix is not `1 x 1`.
    #[track_caller]
    pub fn item(&self) -> f64 {
        assert_eq!(self.shape(), (1, 1), "item() requires a 1x1 matrix, got {:?}", self.shape());
        self.data[0]
    }

    /// Sets every element to `v`.
    pub fn fill_with(&mut self, v: f64) {
        self.data.fill(v);
    }

    /// Overwrites `self` with the contents of a same-shape matrix.
    #[track_caller]
    pub fn copy_from(&mut self, src: &Self) {
        self.assert_same_shape(src, "copy_from");
        self.data.copy_from_slice(&src.data);
    }

    /// Overwrites `self` with `f` applied elementwise to a same-shape source.
    ///
    /// Dispatches to an AVX2-compiled copy when the CPU supports it — the
    /// scalar operations are unchanged (no FMA contraction, no
    /// reassociation), so results are bit-identical; only the register width
    /// differs. Buffers large enough to amortise the hand-off are sharded
    /// across the persistent worker pool (elementwise work, so sharding is
    /// bit-identical too); training-sized matrices stay on the calling
    /// thread.
    #[track_caller]
    pub fn fill_map(&mut self, src: &Self, f: impl Fn(f64) -> f64 + Sync) {
        self.assert_same_shape(src, "fill_map");
        let workers = par_fill_workers(self.data.len());
        if workers > 1 {
            let len = self.data.len();
            let src = &src.data;
            crate::kernels::par_for_row_chunks(&mut self.data, len, 1, workers, |lo, hi, out| {
                fill_map_slice(out, &src[lo..hi], &f);
            });
            return;
        }
        fill_map_slice(&mut self.data, &src.data, &f);
    }

    /// Overwrites `self` with `f` combined elementwise over two same-shape
    /// sources (AVX2-dispatched and pool-sharded like [`Matrix::fill_map`]).
    #[track_caller]
    pub fn fill_zip(&mut self, a: &Self, b: &Self, f: impl Fn(f64, f64) -> f64 + Sync) {
        self.assert_same_shape(a, "fill_zip");
        a.assert_same_shape(b, "fill_zip");
        let workers = par_fill_workers(self.data.len());
        if workers > 1 {
            let len = self.data.len();
            let (a, b) = (&a.data, &b.data);
            crate::kernels::par_for_row_chunks(&mut self.data, len, 1, workers, |lo, hi, out| {
                fill_zip_slice(out, &a[lo..hi], &b[lo..hi], &f);
            });
            return;
        }
        fill_zip_slice(&mut self.data, &a.data, &b.data, &f);
    }

    /// Writes the transpose of `src` into `self` (which must be
    /// `src.cols() x src.rows()`).
    #[track_caller]
    pub fn transpose_from(&mut self, src: &Self) {
        assert_eq!(
            self.shape(),
            (src.cols, src.rows),
            "transpose_from: output shape {:?} does not transpose {:?}",
            self.shape(),
            src.shape()
        );
        for i in 0..src.rows {
            for j in 0..src.cols {
                self[(j, i)] = src[(i, j)];
            }
        }
    }

    /// Applies `f` elementwise, returning a new matrix.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Self {
        Self { rows: self.rows, cols: self.cols, data: self.data.iter().map(|&v| f(v)).collect() }
    }

    /// Applies `f` elementwise in place.
    pub fn map_inplace(&mut self, f: impl Fn(f64) -> f64) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Combines two same-shape matrices elementwise with `f`.
    #[track_caller]
    pub fn zip_map(&self, other: &Self, f: impl Fn(f64, f64) -> f64) -> Self {
        self.assert_same_shape(other, "zip_map");
        Self {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().zip(&other.data).map(|(&a, &b)| f(a, b)).collect(),
        }
    }

    #[track_caller]
    fn assert_same_shape(&self, other: &Self, op: &str) {
        assert_eq!(
            self.shape(),
            other.shape(),
            "{op}: shape mismatch {:?} vs {:?}",
            self.shape(),
            other.shape()
        );
    }

    /// Elementwise sum.
    #[track_caller]
    pub fn add(&self, other: &Self) -> Self {
        self.zip_map(other, |a, b| a + b)
    }

    /// Elementwise difference.
    #[track_caller]
    pub fn sub(&self, other: &Self) -> Self {
        self.zip_map(other, |a, b| a - b)
    }

    /// Elementwise (Hadamard) product.
    #[track_caller]
    pub fn mul(&self, other: &Self) -> Self {
        self.zip_map(other, |a, b| a * b)
    }

    /// Elementwise quotient.
    #[track_caller]
    pub fn div(&self, other: &Self) -> Self {
        self.zip_map(other, |a, b| a / b)
    }

    /// Adds `other` into `self` in place (AVX2-dispatched and pool-sharded
    /// like [`Matrix::fill_map`]).
    #[track_caller]
    pub fn add_assign(&mut self, other: &Self) {
        self.assert_same_shape(other, "add_assign");
        let workers = par_fill_workers(self.data.len());
        if workers > 1 {
            let len = self.data.len();
            let src = &other.data;
            crate::kernels::par_for_row_chunks(&mut self.data, len, 1, workers, |lo, hi, out| {
                add_assign_slice(out, &src[lo..hi]);
            });
            return;
        }
        add_assign_slice(&mut self.data, &other.data);
    }

    /// Adds `scale * other` into `self` in place (`axpy`).
    #[track_caller]
    pub fn add_scaled_assign(&mut self, scale: f64, other: &Self) {
        self.assert_same_shape(other, "add_scaled_assign");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += scale * b;
        }
    }

    /// Multiplies every element by `s`.
    pub fn scale(&self, s: f64) -> Self {
        self.map(|v| v * s)
    }

    /// Adds `s` to every element.
    pub fn add_scalar(&self, s: f64) -> Self {
        self.map(|v| v + s)
    }

    /// Matrix product `self * other`.
    ///
    /// Delegates to the cache-blocked, optionally multi-threaded
    /// [`kernels::gemm`](crate::kernels::gemm) under the process-global
    /// [`Parallelism`](crate::kernels::Parallelism) knob. Results are
    /// bit-identical for every thread count (serial mode reproduces the
    /// historical `i-k-j` loop exactly).
    #[track_caller]
    pub fn matmul(&self, other: &Self) -> Self {
        crate::kernels::gemm(self, other, crate::kernels::Parallelism::global())
    }

    /// Matrix product `self * other^T` without materialising the transpose.
    ///
    /// Routed through [`kernels::gemm_nt`](crate::kernels::gemm_nt) under the
    /// global [`Parallelism`](crate::kernels::Parallelism) knob.
    #[track_caller]
    pub fn matmul_nt(&self, other: &Self) -> Self {
        crate::kernels::gemm_nt(self, other, crate::kernels::Parallelism::global())
    }

    /// Matrix product `self^T * other` without materialising the transpose.
    ///
    /// Routed through [`kernels::gemm_tn`](crate::kernels::gemm_tn) under the
    /// global [`Parallelism`](crate::kernels::Parallelism) knob.
    #[track_caller]
    pub fn matmul_tn(&self, other: &Self) -> Self {
        crate::kernels::gemm_tn(self, other, crate::kernels::Parallelism::global())
    }

    /// Transpose.
    pub fn transpose(&self) -> Self {
        let mut out = Self::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)];
            }
        }
        out
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0.0 for an empty matrix).
    pub fn mean(&self) -> f64 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f64
        }
    }

    /// Column sums as a `1 x cols` row vector.
    pub fn sum_axis0(&self) -> Self {
        let mut out = Self::zeros(1, self.cols);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.data[j] += self[(i, j)];
            }
        }
        out
    }

    /// Column means as a `1 x cols` row vector.
    pub fn mean_axis0(&self) -> Self {
        if self.rows == 0 {
            return Self::zeros(1, self.cols);
        }
        self.sum_axis0().scale(1.0 / self.rows as f64)
    }

    /// Row sums as an `rows x 1` column vector.
    pub fn sum_axis1(&self) -> Self {
        let mut out = Self::zeros(self.rows, 1);
        for i in 0..self.rows {
            out.data[i] = self.row(i).iter().sum();
        }
        out
    }

    /// Row means as an `rows x 1` column vector.
    pub fn mean_axis1(&self) -> Self {
        if self.cols == 0 {
            return Self::zeros(self.rows, 1);
        }
        self.sum_axis1().scale(1.0 / self.cols as f64)
    }

    /// Per-column (population) variance as a `1 x cols` row vector.
    pub fn var_axis0(&self) -> Self {
        let means = self.mean_axis0();
        let mut out = Self::zeros(1, self.cols);
        if self.rows == 0 {
            return out;
        }
        for i in 0..self.rows {
            for j in 0..self.cols {
                let d = self[(i, j)] - means.data[j];
                out.data[j] += d * d;
            }
        }
        out.scale(1.0 / self.rows as f64)
    }

    /// Per-column standard deviation as a `1 x cols` row vector.
    pub fn std_axis0(&self) -> Self {
        self.var_axis0().map(f64::sqrt)
    }

    /// Largest element (NaN-propagating); `-inf` for empty matrices.
    pub fn max(&self) -> f64 {
        self.data.iter().copied().fold(f64::NEG_INFINITY, f64::max)
    }

    /// Smallest element; `+inf` for empty matrices.
    pub fn min(&self) -> f64 {
        self.data.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Frobenius norm.
    pub fn norm_fro(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Dot product of two matrices viewed as flat vectors.
    #[track_caller]
    pub fn dot(&self, other: &Self) -> f64 {
        self.assert_same_shape(other, "dot");
        self.data.iter().zip(&other.data).map(|(&a, &b)| a * b).sum()
    }

    /// Gathers rows `idx` into a new matrix (rows may repeat).
    #[track_caller]
    pub fn select_rows(&self, idx: &[usize]) -> Self {
        let mut out = Self::zeros(idx.len(), self.cols);
        for (k, &i) in idx.iter().enumerate() {
            assert!(i < self.rows, "select_rows: index {i} out of bounds ({} rows)", self.rows);
            out.row_mut(k).copy_from_slice(self.row(i));
        }
        out
    }

    /// Gathers columns `idx` into a new matrix.
    #[track_caller]
    pub fn select_cols(&self, idx: &[usize]) -> Self {
        let mut out = Self::zeros(self.rows, idx.len());
        for (k, &j) in idx.iter().enumerate() {
            assert!(j < self.cols, "select_cols: index {j} out of bounds ({} cols)", self.cols);
            for i in 0..self.rows {
                out[(i, k)] = self[(i, j)];
            }
        }
        out
    }

    /// Horizontal concatenation `[self | other]`.
    #[track_caller]
    pub fn hstack(&self, other: &Self) -> Self {
        assert_eq!(self.rows, other.rows, "hstack: row counts differ");
        let mut out = Self::zeros(self.rows, self.cols + other.cols);
        for i in 0..self.rows {
            out.row_mut(i)[..self.cols].copy_from_slice(self.row(i));
            out.row_mut(i)[self.cols..].copy_from_slice(other.row(i));
        }
        out
    }

    /// Vertical concatenation (self on top).
    #[track_caller]
    pub fn vstack(&self, other: &Self) -> Self {
        assert_eq!(self.cols, other.cols, "vstack: column counts differ");
        let mut data = Vec::with_capacity((self.rows + other.rows) * self.cols);
        data.extend_from_slice(&self.data);
        data.extend_from_slice(&other.data);
        Self { rows: self.rows + other.rows, cols: self.cols, data }
    }

    /// Contiguous column slice `[start, end)` as a new matrix.
    #[track_caller]
    pub fn slice_cols(&self, start: usize, end: usize) -> Self {
        assert!(start <= end && end <= self.cols, "slice_cols: bad range {start}..{end}");
        let mut out = Self::zeros(self.rows, end - start);
        for i in 0..self.rows {
            out.row_mut(i).copy_from_slice(&self.row(i)[start..end]);
        }
        out
    }

    /// Clamps every element into `[lo, hi]`.
    pub fn clamp(&self, lo: f64, hi: f64) -> Self {
        self.map(|v| v.clamp(lo, hi))
    }

    /// True when every element is finite (no NaN / infinity).
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }

    /// Maximum absolute elementwise difference against `other`.
    #[track_caller]
    pub fn max_abs_diff(&self, other: &Self) -> f64 {
        self.assert_same_shape(other, "max_abs_diff");
        self.data.iter().zip(&other.data).map(|(&a, &b)| (a - b).abs()).fold(0.0, f64::max)
    }

    /// True when `self` and `other` agree within absolute tolerance `tol`.
    pub fn approx_eq(&self, other: &Self, tol: f64) -> bool {
        self.shape() == other.shape() && self.max_abs_diff(other) <= tol
    }
}

/// AVX2-compiled clone of the scalar [`Matrix::fill_map`] loop.
///
/// # Safety
/// Caller must verify AVX2 support first (see
/// [`avx2_available`](crate::kernels::avx2_available)); the body itself is
/// ordinary safe Rust recompiled with wider vector types.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn fill_map_avx2(out: &mut [f64], src: &[f64], f: impl Fn(f64) -> f64) {
    for (o, &v) in out.iter_mut().zip(src) {
        *o = f(v);
    }
}

/// Minimum elements a pool worker must receive before an elementwise fill is
/// sharded; smaller buffers (every training-sized matrix) stay inline, which
/// also keeps the serial alloc-probe path pool-free.
const MIN_FILL_ELEMS_PER_WORKER: usize = 1 << 16;

/// Worker count for an elementwise pass over `len` elements under the global
/// [`Parallelism`](crate::kernels::Parallelism) knob.
fn par_fill_workers(len: usize) -> usize {
    if len < 2 * MIN_FILL_ELEMS_PER_WORKER {
        return 1;
    }
    crate::kernels::effective_workers(
        crate::kernels::Parallelism::global(),
        len,
        MIN_FILL_ELEMS_PER_WORKER,
    )
}

/// Scalar/AVX2-dispatched body of [`Matrix::fill_map`] over raw slices.
// lint: no_alloc
fn fill_map_slice(out: &mut [f64], src: &[f64], f: &impl Fn(f64) -> f64) {
    #[cfg(target_arch = "x86_64")]
    {
        if crate::kernels::avx2_available() {
            // SAFETY: feature presence verified at runtime; the body is
            // ordinary safe Rust.
            return unsafe { fill_map_avx2(out, src, f) };
        }
    }
    for (o, &v) in out.iter_mut().zip(src) {
        *o = f(v);
    }
}

/// Scalar/AVX2-dispatched body of [`Matrix::fill_zip`] over raw slices.
// lint: no_alloc
fn fill_zip_slice(out: &mut [f64], a: &[f64], b: &[f64], f: &impl Fn(f64, f64) -> f64) {
    #[cfg(target_arch = "x86_64")]
    {
        if crate::kernels::avx2_available() {
            // SAFETY: feature presence verified at runtime.
            return unsafe { fill_zip_avx2(out, a, b, f) };
        }
    }
    for ((o, &x), &y) in out.iter_mut().zip(a).zip(b) {
        *o = f(x, y);
    }
}

/// Scalar/AVX2-dispatched body of [`Matrix::add_assign`] over raw slices.
// lint: no_alloc
fn add_assign_slice(out: &mut [f64], src: &[f64]) {
    #[cfg(target_arch = "x86_64")]
    {
        if crate::kernels::avx2_available() {
            // SAFETY: feature presence verified at runtime.
            return unsafe { add_assign_avx2(out, src) };
        }
    }
    for (o, &v) in out.iter_mut().zip(src) {
        *o += v;
    }
}

/// AVX2-compiled clone of the scalar [`Matrix::fill_zip`] loop.
///
/// # Safety
/// Caller must verify AVX2 support first (see
/// [`avx2_available`](crate::kernels::avx2_available)); the body itself is
/// ordinary safe Rust recompiled with wider vector types.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn fill_zip_avx2(out: &mut [f64], a: &[f64], b: &[f64], f: impl Fn(f64, f64) -> f64) {
    for ((o, &x), &y) in out.iter_mut().zip(a).zip(b) {
        *o = f(x, y);
    }
}

/// AVX2-compiled clone of the scalar [`Matrix::add_assign`] loop.
///
/// # Safety
/// Caller must verify AVX2 support first (see
/// [`avx2_available`](crate::kernels::avx2_available)); the body itself is
/// ordinary safe Rust recompiled with wider vector types.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn add_assign_avx2(out: &mut [f64], src: &[f64]) {
    for (o, &v) in out.iter_mut().zip(src) {
        *o += v;
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols, "index ({i},{j}) out of bounds");
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols, "index ({i},{j}) out of bounds");
        &mut self.data[i * self.cols + j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_have_expected_shapes_and_values() {
        let z = Matrix::zeros(2, 3);
        assert_eq!(z.shape(), (2, 3));
        assert!(z.as_slice().iter().all(|&v| v == 0.0));

        let o = Matrix::ones(3, 2);
        assert_eq!(o.sum(), 6.0);

        let e = Matrix::eye(3);
        assert_eq!(e[(0, 0)], 1.0);
        assert_eq!(e[(0, 1)], 0.0);
        assert_eq!(e.sum(), 3.0);

        let f = Matrix::from_fn(2, 2, |i, j| (i * 10 + j) as f64);
        assert_eq!(f[(1, 0)], 10.0);
    }

    #[test]
    #[should_panic(expected = "from_vec")]
    fn from_vec_rejects_bad_length() {
        let _ = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), (2, 2));
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = Matrix::from_fn(4, 4, |i, j| (i + 2 * j) as f64);
        assert!(a.matmul(&Matrix::eye(4)).approx_eq(&a, 1e-12));
        assert!(Matrix::eye(4).matmul(&a).approx_eq(&a, 1e-12));
    }

    #[test]
    fn fused_transpose_products_match_explicit_ones() {
        let a = Matrix::from_fn(3, 4, |i, j| (i * 4 + j) as f64 * 0.5 - 2.0);
        let b = Matrix::from_fn(5, 4, |i, j| (i as f64 - j as f64) * 0.25);
        let c = Matrix::from_fn(3, 5, |i, j| (i + j) as f64 * 0.1);
        assert!(a.matmul_nt(&b).approx_eq(&a.matmul(&b.transpose()), 1e-12));
        assert!(a.matmul_tn(&c).approx_eq(&a.transpose().matmul(&c), 1e-12));
    }

    #[test]
    fn transpose_is_involution() {
        let a = Matrix::from_fn(3, 5, |i, j| (i * 5 + j) as f64);
        assert!(a.transpose().transpose().approx_eq(&a, 0.0));
        assert_eq!(a.transpose().shape(), (5, 3));
        assert_eq!(a.transpose()[(4, 2)], a[(2, 4)]);
    }

    #[test]
    fn reductions_are_consistent() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.sum(), 21.0);
        assert!((a.mean() - 3.5).abs() < 1e-12);
        assert_eq!(a.sum_axis0().as_slice(), &[5.0, 7.0, 9.0]);
        assert_eq!(a.sum_axis1().as_slice(), &[6.0, 15.0]);
        assert_eq!(a.mean_axis0().as_slice(), &[2.5, 3.5, 4.5]);
        assert_eq!(a.mean_axis1().as_slice(), &[2.0, 5.0]);
        assert_eq!(a.max(), 6.0);
        assert_eq!(a.min(), 1.0);
    }

    #[test]
    fn variance_matches_definition() {
        let a = Matrix::from_vec(4, 1, vec![1.0, 2.0, 3.0, 4.0]);
        let v = a.var_axis0();
        assert!((v.item() - 1.25).abs() < 1e-12);
        assert!((a.std_axis0().item() - 1.25f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn elementwise_ops_work() {
        let a = Matrix::from_vec(1, 3, vec![1.0, 2.0, 3.0]);
        let b = Matrix::from_vec(1, 3, vec![4.0, 5.0, 6.0]);
        assert_eq!(a.add(&b).as_slice(), &[5.0, 7.0, 9.0]);
        assert_eq!(b.sub(&a).as_slice(), &[3.0, 3.0, 3.0]);
        assert_eq!(a.mul(&b).as_slice(), &[4.0, 10.0, 18.0]);
        assert_eq!(b.div(&a).as_slice(), &[4.0, 2.5, 2.0]);
        assert_eq!(a.scale(2.0).as_slice(), &[2.0, 4.0, 6.0]);
        assert_eq!(a.add_scalar(1.0).as_slice(), &[2.0, 3.0, 4.0]);
        assert_eq!(a.dot(&b), 32.0);
    }

    #[test]
    fn add_scaled_assign_is_axpy() {
        let mut a = Matrix::ones(2, 2);
        let b = Matrix::full(2, 2, 3.0);
        a.add_scaled_assign(0.5, &b);
        assert!(a.approx_eq(&Matrix::full(2, 2, 2.5), 1e-12));
    }

    #[test]
    fn select_rows_and_cols() {
        let a = Matrix::from_fn(4, 3, |i, j| (i * 3 + j) as f64);
        let r = a.select_rows(&[2, 0, 2]);
        assert_eq!(r.shape(), (3, 3));
        assert_eq!(r.row(0), a.row(2));
        assert_eq!(r.row(1), a.row(0));
        assert_eq!(r.row(2), a.row(2));

        let c = a.select_cols(&[2, 1]);
        assert_eq!(c.shape(), (4, 2));
        assert_eq!(c.col(0), a.col(2));
        assert_eq!(c.col(1), a.col(1));
    }

    #[test]
    fn stack_and_slice() {
        let a = Matrix::ones(2, 2);
        let b = Matrix::zeros(2, 3);
        let h = a.hstack(&b);
        assert_eq!(h.shape(), (2, 5));
        assert_eq!(h[(0, 1)], 1.0);
        assert_eq!(h[(0, 2)], 0.0);
        assert!(h.slice_cols(0, 2).approx_eq(&a, 0.0));
        assert!(h.slice_cols(2, 5).approx_eq(&b, 0.0));

        let v = a.vstack(&Matrix::zeros(1, 2));
        assert_eq!(v.shape(), (3, 2));
        assert_eq!(v[(2, 0)], 0.0);
    }

    #[test]
    fn finite_checks_and_clamp() {
        let mut a = Matrix::ones(2, 2);
        assert!(a.all_finite());
        a[(0, 0)] = f64::NAN;
        assert!(!a.all_finite());

        let c = Matrix::from_vec(1, 3, vec![-5.0, 0.5, 9.0]).clamp(0.0, 1.0);
        assert_eq!(c.as_slice(), &[0.0, 0.5, 1.0]);
    }

    #[test]
    fn item_returns_scalar() {
        assert_eq!(Matrix::scalar(7.5).item(), 7.5);
    }

    #[test]
    #[should_panic(expected = "item()")]
    fn item_panics_for_non_scalar() {
        let _ = Matrix::ones(2, 1).item();
    }

    #[test]
    #[should_panic(expected = "matmul")]
    fn matmul_rejects_mismatched_inner_dims() {
        let _ = Matrix::ones(2, 3).matmul(&Matrix::ones(2, 3));
    }
}
