//! Finite-difference gradient verification.
//!
//! Every autodiff op (and every composite loss built on top of the engine) is
//! validated against central finite differences. The helpers here are used by
//! the unit and property tests across the workspace; they live in the library
//! (not `#[cfg(test)]`) so downstream crates can check their own composite
//! losses.

use crate::graph::{Graph, TensorId};
use crate::matrix::Matrix;

/// Builds a scalar loss from a single differentiable input.
///
/// The closure receives a fresh graph and the id of the input (inserted as a
/// parameter) and must return a `1 x 1` loss node.
pub type LossBuilder<'a> = &'a dyn Fn(&mut Graph, TensorId) -> TensorId;

/// Evaluates `loss(x)` by building a throwaway graph.
pub fn eval_loss(build: LossBuilder<'_>, x: &Matrix) -> f64 {
    let mut g = Graph::new();
    let id = g.param(x.clone());
    let loss = build(&mut g, id);
    g.scalar(loss)
}

/// Central finite-difference gradient of `loss` at `x`.
pub fn finite_diff_grad(build: LossBuilder<'_>, x: &Matrix, eps: f64) -> Matrix {
    let mut grad = Matrix::zeros(x.rows(), x.cols());
    for i in 0..x.rows() {
        for j in 0..x.cols() {
            let mut xp = x.clone();
            xp[(i, j)] += eps;
            let mut xm = x.clone();
            xm[(i, j)] -= eps;
            grad[(i, j)] = (eval_loss(build, &xp) - eval_loss(build, &xm)) / (2.0 * eps);
        }
    }
    grad
}

/// Analytic (reverse-mode) gradient of `loss` at `x`.
pub fn analytic_grad(build: LossBuilder<'_>, x: &Matrix) -> Matrix {
    let mut g = Graph::new();
    let id = g.param(x.clone());
    let loss = build(&mut g, id);
    g.backward(loss);
    g.grad(id)
        // lint: allow(panic) — infallible: `id` is a parameter of this very
        // graph and `backward` was just run from a loss that depends on it;
        // gradcheck is a diagnostic harness, not a serving path.
        .expect("input parameter should receive a gradient")
        .clone()
}

/// Outcome of a gradient check, with enough context to debug a failure.
#[derive(Debug)]
pub struct GradCheckReport {
    /// Largest elementwise discrepancy found.
    pub max_abs_err: f64,
    /// Largest relative discrepancy (denominator floored at 1.0).
    pub max_rel_err: f64,
}

/// Compares the reverse-mode gradient against central finite differences.
///
/// Returns `Ok(report)` if the maximum relative error (with the denominator
/// floored at 1 to avoid blow-ups near zero) is below `tol`, `Err(report)`
/// otherwise.
pub fn check_gradient(
    build: LossBuilder<'_>,
    x: &Matrix,
    eps: f64,
    tol: f64,
) -> Result<GradCheckReport, String> {
    let fd = finite_diff_grad(build, x, eps);
    let an = analytic_grad(build, x);
    if fd.shape() != an.shape() {
        return Err(format!(
            "gradient shape mismatch: fd {:?} vs analytic {:?}",
            fd.shape(),
            an.shape()
        ));
    }
    let mut max_abs = 0.0f64;
    let mut max_rel = 0.0f64;
    for (f, a) in fd.as_slice().iter().zip(an.as_slice()) {
        let abs = (f - a).abs();
        let rel = abs / f.abs().max(a.abs()).max(1.0);
        max_abs = max_abs.max(abs);
        max_rel = max_rel.max(rel);
    }
    let report = GradCheckReport { max_abs_err: max_abs, max_rel_err: max_rel };
    if max_rel <= tol {
        Ok(report)
    } else {
        Err(format!(
            "gradient check failed: max_rel_err {max_rel:.3e} > tol {tol:.1e} (max_abs_err {max_abs:.3e});\nfinite-diff:\n{fd:?}\nanalytic:\n{an:?}"
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::{randn, rng_from_seed};

    fn check(build: LossBuilder<'_>, x: &Matrix) {
        check_gradient(build, x, 1e-5, 1e-5).unwrap();
    }

    #[test]
    #[rustfmt::skip]
    fn grad_of_elementwise_unary_ops() {
        let mut rng = rng_from_seed(101);
        // Keep inputs away from non-differentiable points (0 for abs/relu) and
        // in valid domains (positive for ln/sqrt). One op per line so a
        // missing backward rule is visible at a glance.
        let x = randn(&mut rng, 3, 4).map(|v| v.abs() + 0.5);
        check(&|g, a| { let t = g.ln(a); g.sum(t) }, &x);
        check(&|g, a| { let t = g.sqrt(a); g.sum(t) }, &x);
        check(&|g, a| { let t = g.recip(a); g.sum(t) }, &x);
        check(&|g, a| { let t = g.powf(a, 2.5); g.sum(t) }, &x);

        let y = randn(&mut rng, 3, 4);
        check(&|g, a| { let t = g.exp(a); g.sum(t) }, &y);
        check(&|g, a| { let t = g.cos(a); g.sum(t) }, &y);
        check(&|g, a| { let t = g.sin(a); g.sum(t) }, &y);
        check(&|g, a| { let t = g.tanh(a); g.sum(t) }, &y);
        check(&|g, a| { let t = g.sigmoid(a); g.sum(t) }, &y);
        check(&|g, a| { let t = g.softplus(a); g.sum(t) }, &y);
        check(&|g, a| { let t = g.square(a); g.sum(t) }, &y);
        check(&|g, a| { let t = g.neg(a); g.sumsq(t) }, &y);
        check(&|g, a| { let t = g.scale(a, -1.7); g.sumsq(t) }, &y);
        check(&|g, a| { let t = g.add_scalar(a, 3.0); g.sumsq(t) }, &y);
        check(&|g, a| { let t = g.elu(a, 1.0); g.sumsq(t) }, &y);
    }

    #[test]
    #[rustfmt::skip]
    fn grad_of_reductions() {
        let mut rng = rng_from_seed(102);
        let x = randn(&mut rng, 4, 3);
        check(&|g, a| { let t = g.square(a); g.mean(t) }, &x);
        check(&|g, a| { let t = g.sum_axis0(a); g.sumsq(t) }, &x);
        check(&|g, a| { let t = g.mean_axis0(a); g.sumsq(t) }, &x);
        check(&|g, a| { let t = g.sum_axis1(a); g.sumsq(t) }, &x);
        check(&|g, a| { let t = g.mean_axis1(a); g.sumsq(t) }, &x);
    }

    #[test]
    fn grad_of_matmul_and_transpose() {
        let mut rng = rng_from_seed(103);
        let x = randn(&mut rng, 3, 4);
        let w = randn(&mut rng, 4, 2);
        check(
            &move |g, a| {
                let wc = g.constant(w.clone());
                let y = g.matmul(a, wc);
                g.sumsq(y)
            },
            &x,
        );
        let u = randn(&mut rng, 3, 4);
        check(
            &move |g, a| {
                let t = g.transpose(a);
                let uc = g.constant(u.clone());
                let y = g.matmul(uc, t); // (3x4)*(4x3)
                g.sumsq(y)
            },
            &x,
        );
    }

    #[test]
    fn grad_of_broadcast_ops() {
        let mut rng = rng_from_seed(104);
        let x = randn(&mut rng, 4, 3);
        let row = randn(&mut rng, 1, 3);
        let col = randn(&mut rng, 4, 1);

        let r = row.clone();
        check(
            &move |g, a| {
                let rc = g.constant(r.clone());
                let y = g.add_row(a, rc);
                g.sumsq(y)
            },
            &x,
        );
        let r = row.clone();
        check(
            &move |g, a| {
                let rc = g.constant(r.clone());
                let y = g.mul_row(a, rc);
                g.sumsq(y)
            },
            &x,
        );
        let c = col.clone();
        check(
            &move |g, a| {
                let cc = g.constant(c.clone());
                let y = g.add_col(a, cc);
                g.sumsq(y)
            },
            &x,
        );
        let c = col.clone();
        check(
            &move |g, a| {
                let cc = g.constant(c.clone());
                let y = g.mul_col(a, cc);
                g.sumsq(y)
            },
            &x,
        );

        // Gradient w.r.t. the broadcast operand itself.
        let xc = x.clone();
        check(
            &move |g, a| {
                let big = g.constant(xc.clone());
                let y = g.mul_row(big, a);
                g.sumsq(y)
            },
            &row,
        );
        let xc = x.clone();
        check(
            &move |g, a| {
                let big = g.constant(xc.clone());
                let y = g.mul_col(big, a);
                g.sumsq(y)
            },
            &col,
        );
        let rr = row.clone();
        check(
            &move |g, a| {
                let rc = g.constant(rr.clone());
                let y = g.col_plus_row(a, rc);
                g.sumsq(y)
            },
            &col,
        );
    }

    #[test]
    fn grad_of_structural_ops() {
        let mut rng = rng_from_seed(105);
        let x = randn(&mut rng, 5, 3);
        check(
            &|g, a| {
                let gth = g.gather_rows(a, &[0, 2, 2, 4]);
                g.sumsq(gth)
            },
            &x,
        );
        check(
            &|g, a| {
                let gth = g.gather_cols(a, &[2, 0, 2]);
                g.sumsq(gth)
            },
            &x,
        );
        check(
            &|g, a| {
                let sl = g.slice_cols(a, 1, 3);
                g.sumsq(sl)
            },
            &x,
        );
        let other = randn(&mut rng, 5, 2);
        check(
            &move |g, a| {
                let oc = g.constant(other.clone());
                let cat = g.concat_cols(a, oc);
                g.sumsq(cat)
            },
            &x,
        );
    }

    #[test]
    fn grad_of_scalar_of_ops() {
        let mut rng = rng_from_seed(106);
        let x = randn(&mut rng, 3, 3);
        check(
            &|g, a| {
                let s = g.sum(a); // scalar depends on a too
                let y = g.div_scalar_of(a, s);
                g.sumsq(y)
            },
            &x.map(|v| v.abs() + 1.0),
        );
        check(
            &|g, a| {
                let s = g.mean(a);
                let y = g.mul_scalar_of(a, s);
                g.sumsq(y)
            },
            &x,
        );
    }

    #[test]
    fn grad_of_deep_composition() {
        // A small MLP-like composite: sumsq(elu(x W1 + b1) W2).
        let mut rng = rng_from_seed(107);
        let x = randn(&mut rng, 6, 4);
        let w1 = randn(&mut rng, 4, 5);
        let b1 = randn(&mut rng, 1, 5);
        let w2 = randn(&mut rng, 5, 2);
        check(
            &move |g, a| {
                let w1c = g.constant(w1.clone());
                let b1c = g.constant(b1.clone());
                let w2c = g.constant(w2.clone());
                let h = g.matmul(a, w1c);
                let h = g.add_row(h, b1c);
                let h = g.elu(h, 1.0);
                let y = g.matmul(h, w2c);
                g.sumsq(y)
            },
            &x,
        );
    }
}
