//! Cache-blocked, optionally multi-threaded dense kernels — the single hot
//! path every matrix product in the workspace funnels through.
//!
//! Every SBRL-HAP training step bottoms out in dense GEMMs (layer forwards,
//! the autodiff tape's `MatMul` backward pair) and O(n²) kernel statistics.
//! This module owns that hot path:
//!
//! * [`Parallelism`] — the workspace-wide threading knob. One global value
//!   (env-driven via `SBRL_THREADS`, default = available cores) governs every
//!   kernel; [`Parallelism::Serial`] reproduces the historical
//!   single-threaded output **bit for bit**.
//! * [`gemm`], [`gemm_nt`], [`gemm_tn`] — cache-blocked matrix products
//!   (tiled over the inner dimension and output columns) with a row-sharded
//!   scoped-thread parallel path. Each output element is accumulated in the
//!   same floating-point order regardless of blocking or thread count, so
//!   results are bit-identical across all `Parallelism` settings.
//! * [`shard_ranges`], [`par_for_row_chunks`], [`par_map_values`] — the
//!   sharding primitives, reused by `sbrl-stats` for its pairwise loops and
//!   by `sbrl-core` for batched inference.
//!
//! # Example
//!
//! ```
//! use sbrl_tensor::kernels::{gemm, Parallelism};
//! use sbrl_tensor::Matrix;
//!
//! let a = Matrix::from_fn(64, 32, |i, j| (i + j) as f64);
//! let b = Matrix::from_fn(32, 48, |i, j| (i as f64 - j as f64) * 0.5);
//! let serial = gemm(&a, &b, Parallelism::Serial);
//! let parallel = gemm(&a, &b, Parallelism::Threads(4));
//! // The parallel path shards output rows; accumulation order per element
//! // is unchanged, so the results are bit-identical.
//! assert_eq!(serial.as_slice(), parallel.as_slice());
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};

use crate::matrix::Matrix;

/// Inner-dimension slab width for the blocked GEMM: one `KC x NC` panel of
/// the right-hand operand stays resident in **L1** while a row block streams
/// past it (32 x 128 doubles = 32 KiB; the panel previously spilled to L2,
/// which bounded the kernel at roughly half its measured throughput).
const KC: usize = 32;
/// Output-column tile width for the blocked GEMM.
const NC: usize = 128;
/// Minimum number of multiply-adds a worker thread must have before the
/// parallel path spawns it; below this the spawn overhead dominates.
const MIN_MADDS_PER_WORKER: usize = 1 << 16;

/// How many worker threads the numerical kernels may use.
///
/// The workspace has exactly one threading knob: a process-global
/// `Parallelism` value read by every kernel (GEMM, the pairwise statistics in
/// `sbrl-stats`, batched inference in `sbrl-core`). It resolves, in order:
///
/// 1. an explicit [`Parallelism::set_global`] call;
/// 2. the `SBRL_THREADS` environment variable (`1` = serial, `n` = that many
///    workers, `0`/unset/invalid = all available cores);
/// 3. [`std::thread::available_parallelism`].
///
/// Parallel execution only shards *independent* work (disjoint output rows,
/// disjoint pair lists) and never reorders a floating-point reduction, so
/// every setting produces bit-identical numbers; the knob trades wall-clock
/// only. [`Parallelism::Serial`] additionally guarantees no worker thread is
/// ever spawned.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Parallelism {
    /// Single-threaded: run every kernel on the calling thread.
    Serial,
    /// Shard across up to this many scoped worker threads (values are
    /// clamped to at least 1; `Threads(1)` behaves like `Serial`).
    Threads(usize),
}

/// Global knob storage: 0 = unresolved, otherwise `workers + 1` (so an
/// explicit one-worker setting is distinguishable from "unset").
static GLOBAL_WORKERS: AtomicUsize = AtomicUsize::new(0);

impl Parallelism {
    /// One worker per available hardware thread (at least one).
    pub fn auto() -> Self {
        Parallelism::Threads(available_cores())
    }

    /// Resolves the knob from the `SBRL_THREADS` environment variable:
    /// `1` = [`Parallelism::Serial`], `n >= 2` = that many workers,
    /// `0`/unset/unparsable = [`Parallelism::auto`].
    pub fn from_env() -> Self {
        match std::env::var("SBRL_THREADS").ok().and_then(|v| v.trim().parse::<usize>().ok()) {
            Some(1) => Parallelism::Serial,
            Some(n) if n >= 2 => Parallelism::Threads(n),
            _ => Parallelism::auto(),
        }
    }

    /// The number of worker threads this setting allows (always >= 1).
    pub fn workers(self) -> usize {
        match self {
            Parallelism::Serial => 1,
            Parallelism::Threads(n) => n.max(1),
        }
    }

    /// Installs `self` as the process-global knob used by [`Matrix::matmul`]
    /// and every other kernel that does not take an explicit `Parallelism`.
    pub fn set_global(self) {
        GLOBAL_WORKERS.store(self.workers() + 1, Ordering::Relaxed);
    }

    /// The process-global knob. The first read resolves
    /// [`Parallelism::from_env`] and caches it; later
    /// [`Parallelism::set_global`] calls override it.
    pub fn global() -> Self {
        let stored = GLOBAL_WORKERS.load(Ordering::Relaxed);
        let workers = if stored == 0 {
            let resolved = Parallelism::from_env().workers();
            // A concurrent initialiser may race us; both compute the same
            // env-derived value, so a plain store is fine.
            GLOBAL_WORKERS.store(resolved + 1, Ordering::Relaxed);
            resolved
        } else {
            stored - 1
        };
        if workers <= 1 {
            Parallelism::Serial
        } else {
            Parallelism::Threads(workers)
        }
    }
}

/// Number of hardware threads available to this process (at least 1).
pub fn available_cores() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Splits `0..n` into at most `workers` contiguous, non-empty ranges.
pub fn shard_ranges(n: usize, workers: usize) -> Vec<(usize, usize)> {
    if n == 0 {
        return Vec::new();
    }
    let workers = workers.clamp(1, n);
    let chunk = n.div_ceil(workers);
    (0..workers)
        .map(|w| ((w * chunk).min(n), ((w + 1) * chunk).min(n)))
        .filter(|(lo, hi)| lo < hi)
        .collect()
}

/// Caps `par`'s worker count so each worker gets at least `min_units` of the
/// `units` total work (always at least one worker).
pub fn effective_workers(par: Parallelism, units: usize, min_units: usize) -> usize {
    let by_work = units.checked_div(min_units).unwrap_or(units);
    par.workers().min(by_work.max(1))
}

/// Runs `f(row_lo, row_hi, chunk)` over disjoint row blocks of the
/// `rows x cols` row-major buffer `out`, sharded across up to `workers`
/// scoped threads (`workers <= 1` runs inline on the calling thread).
///
/// Each invocation owns the sub-slice for rows `row_lo..row_hi`; rows are
/// never shared, so any per-row computation is race-free and bit-identical
/// to a serial left-to-right pass.
pub fn par_for_row_chunks<F>(out: &mut [f64], rows: usize, cols: usize, workers: usize, f: F)
where
    F: Fn(usize, usize, &mut [f64]) + Sync,
{
    debug_assert_eq!(out.len(), rows * cols, "par_for_row_chunks: buffer/shape mismatch");
    let workers = workers.clamp(1, rows.max(1));
    if workers <= 1 {
        f(0, rows, out);
        return;
    }
    let ranges = shard_ranges(rows, workers);
    std::thread::scope(|s| {
        let mut rest = out;
        for &(lo, hi) in &ranges {
            let (chunk, tail) = rest.split_at_mut((hi - lo) * cols);
            rest = tail;
            let f = &f;
            s.spawn(move || f(lo, hi, chunk));
        }
    });
}

/// Evaluates `f(i)` for every `i in 0..n`, sharded across up to `workers`
/// scoped threads, and returns the results in index order. Each slot is
/// computed exactly once, so the output is identical to a serial map.
pub fn par_map_values<R, F>(n: usize, workers: usize, f: F) -> Vec<R>
where
    R: Send + Default + Clone,
    F: Fn(usize) -> R + Sync,
{
    let workers = workers.clamp(1, n.max(1));
    let mut out = vec![R::default(); n];
    if workers <= 1 {
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = f(i);
        }
        return out;
    }
    let ranges = shard_ranges(n, workers);
    std::thread::scope(|s| {
        let mut rest = out.as_mut_slice();
        for &(lo, hi) in &ranges {
            let (chunk, tail) = rest.split_at_mut(hi - lo);
            rest = tail;
            let f = &f;
            s.spawn(move || {
                for (k, slot) in chunk.iter_mut().enumerate() {
                    *slot = f(lo + k);
                }
            });
        }
    });
    out
}

/// Worker count for a GEMM with `madds` multiply-adds under `par`, capped so
/// each worker has enough work to amortise its spawn.
fn gemm_workers(par: Parallelism, madds: usize, rows: usize) -> usize {
    effective_workers(par, madds, MIN_MADDS_PER_WORKER).min(rows.max(1))
}

/// True when the running CPU supports AVX2 (checked once, cached).
///
/// The AVX2 kernel variants below contain the *same scalar operation
/// sequence* as the portable ones — Rust never fuses `mul + add` into FMA or
/// reassociates floating-point reductions — so the wider registers change
/// throughput only and every result stays bit-identical. This is a runtime
/// dispatch: binaries remain portable to baseline x86-64.
#[cfg(target_arch = "x86_64")]
pub(crate) fn avx2_available() -> bool {
    use std::sync::OnceLock;
    static AVX2: OnceLock<bool> = OnceLock::new();
    *AVX2.get_or_init(|| std::arch::is_x86_feature_detected!("avx2"))
}

/// Dispatches a row kernel to its AVX2-compiled variant when available.
macro_rules! simd_dispatch {
    ($generic:ident, $avx2:ident, ($($arg:expr),*)) => {{
        #[cfg(target_arch = "x86_64")]
        {
            if avx2_available() {
                // SAFETY: `avx2_available` verified the CPU feature at
                // runtime; the function body is ordinary safe Rust.
                return unsafe { $avx2($($arg),*) };
            }
        }
        $generic($($arg),*)
    }};
}

/// One `out_row[j] += aik * b_row[j]` pass (skipped entirely by the callers
/// when `aik == 0.0`, preserving the historical exact-zero semantics).
#[inline(always)]
fn axpy(out_row: &mut [f64], aik: f64, b_row: &[f64]) {
    for (o, &bv) in out_row.iter_mut().zip(b_row) {
        *o += aik * bv;
    }
}

/// Four consecutive-`k` accumulation passes fused into one sweep over the
/// output row. Each element performs `(((o + a0*b0) + a1*b1) + a2*b2) +
/// a3*b3` — exactly the operation sequence of four separate [`axpy`] passes
/// in ascending `k` order — while the output row is loaded and stored once
/// instead of four times (the kernels' main throughput lever).
#[inline(always)]
fn axpy4(out_row: &mut [f64], av: [f64; 4], b0: &[f64], b1: &[f64], b2: &[f64], b3: &[f64]) {
    let len = out_row.len();
    let (b0, b1, b2, b3) = (&b0[..len], &b1[..len], &b2[..len], &b3[..len]);
    for j in 0..len {
        let mut acc = out_row[j];
        acc += av[0] * b0[j];
        acc += av[1] * b1[j];
        acc += av[2] * b2[j];
        acc += av[3] * b3[j];
        out_row[j] = acc;
    }
}

/// [`axpy4`] over **two** output rows sharing the same four `b` rows. Each
/// row's per-element operation sequence is exactly [`axpy4`]'s; sharing the
/// `b` loads halves the kernel's dominant memory traffic (the kernels are
/// load/store-bound without FMA, which bit-identity rules out).
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn axpy4x2(
    row0: &mut [f64],
    row1: &mut [f64],
    av0: [f64; 4],
    av1: [f64; 4],
    b0: &[f64],
    b1: &[f64],
    b2: &[f64],
    b3: &[f64],
) {
    let len = row0.len();
    let (b0, b1, b2, b3) = (&b0[..len], &b1[..len], &b2[..len], &b3[..len]);
    let row1 = &mut row1[..len];
    for j in 0..len {
        let (v0, v1, v2, v3) = (b0[j], b1[j], b2[j], b3[j]);
        let mut a0 = row0[j];
        a0 += av0[0] * v0;
        a0 += av0[1] * v1;
        a0 += av0[2] * v2;
        a0 += av0[3] * v3;
        row0[j] = a0;
        let mut a1 = row1[j];
        a1 += av1[0] * v0;
        a1 += av1[1] * v1;
        a1 += av1[2] * v2;
        a1 += av1[3] * v3;
        row1[j] = a1;
    }
}

/// One output row's `kb..k_hi` accumulation against the `b` panel columns
/// `jb..j_hi` (ascending `k`, unrolled by four, exact-zero skip preserved).
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn accum_row(
    out_row: &mut [f64],
    a_at: impl Fn(usize) -> f64,
    b: &[f64],
    kb: usize,
    k_hi: usize,
    jb: usize,
    j_hi: usize,
    n: usize,
) {
    let mut k = kb;
    while k + 4 <= k_hi {
        let av = [a_at(k), a_at(k + 1), a_at(k + 2), a_at(k + 3)];
        if av.iter().all(|&v| v != 0.0) {
            axpy4(
                out_row,
                av,
                &b[k * n + jb..k * n + j_hi],
                &b[(k + 1) * n + jb..(k + 1) * n + j_hi],
                &b[(k + 2) * n + jb..(k + 2) * n + j_hi],
                &b[(k + 3) * n + jb..(k + 3) * n + j_hi],
            );
        } else {
            for (dk, &aik) in av.iter().enumerate() {
                if aik != 0.0 {
                    axpy(out_row, aik, &b[(k + dk) * n + jb..(k + dk) * n + j_hi]);
                }
            }
        }
        k += 4;
    }
    for kk in k..k_hi {
        let aik = a_at(kk);
        if aik != 0.0 {
            axpy(out_row, aik, &b[kk * n + jb..kk * n + j_hi]);
        }
    }
}

/// Two output rows' `kb..k_hi` accumulation with shared `b` loads; falls
/// back to [`accum_row`] semantics per row whenever a zero `a` entry makes
/// the fused pass inapplicable.
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn accum_row_pair(
    row0: &mut [f64],
    row1: &mut [f64],
    a0_at: impl Fn(usize) -> f64,
    a1_at: impl Fn(usize) -> f64,
    b: &[f64],
    kb: usize,
    k_hi: usize,
    jb: usize,
    j_hi: usize,
    n: usize,
) {
    let mut k = kb;
    while k + 4 <= k_hi {
        let av0 = [a0_at(k), a0_at(k + 1), a0_at(k + 2), a0_at(k + 3)];
        let av1 = [a1_at(k), a1_at(k + 1), a1_at(k + 2), a1_at(k + 3)];
        let ok0 = av0.iter().all(|&v| v != 0.0);
        let ok1 = av1.iter().all(|&v| v != 0.0);
        if ok0 && ok1 {
            axpy4x2(
                row0,
                row1,
                av0,
                av1,
                &b[k * n + jb..k * n + j_hi],
                &b[(k + 1) * n + jb..(k + 1) * n + j_hi],
                &b[(k + 2) * n + jb..(k + 2) * n + j_hi],
                &b[(k + 3) * n + jb..(k + 3) * n + j_hi],
            );
        } else {
            for (row, av, ok) in [(&mut *row0, av0, ok0), (&mut *row1, av1, ok1)] {
                if ok {
                    axpy4(
                        row,
                        av,
                        &b[k * n + jb..k * n + j_hi],
                        &b[(k + 1) * n + jb..(k + 1) * n + j_hi],
                        &b[(k + 2) * n + jb..(k + 2) * n + j_hi],
                        &b[(k + 3) * n + jb..(k + 3) * n + j_hi],
                    );
                } else {
                    for (dk, &aik) in av.iter().enumerate() {
                        if aik != 0.0 {
                            axpy(row, aik, &b[(k + dk) * n + jb..(k + dk) * n + j_hi]);
                        }
                    }
                }
            }
        }
        k += 4;
    }
    for kk in k..k_hi {
        for (row, a_at) in [(&mut *row0, &a0_at as &dyn Fn(usize) -> f64), (&mut *row1, &a1_at)] {
            let aik = a_at(kk);
            if aik != 0.0 {
                axpy(row, aik, &b[kk * n + jb..kk * n + j_hi]);
            }
        }
    }
}

/// Blocked `C += A * B` for output rows `r0..r1`; `out` is the chunk holding
/// exactly those rows. Accumulates each output element in ascending-`k`
/// order (matching the historical `i-k-j` loop bit for bit, including its
/// skip of exact-zero `a[i][k]` entries); the `k` dimension is unrolled by
/// four when the participating `a` entries are all non-zero, which changes
/// memory traffic but not a single floating-point operation.
#[inline(always)]
fn gemm_nn_rows_impl(
    a: &[f64],
    b: &[f64],
    out: &mut [f64],
    r0: usize,
    r1: usize,
    k_dim: usize,
    n: usize,
) {
    for kb in (0..k_dim).step_by(KC) {
        let k_hi = (kb + KC).min(k_dim);
        for jb in (0..n).step_by(NC) {
            let j_hi = (jb + NC).min(n);
            let mut i = r0;
            while i + 2 <= r1 {
                let (head, tail) = out.split_at_mut((i + 1 - r0) * n);
                let row0 = &mut head[(i - r0) * n + jb..(i - r0) * n + j_hi];
                let row1 = &mut tail[jb..j_hi];
                let a_row0 = &a[i * k_dim..(i + 1) * k_dim];
                let a_row1 = &a[(i + 1) * k_dim..(i + 2) * k_dim];
                accum_row_pair(row0, row1, |k| a_row0[k], |k| a_row1[k], b, kb, k_hi, jb, j_hi, n);
                i += 2;
            }
            if i < r1 {
                let a_row = &a[i * k_dim..(i + 1) * k_dim];
                let out_row = &mut out[(i - r0) * n + jb..(i - r0) * n + j_hi];
                accum_row(out_row, |k| a_row[k], b, kb, k_hi, jb, j_hi, n);
            }
        }
    }
}

/// `C[i][j] = dot(a.row(i), b.row(j))` for output rows `r0..r1`.
///
/// Four output columns are computed per sweep with independent accumulator
/// chains; each chain folds `0.0 + Σ_k a[i][k] * b[j][k]` in ascending `k`
/// order exactly like the historical per-element iterator sum, so results
/// are bit-identical while the four chains hide the floating-point add
/// latency that used to serialise the kernel.
#[inline(always)]
fn gemm_nt_rows_impl(
    a: &[f64],
    b: &[f64],
    out: &mut [f64],
    r0: usize,
    r1: usize,
    k_dim: usize,
    n: usize,
) {
    for i in r0..r1 {
        let a_row = &a[i * k_dim..(i + 1) * k_dim];
        let out_row = &mut out[(i - r0) * n..(i - r0 + 1) * n];
        let mut j = 0;
        while j + 4 <= n {
            let b0 = &b[j * k_dim..(j + 1) * k_dim];
            let b1 = &b[(j + 1) * k_dim..(j + 2) * k_dim];
            let b2 = &b[(j + 2) * k_dim..(j + 3) * k_dim];
            let b3 = &b[(j + 3) * k_dim..(j + 4) * k_dim];
            let (mut s0, mut s1, mut s2, mut s3) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
            for ((((&x, &y0), &y1), &y2), &y3) in a_row.iter().zip(b0).zip(b1).zip(b2).zip(b3) {
                s0 += x * y0;
                s1 += x * y1;
                s2 += x * y2;
                s3 += x * y3;
            }
            out_row[j] = s0;
            out_row[j + 1] = s1;
            out_row[j + 2] = s2;
            out_row[j + 3] = s3;
            j += 4;
        }
        for (jj, o) in out_row.iter_mut().enumerate().skip(j) {
            let b_row = &b[jj * k_dim..(jj + 1) * k_dim];
            *o = a_row.iter().zip(b_row).map(|(&x, &y)| x * y).sum();
        }
    }
}

/// `C += A^T * B` for the output rows starting at `r0` (columns of `A`);
/// the row count is implied by `out.len() / n`. Per-element accumulation
/// runs over `k` (the shared row index) in ascending order with the same
/// exact-zero skip as the historical loop — unrolled by four like
/// [`gemm_nn_rows`] — so the result is bit-identical for every row sharding.
#[inline(always)]
fn gemm_tn_rows_impl(a: &[f64], b: &[f64], out: &mut [f64], r0: usize, a_cols: usize, n: usize) {
    let a_rows = a.len().checked_div(a_cols).unwrap_or(0);
    let r1 = r0 + out.len().checked_div(n).unwrap_or(0);
    for kb in (0..a_rows).step_by(KC) {
        let k_hi = (kb + KC).min(a_rows);
        for jb in (0..n).step_by(NC) {
            let j_hi = (jb + NC).min(n);
            let mut i = r0;
            while i + 2 <= r1 {
                let (head, tail) = out.split_at_mut((i + 1 - r0) * n);
                let row0 = &mut head[(i - r0) * n + jb..(i - r0) * n + j_hi];
                let row1 = &mut tail[jb..j_hi];
                accum_row_pair(
                    row0,
                    row1,
                    |k| a[k * a_cols + i],
                    |k| a[k * a_cols + i + 1],
                    b,
                    kb,
                    k_hi,
                    jb,
                    j_hi,
                    n,
                );
                i += 2;
            }
            if i < r1 {
                let out_row = &mut out[(i - r0) * n + jb..(i - r0) * n + j_hi];
                accum_row(out_row, |k| a[k * a_cols + i], b, kb, k_hi, jb, j_hi, n);
            }
        }
    }
}

/// AVX2-compiled clone of [`gemm_nn_rows_impl`] (same scalar ops, wider
/// auto-vectorisation; see [`avx2_available`]).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn gemm_nn_rows_avx2(
    a: &[f64],
    b: &[f64],
    out: &mut [f64],
    r0: usize,
    r1: usize,
    k_dim: usize,
    n: usize,
) {
    gemm_nn_rows_impl(a, b, out, r0, r1, k_dim, n);
}

fn gemm_nn_rows(
    a: &[f64],
    b: &[f64],
    out: &mut [f64],
    r0: usize,
    r1: usize,
    k_dim: usize,
    n: usize,
) {
    simd_dispatch!(gemm_nn_rows_impl, gemm_nn_rows_avx2, (a, b, out, r0, r1, k_dim, n))
}

/// AVX2-compiled clone of [`gemm_nt_rows_impl`].
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn gemm_nt_rows_avx2(
    a: &[f64],
    b: &[f64],
    out: &mut [f64],
    r0: usize,
    r1: usize,
    k_dim: usize,
    n: usize,
) {
    gemm_nt_rows_impl(a, b, out, r0, r1, k_dim, n);
}

fn gemm_nt_rows(
    a: &[f64],
    b: &[f64],
    out: &mut [f64],
    r0: usize,
    r1: usize,
    k_dim: usize,
    n: usize,
) {
    simd_dispatch!(gemm_nt_rows_impl, gemm_nt_rows_avx2, (a, b, out, r0, r1, k_dim, n))
}

/// AVX2-compiled clone of [`gemm_tn_rows_impl`].
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn gemm_tn_rows_avx2(
    a: &[f64],
    b: &[f64],
    out: &mut [f64],
    r0: usize,
    a_cols: usize,
    n: usize,
) {
    gemm_tn_rows_impl(a, b, out, r0, a_cols, n);
}

fn gemm_tn_rows(a: &[f64], b: &[f64], out: &mut [f64], r0: usize, a_cols: usize, n: usize) {
    simd_dispatch!(gemm_tn_rows_impl, gemm_tn_rows_avx2, (a, b, out, r0, a_cols, n))
}

/// Matrix product `a * b` through the blocked kernel, sharding output rows
/// across up to `par` worker threads. Bit-identical for every `par`.
///
/// # Panics
/// Panics if the inner dimensions differ.
#[track_caller]
pub fn gemm(a: &Matrix, b: &Matrix, par: Parallelism) -> Matrix {
    let mut out = Matrix::zeros(a.rows(), b.cols());
    gemm_into(a, b, &mut out, par);
    out
}

/// [`gemm`] writing into a caller-provided `a.rows() x b.cols()` buffer —
/// the allocation-free variant backing the pooled autodiff tape. The buffer
/// is fully overwritten (any prior contents are discarded); the accumulation
/// order is identical to [`gemm`], so results are bit-identical.
///
/// # Panics
/// Panics if the inner dimensions differ or the output shape is wrong.
#[track_caller]
pub fn gemm_into(a: &Matrix, b: &Matrix, out: &mut Matrix, par: Parallelism) {
    assert_eq!(
        a.cols(),
        b.rows(),
        "matmul: inner dimensions differ ({}x{} * {}x{})",
        a.rows(),
        a.cols(),
        b.rows(),
        b.cols()
    );
    let (m, k_dim, n) = (a.rows(), a.cols(), b.cols());
    assert_eq!(out.shape(), (m, n), "gemm_into: output buffer has the wrong shape");
    out.fill_with(0.0);
    let workers = gemm_workers(par, m * k_dim * n, m);
    let (a_s, b_s) = (a.as_slice(), b.as_slice());
    par_for_row_chunks(out.as_mut_slice(), m, n, workers, |r0, r1, chunk| {
        gemm_nn_rows(a_s, b_s, chunk, r0, r1, k_dim, n);
    });
}

/// Matrix product `a * b^T` without materialising the transpose, sharding
/// output rows across up to `par` worker threads.
///
/// # Panics
/// Panics if the column counts differ.
#[track_caller]
pub fn gemm_nt(a: &Matrix, b: &Matrix, par: Parallelism) -> Matrix {
    let mut out = Matrix::zeros(a.rows(), b.rows());
    gemm_nt_into(a, b, &mut out, par);
    out
}

/// [`gemm_nt`] writing into a caller-provided `a.rows() x b.rows()` buffer.
/// Every output element is assigned (not accumulated), so prior contents are
/// irrelevant; results are bit-identical to [`gemm_nt`].
///
/// # Panics
/// Panics if the column counts differ or the output shape is wrong.
#[track_caller]
pub fn gemm_nt_into(a: &Matrix, b: &Matrix, out: &mut Matrix, par: Parallelism) {
    assert_eq!(
        a.cols(),
        b.cols(),
        "matmul_nt: column counts differ ({}x{} * ({}x{})^T)",
        a.rows(),
        a.cols(),
        b.rows(),
        b.cols()
    );
    let (m, k_dim, n) = (a.rows(), a.cols(), b.rows());
    assert_eq!(out.shape(), (m, n), "gemm_nt_into: output buffer has the wrong shape");
    let workers = gemm_workers(par, m * k_dim * n, m);
    let (a_s, b_s) = (a.as_slice(), b.as_slice());
    par_for_row_chunks(out.as_mut_slice(), m, n, workers, |r0, r1, chunk| {
        gemm_nt_rows(a_s, b_s, chunk, r0, r1, k_dim, n);
    });
}

/// Matrix product `a^T * b` without materialising the transpose, sharding
/// output rows (columns of `a`) across up to `par` worker threads.
///
/// # Panics
/// Panics if the row counts differ.
#[track_caller]
pub fn gemm_tn(a: &Matrix, b: &Matrix, par: Parallelism) -> Matrix {
    let mut out = Matrix::zeros(a.cols(), b.cols());
    gemm_tn_into(a, b, &mut out, par);
    out
}

/// [`gemm_tn`] writing into a caller-provided `a.cols() x b.cols()` buffer.
/// The buffer is fully overwritten; accumulation order is identical to
/// [`gemm_tn`], so results are bit-identical.
///
/// # Panics
/// Panics if the row counts differ or the output shape is wrong.
#[track_caller]
pub fn gemm_tn_into(a: &Matrix, b: &Matrix, out: &mut Matrix, par: Parallelism) {
    assert_eq!(
        a.rows(),
        b.rows(),
        "matmul_tn: row counts differ (({}x{})^T * {}x{})",
        a.rows(),
        a.cols(),
        b.rows(),
        b.cols()
    );
    let (a_rows, m, n) = (a.rows(), a.cols(), b.cols());
    assert_eq!(out.shape(), (m, n), "gemm_tn_into: output buffer has the wrong shape");
    out.fill_with(0.0);
    let workers = gemm_workers(par, a_rows * m * n, m);
    let (a_s, b_s) = (a.as_slice(), b.as_slice());
    par_for_row_chunks(out.as_mut_slice(), m, n, workers, |r0, _r1, chunk| {
        gemm_tn_rows(a_s, b_s, chunk, r0, m, n);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::{randn, rng_from_seed};

    fn reference_matmul(a: &Matrix, b: &Matrix) -> Matrix {
        // The historical unblocked i-k-j loop, kept verbatim as the
        // bit-identity oracle.
        let mut out = Matrix::zeros(a.rows(), b.cols());
        let oc = b.cols();
        for i in 0..a.rows() {
            for k in 0..a.cols() {
                let aik = a[(i, k)];
                if aik == 0.0 {
                    continue;
                }
                for j in 0..oc {
                    out[(i, j)] += aik * b[(k, j)];
                }
            }
        }
        out
    }

    #[test]
    fn blocked_serial_gemm_is_bit_identical_to_reference() {
        let mut rng = rng_from_seed(0);
        for (m, k, n) in [(1, 1, 1), (3, 5, 7), (40, 33, 29), (130, 257, 65), (256, 64, 129)] {
            let a = randn(&mut rng, m, k);
            let b = randn(&mut rng, k, n);
            let blocked = gemm(&a, &b, Parallelism::Serial);
            let reference = reference_matmul(&a, &b);
            assert_eq!(blocked.as_slice(), reference.as_slice(), "shape {m}x{k}x{n}");
        }
    }

    #[test]
    fn parallel_gemm_is_bit_identical_to_serial() {
        let mut rng = rng_from_seed(1);
        let a = randn(&mut rng, 97, 61);
        let b = randn(&mut rng, 61, 83);
        let serial = gemm(&a, &b, Parallelism::Serial);
        for workers in [2, 3, 4, 7, 97, 500] {
            let par = gemm(&a, &b, Parallelism::Threads(workers));
            assert_eq!(par.as_slice(), serial.as_slice(), "workers = {workers}");
        }
    }

    #[test]
    fn parallel_fused_transpose_products_are_bit_identical_to_serial() {
        let mut rng = rng_from_seed(2);
        let a = randn(&mut rng, 90, 45);
        let b = randn(&mut rng, 70, 45);
        let c = randn(&mut rng, 90, 31);
        let nt_serial = gemm_nt(&a, &b, Parallelism::Serial);
        let tn_serial = gemm_tn(&a, &c, Parallelism::Serial);
        for workers in [2, 5, 16] {
            let par = Parallelism::Threads(workers);
            assert_eq!(gemm_nt(&a, &b, par).as_slice(), nt_serial.as_slice());
            assert_eq!(gemm_tn(&a, &c, par).as_slice(), tn_serial.as_slice());
        }
    }

    #[test]
    fn gemm_handles_exact_zero_entries_like_the_reference() {
        // The historical kernel skips a[i][k] == 0.0 rather than adding
        // 0.0 * b, which matters for signed zeros and non-finite b entries.
        let mut a = Matrix::zeros(3, 3);
        a[(0, 0)] = 1.0;
        a[(2, 1)] = -2.0;
        let mut b = Matrix::ones(3, 4);
        b[(1, 0)] = f64::INFINITY;
        b[(2, 2)] = f64::NEG_INFINITY;
        let reference = reference_matmul(&a, &b);
        for par in [Parallelism::Serial, Parallelism::Threads(3)] {
            let got = gemm(&a, &b, par);
            assert_eq!(
                got.as_slice().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                reference.as_slice().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "{par:?}"
            );
        }
    }

    #[test]
    fn shard_ranges_cover_exactly_once() {
        for n in [0usize, 1, 2, 7, 100] {
            for w in [1usize, 2, 3, 7, 100, 200] {
                let ranges = shard_ranges(n, w);
                let mut covered = vec![false; n];
                for (lo, hi) in ranges {
                    assert!(lo < hi && hi <= n);
                    for slot in &mut covered[lo..hi] {
                        assert!(!*slot, "overlapping shards");
                        *slot = true;
                    }
                }
                assert!(covered.iter().all(|&c| c), "n={n} w={w} left gaps");
            }
        }
    }

    #[test]
    fn par_map_values_matches_serial_map() {
        let serial: Vec<usize> = (0..57).map(|i| i * i).collect();
        for workers in [1, 2, 3, 8, 57, 100] {
            assert_eq!(par_map_values(57, workers, |i| i * i), serial, "workers = {workers}");
        }
    }

    #[test]
    fn par_for_row_chunks_fills_every_row_once() {
        let rows = 23;
        let cols = 5;
        for workers in [1usize, 2, 4, 23, 64] {
            let mut out = vec![0.0; rows * cols];
            par_for_row_chunks(&mut out, rows, cols, workers, |lo, hi, chunk| {
                for (k, row) in chunk.chunks_mut(cols).enumerate() {
                    let i = lo + k;
                    assert!(i < hi);
                    for (j, v) in row.iter_mut().enumerate() {
                        *v = (i * cols + j) as f64;
                    }
                }
            });
            for (idx, &v) in out.iter().enumerate() {
                assert_eq!(v, idx as f64, "workers = {workers}");
            }
        }
    }

    #[test]
    fn parallelism_knob_semantics() {
        assert_eq!(Parallelism::Serial.workers(), 1);
        assert_eq!(Parallelism::Threads(0).workers(), 1);
        assert_eq!(Parallelism::Threads(6).workers(), 6);
        assert!(Parallelism::auto().workers() >= 1);
        // effective_workers never exceeds the work available.
        assert_eq!(effective_workers(Parallelism::Threads(8), 10, 100), 1);
        assert_eq!(effective_workers(Parallelism::Threads(8), 1000, 100), 8);
        assert_eq!(effective_workers(Parallelism::Serial, 1_000_000, 1), 1);
    }

    #[test]
    fn global_knob_round_trips() {
        // Whatever the env resolved to, an explicit set wins afterwards.
        let before = Parallelism::global();
        Parallelism::Threads(3).set_global();
        assert_eq!(Parallelism::global(), Parallelism::Threads(3));
        Parallelism::Serial.set_global();
        assert_eq!(Parallelism::global(), Parallelism::Serial);
        before.set_global();
        assert_eq!(Parallelism::global().workers(), before.workers());
    }
}
