//! Cache-blocked, optionally multi-threaded dense kernels — the single hot
//! path every matrix product in the workspace funnels through.
//!
//! Every SBRL-HAP training step bottoms out in dense GEMMs (layer forwards,
//! the autodiff tape's `MatMul` backward pair) and O(n²) kernel statistics.
//! This module owns that hot path:
//!
//! * [`Parallelism`] — the workspace-wide threading knob. One global value
//!   (env-driven via `SBRL_THREADS`, default = available cores) governs every
//!   kernel; [`Parallelism::Serial`] reproduces the historical
//!   single-threaded output **bit for bit**.
//! * [`NumericsMode`] — the workspace-wide floating-point contract knob
//!   (env-driven via `SBRL_NUMERICS`, default [`NumericsMode::BitExact`]).
//!   `BitExact` preserves every historical accumulation chain;
//!   [`NumericsMode::Fast`] opts into FMA contraction in the row microkernels
//!   and deterministic pairwise-tree reductions ([`reduce_sum`],
//!   [`reduce_dot`]), trading bit-reproducibility against the historical
//!   chains for throughput while staying within the documented relative-error
//!   bounds (enforced by `tests/numerics_mode.rs`).
//! * [`gemm`], [`gemm_nt`], [`gemm_tn`] — cache-blocked matrix products
//!   (tiled over the inner dimension and output columns) with a row-sharded
//!   parallel path. In `BitExact` each output element is accumulated in the
//!   same floating-point order regardless of blocking or thread count, so
//!   results are bit-identical across all `Parallelism` settings.
//! * [`shard_ranges`], [`par_for_row_chunks`], [`par_map_values`] — the
//!   sharding primitives, reused by `sbrl-stats` for its pairwise loops and
//!   by `sbrl-core` for batched inference. Since this PR they execute on the
//!   persistent worker pool in [`crate::workers`] instead of spawning scoped
//!   threads per call.
//!
//! # Example
//!
//! ```
//! use sbrl_tensor::kernels::{gemm, Parallelism};
//! use sbrl_tensor::Matrix;
//!
//! let a = Matrix::from_fn(64, 32, |i, j| (i + j) as f64);
//! let b = Matrix::from_fn(32, 48, |i, j| (i as f64 - j as f64) * 0.5);
//! let serial = gemm(&a, &b, Parallelism::Serial);
//! let parallel = gemm(&a, &b, Parallelism::Threads(4));
//! // The parallel path shards output rows; accumulation order per element
//! // is unchanged, so the results are bit-identical.
//! assert_eq!(serial.as_slice(), parallel.as_slice());
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};

use crate::matrix::Matrix;

/// Inner-dimension slab width for the blocked GEMM: one `KC x NC` panel of
/// the right-hand operand stays resident in **L1** while a row block streams
/// past it (32 x 128 doubles = 32 KiB; the panel previously spilled to L2,
/// which bounded the kernel at roughly half its measured throughput).
const KC: usize = 32;
/// Output-column tile width for the blocked GEMM.
const NC: usize = 128;
/// Minimum number of multiply-adds a worker thread must have before the
/// parallel path spawns it; below this the spawn overhead dominates.
const MIN_MADDS_PER_WORKER: usize = 1 << 16;

/// How many worker threads the numerical kernels may use.
///
/// The workspace has exactly one threading knob: a process-global
/// `Parallelism` value read by every kernel (GEMM, the pairwise statistics in
/// `sbrl-stats`, batched inference in `sbrl-core`). It resolves, in order:
///
/// 1. an explicit [`Parallelism::set_global`] call;
/// 2. the `SBRL_THREADS` environment variable (`1` = serial, `n` = that many
///    workers, `0`/unset/invalid = all available cores);
/// 3. [`std::thread::available_parallelism`].
///
/// Parallel execution only shards *independent* work (disjoint output rows,
/// disjoint pair lists) and never reorders a floating-point reduction, so
/// every setting produces bit-identical numbers; the knob trades wall-clock
/// only. [`Parallelism::Serial`] additionally guarantees no worker thread is
/// ever spawned.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Parallelism {
    /// Single-threaded: run every kernel on the calling thread.
    Serial,
    /// Shard across up to this many scoped worker threads (values are
    /// clamped to at least 1; `Threads(1)` behaves like `Serial`).
    Threads(usize),
}

/// Global knob storage: 0 = unresolved, otherwise `workers + 1` (so an
/// explicit one-worker setting is distinguishable from "unset").
static GLOBAL_WORKERS: AtomicUsize = AtomicUsize::new(0);

impl Parallelism {
    /// One worker per available hardware thread (at least one).
    pub fn auto() -> Self {
        Parallelism::Threads(available_cores())
    }

    /// Resolves the knob from the `SBRL_THREADS` environment variable:
    /// `1` = [`Parallelism::Serial`], `n >= 2` = that many workers,
    /// `0`/unset/unparsable = [`Parallelism::auto`].
    pub fn from_env() -> Self {
        match std::env::var("SBRL_THREADS").ok().and_then(|v| v.trim().parse::<usize>().ok()) {
            Some(1) => Parallelism::Serial,
            Some(n) if n >= 2 => Parallelism::Threads(n),
            _ => Parallelism::auto(),
        }
    }

    /// The number of worker threads this setting allows (always >= 1).
    pub fn workers(self) -> usize {
        match self {
            Parallelism::Serial => 1,
            Parallelism::Threads(n) => n.max(1),
        }
    }

    /// Installs `self` as the process-global knob used by [`Matrix::matmul`]
    /// and every other kernel that does not take an explicit `Parallelism`.
    pub fn set_global(self) {
        GLOBAL_WORKERS.store(self.workers() + 1, Ordering::Relaxed);
    }

    /// The process-global knob. The first read resolves
    /// [`Parallelism::from_env`] and caches it; later
    /// [`Parallelism::set_global`] calls override it.
    pub fn global() -> Self {
        let stored = GLOBAL_WORKERS.load(Ordering::Relaxed);
        let workers = if stored == 0 {
            let resolved = Parallelism::from_env().workers();
            // A concurrent initialiser may race us; both compute the same
            // env-derived value, so a plain store is fine.
            GLOBAL_WORKERS.store(resolved + 1, Ordering::Relaxed);
            resolved
        } else {
            stored - 1
        };
        if workers <= 1 {
            Parallelism::Serial
        } else {
            Parallelism::Threads(workers)
        }
    }
}

/// Number of hardware threads available to this process (at least 1).
pub fn available_cores() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Floating-point contract of the numerical kernels.
///
/// The workspace's second process-global knob, next to [`Parallelism`]. It
/// resolves, in order:
///
/// 1. an explicit [`NumericsMode::set_global`] call;
/// 2. the `SBRL_NUMERICS` environment variable (`fast`, case-insensitive,
///    selects [`NumericsMode::Fast`]; anything else is `BitExact`);
/// 3. the default, [`NumericsMode::BitExact`].
///
/// `BitExact` is the historical contract: no FMA contraction, no reduction
/// reordering, output bit-identical to the pre-kernel-layer code at every
/// `Parallelism` setting. `Fast` relaxes exactly two things — the row
/// microkernels may contract `mul + add` into hardware FMA (where the CPU
/// has it), and long reductions use a fixed pairwise tree with four-wide
/// accumulator blocks — in exchange for measurably higher throughput. Fast
/// results stay within the relative-error bounds documented in
/// `docs/PERFORMANCE.md` ("Numerics tiers") and are **deterministic on a
/// given machine**: the reduction tree depends only on operand length, never
/// on the thread count or scheduling, so a fixed `SBRL_THREADS` (indeed any
/// thread count) reproduces Fast output bit for bit run-to-run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum NumericsMode {
    /// Historical bit-exact arithmetic: every accumulation chain unchanged.
    #[default]
    BitExact,
    /// FMA microkernels + deterministic pairwise-tree reductions.
    Fast,
}

/// Global numerics knob storage: 0 = unresolved, 1 = bit-exact, 2 = fast.
static GLOBAL_NUMERICS: AtomicUsize = AtomicUsize::new(0);

impl NumericsMode {
    /// Resolves the knob from the `SBRL_NUMERICS` environment variable:
    /// `fast` (case-insensitive) = [`NumericsMode::Fast`], anything
    /// else/unset = [`NumericsMode::BitExact`].
    pub fn from_env() -> Self {
        match std::env::var("SBRL_NUMERICS") {
            Ok(v) if v.trim().eq_ignore_ascii_case("fast") => NumericsMode::Fast,
            _ => NumericsMode::BitExact,
        }
    }

    /// True for [`NumericsMode::Fast`].
    pub fn is_fast(self) -> bool {
        matches!(self, NumericsMode::Fast)
    }

    /// The knob's canonical spelling (`"bitexact"` / `"fast"`), as accepted
    /// by `SBRL_NUMERICS` and recorded in `FittedModel` provenance.
    pub fn as_str(self) -> &'static str {
        match self {
            NumericsMode::BitExact => "bitexact",
            NumericsMode::Fast => "fast",
        }
    }

    /// Installs `self` as the process-global knob used by every kernel that
    /// does not take an explicit `NumericsMode`.
    pub fn set_global(self) {
        let stored = match self {
            NumericsMode::BitExact => 1,
            NumericsMode::Fast => 2,
        };
        GLOBAL_NUMERICS.store(stored, Ordering::Relaxed);
    }

    /// The process-global knob. The first read resolves
    /// [`NumericsMode::from_env`] and caches it; later
    /// [`NumericsMode::set_global`] calls override it.
    pub fn global() -> Self {
        match GLOBAL_NUMERICS.load(Ordering::Relaxed) {
            1 => NumericsMode::BitExact,
            2 => NumericsMode::Fast,
            _ => {
                let resolved = NumericsMode::from_env();
                // A concurrent initialiser may race us; both compute the
                // same env-derived value, so a plain store is fine.
                resolved.set_global();
                resolved
            }
        }
    }
}

impl std::fmt::Display for NumericsMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Splits `0..n` into at most `workers` contiguous, non-empty ranges.
pub fn shard_ranges(n: usize, workers: usize) -> Vec<(usize, usize)> {
    if n == 0 {
        return Vec::new();
    }
    let workers = workers.clamp(1, n);
    let chunk = n.div_ceil(workers);
    (0..workers)
        .map(|w| ((w * chunk).min(n), ((w + 1) * chunk).min(n)))
        .filter(|(lo, hi)| lo < hi)
        .collect()
}

/// Caps `par`'s worker count so each worker gets at least `min_units` of the
/// `units` total work (always at least one worker).
pub fn effective_workers(par: Parallelism, units: usize, min_units: usize) -> usize {
    let by_work = units.checked_div(min_units).unwrap_or(units);
    par.workers().min(by_work.max(1))
}

/// Sendable raw-pointer wrapper used to hand **disjoint** regions of one
/// output buffer to pool tasks; every user below derives the regions from
/// [`shard_ranges`], which guarantees disjointness.
struct SendPtr<T>(*mut T);
// SAFETY: the wrapper is only used to pass pointers into pool tasks that
// write non-overlapping regions while the submitter keeps the underlying
// buffer mutably borrowed until every task completes.
unsafe impl<T> Send for SendPtr<T> {}
// SAFETY: as for `Send` — tasks only dereference into disjoint regions, so
// shared references to the wrapper are harmless across threads.
unsafe impl<T> Sync for SendPtr<T> {}

impl<T> SendPtr<T> {
    /// Accessor method (rather than direct field access) so closures capture
    /// the `Sync` wrapper, not the raw pointer field — edition-2021 disjoint
    /// capture would otherwise grab the non-`Sync` `*mut T` itself.
    fn get(&self) -> *mut T {
        self.0
    }
}

/// Runs `f(row_lo, row_hi, chunk)` over disjoint row blocks of the
/// `rows x cols` row-major buffer `out`, sharded across up to `workers`
/// threads of the persistent pool in [`crate::workers`] (`workers <= 1`
/// runs inline on the calling thread and never touches the pool).
///
/// Each invocation owns the sub-slice for rows `row_lo..row_hi`; rows are
/// never shared, so any per-row computation is race-free and bit-identical
/// to a serial left-to-right pass regardless of which pool thread runs
/// which block.
pub fn par_for_row_chunks<F>(out: &mut [f64], rows: usize, cols: usize, workers: usize, f: F)
where
    F: Fn(usize, usize, &mut [f64]) + Sync,
{
    debug_assert_eq!(out.len(), rows * cols, "par_for_row_chunks: buffer/shape mismatch");
    let workers = workers.clamp(1, rows.max(1));
    if workers <= 1 {
        f(0, rows, out);
        return;
    }
    let ranges = shard_ranges(rows, workers);
    let base = SendPtr(out.as_mut_ptr());
    crate::workers::run_tasks(ranges.len(), workers, &|t| {
        let (lo, hi) = ranges[t];
        // SAFETY: `shard_ranges` yields disjoint `lo..hi` row ranges, so
        // every task reconstitutes a non-overlapping sub-slice of `out`,
        // which stays mutably borrowed until `run_tasks` returns.
        let chunk =
            unsafe { std::slice::from_raw_parts_mut(base.get().add(lo * cols), (hi - lo) * cols) };
        f(lo, hi, chunk);
    });
}

/// Evaluates `f(i)` for every `i in 0..n`, sharded across up to `workers`
/// threads of the persistent pool, and returns the results in index order.
/// Each slot is computed exactly once, so the output is identical to a
/// serial map.
pub fn par_map_values<R, F>(n: usize, workers: usize, f: F) -> Vec<R>
where
    R: Send + Default + Clone,
    F: Fn(usize) -> R + Sync,
{
    let workers = workers.clamp(1, n.max(1));
    let mut out = vec![R::default(); n];
    if workers <= 1 {
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = f(i);
        }
        return out;
    }
    let ranges = shard_ranges(n, workers);
    let base = SendPtr(out.as_mut_ptr());
    crate::workers::run_tasks(ranges.len(), workers, &|t| {
        let (lo, hi) = ranges[t];
        for i in lo..hi {
            // SAFETY: ranges are disjoint and every slot was initialised by
            // `vec![R::default(); n]`, so this assignment (which drops the
            // default in place) races with nothing.
            unsafe { *base.get().add(i) = f(i) };
        }
    });
    out
}

/// Worker count for a GEMM with `madds` multiply-adds under `par`, capped so
/// each worker has enough work to amortise its spawn.
fn gemm_workers(par: Parallelism, madds: usize, rows: usize) -> usize {
    effective_workers(par, madds, MIN_MADDS_PER_WORKER).min(rows.max(1))
}

/// True when the running CPU supports AVX2 (checked once, cached).
///
/// The AVX2 kernel variants below contain the *same scalar operation
/// sequence* as the portable ones — Rust never fuses `mul + add` into FMA or
/// reassociates floating-point reductions — so the wider registers change
/// throughput only and every result stays bit-identical. This is a runtime
/// dispatch: binaries remain portable to baseline x86-64.
#[cfg(target_arch = "x86_64")]
pub(crate) fn avx2_available() -> bool {
    use std::sync::OnceLock;
    static AVX2: OnceLock<bool> = OnceLock::new();
    *AVX2.get_or_init(|| std::arch::is_x86_feature_detected!("avx2"))
}

/// True when the running CPU supports AVX2 **and** FMA3 (checked once,
/// cached). [`NumericsMode::Fast`] only takes the FMA kernel variants on
/// such CPUs; elsewhere `Fast` falls back to the bit-exact microkernels
/// (a scalar `f64::mul_add` without hardware FMA would be a slow `libm`
/// call, not an optimisation), which trivially satisfies the Fast error
/// bounds.
#[cfg(target_arch = "x86_64")]
pub(crate) fn fma_available() -> bool {
    use std::sync::OnceLock;
    static FMA: OnceLock<bool> = OnceLock::new();
    *FMA.get_or_init(|| {
        std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
    })
}

/// One multiply-add step of an accumulation chain: `acc + a * b`, contracted
/// to a single fused multiply-add when the kernel was instantiated for
/// [`NumericsMode::Fast`] on FMA hardware. The `FMA = false` instantiation
/// is exactly the historical two-operation sequence.
#[inline(always)]
fn madd<const FMA: bool>(acc: f64, a: f64, b: f64) -> f64 {
    if FMA {
        a.mul_add(b, acc)
    } else {
        acc + a * b
    }
}

/// One `out_row[j] += aik * b_row[j]` pass (skipped entirely by the callers
/// when `aik == 0.0`, preserving the historical exact-zero semantics).
#[inline(always)]
// lint: no_alloc
fn axpy<const FMA: bool>(out_row: &mut [f64], aik: f64, b_row: &[f64]) {
    for (o, &bv) in out_row.iter_mut().zip(b_row) {
        *o = madd::<FMA>(*o, aik, bv);
    }
}

/// Four consecutive-`k` accumulation passes fused into one sweep over the
/// output row. With `FMA = false` each element performs `(((o + a0*b0) +
/// a1*b1) + a2*b2) + a3*b3` — exactly the operation sequence of four
/// separate [`axpy`] passes in ascending `k` order — while the output row is
/// loaded and stored once instead of four times (the kernels' main
/// throughput lever). `FMA = true` contracts each step into a fused
/// multiply-add, same chain order.
#[inline(always)]
fn axpy4<const FMA: bool>(
    out_row: &mut [f64],
    av: [f64; 4],
    b0: &[f64],
    b1: &[f64],
    b2: &[f64],
    b3: &[f64],
) {
    let len = out_row.len();
    let (b0, b1, b2, b3) = (&b0[..len], &b1[..len], &b2[..len], &b3[..len]);
    for j in 0..len {
        let mut acc = out_row[j];
        acc = madd::<FMA>(acc, av[0], b0[j]);
        acc = madd::<FMA>(acc, av[1], b1[j]);
        acc = madd::<FMA>(acc, av[2], b2[j]);
        acc = madd::<FMA>(acc, av[3], b3[j]);
        out_row[j] = acc;
    }
}

/// [`axpy4`] over **two** output rows sharing the same four `b` rows. Each
/// row's per-element operation sequence is exactly [`axpy4`]'s; sharing the
/// `b` loads halves the kernel's dominant memory traffic (the kernels are
/// load/store-bound without FMA, which bit-identity rules out).
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn axpy4x2<const FMA: bool>(
    row0: &mut [f64],
    row1: &mut [f64],
    av0: [f64; 4],
    av1: [f64; 4],
    b0: &[f64],
    b1: &[f64],
    b2: &[f64],
    b3: &[f64],
) {
    let len = row0.len();
    let (b0, b1, b2, b3) = (&b0[..len], &b1[..len], &b2[..len], &b3[..len]);
    let row1 = &mut row1[..len];
    for j in 0..len {
        let (v0, v1, v2, v3) = (b0[j], b1[j], b2[j], b3[j]);
        let mut a0 = row0[j];
        a0 = madd::<FMA>(a0, av0[0], v0);
        a0 = madd::<FMA>(a0, av0[1], v1);
        a0 = madd::<FMA>(a0, av0[2], v2);
        a0 = madd::<FMA>(a0, av0[3], v3);
        row0[j] = a0;
        let mut a1 = row1[j];
        a1 = madd::<FMA>(a1, av1[0], v0);
        a1 = madd::<FMA>(a1, av1[1], v1);
        a1 = madd::<FMA>(a1, av1[2], v2);
        a1 = madd::<FMA>(a1, av1[3], v3);
        row1[j] = a1;
    }
}

/// One output row's `kb..k_hi` accumulation against the `b` panel columns
/// `jb..j_hi` (ascending `k`, unrolled by four, exact-zero skip preserved).
#[allow(clippy::too_many_arguments)]
#[inline(always)]
// lint: no_alloc
fn accum_row<const FMA: bool>(
    out_row: &mut [f64],
    a_at: impl Fn(usize) -> f64,
    b: &[f64],
    kb: usize,
    k_hi: usize,
    jb: usize,
    j_hi: usize,
    n: usize,
) {
    let mut k = kb;
    while k + 4 <= k_hi {
        let av = [a_at(k), a_at(k + 1), a_at(k + 2), a_at(k + 3)];
        if av.iter().all(|&v| v != 0.0) {
            axpy4::<FMA>(
                out_row,
                av,
                &b[k * n + jb..k * n + j_hi],
                &b[(k + 1) * n + jb..(k + 1) * n + j_hi],
                &b[(k + 2) * n + jb..(k + 2) * n + j_hi],
                &b[(k + 3) * n + jb..(k + 3) * n + j_hi],
            );
        } else {
            for (dk, &aik) in av.iter().enumerate() {
                if aik != 0.0 {
                    axpy::<FMA>(out_row, aik, &b[(k + dk) * n + jb..(k + dk) * n + j_hi]);
                }
            }
        }
        k += 4;
    }
    for kk in k..k_hi {
        let aik = a_at(kk);
        if aik != 0.0 {
            axpy::<FMA>(out_row, aik, &b[kk * n + jb..kk * n + j_hi]);
        }
    }
}

/// Two output rows' `kb..k_hi` accumulation with shared `b` loads; falls
/// back to [`accum_row`] semantics per row whenever a zero `a` entry makes
/// the fused pass inapplicable.
#[allow(clippy::too_many_arguments)]
#[inline(always)]
// lint: no_alloc
fn accum_row_pair<const FMA: bool>(
    row0: &mut [f64],
    row1: &mut [f64],
    a0_at: impl Fn(usize) -> f64,
    a1_at: impl Fn(usize) -> f64,
    b: &[f64],
    kb: usize,
    k_hi: usize,
    jb: usize,
    j_hi: usize,
    n: usize,
) {
    let mut k = kb;
    while k + 4 <= k_hi {
        let av0 = [a0_at(k), a0_at(k + 1), a0_at(k + 2), a0_at(k + 3)];
        let av1 = [a1_at(k), a1_at(k + 1), a1_at(k + 2), a1_at(k + 3)];
        let ok0 = av0.iter().all(|&v| v != 0.0);
        let ok1 = av1.iter().all(|&v| v != 0.0);
        if ok0 && ok1 {
            axpy4x2::<FMA>(
                row0,
                row1,
                av0,
                av1,
                &b[k * n + jb..k * n + j_hi],
                &b[(k + 1) * n + jb..(k + 1) * n + j_hi],
                &b[(k + 2) * n + jb..(k + 2) * n + j_hi],
                &b[(k + 3) * n + jb..(k + 3) * n + j_hi],
            );
        } else {
            for (row, av, ok) in [(&mut *row0, av0, ok0), (&mut *row1, av1, ok1)] {
                if ok {
                    axpy4::<FMA>(
                        row,
                        av,
                        &b[k * n + jb..k * n + j_hi],
                        &b[(k + 1) * n + jb..(k + 1) * n + j_hi],
                        &b[(k + 2) * n + jb..(k + 2) * n + j_hi],
                        &b[(k + 3) * n + jb..(k + 3) * n + j_hi],
                    );
                } else {
                    for (dk, &aik) in av.iter().enumerate() {
                        if aik != 0.0 {
                            axpy::<FMA>(row, aik, &b[(k + dk) * n + jb..(k + dk) * n + j_hi]);
                        }
                    }
                }
            }
        }
        k += 4;
    }
    for kk in k..k_hi {
        for (row, a_at) in [(&mut *row0, &a0_at as &dyn Fn(usize) -> f64), (&mut *row1, &a1_at)] {
            let aik = a_at(kk);
            if aik != 0.0 {
                axpy::<FMA>(row, aik, &b[kk * n + jb..kk * n + j_hi]);
            }
        }
    }
}

/// Blocked `C += A * B` for output rows `r0..r1`; `out` is the chunk holding
/// exactly those rows. Accumulates each output element in ascending-`k`
/// order (matching the historical `i-k-j` loop bit for bit, including its
/// skip of exact-zero `a[i][k]` entries); the `k` dimension is unrolled by
/// four when the participating `a` entries are all non-zero, which changes
/// memory traffic but not a single floating-point operation.
#[inline(always)]
// lint: no_alloc
fn gemm_nn_rows_impl<const FMA: bool>(
    a: &[f64],
    b: &[f64],
    out: &mut [f64],
    r0: usize,
    r1: usize,
    k_dim: usize,
    n: usize,
) {
    for kb in (0..k_dim).step_by(KC) {
        let k_hi = (kb + KC).min(k_dim);
        for jb in (0..n).step_by(NC) {
            let j_hi = (jb + NC).min(n);
            let mut i = r0;
            while i + 2 <= r1 {
                let (head, tail) = out.split_at_mut((i + 1 - r0) * n);
                let row0 = &mut head[(i - r0) * n + jb..(i - r0) * n + j_hi];
                let row1 = &mut tail[jb..j_hi];
                let a_row0 = &a[i * k_dim..(i + 1) * k_dim];
                let a_row1 = &a[(i + 1) * k_dim..(i + 2) * k_dim];
                accum_row_pair::<FMA>(
                    row0,
                    row1,
                    |k| a_row0[k],
                    |k| a_row1[k],
                    b,
                    kb,
                    k_hi,
                    jb,
                    j_hi,
                    n,
                );
                i += 2;
            }
            if i < r1 {
                let a_row = &a[i * k_dim..(i + 1) * k_dim];
                let out_row = &mut out[(i - r0) * n + jb..(i - r0) * n + j_hi];
                accum_row::<FMA>(out_row, |k| a_row[k], b, kb, k_hi, jb, j_hi, n);
            }
        }
    }
}

/// `C[i][j] = dot(a.row(i), b.row(j))` for output rows `r0..r1`.
///
/// Four output columns are computed per sweep with independent accumulator
/// chains; each chain folds `0.0 + Σ_k a[i][k] * b[j][k]` in ascending `k`
/// order exactly like the historical per-element iterator sum, so results
/// are bit-identical while the four chains hide the floating-point add
/// latency that used to serialise the kernel.
#[inline(always)]
fn gemm_nt_rows_impl<const FMA: bool>(
    a: &[f64],
    b: &[f64],
    out: &mut [f64],
    r0: usize,
    r1: usize,
    k_dim: usize,
    n: usize,
) {
    for i in r0..r1 {
        let a_row = &a[i * k_dim..(i + 1) * k_dim];
        let out_row = &mut out[(i - r0) * n..(i - r0 + 1) * n];
        let mut j = 0;
        while j + 4 <= n {
            let b0 = &b[j * k_dim..(j + 1) * k_dim];
            let b1 = &b[(j + 1) * k_dim..(j + 2) * k_dim];
            let b2 = &b[(j + 2) * k_dim..(j + 3) * k_dim];
            let b3 = &b[(j + 3) * k_dim..(j + 4) * k_dim];
            let (mut s0, mut s1, mut s2, mut s3) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
            for ((((&x, &y0), &y1), &y2), &y3) in a_row.iter().zip(b0).zip(b1).zip(b2).zip(b3) {
                s0 = madd::<FMA>(s0, x, y0);
                s1 = madd::<FMA>(s1, x, y1);
                s2 = madd::<FMA>(s2, x, y2);
                s3 = madd::<FMA>(s3, x, y3);
            }
            out_row[j] = s0;
            out_row[j + 1] = s1;
            out_row[j + 2] = s2;
            out_row[j + 3] = s3;
            j += 4;
        }
        for (jj, o) in out_row.iter_mut().enumerate().skip(j) {
            let b_row = &b[jj * k_dim..(jj + 1) * k_dim];
            let mut s = 0.0f64;
            for (&x, &y) in a_row.iter().zip(b_row) {
                s = madd::<FMA>(s, x, y);
            }
            *o = s;
        }
    }
}

/// `C += A^T * B` for the output rows starting at `r0` (columns of `A`);
/// the row count is implied by `out.len() / n`. Per-element accumulation
/// runs over `k` (the shared row index) in ascending order with the same
/// exact-zero skip as the historical loop — unrolled by four like
/// [`gemm_nn_rows`] — so the result is bit-identical for every row sharding.
#[inline(always)]
fn gemm_tn_rows_impl<const FMA: bool>(
    a: &[f64],
    b: &[f64],
    out: &mut [f64],
    r0: usize,
    a_cols: usize,
    n: usize,
) {
    let a_rows = a.len().checked_div(a_cols).unwrap_or(0);
    let r1 = r0 + out.len().checked_div(n).unwrap_or(0);
    for kb in (0..a_rows).step_by(KC) {
        let k_hi = (kb + KC).min(a_rows);
        for jb in (0..n).step_by(NC) {
            let j_hi = (jb + NC).min(n);
            let mut i = r0;
            while i + 2 <= r1 {
                let (head, tail) = out.split_at_mut((i + 1 - r0) * n);
                let row0 = &mut head[(i - r0) * n + jb..(i - r0) * n + j_hi];
                let row1 = &mut tail[jb..j_hi];
                accum_row_pair::<FMA>(
                    row0,
                    row1,
                    |k| a[k * a_cols + i],
                    |k| a[k * a_cols + i + 1],
                    b,
                    kb,
                    k_hi,
                    jb,
                    j_hi,
                    n,
                );
                i += 2;
            }
            if i < r1 {
                let out_row = &mut out[(i - r0) * n + jb..(i - r0) * n + j_hi];
                accum_row::<FMA>(out_row, |k| a[k * a_cols + i], b, kb, k_hi, jb, j_hi, n);
            }
        }
    }
}

/// AVX2-compiled clone of [`gemm_nn_rows_impl`] (same scalar ops, wider
/// auto-vectorisation; see [`avx2_available`]).
///
/// # Safety
/// Caller must verify AVX2 support first (see [`avx2_available`]); the body
/// itself is ordinary safe Rust recompiled with wider vector types.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn gemm_nn_rows_avx2(
    a: &[f64],
    b: &[f64],
    out: &mut [f64],
    r0: usize,
    r1: usize,
    k_dim: usize,
    n: usize,
) {
    gemm_nn_rows_impl::<false>(a, b, out, r0, r1, k_dim, n);
}

/// AVX2+FMA-compiled clone of [`gemm_nn_rows_impl`] with contracted
/// multiply-adds — the [`NumericsMode::Fast`] kernel (see [`fma_available`]).
///
/// # Safety
/// Caller must verify AVX2 **and** FMA3 support first (see
/// [`fma_available`]); the body itself is ordinary safe Rust.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn gemm_nn_rows_fma(
    a: &[f64],
    b: &[f64],
    out: &mut [f64],
    r0: usize,
    r1: usize,
    k_dim: usize,
    n: usize,
) {
    gemm_nn_rows_impl::<true>(a, b, out, r0, r1, k_dim, n);
}

#[allow(clippy::too_many_arguments)]
fn gemm_nn_rows(
    a: &[f64],
    b: &[f64],
    out: &mut [f64],
    r0: usize,
    r1: usize,
    k_dim: usize,
    n: usize,
    fast: bool,
) {
    #[cfg(target_arch = "x86_64")]
    {
        if fast && fma_available() {
            // SAFETY: AVX2+FMA presence just verified by `fma_available`.
            return unsafe { gemm_nn_rows_fma(a, b, out, r0, r1, k_dim, n) };
        }
        if avx2_available() {
            // SAFETY: AVX2 presence just verified by `avx2_available`.
            return unsafe { gemm_nn_rows_avx2(a, b, out, r0, r1, k_dim, n) };
        }
    }
    // Non-x86 (or pre-AVX2) fallback: Fast keeps the exact chains — a scalar
    // `mul_add` without hardware FMA would be a slow libm call.
    let _ = fast;
    gemm_nn_rows_impl::<false>(a, b, out, r0, r1, k_dim, n)
}

/// AVX2-compiled clone of [`gemm_nt_rows_impl`].
///
/// # Safety
/// Caller must verify AVX2 support first (see [`avx2_available`]); the body
/// itself is ordinary safe Rust recompiled with wider vector types.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn gemm_nt_rows_avx2(
    a: &[f64],
    b: &[f64],
    out: &mut [f64],
    r0: usize,
    r1: usize,
    k_dim: usize,
    n: usize,
) {
    gemm_nt_rows_impl::<false>(a, b, out, r0, r1, k_dim, n);
}

/// AVX2+FMA-compiled clone of [`gemm_nt_rows_impl`].
///
/// # Safety
/// Caller must verify AVX2 **and** FMA3 support first (see
/// [`fma_available`]); the body itself is ordinary safe Rust.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn gemm_nt_rows_fma(
    a: &[f64],
    b: &[f64],
    out: &mut [f64],
    r0: usize,
    r1: usize,
    k_dim: usize,
    n: usize,
) {
    gemm_nt_rows_impl::<true>(a, b, out, r0, r1, k_dim, n);
}

#[allow(clippy::too_many_arguments)]
fn gemm_nt_rows(
    a: &[f64],
    b: &[f64],
    out: &mut [f64],
    r0: usize,
    r1: usize,
    k_dim: usize,
    n: usize,
    fast: bool,
) {
    #[cfg(target_arch = "x86_64")]
    {
        if fast && fma_available() {
            // SAFETY: AVX2+FMA presence just verified by `fma_available`.
            return unsafe { gemm_nt_rows_fma(a, b, out, r0, r1, k_dim, n) };
        }
        if avx2_available() {
            // SAFETY: AVX2 presence just verified by `avx2_available`.
            return unsafe { gemm_nt_rows_avx2(a, b, out, r0, r1, k_dim, n) };
        }
    }
    let _ = fast;
    gemm_nt_rows_impl::<false>(a, b, out, r0, r1, k_dim, n)
}

/// AVX2-compiled clone of [`gemm_tn_rows_impl`].
///
/// # Safety
/// Caller must verify AVX2 support first (see [`avx2_available`]); the body
/// itself is ordinary safe Rust recompiled with wider vector types.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn gemm_tn_rows_avx2(
    a: &[f64],
    b: &[f64],
    out: &mut [f64],
    r0: usize,
    a_cols: usize,
    n: usize,
) {
    gemm_tn_rows_impl::<false>(a, b, out, r0, a_cols, n);
}

/// AVX2+FMA-compiled clone of [`gemm_tn_rows_impl`].
///
/// # Safety
/// Caller must verify AVX2 **and** FMA3 support first (see
/// [`fma_available`]); the body itself is ordinary safe Rust.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn gemm_tn_rows_fma(
    a: &[f64],
    b: &[f64],
    out: &mut [f64],
    r0: usize,
    a_cols: usize,
    n: usize,
) {
    gemm_tn_rows_impl::<true>(a, b, out, r0, a_cols, n);
}

fn gemm_tn_rows(
    a: &[f64],
    b: &[f64],
    out: &mut [f64],
    r0: usize,
    a_cols: usize,
    n: usize,
    fast: bool,
) {
    #[cfg(target_arch = "x86_64")]
    {
        if fast && fma_available() {
            // SAFETY: AVX2+FMA presence just verified by `fma_available`.
            return unsafe { gemm_tn_rows_fma(a, b, out, r0, a_cols, n) };
        }
        if avx2_available() {
            // SAFETY: AVX2 presence just verified by `avx2_available`.
            return unsafe { gemm_tn_rows_avx2(a, b, out, r0, a_cols, n) };
        }
    }
    let _ = fast;
    gemm_tn_rows_impl::<false>(a, b, out, r0, a_cols, n)
}

/// Matrix product `a * b` through the blocked kernel, sharding output rows
/// across up to `par` worker threads under the process-global
/// [`NumericsMode`]. Bit-identical for every `par` within a mode.
///
/// # Panics
/// Panics if the inner dimensions differ.
#[track_caller]
pub fn gemm(a: &Matrix, b: &Matrix, par: Parallelism) -> Matrix {
    gemm_mode(a, b, par, NumericsMode::global())
}

/// [`gemm`] under an explicit [`NumericsMode`] (race-free alternative to
/// mutating the global knob — used by the differential tests).
///
/// # Panics
/// Panics if the inner dimensions differ.
#[track_caller]
pub fn gemm_mode(a: &Matrix, b: &Matrix, par: Parallelism, mode: NumericsMode) -> Matrix {
    let mut out = Matrix::zeros(a.rows(), b.cols());
    gemm_into_mode(a, b, &mut out, par, mode);
    out
}

/// [`gemm`] writing into a caller-provided `a.rows() x b.cols()` buffer —
/// the allocation-free variant backing the pooled autodiff tape. The buffer
/// is fully overwritten (any prior contents are discarded); the accumulation
/// order is identical to [`gemm`], so results are bit-identical.
///
/// # Panics
/// Panics if the inner dimensions differ or the output shape is wrong.
#[track_caller]
pub fn gemm_into(a: &Matrix, b: &Matrix, out: &mut Matrix, par: Parallelism) {
    gemm_into_mode(a, b, out, par, NumericsMode::global());
}

/// [`gemm_into`] under an explicit [`NumericsMode`].
///
/// # Panics
/// Panics if the inner dimensions differ or the output shape is wrong.
#[track_caller]
pub fn gemm_into_mode(
    a: &Matrix,
    b: &Matrix,
    out: &mut Matrix,
    par: Parallelism,
    mode: NumericsMode,
) {
    assert_eq!(
        a.cols(),
        b.rows(),
        "matmul: inner dimensions differ ({}x{} * {}x{})",
        a.rows(),
        a.cols(),
        b.rows(),
        b.cols()
    );
    let (m, k_dim, n) = (a.rows(), a.cols(), b.cols());
    assert_eq!(out.shape(), (m, n), "gemm_into: output buffer has the wrong shape");
    out.fill_with(0.0);
    let workers = gemm_workers(par, m * k_dim * n, m);
    let (a_s, b_s) = (a.as_slice(), b.as_slice());
    let fast = mode.is_fast();
    par_for_row_chunks(out.as_mut_slice(), m, n, workers, |r0, r1, chunk| {
        gemm_nn_rows(a_s, b_s, chunk, r0, r1, k_dim, n, fast);
    });
}

/// Matrix product `a * b^T` without materialising the transpose, sharding
/// output rows across up to `par` worker threads.
///
/// # Panics
/// Panics if the column counts differ.
#[track_caller]
pub fn gemm_nt(a: &Matrix, b: &Matrix, par: Parallelism) -> Matrix {
    gemm_nt_mode(a, b, par, NumericsMode::global())
}

/// [`gemm_nt`] under an explicit [`NumericsMode`].
///
/// # Panics
/// Panics if the column counts differ.
#[track_caller]
pub fn gemm_nt_mode(a: &Matrix, b: &Matrix, par: Parallelism, mode: NumericsMode) -> Matrix {
    let mut out = Matrix::zeros(a.rows(), b.rows());
    gemm_nt_into_mode(a, b, &mut out, par, mode);
    out
}

/// [`gemm_nt`] writing into a caller-provided `a.rows() x b.rows()` buffer.
/// Every output element is assigned (not accumulated), so prior contents are
/// irrelevant; results are bit-identical to [`gemm_nt`].
///
/// # Panics
/// Panics if the column counts differ or the output shape is wrong.
#[track_caller]
pub fn gemm_nt_into(a: &Matrix, b: &Matrix, out: &mut Matrix, par: Parallelism) {
    gemm_nt_into_mode(a, b, out, par, NumericsMode::global());
}

/// [`gemm_nt_into`] under an explicit [`NumericsMode`].
///
/// # Panics
/// Panics if the column counts differ or the output shape is wrong.
#[track_caller]
pub fn gemm_nt_into_mode(
    a: &Matrix,
    b: &Matrix,
    out: &mut Matrix,
    par: Parallelism,
    mode: NumericsMode,
) {
    assert_eq!(
        a.cols(),
        b.cols(),
        "matmul_nt: column counts differ ({}x{} * ({}x{})^T)",
        a.rows(),
        a.cols(),
        b.rows(),
        b.cols()
    );
    let (m, k_dim, n) = (a.rows(), a.cols(), b.rows());
    assert_eq!(out.shape(), (m, n), "gemm_nt_into: output buffer has the wrong shape");
    let workers = gemm_workers(par, m * k_dim * n, m);
    let (a_s, b_s) = (a.as_slice(), b.as_slice());
    let fast = mode.is_fast();
    par_for_row_chunks(out.as_mut_slice(), m, n, workers, |r0, r1, chunk| {
        gemm_nt_rows(a_s, b_s, chunk, r0, r1, k_dim, n, fast);
    });
}

/// Matrix product `a^T * b` without materialising the transpose, sharding
/// output rows (columns of `a`) across up to `par` worker threads.
///
/// # Panics
/// Panics if the row counts differ.
#[track_caller]
pub fn gemm_tn(a: &Matrix, b: &Matrix, par: Parallelism) -> Matrix {
    gemm_tn_mode(a, b, par, NumericsMode::global())
}

/// [`gemm_tn`] under an explicit [`NumericsMode`].
///
/// # Panics
/// Panics if the row counts differ.
#[track_caller]
pub fn gemm_tn_mode(a: &Matrix, b: &Matrix, par: Parallelism, mode: NumericsMode) -> Matrix {
    let mut out = Matrix::zeros(a.cols(), b.cols());
    gemm_tn_into_mode(a, b, &mut out, par, mode);
    out
}

/// [`gemm_tn`] writing into a caller-provided `a.cols() x b.cols()` buffer.
/// The buffer is fully overwritten; accumulation order is identical to
/// [`gemm_tn`], so results are bit-identical.
///
/// # Panics
/// Panics if the row counts differ or the output shape is wrong.
#[track_caller]
pub fn gemm_tn_into(a: &Matrix, b: &Matrix, out: &mut Matrix, par: Parallelism) {
    gemm_tn_into_mode(a, b, out, par, NumericsMode::global());
}

/// [`gemm_tn_into`] under an explicit [`NumericsMode`].
///
/// # Panics
/// Panics if the row counts differ or the output shape is wrong.
#[track_caller]
pub fn gemm_tn_into_mode(
    a: &Matrix,
    b: &Matrix,
    out: &mut Matrix,
    par: Parallelism,
    mode: NumericsMode,
) {
    assert_eq!(
        a.rows(),
        b.rows(),
        "matmul_tn: row counts differ (({}x{})^T * {}x{})",
        a.rows(),
        a.cols(),
        b.rows(),
        b.cols()
    );
    let (a_rows, m, n) = (a.rows(), a.cols(), b.cols());
    assert_eq!(out.shape(), (m, n), "gemm_tn_into: output buffer has the wrong shape");
    out.fill_with(0.0);
    let workers = gemm_workers(par, a_rows * m * n, m);
    let (a_s, b_s) = (a.as_slice(), b.as_slice());
    let fast = mode.is_fast();
    par_for_row_chunks(out.as_mut_slice(), m, n, workers, |r0, _r1, chunk| {
        gemm_tn_rows(a_s, b_s, chunk, r0, m, n, fast);
    });
}

/// Base block width of the pairwise reductions: blocks of this many elements
/// are folded with four independent accumulators, then merged by a binary
/// counter whose tree shape depends only on the operand length.
const REDUCE_BLOCK: usize = 64;

/// Folds up to [`REDUCE_BLOCK`] values with four independent accumulator
/// chains (deterministic for a fixed length).
#[inline(always)]
// lint: no_alloc
fn sum_block(xs: &[f64]) -> f64 {
    let mut acc = [0.0f64; 4];
    let mut chunks = xs.chunks_exact(4);
    for q in &mut chunks {
        acc[0] += q[0];
        acc[1] += q[1];
        acc[2] += q[2];
        acc[3] += q[3];
    }
    for &v in chunks.remainder() {
        acc[0] += v;
    }
    (acc[0] + acc[1]) + (acc[2] + acc[3])
}

/// Iterative pairwise ("binary counter") summation: `partial[l]` holds the
/// sum of `2^l` consecutive base blocks, merged purely by block index. The
/// reduction tree is a function of `xs.len()` alone — never of thread count
/// or scheduling — which is what makes [`NumericsMode::Fast`] deterministic.
/// Rounding error grows O(log n) instead of the serial fold's O(n).
#[inline(always)]
// lint: no_alloc
fn pairwise_sum_impl(xs: &[f64]) -> f64 {
    // 64 levels cover any in-memory length (2^64 base blocks).
    let mut partial = [0.0f64; 64];
    let mut blocks = 0usize;
    for chunk in xs.chunks(REDUCE_BLOCK) {
        let mut s = sum_block(chunk);
        let mut level = 0;
        let mut m = blocks;
        while m & 1 == 1 {
            s += partial[level];
            m >>= 1;
            level += 1;
        }
        partial[level] = s;
        blocks += 1;
    }
    let mut total = 0.0;
    let mut level = 0;
    while blocks > 0 {
        if blocks & 1 == 1 {
            total += partial[level];
        }
        blocks >>= 1;
        level += 1;
    }
    total
}

/// AVX2-compiled clone of [`pairwise_sum_impl`].
///
/// # Safety
/// Caller must verify AVX2 support first (see [`avx2_available`]); the body
/// itself is ordinary safe Rust recompiled with wider vector types.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn pairwise_sum_avx2(xs: &[f64]) -> f64 {
    pairwise_sum_impl(xs)
}

/// [`sum_block`] for a dot product, with optional FMA contraction.
#[inline(always)]
// lint: no_alloc
fn dot_block<const FMA: bool>(a: &[f64], b: &[f64]) -> f64 {
    let n = a.len().min(b.len());
    let (a, b) = (&a[..n], &b[..n]);
    let mut acc = [0.0f64; 4];
    let mut i = 0;
    while i + 4 <= n {
        acc[0] = madd::<FMA>(acc[0], a[i], b[i]);
        acc[1] = madd::<FMA>(acc[1], a[i + 1], b[i + 1]);
        acc[2] = madd::<FMA>(acc[2], a[i + 2], b[i + 2]);
        acc[3] = madd::<FMA>(acc[3], a[i + 3], b[i + 3]);
        i += 4;
    }
    while i < n {
        acc[0] = madd::<FMA>(acc[0], a[i], b[i]);
        i += 1;
    }
    (acc[0] + acc[1]) + (acc[2] + acc[3])
}

/// [`pairwise_sum_impl`] for a dot product (same binary-counter tree).
#[inline(always)]
// lint: no_alloc
fn pairwise_dot_impl<const FMA: bool>(a: &[f64], b: &[f64]) -> f64 {
    let n = a.len().min(b.len());
    let mut partial = [0.0f64; 64];
    let mut blocks = 0usize;
    let mut lo = 0;
    while lo < n {
        let hi = (lo + REDUCE_BLOCK).min(n);
        let mut s = dot_block::<FMA>(&a[lo..hi], &b[lo..hi]);
        let mut level = 0;
        let mut m = blocks;
        while m & 1 == 1 {
            s += partial[level];
            m >>= 1;
            level += 1;
        }
        partial[level] = s;
        blocks += 1;
        lo = hi;
    }
    let mut total = 0.0;
    let mut level = 0;
    while blocks > 0 {
        if blocks & 1 == 1 {
            total += partial[level];
        }
        blocks >>= 1;
        level += 1;
    }
    total
}

/// AVX2+FMA-compiled clone of [`pairwise_dot_impl`].
///
/// # Safety
/// Caller must verify AVX2 **and** FMA3 support first (see
/// [`fma_available`]); the body itself is ordinary safe Rust.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn pairwise_dot_fma(a: &[f64], b: &[f64]) -> f64 {
    pairwise_dot_impl::<true>(a, b)
}

/// AVX2-compiled clone of [`pairwise_dot_impl`] without contraction (Fast
/// tier on AVX2 CPUs that lack FMA).
///
/// # Safety
/// Caller must verify AVX2 support first (see [`avx2_available`]); the body
/// itself is ordinary safe Rust recompiled with wider vector types.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn pairwise_dot_avx2(a: &[f64], b: &[f64]) -> f64 {
    pairwise_dot_impl::<false>(a, b)
}

/// Sums `xs` under `mode`.
///
/// [`NumericsMode::BitExact`] is the exact serial left-to-right fold
/// (`xs.iter().sum()`, unchanged from the historical code);
/// [`NumericsMode::Fast`] uses the deterministic blocked pairwise tree —
/// different rounding (usually *more* accurate), identical bits for
/// identical input on every thread count.
// lint: no_alloc
pub fn reduce_sum(xs: &[f64], mode: NumericsMode) -> f64 {
    match mode {
        NumericsMode::BitExact => xs.iter().sum(),
        NumericsMode::Fast => {
            #[cfg(target_arch = "x86_64")]
            if avx2_available() {
                // SAFETY: feature verified at runtime; body is safe Rust.
                return unsafe { pairwise_sum_avx2(xs) };
            }
            pairwise_sum_impl(xs)
        }
    }
}

/// Dot product `Σ a[i] * b[i]` (over the shorter length) under `mode`.
///
/// [`NumericsMode::BitExact`] is the exact serial fold of the historical
/// `zip-map-sum`; [`NumericsMode::Fast`] uses the deterministic pairwise
/// tree with FMA contraction where the CPU supports it.
// lint: no_alloc
pub fn reduce_dot(a: &[f64], b: &[f64], mode: NumericsMode) -> f64 {
    match mode {
        NumericsMode::BitExact => a.iter().zip(b).map(|(&x, &y)| x * y).sum(),
        NumericsMode::Fast => {
            #[cfg(target_arch = "x86_64")]
            {
                if fma_available() {
                    // SAFETY: AVX2+FMA presence just verified.
                    return unsafe { pairwise_dot_fma(a, b) };
                }
                if avx2_available() {
                    // SAFETY: AVX2 presence just verified.
                    return unsafe { pairwise_dot_avx2(a, b) };
                }
            }
            pairwise_dot_impl::<false>(a, b)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::{randn, rng_from_seed};

    fn reference_matmul(a: &Matrix, b: &Matrix) -> Matrix {
        // The historical unblocked i-k-j loop, kept verbatim as the
        // bit-identity oracle.
        let mut out = Matrix::zeros(a.rows(), b.cols());
        let oc = b.cols();
        for i in 0..a.rows() {
            for k in 0..a.cols() {
                let aik = a[(i, k)];
                if aik == 0.0 {
                    continue;
                }
                for j in 0..oc {
                    out[(i, j)] += aik * b[(k, j)];
                }
            }
        }
        out
    }

    #[test]
    fn blocked_serial_gemm_is_bit_identical_to_reference() {
        // Pins the BitExact contract explicitly (the plain `gemm` wrapper
        // reads the global knob, which a `SBRL_NUMERICS=fast` test run sets
        // to the Fast tier).
        let mut rng = rng_from_seed(0);
        for (m, k, n) in [(1, 1, 1), (3, 5, 7), (40, 33, 29), (130, 257, 65), (256, 64, 129)] {
            let a = randn(&mut rng, m, k);
            let b = randn(&mut rng, k, n);
            let blocked = gemm_mode(&a, &b, Parallelism::Serial, NumericsMode::BitExact);
            let reference = reference_matmul(&a, &b);
            assert_eq!(blocked.as_slice(), reference.as_slice(), "shape {m}x{k}x{n}");
        }
    }

    #[test]
    fn parallel_gemm_is_bit_identical_to_serial() {
        let mut rng = rng_from_seed(1);
        let a = randn(&mut rng, 97, 61);
        let b = randn(&mut rng, 61, 83);
        let serial = gemm(&a, &b, Parallelism::Serial);
        for workers in [2, 3, 4, 7, 97, 500] {
            let par = gemm(&a, &b, Parallelism::Threads(workers));
            assert_eq!(par.as_slice(), serial.as_slice(), "workers = {workers}");
        }
    }

    #[test]
    fn parallel_fused_transpose_products_are_bit_identical_to_serial() {
        let mut rng = rng_from_seed(2);
        let a = randn(&mut rng, 90, 45);
        let b = randn(&mut rng, 70, 45);
        let c = randn(&mut rng, 90, 31);
        let nt_serial = gemm_nt(&a, &b, Parallelism::Serial);
        let tn_serial = gemm_tn(&a, &c, Parallelism::Serial);
        for workers in [2, 5, 16] {
            let par = Parallelism::Threads(workers);
            assert_eq!(gemm_nt(&a, &b, par).as_slice(), nt_serial.as_slice());
            assert_eq!(gemm_tn(&a, &c, par).as_slice(), tn_serial.as_slice());
        }
    }

    #[test]
    fn gemm_handles_exact_zero_entries_like_the_reference() {
        // The historical kernel skips a[i][k] == 0.0 rather than adding
        // 0.0 * b, which matters for signed zeros and non-finite b entries.
        let mut a = Matrix::zeros(3, 3);
        a[(0, 0)] = 1.0;
        a[(2, 1)] = -2.0;
        let mut b = Matrix::ones(3, 4);
        b[(1, 0)] = f64::INFINITY;
        b[(2, 2)] = f64::NEG_INFINITY;
        let reference = reference_matmul(&a, &b);
        for par in [Parallelism::Serial, Parallelism::Threads(3)] {
            let got = gemm(&a, &b, par);
            assert_eq!(
                got.as_slice().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                reference.as_slice().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "{par:?}"
            );
        }
    }

    #[test]
    fn shard_ranges_cover_exactly_once() {
        for n in [0usize, 1, 2, 7, 100] {
            for w in [1usize, 2, 3, 7, 100, 200] {
                let ranges = shard_ranges(n, w);
                let mut covered = vec![false; n];
                for (lo, hi) in ranges {
                    assert!(lo < hi && hi <= n);
                    for slot in &mut covered[lo..hi] {
                        assert!(!*slot, "overlapping shards");
                        *slot = true;
                    }
                }
                assert!(covered.iter().all(|&c| c), "n={n} w={w} left gaps");
            }
        }
    }

    #[test]
    fn par_map_values_matches_serial_map() {
        let serial: Vec<usize> = (0..57).map(|i| i * i).collect();
        for workers in [1, 2, 3, 8, 57, 100] {
            assert_eq!(par_map_values(57, workers, |i| i * i), serial, "workers = {workers}");
        }
    }

    #[test]
    fn par_for_row_chunks_fills_every_row_once() {
        let rows = 23;
        let cols = 5;
        for workers in [1usize, 2, 4, 23, 64] {
            let mut out = vec![0.0; rows * cols];
            par_for_row_chunks(&mut out, rows, cols, workers, |lo, hi, chunk| {
                for (k, row) in chunk.chunks_mut(cols).enumerate() {
                    let i = lo + k;
                    assert!(i < hi);
                    for (j, v) in row.iter_mut().enumerate() {
                        *v = (i * cols + j) as f64;
                    }
                }
            });
            for (idx, &v) in out.iter().enumerate() {
                assert_eq!(v, idx as f64, "workers = {workers}");
            }
        }
    }

    #[test]
    fn parallelism_knob_semantics() {
        assert_eq!(Parallelism::Serial.workers(), 1);
        assert_eq!(Parallelism::Threads(0).workers(), 1);
        assert_eq!(Parallelism::Threads(6).workers(), 6);
        assert!(Parallelism::auto().workers() >= 1);
        // effective_workers never exceeds the work available.
        assert_eq!(effective_workers(Parallelism::Threads(8), 10, 100), 1);
        assert_eq!(effective_workers(Parallelism::Threads(8), 1000, 100), 8);
        assert_eq!(effective_workers(Parallelism::Serial, 1_000_000, 1), 1);
    }

    #[test]
    fn global_knob_round_trips() {
        // Whatever the env resolved to, an explicit set wins afterwards.
        let before = Parallelism::global();
        Parallelism::Threads(3).set_global();
        assert_eq!(Parallelism::global(), Parallelism::Threads(3));
        Parallelism::Serial.set_global();
        assert_eq!(Parallelism::global(), Parallelism::Serial);
        before.set_global();
        assert_eq!(Parallelism::global().workers(), before.workers());
    }

    #[test]
    fn numerics_mode_semantics() {
        // Pure semantics only: the global knob's set/get round trip lives in
        // tests/numerics_mode.rs behind a lock, because flipping the global
        // to Fast here would race the bit-identity tests in this binary.
        assert_eq!(NumericsMode::default(), NumericsMode::BitExact);
        assert!(!NumericsMode::BitExact.is_fast());
        assert!(NumericsMode::Fast.is_fast());
        assert_eq!(NumericsMode::BitExact.as_str(), "bitexact");
        assert_eq!(NumericsMode::Fast.as_str(), "fast");
        assert_eq!(NumericsMode::Fast.to_string(), "fast");
    }

    #[test]
    fn fast_gemm_stays_within_relative_tolerance_of_bitexact() {
        let mut rng = rng_from_seed(7);
        for (m, k, n) in [(3, 5, 7), (40, 33, 29), (64, 128, 48)] {
            let a = randn(&mut rng, m, k);
            let b = randn(&mut rng, k, n);
            let exact = gemm_mode(&a, &b, Parallelism::Serial, NumericsMode::BitExact);
            let fast = gemm_mode(&a, &b, Parallelism::Threads(4), NumericsMode::Fast);
            for (x, y) in exact.as_slice().iter().zip(fast.as_slice()) {
                let scale = k as f64 * x.abs().max(1.0);
                assert!(
                    (x - y).abs() <= 1e-13 * scale,
                    "{m}x{k}x{n}: {x} vs {y} exceeds tolerance"
                );
            }
        }
    }

    #[test]
    fn fast_gemm_is_deterministic_across_worker_counts() {
        // Fast relaxes *which* chains are used, not their dependence on
        // sharding: row ownership still fixes every chain, so any worker
        // count reproduces the same bits.
        let mut rng = rng_from_seed(8);
        let a = randn(&mut rng, 61, 47);
        let b = randn(&mut rng, 47, 53);
        let one = gemm_mode(&a, &b, Parallelism::Serial, NumericsMode::Fast);
        for workers in [2, 3, 8, 61] {
            let par = gemm_mode(&a, &b, Parallelism::Threads(workers), NumericsMode::Fast);
            assert_eq!(
                one.as_slice().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                par.as_slice().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "workers = {workers}"
            );
        }
    }

    #[test]
    fn fast_reductions_are_accurate_and_length_deterministic() {
        let mut rng = rng_from_seed(9);
        for n in [0usize, 1, 3, 4, 63, 64, 65, 257, 4096, 5000] {
            let xs: Vec<f64> = (0..n).map(|_| randn(&mut rng, 1, 1)[(0, 0)]).collect();
            let ys: Vec<f64> = (0..n).map(|_| randn(&mut rng, 1, 1)[(0, 0)]).collect();
            let exact_sum = reduce_sum(&xs, NumericsMode::BitExact);
            let fast_sum = reduce_sum(&xs, NumericsMode::Fast);
            let sum_scale = xs.iter().map(|v| v.abs()).sum::<f64>().max(1.0);
            assert!(
                (exact_sum - fast_sum).abs() <= 1e-13 * sum_scale,
                "sum n={n}: {exact_sum} vs {fast_sum}"
            );
            let exact_dot = reduce_dot(&xs, &ys, NumericsMode::BitExact);
            let fast_dot = reduce_dot(&xs, &ys, NumericsMode::Fast);
            let dot_scale = xs.iter().zip(&ys).map(|(x, y)| (x * y).abs()).sum::<f64>().max(1.0);
            assert!(
                (exact_dot - fast_dot).abs() <= 1e-13 * dot_scale,
                "dot n={n}: {exact_dot} vs {fast_dot}"
            );
            // Determinism: re-evaluation yields identical bits.
            assert_eq!(fast_sum.to_bits(), reduce_sum(&xs, NumericsMode::Fast).to_bits());
            assert_eq!(fast_dot.to_bits(), reduce_dot(&xs, &ys, NumericsMode::Fast).to_bits());
        }
    }

    #[test]
    fn fast_pairwise_sum_beats_serial_fold_on_hostile_input() {
        // The classic pairwise-summation accuracy case: many tiny values
        // after one large one. The serial fold loses the tiny increments to
        // rounding; the tree keeps them.
        let mut xs = vec![1e-16f64; 1 << 16];
        xs.insert(0, 1.0);
        let exact_err = (reduce_sum(&xs, NumericsMode::BitExact) - (1.0 + 65536e-16)).abs();
        let fast_err = (reduce_sum(&xs, NumericsMode::Fast) - (1.0 + 65536e-16)).abs();
        assert!(
            fast_err <= exact_err,
            "tree sum should not be less accurate: {fast_err} vs {exact_err}"
        );
    }
}
